//! The segmented, publishable index: an LSM-flavored replacement for a
//! monolithic mutable overlay.
//!
//! Split into a writer half and a reader half:
//!
//! * [`SegmentedSource`] — owned by the single writer. It keeps a sorted
//!   run of immutable [`Segment`]s covering `0..n` plus one small mutable
//!   **memtable** of freshly appended documents, a tombstone bitset, and a
//!   compaction policy. Appends normalize the concept set and, at the
//!   seal threshold, freeze the memtable into a new tail segment;
//!   compaction merges runs of small segments and physically drops
//!   tombstoned rows (their id slots stay covered and stay dead, so
//!   `DocId` liveness semantics are preserved forever).
//! * [`SegmentedView`] — an immutable, cheaply-cloneable snapshot of the
//!   whole set ([`SegmentedSource::view`]), implementing [`IndexSource`].
//!   Everything inside is behind `Arc`, so a view costs a few refcounts
//!   to clone, stays valid while compactions replace segments underneath,
//!   and can be handed to any number of query threads with no lock.
//!
//! A view taken mid-memtable freezes the partial memtable into a bounded
//! tail segment (cached until the next append), so published snapshots
//! always see every append that happened before them — the paper's
//! "instantly add the EMR at the point of care" claim, minus the lock.

use crate::packing;
use crate::segment::Segment;
use crate::source::IndexSource;
use cbr_corpus::DocId;
use cbr_ontology::ConceptId;
use std::sync::Arc;

/// Returns bit `i` of the bitset (out-of-range reads as unset).
#[inline]
fn bit(words: &[u64], i: usize) -> bool {
    words.get(i / 64).is_some_and(|w| (w >> (i % 64)) & 1 == 1)
}

/// When to seal the memtable and when to fold small segments together.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Memtable size (documents) at which an append seals it into a
    /// segment.
    pub seal_threshold: usize,
    /// Minimum length of a trailing run of small segments before the
    /// writer merges them into one.
    pub merge_fanin: usize,
    /// A segment counts as "small" (compaction fodder) while it covers at
    /// most this many document slots.
    pub small_max_docs: usize,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy { seal_threshold: 512, merge_fanin: 4, small_max_docs: 16_384 }
    }
}

/// An immutable snapshot of the segmented index. Cloning is O(1) in the
/// corpus (a handful of `Arc` bumps); every read is lock-free.
#[derive(Debug, Clone)]
pub struct SegmentedView {
    segments: Arc<[Arc<Segment>]>,
    dead: Arc<[u64]>,
    num_docs: usize,
}

impl SegmentedView {
    /// An empty view (no documents).
    pub fn empty() -> SegmentedView {
        SegmentedView { segments: Arc::from(vec![]), dead: Arc::from(vec![]), num_docs: 0 }
    }

    /// Number of segments behind this view.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// The segment containing `d`, with `d` mapped to a local row.
    fn locate(&self, d: DocId) -> Option<(&Segment, usize)> {
        let i = self.segments.partition_point(|s| s.doc_end() <= d.0);
        let seg = self.segments.get(i)?;
        seg.contains(d).then(|| (seg.as_ref(), (d.0 - seg.first_doc()) as usize))
    }
}

impl IndexSource for SegmentedView {
    fn postings(&self, c: ConceptId, out: &mut Vec<DocId>) {
        // Segments are ordered by document range and each local list is
        // ascending, so the merged output stays sorted by id.
        for seg in self.segments.iter() {
            let first = seg.first_doc();
            for &local in seg.local_postings(c) {
                let id = first + local;
                if !bit(&self.dead, id as usize) {
                    // bound: sized — one DocId per live posting (cplx: cap seg*d — one slot per live (segment, posting) pair; globally ≤ one per corpus doc)
                    out.push(DocId(id));
                }
            }
        }
    }

    fn doc_concepts(&self, d: DocId, out: &mut Vec<ConceptId>) {
        if let Some((seg, local)) = self.locate(d) {
            out.extend_from_slice(seg.concepts(local));
        }
    }

    fn doc_len(&self, d: DocId) -> usize {
        self.locate(d).map_or(0, |(seg, local)| seg.doc_len(local))
    }

    fn num_docs(&self) -> usize {
        self.num_docs
    }

    fn is_live(&self, d: DocId) -> bool {
        !bit(&self.dead, d.index())
    }
}

/// The writer half: memtable, tombstones, segments, compaction.
#[derive(Debug)]
pub struct SegmentedSource {
    /// Sealed immutable segments, contiguous from document 0.
    segments: Vec<Arc<Segment>>,
    /// Appends since the last seal; global ids `mem_first..`.
    memtable: Vec<Box<[ConceptId]>>,
    /// Tombstone bitset over global ids. Bits are never cleared — a
    /// compacted-away document keeps reading as dead.
    dead: Vec<u64>,
    dead_count: usize,
    policy: CompactionPolicy,
    /// The partial memtable frozen as a tail segment for views; dropped
    /// on append, rebuilt lazily (cost bounded by the seal threshold).
    frozen_tail: Option<Arc<Segment>>,
    /// Shared copy of `dead` for views; dropped on delete.
    shared_dead: Option<Arc<[u64]>>,
    seals: usize,
    compactions: usize,
}

impl SegmentedSource {
    /// An empty source.
    pub fn new(policy: CompactionPolicy) -> SegmentedSource {
        SegmentedSource {
            segments: Vec::new(),
            memtable: Vec::new(),
            dead: Vec::new(),
            dead_count: 0,
            policy,
            frozen_tail: None,
            shared_dead: None,
            seals: 0,
            compactions: 0,
        }
    }

    /// Wraps an existing corpus as one base segment.
    pub fn from_corpus(corpus: &cbr_corpus::Corpus, policy: CompactionPolicy) -> SegmentedSource {
        let mut source = SegmentedSource::new(policy);
        if !corpus.is_empty() {
            let base = Segment::from_docs(0, corpus.documents().map(|d| d.concepts()));
            source.segments.push(Arc::new(base));
        }
        source
    }

    /// Global id the next append will receive.
    fn next_doc(&self) -> u32 {
        self.mem_first() + packing::narrow_u32(self.memtable.len())
    }

    /// Global id of the first memtable slot.
    fn mem_first(&self) -> u32 {
        self.segments.last().map_or(0, |s| s.doc_end())
    }

    /// Appends a document, normalizing `concepts` into set form, and
    /// returns its permanent id. Seals the memtable and runs the
    /// compaction policy when the seal threshold is reached.
    pub fn append(&mut self, mut concepts: Vec<ConceptId>) -> DocId {
        cbr_corpus::normalize_concepts(&mut concepts);
        let id = DocId(self.next_doc());
        self.memtable.push(concepts.into_boxed_slice());
        self.frozen_tail = None;
        if self.memtable.len() >= self.policy.seal_threshold {
            self.seal();
            self.maybe_compact();
        }
        id
    }

    /// Tombstones `d`. Returns whether the document was live. The id
    /// stays allocated and reads as dead forever, even after compaction
    /// physically drops the row.
    pub fn delete(&mut self, d: DocId) -> bool {
        if d.0 >= self.next_doc() || bit(&self.dead, d.index()) {
            return false;
        }
        let word = d.index() / 64;
        if word >= self.dead.len() {
            self.dead.resize(word + 1, 0);
        }
        self.dead[word] |= 1 << (d.index() % 64);
        self.dead_count += 1;
        self.shared_dead = None;
        true
    }

    /// Seals the memtable into a new immutable tail segment (no-op when
    /// the memtable is empty).
    pub fn seal(&mut self) {
        if self.memtable.is_empty() {
            return;
        }
        let tail = match self.frozen_tail.take() {
            // A view already froze exactly this memtable; reuse it.
            Some(seg) if seg.len() == self.memtable.len() => seg,
            _ => Arc::new(Segment::from_docs(
                self.mem_first(),
                self.memtable.iter().map(|s| s.as_ref()),
            )),
        };
        self.segments.push(tail);
        self.memtable.clear();
        self.frozen_tail = None;
        self.seals += 1;
    }

    /// Runs the compaction policy once: if the trailing run of small
    /// segments is at least `merge_fanin` long, merge it into one segment,
    /// physically dropping tombstoned rows.
    pub fn maybe_compact(&mut self) -> bool {
        let small = |s: &Arc<Segment>| s.len() <= self.policy.small_max_docs;
        let run_start = {
            let mut i = self.segments.len();
            while i > 0 && small(&self.segments[i - 1]) {
                i -= 1;
            }
            i
        };
        if self.segments.len() - run_start < self.policy.merge_fanin {
            return false;
        }
        self.merge_from(run_start);
        true
    }

    /// Merges every segment (and nothing of the memtable) into one,
    /// regardless of policy, dropping currently tombstoned rows. A no-op
    /// when there is at most one segment and no tombstone to fold in.
    pub fn compact_all(&mut self) -> bool {
        if self.segments.is_empty() || (self.segments.len() == 1 && self.dead_count == 0) {
            return false;
        }
        self.merge_from(0);
        true
    }

    fn merge_from(&mut self, run_start: usize) {
        let parts: Vec<&Segment> = self.segments[run_start..].iter().map(Arc::as_ref).collect();
        let dead = &self.dead;
        let merged = Segment::merge(&parts, |d| bit(dead, d.index()));
        self.segments.truncate(run_start);
        self.segments.push(Arc::new(merged));
        self.compactions += 1;
    }

    /// Publishes the current state as an immutable [`SegmentedView`]. The
    /// partial memtable is frozen into a cached tail segment, so the cost
    /// of a view between seals is bounded by the seal threshold; with no
    /// writes since the last view it is a few `Arc` clones.
    pub fn view(&mut self) -> SegmentedView {
        let mut segments = self.segments.clone();
        if !self.memtable.is_empty() {
            let tail = self.frozen_tail.get_or_insert_with(|| {
                Arc::new(Segment::from_docs(
                    self.segments.last().map_or(0, |s| s.doc_end()),
                    self.memtable.iter().map(|s| s.as_ref()),
                ))
            });
            segments.push(Arc::clone(tail));
        }
        let dead = self.shared_dead.get_or_insert_with(|| Arc::from(self.dead.clone())).clone();
        SegmentedView { segments: Arc::from(segments), dead, num_docs: self.next_doc() as usize }
    }

    /// Total document slots (live + dead).
    pub fn num_docs(&self) -> usize {
        self.next_doc() as usize
    }

    /// Live documents.
    pub fn live_docs(&self) -> usize {
        self.num_docs() - self.dead_count
    }

    /// Sealed segment count (excluding the memtable).
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Documents currently buffered in the memtable.
    pub fn memtable_len(&self) -> usize {
        self.memtable.len()
    }

    /// How many times the memtable has been sealed.
    pub fn seals(&self) -> usize {
        self.seals
    }

    /// How many merges have run.
    pub fn compactions(&self) -> usize {
        self.compactions
    }

    /// The active policy.
    pub fn policy(&self) -> CompactionPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: u32) -> ConceptId {
        ConceptId(v)
    }

    fn tiny_policy() -> CompactionPolicy {
        CompactionPolicy { seal_threshold: 2, merge_fanin: 2, small_max_docs: 8 }
    }

    fn postings(view: &SegmentedView, concept: ConceptId) -> Vec<DocId> {
        let mut out = Vec::new();
        view.postings(concept, &mut out);
        out
    }

    #[test]
    fn appends_become_visible_in_views_before_and_after_seal() {
        let mut s = SegmentedSource::new(tiny_policy());
        let d0 = s.append(vec![c(3), c(1), c(3)]);
        assert_eq!(d0, DocId(0));
        // Unsealed: the view freezes the memtable.
        let v = s.view();
        assert_eq!(v.num_docs(), 1);
        assert_eq!(postings(&v, c(3)), vec![DocId(0)]);
        let mut set = Vec::new();
        v.doc_concepts(DocId(0), &mut set);
        assert_eq!(set, vec![c(1), c(3)], "normalized");
        // Second append crosses the seal threshold.
        let d1 = s.append(vec![c(1)]);
        assert_eq!(d1, DocId(1));
        assert_eq!(s.memtable_len(), 0);
        assert_eq!(s.seals(), 1);
        let v2 = s.view();
        assert_eq!(postings(&v2, c(1)), vec![DocId(0), DocId(1)]);
        // The earlier view is unaffected.
        assert_eq!(v.num_docs(), 1);
    }

    #[test]
    fn delete_hides_doc_and_compaction_drops_it_physically() {
        let mut s = SegmentedSource::new(tiny_policy());
        for i in 0..4u32 {
            s.append(vec![c(7), c(i + 10)]);
        }
        assert!(s.delete(DocId(1)));
        assert!(!s.delete(DocId(1)), "double delete reports dead");
        assert!(!s.delete(DocId(99)), "out of range is not live");
        let v = s.view();
        assert_eq!(postings(&v, c(7)), vec![DocId(0), DocId(2), DocId(3)]);
        assert!(!v.is_live(DocId(1)));
        assert_eq!(s.live_docs(), 3);
        // Compact everything: the row is physically gone...
        assert!(s.compact_all());
        let v2 = s.view();
        assert_eq!(v2.num_segments(), 1);
        assert_eq!(v2.doc_len(DocId(1)), 0);
        // ...but the id slot stays covered and stays dead.
        assert_eq!(v2.num_docs(), 4);
        assert!(!v2.is_live(DocId(1)));
        assert!(v2.is_live(DocId(2)));
        assert_eq!(postings(&v2, c(7)), vec![DocId(0), DocId(2), DocId(3)]);
    }

    #[test]
    fn policy_merges_trailing_run_of_small_segments() {
        let policy = CompactionPolicy { seal_threshold: 2, merge_fanin: 3, small_max_docs: 4 };
        let mut s = SegmentedSource::new(policy);
        for i in 0..12u32 {
            s.append(vec![c(i % 3)]);
        }
        // 6 seals of 2 docs each; runs of 3 small segments merge as they
        // form, so the count stays below the fan-in.
        assert!(s.seals() >= 3);
        assert!(s.compactions() >= 1);
        let v = s.view();
        assert_eq!(v.num_docs(), 12);
        let mut all = Vec::new();
        for i in 0..3 {
            all.extend(postings(&v, c(i)));
        }
        all.sort_unstable();
        assert_eq!(all.len(), 12);
    }

    #[test]
    fn old_views_survive_compaction_unchanged() {
        let mut s = SegmentedSource::new(tiny_policy());
        for i in 0..6u32 {
            s.append(vec![c(5), c(20 + i)]);
        }
        let before = s.view();
        s.delete(DocId(4));
        s.compact_all();
        let after = s.view();
        // The pre-compaction view still sees the old liveness...
        assert!(before.is_live(DocId(4)));
        assert_eq!(postings(&before, c(5)).len(), 6);
        // ...the new one sees the tombstone applied and rows dropped.
        assert!(!after.is_live(DocId(4)));
        assert_eq!(postings(&after, c(5)).len(), 5);
    }

    #[test]
    fn from_corpus_wraps_everything_as_base_segment() {
        let corpus =
            cbr_corpus::Corpus::from_concept_sets(vec![(vec![c(2), c(1)], 0), (vec![c(2)], 0)]);
        let mut s = SegmentedSource::from_corpus(&corpus, CompactionPolicy::default());
        assert_eq!(s.num_segments(), 1);
        let v = s.view();
        assert_eq!(v.num_docs(), 2);
        assert_eq!(postings(&v, c(2)), vec![DocId(0), DocId(1)]);
        assert_eq!(s.append(vec![c(9)]), DocId(2));
    }
}
