//! Per-function numeric-effect summaries.
//!
//! The bound rules run on a small vocabulary of *numeric sites*
//! extracted from every function body: `as` casts (with a best-effort
//! source type), overflow-capable left shifts, buffer-growth calls
//! inside loops, and divisions (with a lexical guard check). Extraction
//! is purely syntactic over `cbr-flow`'s comment-blanked code view; the
//! rules in [`crate::rules`] decide which sites matter by restricting
//! to functions reachable from the hot-path roots.
//!
//! Source types come from three channels, most-specific first:
//!
//! 1. **Literals** — `1u64 as usize` carries its own type; unsuffixed
//!    literals are value-known and never truncating.
//! 2. **Typed idents** — a workspace-wide `ident: type` map built from
//!    field and parameter declarations (`stamp: u32`, `nq: usize`).
//!    An identifier declared with two different numeric types anywhere
//!    in the workspace reads as unknown, which is the conservative
//!    direction.
//! 3. **Method table** — `.len()`, `.capacity()`, `.index()` and the
//!    other `usize`-returning accessors the hot path leans on.
//!
//! Sites can be discharged with a `// bound: proven <why>` directive
//! (B01/B02/B05) or `// bound: sized <why>` (B03) on the same line, the
//! line above, or in the comment block above the enclosing function. A
//! directive **without a justification is not a suppression** — the
//! finding still fires, flagging the bare directive, so the invariant
//! argument can never silently evaporate.

use cbr_flow::parser::{FnItem, Workspace};
use cbr_flow::scanner::{is_ident_byte, SourceFile};
use std::collections::BTreeMap;

/// The axiom module: the checked packing/narrowing helpers whose raw
/// casts *implement* the discipline B01/B02 enforce everywhere else.
/// Its invariants are documented and boundary-tested in place, so the
/// scanner skips it entirely.
pub const AXIOM_FILES: [&str; 1] = ["crates/index/src/packing.rs"];

/// Numeric primitive type tokens the analysis understands.
const TYPE_TOKENS: [&str; 13] =
    ["u8", "u16", "u32", "u64", "usize", "i8", "i16", "i32", "i64", "isize", "f32", "f64", "bool"];

/// Methods whose return type is `usize` wherever the hot path calls
/// them (slice/Vec accessors and the id-space accessors of the index).
const USIZE_METHODS: [&str; 8] =
    ["len", "capacity", "index", "num_docs", "doc_len", "count", "num_concepts", "total_postings"];

/// Buffer-growth methods B03 watches inside loops.
const GROWTH_METHODS: [&str; 6] =
    ["push", "extend", "extend_from_slice", "resize", "append", "insert"];

/// Suppression state of a site-level `// bound:` directive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Directive {
    /// No directive anywhere in scope.
    Absent,
    /// Directive present with a written justification — suppresses.
    Justified,
    /// Bare directive with no justification — does **not** suppress.
    Unjustified,
}

/// Best-effort source type of a cast expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SrcTy {
    /// A literal with a known value; never truncating.
    Lit,
    /// A known primitive type (one of [`TYPE_TOKENS`]).
    Known(String),
    /// Could not be typed; narrow targets treat this conservatively.
    Unknown,
}

/// One `expr as target` site.
#[derive(Debug, Clone)]
pub struct Cast {
    /// Byte offset of the `as` keyword.
    pub at: usize,
    /// Short rendering of the source expression (for messages).
    pub expr: String,
    /// Inferred source type.
    pub src: SrcTy,
    /// Target primitive type token.
    pub target: String,
    /// `bound: proven` directive state at this site.
    pub proven: Directive,
}

/// One non-literal left-shift site.
#[derive(Debug, Clone)]
pub struct Shift {
    /// Byte offset of the `<<` operator.
    pub at: usize,
    /// `bound: proven` directive state at this site.
    pub proven: Directive,
}

/// One buffer-growth call inside a loop.
#[derive(Debug, Clone)]
pub struct Growth {
    /// Byte offset of the method name.
    pub at: usize,
    /// Method name (`push`, `resize`, ...).
    pub method: String,
    /// Receiver chain of the growing buffer.
    pub receiver: String,
    /// `bound: sized` directive state at this site.
    pub sized: Directive,
}

/// One division whose divisor has no lexical nonzero guard.
#[derive(Debug, Clone)]
pub struct Division {
    /// Byte offset of the `/` operator.
    pub at: usize,
    /// Short rendering of the divisor expression.
    pub divisor: String,
    /// `bound: proven` directive state at this site.
    pub proven: Directive,
}

/// The numeric sites of one function body.
#[derive(Debug, Default)]
pub struct FnSites {
    /// `as` casts.
    pub casts: Vec<Cast>,
    /// Left shifts with a non-literal operand.
    pub shifts: Vec<Shift>,
    /// Growth calls inside loops.
    pub growths: Vec<Growth>,
    /// Unguarded divisions.
    pub divisions: Vec<Division>,
}

/// Numeric sites for every function, aligned with `Workspace::fns`.
#[derive(Debug)]
pub struct NumSites {
    /// Per-function site lists.
    pub fns: Vec<FnSites>,
}

/// Builds the workspace-wide `ident: type` environment from field and
/// parameter declarations. Conflicting declarations map to `"?"`.
pub fn type_env(ws: &Workspace) -> BTreeMap<String, String> {
    let mut env: BTreeMap<String, String> = BTreeMap::new();
    for file in &ws.files {
        let code = &file.code;
        let bytes = code.as_bytes();
        for ty in TYPE_TOKENS {
            let mut from = 0;
            while let Some(rel) = code[from..].find(ty) {
                let at = from + rel;
                from = at + 1;
                // Whole-token match: `u32` must not hit inside `u32x4`
                // or `AtomicU32`.
                if at > 0 && is_ident_byte(bytes[at - 1]) {
                    continue;
                }
                if bytes.get(at + ty.len()).copied().is_some_and(is_ident_byte) {
                    continue;
                }
                let mut p = at;
                while p > 0 && bytes[p - 1].is_ascii_whitespace() {
                    p -= 1;
                }
                if p == 0 || bytes[p - 1] != b':' {
                    continue;
                }
                p -= 1;
                if p > 0 && bytes[p - 1] == b':' {
                    continue; // `::` path, not a declaration
                }
                while p > 0 && bytes[p - 1].is_ascii_whitespace() {
                    p -= 1;
                }
                let e = p;
                while p > 0 && is_ident_byte(bytes[p - 1]) {
                    p -= 1;
                }
                if p == e {
                    continue;
                }
                let name = &code[p..e];
                if name.bytes().next().is_some_and(|b| b.is_ascii_digit()) {
                    continue;
                }
                match env.get(name) {
                    Some(t) if t != ty => {
                        env.insert(name.to_string(), "?".to_string());
                    }
                    Some(_) => {}
                    None => {
                        env.insert(name.to_string(), ty.to_string());
                    }
                }
            }
        }
    }
    env
}

/// Looks for `key` on the given text line; distinguishes bare
/// directives from justified ones (anything with a word after the key).
fn directive_on_line(line: &str, key: &str) -> Directive {
    let Some(pos) = line.find(key) else {
        return Directive::Absent;
    };
    let rest = line[pos + key.len()..].trim_matches(|c: char| {
        c.is_whitespace() || matches!(c, '—' | '-' | ':' | ',' | '.' | '*' | '/')
    });
    if rest.chars().any(|c| c.is_alphanumeric()) {
        Directive::Justified
    } else {
        Directive::Unjustified
    }
}

/// Directive state for a site: same line, line above, or the comment
/// block directly above the enclosing function's declaration.
pub fn directive_at(file: &SourceFile, f: &FnItem, at: usize, key: &str) -> Directive {
    let lines: Vec<&str> = file.text.lines().collect();
    let line = file.line_of(at); // 1-based
    for idx in [line, line.saturating_sub(1)] {
        if idx >= 1 {
            if let Some(l) = lines.get(idx - 1) {
                match directive_on_line(l, key) {
                    Directive::Absent => {}
                    d => return d,
                }
            }
        }
    }
    // Comment/attribute block above the fn declaration.
    let mut idx = file.line_of(f.decl).saturating_sub(1);
    while idx >= 1 {
        let l = lines[idx - 1].trim_start();
        if !(l.starts_with("//") || l.starts_with("#[") || l.starts_with("/*")) {
            break;
        }
        match directive_on_line(l, key) {
            Directive::Absent => {}
            d => return d,
        }
        idx -= 1;
    }
    Directive::Absent
}

/// Reads the identifier (or numeric token) ending at `end`, extended
/// backward through `.`-chains; returns `(chain_start, last_segment)`.
fn ident_chain_back(bytes: &[u8], mut end: usize) -> (usize, String) {
    let mut p = end;
    while p > 0 && is_ident_byte(bytes[p - 1]) {
        p -= 1;
    }
    let last = String::from_utf8_lossy(&bytes[p..end]).into_owned();
    // Extend through `self.`-style chains for display purposes.
    while p > 0 && bytes[p - 1] == b'.' {
        end = p - 1;
        p = end;
        while p > 0 && is_ident_byte(bytes[p - 1]) {
            p -= 1;
        }
        if p == end {
            break;
        }
    }
    (p, last)
}

/// Backward scan over a balanced `(..)` group ending at `close`.
fn paren_group_start(bytes: &[u8], close: usize) -> usize {
    let mut depth = 0i32;
    let mut p = close;
    loop {
        match bytes[p] {
            b')' => depth += 1,
            b'(' => {
                depth -= 1;
                if depth == 0 {
                    return p;
                }
            }
            _ => {}
        }
        if p == 0 {
            return 0;
        }
        p -= 1;
    }
}

/// Classifies the expression ending just before the `as` at `as_at`.
fn classify_source(code: &str, body_start: usize, as_at: usize, env: &TypeMap) -> (String, SrcTy) {
    let bytes = code.as_bytes();
    let mut p = as_at;
    while p > body_start && bytes[p - 1].is_ascii_whitespace() {
        p -= 1;
    }
    if p == body_start {
        return (String::new(), SrcTy::Unknown);
    }
    let last = bytes[p - 1];
    if last == b')' {
        let open = paren_group_start(bytes, p - 1);
        let (start, name) = ident_chain_back(bytes, open);
        let expr = snippet(code, start, p);
        if !name.is_empty()
            && open > name.len()
            && bytes[open - name.len() - 1] == b'.'
            && USIZE_METHODS.contains(&name.as_str())
        {
            return (expr, SrcTy::Known("usize".to_string()));
        }
        return (expr, SrcTy::Unknown);
    }
    if is_ident_byte(last) {
        let (start, name) = ident_chain_back(bytes, p);
        let expr = snippet(code, start, p);
        if name.bytes().next().is_some_and(|b| b.is_ascii_digit()) {
            // Literal, possibly suffixed: `1u64`, `0`, `0xFF_u32`.
            for ty in TYPE_TOKENS {
                if name.ends_with(ty) && name.len() > ty.len() {
                    return (expr, SrcTy::Known(ty.to_string()));
                }
            }
            return (expr, SrcTy::Lit);
        }
        if let Some(t) = env.get(&name) {
            if t != "?" {
                return (expr, SrcTy::Known(t.clone()));
            }
        }
        return (expr, SrcTy::Unknown);
    }
    (snippet(code, p.saturating_sub(12), p), SrcTy::Unknown)
}

type TypeMap = BTreeMap<String, String>;

/// Truncated single-line rendering of `code[from..to]` for messages.
fn snippet(code: &str, from: usize, to: usize) -> String {
    let s = code[from..to].split_whitespace().collect::<Vec<_>>().join(" ");
    if s.len() > 48 {
        format!("..{}", &s[s.len() - 46..])
    } else {
        s
    }
}

/// Byte spans of `for`/`while`/`loop` blocks inside `body`.
fn loop_spans(code: &str, body: (usize, usize)) -> Vec<(usize, usize)> {
    let bytes = code.as_bytes();
    let mut spans = Vec::new();
    for kw in ["for ", "while ", "loop"] {
        let mut from = body.0;
        while let Some(rel) = code[from..body.1.min(code.len())].find(kw) {
            let at = from + rel;
            from = at + 1;
            if at > 0 && is_ident_byte(bytes[at - 1]) {
                continue;
            }
            let after = at + kw.len();
            if kw == "loop" && bytes.get(after).copied().is_some_and(is_ident_byte) {
                continue;
            }
            let Some(open_rel) = code[after..body.1.min(code.len())].find('{') else {
                continue;
            };
            let open = after + open_rel;
            if let Some(close) = cbr_flow::scanner::match_bracket(bytes, open, b'{', b'}') {
                spans.push((open, close));
            }
        }
    }
    spans
}

/// Whether the divisor expression starting at `from` is lexically
/// guarded: a nonzero literal, a `.max(nonzero)` clamp, or an identifier
/// the function body tests against zero.
fn divisor_guarded(code: &str, body: (usize, usize), from: usize) -> (String, bool) {
    let bytes = code.as_bytes();
    let mut p = from;
    while p < body.1.min(code.len()) && bytes[p].is_ascii_whitespace() {
        p += 1;
    }
    // Slice the divisor term: up to a top-level `+ - * % ; , )` boundary.
    let mut depth = 0i32;
    let mut end = p;
    while end < body.1.min(code.len()) {
        let b = bytes[end];
        match b {
            b'(' | b'[' => depth += 1,
            b')' | b']' if depth > 0 => depth -= 1,
            b')' | b']' | b';' | b',' | b'{' => break,
            b'+' | b'*' | b'%' if depth == 0 => break,
            b'-' if depth == 0 && end > p => break,
            _ => {}
        }
        end += 1;
    }
    let term = code[p..end].trim();
    let display = snippet(code, p, end);
    // Nonzero literal divisor.
    if term.bytes().next().is_some_and(|b| b.is_ascii_digit()) {
        let num: String =
            term.bytes().take_while(|b| b.is_ascii_digit() || *b == b'.').map(char::from).collect();
        return (display, num.parse::<f64>().map(|v| v != 0.0).unwrap_or(false));
    }
    // `.max(nonzero)` clamp anywhere in the term.
    if let Some(mx) = term.find(".max(") {
        let arg = &term[mx + 5..];
        let num: String =
            arg.bytes().take_while(|b| b.is_ascii_digit() || *b == b'.').map(char::from).collect();
        if num.parse::<f64>().map(|v| v != 0.0).unwrap_or(false) {
            return (display, true);
        }
    }
    // Identifier divisor: look for a zero test on it in this body.
    let ident: String = term
        .bytes()
        .skip_while(|&b| !is_ident_byte(b))
        .take_while(|&b| is_ident_byte(b) || b == b'.')
        .map(char::from)
        .collect();
    let leaf = ident.rsplit('.').next().unwrap_or("").trim_matches('.');
    if !leaf.is_empty() {
        let body_code = &code[body.0..body.1.min(code.len())];
        for pat in ["<= 0", "== 0", "!= 0", "> 0", ">= 1"] {
            if body_code.contains(&format!("{leaf} {pat}")) {
                return (display, true);
            }
        }
        if body_code.contains(&format!("{leaf}.max(")) {
            return (display, true);
        }
    }
    (display, false)
}

/// Extracts numeric sites for every function in the workspace.
pub fn extract(ws: &Workspace) -> NumSites {
    let env = type_env(ws);
    let mut fns = Vec::with_capacity(ws.fns.len());
    for f in &ws.fns {
        let file = &ws.files[f.file];
        let mut sites = FnSites::default();
        if f.is_test || AXIOM_FILES.contains(&file.rel.as_str()) {
            fns.push(sites);
            continue;
        }
        let code = &file.code;
        let bytes = code.as_bytes();
        let body = f.body;
        let live = |at: usize| !file.is_test(at) && !file.is_debug_gated(at);

        // Casts: every ` as <type>` in the body.
        let mut from = body.0;
        while let Some(rel) = code[from..body.1.min(code.len())].find(" as ") {
            let sp = from + rel;
            from = sp + 4;
            let at = sp + 1;
            if !live(at) {
                continue;
            }
            let tgt_start = sp + 4;
            let mut tgt_end = tgt_start;
            while tgt_end < code.len() && is_ident_byte(bytes[tgt_end]) {
                tgt_end += 1;
            }
            let target = &code[tgt_start..tgt_end];
            if !TYPE_TOKENS.contains(&target) {
                continue;
            }
            let (expr, src) = classify_source(code, body.0, sp, &env);
            sites.casts.push(Cast {
                at,
                expr,
                src,
                target: target.to_string(),
                proven: directive_at(file, f, at, "bound: proven"),
            });
        }

        // Shifts: `<<` with a non-literal left operand.
        let mut from = body.0;
        while let Some(rel) = code[from..body.1.min(code.len())].find("<<") {
            let at = from + rel;
            from = at + 2;
            if !live(at) {
                continue;
            }
            // `Vec<<T as ..>::Out>`-style qualified paths, not shifts.
            let mut n = at + 2;
            if bytes.get(n) == Some(&b'=') {
                n += 1;
            }
            while n < code.len() && bytes[n].is_ascii_whitespace() {
                n += 1;
            }
            if bytes.get(n).copied().is_some_and(|b| b.is_ascii_uppercase()) {
                continue;
            }
            let mut p = at;
            while p > body.0 && bytes[p - 1].is_ascii_whitespace() {
                p -= 1;
            }
            if is_ident_byte(bytes[p - 1]) {
                let (_, tok) = ident_chain_back(bytes, p);
                if tok.bytes().next().is_some_and(|b| b.is_ascii_digit()) {
                    continue; // literal LHS: the set-bit idiom
                }
            }
            sites.shifts.push(Shift { at, proven: directive_at(file, f, at, "bound: proven") });
        }

        // Growths: push/extend/resize/... call sites inside loop blocks.
        let loops = loop_spans(code, body);
        for call in &f.calls {
            if !call.method
                || call.recv_self
                || !GROWTH_METHODS.contains(&call.name.as_str())
                || !live(call.at)
            {
                continue;
            }
            if loops.iter().any(|(o, c)| *o < call.at && call.at < *c) {
                sites.growths.push(Growth {
                    at: call.at,
                    method: call.name.clone(),
                    receiver: call.receiver.clone(),
                    sized: directive_at(file, f, call.at, "bound: sized"),
                });
            }
        }

        // Divisions: `/` whose divisor carries no lexical nonzero guard.
        let mut from = body.0;
        while let Some(rel) = code[from..body.1.min(code.len())].find('/') {
            let at = from + rel;
            from = at + 1;
            if bytes.get(at + 1) == Some(&b'/') || (at > 0 && bytes[at - 1] == b'/') {
                continue;
            }
            if !live(at) {
                continue;
            }
            let mut d = at + 1;
            if bytes.get(d) == Some(&b'=') {
                d += 1;
            }
            while d < code.len() && bytes[d].is_ascii_whitespace() {
                d += 1;
            }
            let (divisor, guarded) = divisor_guarded(code, body, d);
            if !guarded {
                sites.divisions.push(Division {
                    at,
                    divisor,
                    proven: directive_at(file, f, at, "bound: proven"),
                });
            }
        }

        fns.push(sites);
    }
    NumSites { fns }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbr_flow::scanner::SourceFile;

    fn extract_for(files: &[(&str, &str)]) -> (Workspace, NumSites) {
        let w = Workspace::parse(files.iter().map(|(r, t)| SourceFile::parse(r, t)).collect());
        let s = extract(&w);
        (w, s)
    }

    fn sites<'a>(w: &Workspace, s: &'a NumSites, name: &str) -> &'a FnSites {
        let id = w.fns.iter().position(|f| f.name == name).unwrap();
        &s.fns[id]
    }

    #[test]
    fn typed_idents_classify_cast_sources() {
        let (w, s) = extract_for(&[(
            "crates/svc/src/lib.rs",
            "struct S { nq: usize, level: u32 }\n\
             impl S {\n\
             fn f(&self) -> u32 { self.nq as u32 }\n\
             fn g(&self) -> u64 { self.level as u64 }\n\
             }\n",
        )]);
        let f = &sites(&w, &s, "f").casts[0];
        assert_eq!(f.src, SrcTy::Known("usize".to_string()));
        assert_eq!(f.target, "u32");
        assert_eq!(f.expr, "self.nq");
        let g = &sites(&w, &s, "g").casts[0];
        assert_eq!(g.src, SrcTy::Known("u32".to_string()));
    }

    #[test]
    fn len_calls_and_literals_are_typed() {
        let (w, s) = extract_for(&[(
            "crates/svc/src/lib.rs",
            "fn f(v: &[u8]) -> u32 { v.len() as u32 }\n\
             fn g() -> usize { 1u64 as usize }\n\
             fn h() -> u32 { 7 as u32 }\n",
        )]);
        assert_eq!(sites(&w, &s, "f").casts[0].src, SrcTy::Known("usize".to_string()));
        assert_eq!(sites(&w, &s, "g").casts[0].src, SrcTy::Known("u64".to_string()));
        assert_eq!(sites(&w, &s, "h").casts[0].src, SrcTy::Lit);
    }

    #[test]
    fn conflicting_declarations_read_as_unknown() {
        let (w, s) = extract_for(&[(
            "crates/svc/src/lib.rs",
            "struct A { x: u32 }\nstruct B { x: u64 }\n\
             fn f(a: &A) -> u16 { a.x as u16 }\n",
        )]);
        assert_eq!(sites(&w, &s, "f").casts[0].src, SrcTy::Unknown);
    }

    #[test]
    fn literal_shifts_are_exempt_and_expressions_are_not() {
        let (w, s) = extract_for(&[(
            "crates/svc/src/lib.rs",
            "fn set(w: &mut u64, idx: usize) { *w |= 1u64 << (idx & 63); }\n\
             fn pack(stamp: u32, slot: u32) -> u64 { (stamp as u64) << 32 | slot as u64 }\n",
        )]);
        assert!(sites(&w, &s, "set").shifts.is_empty(), "set-bit idiom is exempt");
        assert_eq!(sites(&w, &s, "pack").shifts.len(), 1);
    }

    #[test]
    fn growth_in_loops_is_recorded_with_directive_state() {
        let (w, s) = extract_for(&[(
            "crates/svc/src/lib.rs",
            "fn grow(xs: &[u32], out: &mut Vec<u32>) {\n\
             for &x in xs {\n\
             out.push(x);\n\
             }\n\
             }\n\
             fn sized(xs: &[u32], out: &mut Vec<u32>) {\n\
             for &x in xs {\n\
             // bound: sized — one entry per input element, |xs| bounded\n\
             out.push(x);\n\
             }\n\
             }\n\
             fn flat(out: &mut Vec<u32>) { out.push(1); }\n",
        )]);
        let g = &sites(&w, &s, "grow").growths;
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].sized, Directive::Absent);
        assert_eq!(sites(&w, &s, "sized").growths[0].sized, Directive::Justified);
        assert!(sites(&w, &s, "flat").growths.is_empty(), "no loop, no site");
    }

    #[test]
    fn divisions_detect_guards_and_clamps() {
        let (w, s) = extract_for(&[(
            "crates/svc/src/lib.rs",
            "fn bad(a: f64, b: f64) -> f64 { a / b }\n\
             fn guarded(a: f64, b: f64) -> f64 { if b <= 0.0 { return 0.0; } a / b }\n\
             fn clamped(a: f64, n: u32) -> f64 { a / n.max(1) as f64 }\n\
             fn literal(a: f64) -> f64 { a / 2.0 }\n",
        )]);
        assert_eq!(sites(&w, &s, "bad").divisions.len(), 1);
        assert!(sites(&w, &s, "guarded").divisions.is_empty(), "zero test guards");
        assert!(sites(&w, &s, "clamped").divisions.is_empty(), ".max(1) clamps");
        assert!(sites(&w, &s, "literal").divisions.is_empty(), "nonzero literal");
    }

    #[test]
    fn bare_directives_do_not_justify() {
        let (w, s) = extract_for(&[(
            "crates/svc/src/lib.rs",
            "fn bare(n: usize) -> u32 {\n\
             // bound: proven\n\
             n as u32\n\
             }\n\
             /// Narrows the id.\n\
             // bound: proven — n indexes a u32-keyed table\n\
             fn fn_level(n: usize) -> u32 { n as u32 }\n",
        )]);
        assert_eq!(sites(&w, &s, "bare").casts[0].proven, Directive::Unjustified);
        assert_eq!(sites(&w, &s, "fn_level").casts[0].proven, Directive::Justified);
    }

    #[test]
    fn axiom_files_are_skipped() {
        let (w, s) = extract_for(&[(
            "crates/index/src/packing.rs",
            "pub fn narrow(n: usize) -> u32 { n as u32 }\n",
        )]);
        assert!(sites(&w, &s, "narrow").casts.is_empty());
    }
}
