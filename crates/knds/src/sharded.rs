//! Sharded kNDS — the paper's MapReduce sketch, on threads.
//!
//! Section 6.1: "the queue size limit can be eliminated by implementing
//! kNDS as a MapReduce job. Each mapper would be responsible for one
//! iteration of the BFS traversal starting from one query node; reducers
//! would do the book-keeping and execute the distance calculation
//! algorithm." The practical single-machine shape partitions the
//! *collection* instead: each shard runs a complete kNDS over its slice of
//! the documents (map), and the per-shard top-k lists merge into a global
//! top-k (reduce). Because each shard's result is exact for its slice, the
//! merge is exact for the union — no coordination needed beyond the final
//! heap.
//!
//! Shards see disjoint document subsets through [`ShardView`], which
//! filters a shared [`IndexSource`] by `doc_id % shards` — no data is
//! copied, and the underlying source keeps serving all shards
//! concurrently.

use crate::config::KndsConfig;
use crate::engine::{Knds, QueryResult, RankedDoc};
use crate::metrics::QueryMetrics;
use crate::util::TopK;
use crate::workspace::KndsWorkspace;
use cbr_corpus::DocId;
use cbr_index::IndexSource;
use cbr_ontology::{ConceptId, Ontology};
use sched::sync::scope;

/// A modulo-partitioned view of a source: shard `i` of `n` sees exactly
/// the documents with `id % n == i`.
#[derive(Debug, Clone, Copy)]
pub struct ShardView<'a, S: IndexSource> {
    inner: &'a S,
    shard: u32,
    shards: u32,
}

impl<'a, S: IndexSource> ShardView<'a, S> {
    /// Creates shard `shard` of `shards` over `inner`.
    pub fn new(inner: &'a S, shard: u32, shards: u32) -> Self {
        assert!(shards > 0 && shard < shards, "shard {shard} of {shards} is invalid");
        ShardView { inner, shard, shards }
    }

    #[inline]
    fn mine(&self, d: DocId) -> bool {
        d.0 % self.shards == self.shard
    }
}

impl<S: IndexSource> IndexSource for ShardView<'_, S> {
    fn postings(&self, c: ConceptId, out: &mut Vec<DocId>) {
        let start = out.len();
        self.inner.postings(c, out);
        let mut keep = start;
        for i in start..out.len() {
            if self.mine(out[i]) {
                out.swap(keep, i);
                keep += 1;
            }
        }
        out.truncate(keep);
    }

    fn doc_concepts(&self, d: DocId, out: &mut Vec<ConceptId>) {
        debug_assert!(self.mine(d), "shard asked about a foreign document");
        self.inner.doc_concepts(d, out);
    }

    fn doc_len(&self, d: DocId) -> usize {
        self.inner.doc_len(d)
    }

    fn num_docs(&self) -> usize {
        // Ids are global; the shard filters by membership instead of
        // renumbering, so the exhaustive fallback iterates the full range
        // and skips foreign ids via `is_live`.
        self.inner.num_docs()
    }

    fn is_live(&self, d: DocId) -> bool {
        self.mine(d) && self.inner.is_live(d)
    }
}

/// Runs kNDS over `shards` disjoint partitions in parallel and merges the
/// per-shard top-k exactly. Metrics are summed across shards (durations
/// therefore reflect total work, not wall-clock).
pub fn rds_sharded<S: IndexSource + Sync>(
    ontology: &Ontology,
    source: &S,
    query: &[ConceptId],
    k: usize,
    config: &KndsConfig,
    shards: u32,
) -> QueryResult {
    run_sharded(ontology, source, query, k, config, shards, true)
}

/// Sharded SDS; see [`rds_sharded`].
pub fn sds_sharded<S: IndexSource + Sync>(
    ontology: &Ontology,
    source: &S,
    query_doc: &[ConceptId],
    k: usize,
    config: &KndsConfig,
    shards: u32,
) -> QueryResult {
    run_sharded(ontology, source, query_doc, k, config, shards, false)
}

fn run_sharded<S: IndexSource + Sync>(
    ontology: &Ontology,
    source: &S,
    query: &[ConceptId],
    k: usize,
    config: &KndsConfig,
    shards: u32,
    rds: bool,
) -> QueryResult {
    assert!(shards > 0, "at least one shard required");
    let partials: Vec<QueryResult> = scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|i| {
                scope.spawn(move || {
                    let view = ShardView::new(source, i, shards);
                    let engine = Knds::new(ontology, &view, config.clone());
                    // One workspace per worker thread: a shard that serves
                    // several queries in its lifetime reuses it (here one
                    // query per spawn, but the pattern matches `cbr-core`'s
                    // batch workers). Pre-size the dense tables so the
                    // query itself never grows them.
                    let mut ws = KndsWorkspace::new();
                    ws.reserve(ontology.len(), view.num_docs());
                    if rds {
                        engine.rds_with(&mut ws, query, k)
                    } else {
                        engine.sds_with(&mut ws, query, k)
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("shard thread")).collect()
    });

    // Reduce: exact top-k over the union of per-shard top-k lists.
    let mut heap = TopK::new(k);
    let mut metrics = QueryMetrics::default();
    for p in &partials {
        metrics.accumulate(&p.metrics);
        for r in &p.results {
            heap.offer(r.doc, r.distance);
        }
    }
    let results =
        heap.into_sorted().into_iter().map(|(doc, distance)| RankedDoc { doc, distance }).collect();
    QueryResult { results, metrics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbr_corpus::{CorpusGenerator, CorpusProfile};
    use cbr_index::MemorySource;
    use cbr_ontology::{GeneratorConfig, OntologyGenerator};

    fn setup() -> (Ontology, MemorySource, Vec<Vec<ConceptId>>) {
        let ont = OntologyGenerator::new(GeneratorConfig::small(700)).generate();
        let corpus = CorpusGenerator::new(
            &ont,
            CorpusProfile::radio_like().with_num_docs(90).with_mean_concepts(9.0),
        )
        .generate();
        let queries: Vec<Vec<ConceptId>> = corpus
            .documents()
            .filter(|d| d.num_concepts() >= 2)
            .take(5)
            .map(|d| d.concepts()[..2].to_vec())
            .collect();
        let source = MemorySource::build(&corpus, ont.len());
        (ont, source, queries)
    }

    #[test]
    fn shard_views_partition_the_collection() {
        let (_ont, source, _q) = setup();
        let shards = 4u32;
        let mut seen = std::collections::HashSet::new();
        for i in 0..shards {
            let view = ShardView::new(&source, i, shards);
            for d in 0..source.num_docs() as u32 {
                if view.is_live(DocId(d)) {
                    assert!(seen.insert(d), "doc {d} in two shards");
                }
            }
        }
        assert_eq!(seen.len(), source.num_docs(), "every doc in exactly one shard");
    }

    #[test]
    fn sharded_rds_matches_single_source() {
        let (ont, source, queries) = setup();
        let cfg = KndsConfig::default();
        let single = Knds::new(&ont, &source, cfg.clone());
        for (i, q) in queries.iter().enumerate() {
            let expect = single.rds(q, 5);
            for shards in [1u32, 2, 3, 7] {
                let got = rds_sharded(&ont, &source, q, 5, &cfg, shards);
                assert_eq!(got.results.len(), expect.results.len());
                for (a, b) in got.results.iter().zip(expect.results.iter()) {
                    assert_eq!(a.distance, b.distance, "query {i}, {shards} shards");
                }
            }
        }
    }

    #[test]
    fn sharded_sds_matches_single_source() {
        let (ont, source, queries) = setup();
        let cfg = KndsConfig::default();
        let single = Knds::new(&ont, &source, cfg.clone());
        let q = &queries[0];
        let expect = single.sds(q, 4);
        let got = sds_sharded(&ont, &source, q, 4, &cfg, 3);
        for (a, b) in got.results.iter().zip(expect.results.iter()) {
            assert!((a.distance - b.distance).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn bad_shard_index_panics() {
        let (_ont, source, _q) = setup();
        ShardView::new(&source, 3, 3);
    }
}
