//! Approximate call graph over the parsed workspace, plus the worklist
//! propagation framework the rules run on.
//!
//! Resolution is name- and receiver-type-based (see DESIGN.md §10):
//!
//! * `self.method(..)` resolves to the enclosing impl's method when one
//!   exists, falling back to every workspace method of that name;
//! * `Type::method(..)` resolves through the receiver type name;
//! * `path::to::f(..)` resolves by module-path suffix after
//!   normalizing `crate`/`self`/`super` and crate idents
//!   (`cbr_knds` → `knds`), falling back — for workspace-qualified
//!   paths — to a free fn of that name in the qualified crate and then
//!   anywhere in the workspace (crate roots re-export their
//!   submodules' functions, so the declared module rarely matches the
//!   spelled path);
//! * plain `f(..)` prefers the caller's module, then its crate, then
//!   any workspace free function of that name;
//! * `.method(..)` on a non-`self` receiver is conservative trait
//!   dispatch: every workspace method of that name becomes a target.
//!
//! A call that resolves to nothing is external (std/vendored); a call
//! is *workspace-internal* when it resolves, or when its path is
//! explicitly workspace-qualified but dangling. The resolution ratio
//! reported in `--json` is `resolved / internal`.

use crate::parser::{normalize_crate_ident, CallSite, Workspace};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Method names that collide with the standard library's collection /
/// iterator / smart-pointer vocabulary. A bare-receiver call like
/// `heap.push(x)` is overwhelmingly a `std` container method, so
/// dispatching it to every workspace method of the same name would
/// connect the hot path to effectively the whole workspace and drown
/// the flow rules in false chains. These names therefore resolve only
/// through typed receivers (`self.x()` inside an impl, `Type::x()`);
/// distinctive names keep the conservative everyone-with-this-name
/// dispatch. See DESIGN.md §10 for the precision/soundness trade.
const STD_VOCAB: [&str; 44] = [
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "len",
    "is_empty",
    "clear",
    "contains",
    "contains_key",
    "extend",
    "iter",
    "iter_mut",
    "next",
    "peek",
    "sort",
    "sort_by",
    "sort_unstable",
    "drain",
    "retain",
    "reserve",
    "truncate",
    "resize",
    "swap",
    "split_off",
    "entry",
    "keys",
    "values",
    "clone",
    "eq",
    "cmp",
    "hash",
    "fmt",
    "default",
    "as_ref",
    "as_mut",
    "write",
    "read",
    "take",
    "replace",
    "min",
    "max",
    "abs",
];

/// Aggregate call-graph statistics for the report.
#[derive(Debug, Default, Clone, Copy)]
pub struct GraphStats {
    /// Functions with bodies in the parsed workspace.
    pub functions: usize,
    /// Distinct caller→callee edges.
    pub edges: usize,
    /// Call sites seen (excluding macros).
    pub calls_total: usize,
    /// Call sites that are workspace-internal.
    pub calls_internal: usize,
    /// Workspace-internal call sites with at least one resolved target.
    pub calls_resolved: usize,
}

impl GraphStats {
    /// Fraction of workspace-internal calls that resolved (1.0 when
    /// there are none).
    pub fn resolution(&self) -> f64 {
        if self.calls_internal == 0 {
            1.0
        } else {
            self.calls_resolved as f64 / self.calls_internal as f64
        }
    }
}

/// The workspace crate-dependency relation, derived from manifests.
/// Resolution candidates must respect it: a call in crate A can only
/// target crate B when A's manifest (dev-)depends on B. An empty map
/// (fixture trees, unit tests) is fully permissive.
#[derive(Debug, Default, Clone)]
pub struct CrateDeps {
    /// Normalized crate name → normalized names of its dependencies.
    pub deps: HashMap<String, BTreeSet<String>>,
}

impl CrateDeps {
    /// Whether a call in `caller` may resolve into `callee`.
    pub fn allows(&self, caller: &str, callee: &str) -> bool {
        if caller == callee || self.deps.is_empty() {
            return true;
        }
        match self.deps.get(caller) {
            Some(ds) => ds.contains(callee),
            None => true, // unknown crate (e.g. stray file): stay permissive
        }
    }
}

/// The resolved call graph.
#[derive(Debug)]
pub struct Graph {
    /// All caller→callee edges, deduplicated, indexed by fn id.
    pub edges: Vec<Vec<usize>>,
    /// Edges excluding call sites in `#[cfg(test)]` or
    /// `#[cfg(debug_assertions)]` regions — the release hot path.
    pub release_edges: Vec<Vec<usize>>,
    /// Per fn, per call site (aligned with `fns[id].calls`): resolved
    /// target fn ids (empty = external or dangling).
    pub targets: Vec<Vec<Vec<usize>>>,
    /// Aggregate statistics.
    pub stats: GraphStats,
}

impl Graph {
    /// Builds the graph for a parsed workspace, constraining resolution
    /// to the crate-dependency relation.
    pub fn build(ws: &Workspace, deps: &CrateDeps) -> Graph {
        let mut free_by_mod: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
        let mut free_by_crate: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
        let mut free_by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut method_by_ty: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
        let mut method_by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut crates: BTreeSet<&str> = BTreeSet::new();
        for (id, f) in ws.fns.iter().enumerate() {
            crates.insert(ws.crate_of(id));
            match &f.self_ty {
                Some(ty) => {
                    method_by_ty.entry((ty, &f.name)).or_default().push(id);
                    method_by_name.entry(&f.name).or_default().push(id);
                }
                None => {
                    free_by_mod.entry((&f.module, &f.name)).or_default().push(id);
                    free_by_crate.entry((ws.crate_of(id), &f.name)).or_default().push(id);
                    free_by_name.entry(&f.name).or_default().push(id);
                }
            }
        }

        let mut stats = GraphStats { functions: ws.fns.len(), ..GraphStats::default() };
        let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); ws.fns.len()];
        let mut release_edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); ws.fns.len()];
        let mut targets: Vec<Vec<Vec<usize>>> = Vec::with_capacity(ws.fns.len());

        for (id, f) in ws.fns.iter().enumerate() {
            let file = &ws.files[f.file];
            let mut per_call = Vec::with_capacity(f.calls.len());
            for call in &f.calls {
                stats.calls_total += 1;
                let (mut resolved, explicit_internal) = resolve(
                    ws,
                    id,
                    call,
                    &free_by_mod,
                    &free_by_crate,
                    &free_by_name,
                    &method_by_ty,
                    &method_by_name,
                    &crates,
                );
                let caller_crate = ws.crate_of(id).to_string();
                resolved.retain(|&t| deps.allows(&caller_crate, ws.crate_of(t)));
                if !resolved.is_empty() {
                    stats.calls_internal += 1;
                    stats.calls_resolved += 1;
                } else if explicit_internal {
                    stats.calls_internal += 1;
                }
                let hot_site = !file.is_test(call.at) && !file.is_debug_gated(call.at);
                for &t in &resolved {
                    edges[id].insert(t);
                    if hot_site {
                        release_edges[id].insert(t);
                    }
                }
                per_call.push(resolved);
            }
            targets.push(per_call);
        }

        let edges: Vec<Vec<usize>> = edges.into_iter().map(|s| s.into_iter().collect()).collect();
        let release_edges: Vec<Vec<usize>> =
            release_edges.into_iter().map(|s| s.into_iter().collect()).collect();
        stats.edges = edges.iter().map(Vec::len).sum();
        Graph { edges, release_edges, targets, stats }
    }
}

/// Resolves one call site. Returns the target fn ids and whether the
/// call is explicitly workspace-qualified even if dangling.
#[allow(clippy::too_many_arguments)]
fn resolve(
    ws: &Workspace,
    caller: usize,
    call: &CallSite,
    free_by_mod: &HashMap<(&str, &str), Vec<usize>>,
    free_by_crate: &HashMap<(&str, &str), Vec<usize>>,
    free_by_name: &HashMap<&str, Vec<usize>>,
    method_by_ty: &HashMap<(&str, &str), Vec<usize>>,
    method_by_name: &HashMap<&str, Vec<usize>>,
    crates: &BTreeSet<&str>,
) -> (Vec<usize>, bool) {
    let f = &ws.fns[caller];
    let name = call.name.as_str();
    if call.method {
        if call.recv_self {
            if let Some(ty) = &f.self_ty {
                if let Some(ids) = method_by_ty.get(&(ty.as_str(), name)) {
                    return (ids.clone(), true);
                }
            }
        }
        // Conservative trait dispatch: every workspace method of this
        // name — except std-vocabulary names, which stay typed-only.
        if STD_VOCAB.contains(&name) {
            return (Vec::new(), false);
        }
        return (method_by_name.get(name).cloned().unwrap_or_default(), false);
    }
    if call.path.is_empty() {
        if let Some(ids) = free_by_mod.get(&(f.module.as_str(), name)) {
            return (ids.clone(), true);
        }
        if let Some(ids) = free_by_crate.get(&(ws.crate_of(caller), name)) {
            return (ids.clone(), true);
        }
        return (free_by_name.get(name).cloned().unwrap_or_default(), false);
    }

    // Path-qualified: normalize the leading segment.
    let mut segs: Vec<String> = call.path.clone();
    let explicit = matches!(segs[0].as_str(), "crate" | "self" | "super")
        || crates.contains(normalize_crate_ident(&segs[0]).as_str());
    let caller_crate = ws.crate_of(caller).to_string();
    match segs[0].as_str() {
        "crate" => segs[0] = caller_crate,
        "self" => {
            let tail = segs.split_off(1);
            segs = f.module.split("::").map(str::to_string).collect();
            segs.extend(tail);
        }
        "super" => {
            let tail = segs.split_off(1);
            segs = f.module.split("::").map(str::to_string).collect();
            segs.pop();
            segs.extend(tail);
        }
        _ => segs[0] = normalize_crate_ident(&segs[0]),
    }

    let last = segs.last().map(String::as_str).unwrap_or("");
    if last.starts_with(char::is_uppercase) {
        // `Type::assoc(..)` (or `Self::assoc(..)`).
        let ty = if last == "Self" { f.self_ty.clone().unwrap_or_default() } else { last.into() };
        if let Some(ids) = method_by_ty.get(&(ty.as_str(), name)) {
            return (ids.clone(), true);
        }
        // A std-vocabulary assoc call on a type with no workspace impl
        // (`FxHashSet::default(..)`, `Arc::clone(..)`) is std surface
        // behind an alias or re-export, not a dangling workspace call.
        if STD_VOCAB.contains(&name) {
            return (Vec::new(), false);
        }
        // Unresolved `Type::x(` is usually a std type or enum-variant
        // constructor; count as internal only when crate-qualified.
        return (Vec::new(), explicit && segs.len() > 1);
    }

    let path = segs.join("::");
    let suffix = format!("::{path}");
    let ids: Vec<usize> = free_by_name
        .get(name)
        .map(|cands| {
            cands
                .iter()
                .copied()
                .filter(|&t| {
                    let m = &ws.fns[t].module;
                    *m == path || m.ends_with(&suffix)
                })
                .collect()
        })
        .unwrap_or_default();
    if ids.is_empty() && explicit {
        // Re-export-aware fallbacks: crate roots `pub use` functions out
        // of their submodules, so `cbr_corpus::normalize_concepts` is
        // declared under `corpus::generator` and the module-suffix match
        // above misses it. Prefer a free fn of that name in the
        // qualified crate, then any workspace free fn of that name
        // (re-exports across crates, e.g. `cbr_audit::workspace_root`
        // forwarding to `cbr_flow`'s).
        if crates.contains(segs[0].as_str()) {
            if let Some(ids) = free_by_crate.get(&(segs[0].as_str(), name)) {
                return (ids.clone(), true);
            }
        }
        if let Some(ids) = free_by_name.get(name).filter(|ids| !ids.is_empty()) {
            return (ids.clone(), true);
        }
        // An uppercase callee that resolved nowhere is a tuple-struct or
        // enum-variant constructor (`cbr_corpus::DocId(3)`), not a call.
        if name.starts_with(char::is_uppercase) {
            return (Vec::new(), false);
        }
    }
    (ids, explicit)
}

/// Result of a worklist propagation: which functions were reached and
/// through which first-discovery parent (for witness chains).
#[derive(Debug)]
pub struct Reach {
    parent: Vec<Option<usize>>,
    seed: Vec<bool>,
}

impl Reach {
    /// Whether `id` is a seed or reachable from one.
    pub fn reached(&self, id: usize) -> bool {
        self.seed[id] || self.parent[id].is_some()
    }

    /// Renders the witness call chain from the discovering seed to
    /// `id` (`root → a → b`), capped to keep messages readable.
    pub fn chain(&self, ws: &Workspace, id: usize) -> String {
        let mut hops = vec![id];
        let mut cur = id;
        while let Some(p) = self.parent[cur] {
            hops.push(p);
            cur = p;
        }
        hops.reverse();
        let names: Vec<String> = hops
            .iter()
            .enumerate()
            .map(|(i, &h)| if i == 0 { ws.display(h) } else { ws.fns[h].name.clone() })
            .collect();
        if names.len() > 6 {
            format!("{} → … → {}", names[..3].join(" → "), names[names.len() - 2..].join(" → "))
        } else {
            names.join(" → ")
        }
    }
}

/// Worklist propagation: breadth-first reachability from `seeds` over
/// `edges`, recording each function's first-discovery parent.
pub fn propagate(edges: &[Vec<usize>], seeds: &[usize]) -> Reach {
    let mut parent = vec![None; edges.len()];
    let mut seed = vec![false; edges.len()];
    let mut work: VecDeque<usize> = VecDeque::new();
    for &s in seeds {
        if !seed[s] {
            seed[s] = true;
            work.push_back(s);
        }
    }
    while let Some(u) = work.pop_front() {
        for &v in &edges[u] {
            if !seed[v] && parent[v].is_none() {
                parent[v] = Some(u);
                work.push_back(v);
            }
        }
    }
    Reach { parent, seed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::SourceFile;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::parse(files.iter().map(|(rel, text)| SourceFile::parse(rel, text)).collect())
    }

    fn id(ws: &Workspace, name: &str) -> usize {
        ws.fns.iter().position(|f| f.name == name).unwrap()
    }

    #[test]
    fn plain_calls_prefer_module_then_crate_then_workspace() {
        let w = ws(&[
            ("crates/knds/src/engine.rs", "pub fn go() { helper(); }\nfn helper() {}\n"),
            ("crates/knds/src/util.rs", "pub fn cross() { shared(); }\n"),
            ("crates/knds/src/misc.rs", "pub fn shared() {}\n"),
            ("crates/core/src/lib.rs", "pub fn far() { distant(); }\n"),
            ("crates/dradix/src/lib.rs", "pub fn distant() {}\n"),
        ]);
        let g = Graph::build(&w, &CrateDeps::default());
        assert_eq!(g.edges[id(&w, "go")], [id(&w, "helper")]);
        assert_eq!(g.edges[id(&w, "cross")], [id(&w, "shared")], "crate-level fallback");
        assert_eq!(g.edges[id(&w, "far")], [id(&w, "distant")], "workspace-level fallback");
    }

    #[test]
    fn self_and_type_qualified_methods_resolve_by_receiver_type() {
        let w = ws(&[(
            "crates/knds/src/engine.rs",
            "pub struct Knds;\nimpl Knds {\n    pub fn rds(&self) { self.run(); }\n    \
             fn run(&self) {}\n}\n\
             pub struct Other;\nimpl Other {\n    fn run(&self) {}\n}\n\
             fn make() { Knds::rds(&Knds); }\n",
        )]);
        let g = Graph::build(&w, &CrateDeps::default());
        let rds = id(&w, "rds");
        assert_eq!(g.edges[rds].len(), 1, "self.run() resolves to the enclosing impl only");
        assert_eq!(w.fns[g.edges[rds][0]].self_ty.as_deref(), Some("Knds"));
        assert_eq!(g.edges[id(&w, "make")], [rds], "Type::method resolves");
    }

    #[test]
    fn non_self_method_calls_are_conservative() {
        let w = ws(&[(
            "crates/knds/src/x.rs",
            "pub struct A;\nimpl A {\n    fn probe(&self) {}\n}\n\
             pub struct B;\nimpl B {\n    fn probe(&self) {}\n}\n\
             fn f(v: &A) { v.probe(); }\n",
        )]);
        let g = Graph::build(&w, &CrateDeps::default());
        assert_eq!(g.edges[id(&w, "f")].len(), 2, "both probe methods are targets");
    }

    #[test]
    fn crate_and_cbr_qualified_paths_resolve_across_crates() {
        let w = ws(&[
            (
                "crates/core/src/engine.rs",
                "pub fn a() { crate::service::spawn(); }\n\
                 pub fn b() { cbr_knds::util::norm(); }\n",
            ),
            ("crates/core/src/service.rs", "pub fn spawn() {}\n"),
            ("crates/knds/src/util.rs", "pub fn norm() {}\n"),
        ]);
        let g = Graph::build(&w, &CrateDeps::default());
        assert_eq!(g.edges[id(&w, "a")], [id(&w, "spawn")]);
        assert_eq!(g.edges[id(&w, "b")], [id(&w, "norm")]);
        assert_eq!(g.stats.calls_internal, 2);
        assert_eq!(g.stats.calls_resolved, 2);
        assert!((g.stats.resolution() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn external_calls_do_not_dent_resolution() {
        let w = ws(&[(
            "crates/core/src/x.rs",
            "fn f(v: Vec<u32>) { drop(v); std::mem::take(&mut 1); }\n",
        )]);
        let g = Graph::build(&w, &CrateDeps::default());
        assert_eq!(g.stats.calls_total, 2);
        assert_eq!(g.stats.calls_internal, 0);
        assert!((g.stats.resolution() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn crate_qualified_reexports_resolve_by_name_fallback() {
        // `normalize` is declared in corpus::generator but called through
        // the crate root (`cbr_corpus::normalize`), the idiomatic
        // re-export spelling; `shared_root` is re-exported across crates.
        let w = ws(&[
            (
                "crates/core/src/x.rs",
                "pub fn a() { cbr_corpus::normalize(1); }\n\
                 pub fn b() { cbr_audit::shared_root(); }\n",
            ),
            ("crates/corpus/src/generator.rs", "pub fn normalize(_x: u32) {}\n"),
            ("crates/flow/src/lib.rs", "pub fn shared_root() {}\n"),
            ("crates/audit/src/lib.rs", "pub fn unrelated() {}\n"),
        ]);
        let g = Graph::build(&w, &CrateDeps::default());
        assert_eq!(g.edges[id(&w, "a")], [id(&w, "normalize")], "crate-level re-export");
        assert_eq!(g.edges[id(&w, "b")], [id(&w, "shared_root")], "cross-crate re-export");
        assert_eq!(g.stats.calls_resolved, 2);
    }

    #[test]
    fn constructors_and_aliased_assoc_calls_are_external() {
        let w = ws(&[(
            "crates/core/src/x.rs",
            "fn f() { let d = cbr_corpus::DocId(3); drop(d); }\n\
             fn g() { let s = cbr_ontology::FxHashSet::default(); drop(s); }\n",
        )]);
        let g = Graph::build(&w, &CrateDeps::default());
        assert_eq!(g.stats.calls_total, 4, "DocId + default + drop x2");
        assert_eq!(g.stats.calls_internal, 0, "ctor and aliased assoc call are std surface");
        assert!((g.stats.resolution() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dangling_workspace_path_counts_against_resolution() {
        let w = ws(&[("crates/core/src/x.rs", "fn f() { crate::gone::missing(); }\n")]);
        let g = Graph::build(&w, &CrateDeps::default());
        assert_eq!(g.stats.calls_internal, 1);
        assert_eq!(g.stats.calls_resolved, 0);
        assert!(g.stats.resolution() < 0.5);
    }

    #[test]
    fn debug_gated_calls_stay_out_of_release_edges() {
        let w = ws(&[(
            "crates/dradix/src/dag.rs",
            "fn build() {\n    hot();\n    #[cfg(debug_assertions)]\n    {\n        validate();\n    }\n}\n\
             fn hot() {}\nfn validate() {}\n",
        )]);
        let g = Graph::build(&w, &CrateDeps::default());
        let b = id(&w, "build");
        assert_eq!(g.edges[b].len(), 2);
        assert_eq!(g.release_edges[b], [id(&w, "hot")]);
    }

    #[test]
    fn propagation_reaches_transitively_with_witness_chains() {
        let w = ws(&[(
            "crates/knds/src/engine.rs",
            "pub fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn orphan() {}\n",
        )]);
        let g = Graph::build(&w, &CrateDeps::default());
        let r = propagate(&g.edges, &[id(&w, "root")]);
        assert!(r.reached(id(&w, "leaf")));
        assert!(!r.reached(id(&w, "orphan")));
        assert_eq!(r.chain(&w, id(&w, "leaf")), "knds::engine::root → mid → leaf");
    }
}
