//! Seeded-violation fixture: weighted entry points with sized-table
//! capacity violations (C04) and desynced counter hooks (C05).

/// Root `knds::weighted::rds_with`. Seeded C04 (a justified sized site
/// whose receiver has no symbolic capacity) and C05 (a counter-marked
/// loop with no matching bump call).
pub fn rds_with(docs: &[u32], out: &mut Vec<u32>) -> u32 {
    let mut acc = 0;
    for &d in docs {
        // bound: sized — one staged row per probed document
        out.push(d);
    }
    // cplx: counter probes
    for &d in docs {
        acc += d;
    }
    acc
}

/// Root `knds::weighted::sds_with`. Seeded C04 (a `depth`-sized table
/// filled by an `O(D)` nest) and C05 (a bump call with no counter
/// marker on any enclosing loop).
pub fn sds_with(docs: &[u32], comps: &mut Vec<u32>) -> u32 {
    let mut acc = 0;
    for &d in docs {
        // bound: sized — one component per radix level
        comps.push(d);
    }
    for &d in docs {
        bump_scans();
        acc += d;
    }
    acc
}

fn bump_scans() {}
