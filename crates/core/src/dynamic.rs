//! Dynamic index source: base indexes plus an append overlay.
//!
//! A key property the paper claims over the TA baseline (Section 1): "our
//! algorithm can integrate new documents into its computation on-the-fly;
//! i.e., when a new patient arrives at the point-of-care, we can instantly
//! add his or her EMR to our database. In contrast, TA would have to
//! update every concept inverted index with the distance from the newly
//! added EMR." [`DynamicSource`] realizes that property: a CSR
//! [`MemorySource`] for the bulk-loaded collection plus hash-map overlays
//! for appended documents. Appends are `O(|concepts|)`; queries see the
//! union immediately.
//!
//! The serving engine now runs on the segmented, epoch-published
//! [`SegmentedSource`](cbr_index::SegmentedSource) instead; this
//! monolithic source remains as the *reference implementation* the
//! equivalence proptests compare against (`tests/segmented_equiv.rs`):
//! arbitrary append/delete/compact interleavings must yield bit-identical
//! query results on both.

use cbr_corpus::DocId;
use cbr_index::{IndexSource, MemorySource};
use cbr_ontology::{ConceptId, FxHashMap};

/// A [`MemorySource`] with an append-only overlay and deletion tombstones.
#[derive(Debug)]
pub struct DynamicSource {
    base: MemorySource,
    base_docs: usize,
    /// Concept → appended documents containing it.
    overlay_postings: FxHashMap<ConceptId, Vec<DocId>>,
    /// Appended documents' concept sets, dense from `base_docs`.
    overlay_docs: Vec<Box<[ConceptId]>>,
    /// Deleted documents (ids stay allocated; readers skip them).
    tombstones: cbr_ontology::FxHashSet<DocId>,
}

impl DynamicSource {
    /// Wraps a bulk-loaded source.
    pub fn new(base: MemorySource) -> DynamicSource {
        let base_docs = base.num_docs();
        DynamicSource {
            base,
            base_docs,
            overlay_postings: FxHashMap::default(),
            overlay_docs: Vec::new(),
            tombstones: cbr_ontology::FxHashSet::default(),
        }
    }

    /// Appends a document's concept set (normalized to sorted-set form),
    /// returning its new id. `O(|concepts|)` — no index rebuild.
    pub fn append(&mut self, mut concepts: Vec<ConceptId>) -> DocId {
        cbr_corpus::normalize_concepts(&mut concepts);
        let id = DocId::from_index(self.base_docs + self.overlay_docs.len());
        for &c in &concepts {
            self.overlay_postings.entry(c).or_default().push(id);
        }
        self.overlay_docs.push(concepts.into_boxed_slice());
        id
    }

    /// Number of appended (non-bulk) documents.
    pub fn appended(&self) -> usize {
        self.overlay_docs.len()
    }

    /// Marks a document deleted. Its id stays allocated (so other ids are
    /// stable) but it disappears from postings and from query results.
    /// Returns whether the document existed and was live.
    pub fn delete(&mut self, d: DocId) -> bool {
        if d.index() >= self.num_docs() {
            return false;
        }
        self.tombstones.insert(d)
    }

    /// Number of deleted documents.
    pub fn deleted(&self) -> usize {
        self.tombstones.len()
    }

    /// The wrapped bulk source.
    pub fn base(&self) -> &MemorySource {
        &self.base
    }
}

impl IndexSource for DynamicSource {
    fn postings(&self, c: ConceptId, out: &mut Vec<DocId>) {
        let start = out.len();
        self.base.postings(c, out);
        if let Some(extra) = self.overlay_postings.get(&c) {
            out.extend_from_slice(extra);
        }
        if !self.tombstones.is_empty() {
            let tombstones = &self.tombstones;
            let mut keep = start;
            for i in start..out.len() {
                if !tombstones.contains(&out[i]) {
                    out.swap(keep, i);
                    keep += 1;
                }
            }
            out.truncate(keep);
        }
    }

    fn doc_concepts(&self, d: DocId, out: &mut Vec<ConceptId>) {
        if d.index() < self.base_docs {
            self.base.doc_concepts(d, out);
        } else {
            out.extend_from_slice(&self.overlay_docs[d.index() - self.base_docs]);
        }
    }

    fn doc_len(&self, d: DocId) -> usize {
        if d.index() < self.base_docs {
            self.base.doc_len(d)
        } else {
            self.overlay_docs[d.index() - self.base_docs].len()
        }
    }

    fn num_docs(&self) -> usize {
        self.base_docs + self.overlay_docs.len()
    }

    fn is_live(&self, d: DocId) -> bool {
        !self.tombstones.contains(&d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbr_corpus::Corpus;

    fn c(v: u32) -> ConceptId {
        ConceptId(v)
    }

    fn base() -> MemorySource {
        let corpus = Corpus::from_concept_sets(vec![(vec![c(1), c(2)], 0), (vec![c(2)], 0)]);
        MemorySource::build(&corpus, 6)
    }

    #[test]
    fn append_assigns_dense_ids() {
        let mut s = DynamicSource::new(base());
        assert_eq!(s.num_docs(), 2);
        let id = s.append(vec![c(3), c(1)]);
        assert_eq!(id, DocId(2));
        assert_eq!(s.num_docs(), 3);
        assert_eq!(s.appended(), 1);
    }

    #[test]
    fn postings_merge_base_and_overlay() {
        let mut s = DynamicSource::new(base());
        s.append(vec![c(1)]);
        let mut out = Vec::new();
        s.postings(c(1), &mut out);
        assert_eq!(out, vec![DocId(0), DocId(2)]);
        out.clear();
        s.postings(c(3), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn delete_removes_from_postings_and_liveness() {
        let mut s = DynamicSource::new(base());
        let extra = s.append(vec![c(2)]);
        assert!(s.delete(DocId(0)));
        assert!(!s.delete(DocId(0)), "double delete reports false");
        assert!(!s.delete(DocId(99)), "unknown id reports false");
        assert_eq!(s.deleted(), 1);
        assert!(!s.is_live(DocId(0)));
        assert!(s.is_live(extra));

        let mut out = Vec::new();
        s.postings(c(2), &mut out);
        assert_eq!(out, vec![DocId(1), extra], "doc 0 is tombstoned");
        // Order of survivors is preserved (swap-compaction keeps relative
        // order here because removals only shift later items forward).
        out.clear();
        s.postings(c(1), &mut out);
        assert!(out.is_empty() || out.iter().all(|&d| d != DocId(0)));
    }

    #[test]
    fn forward_reads_overlay_docs() {
        let mut s = DynamicSource::new(base());
        s.append(vec![c(5), c(3), c(5)]);
        let mut out = Vec::new();
        s.doc_concepts(DocId(2), &mut out);
        assert_eq!(out, vec![c(3), c(5)], "sorted and deduplicated");
        assert_eq!(s.doc_len(DocId(2)), 2);
        assert_eq!(s.doc_len(DocId(0)), 2);
    }
}
