//! Reproduction harness: regenerates every table and figure of the
//! paper's evaluation (Section 6) over the synthetic MIMIC/SNOMED
//! substitutes.
//!
//! ```sh
//! cargo run --release -p cbr-bench --bin repro -- all
//! cargo run --release -p cbr-bench --bin repro -- fig9 --scale micro
//! ```
//!
//! Subcommands: `ontology`, `table3`, `fig6`, `fig7`, `fig8`, `fig9`,
//! `ablation`, `phases`, `all`. Flags: `--scale micro|small|paper`,
//! `--queries <n>`.
//!
//! `--json [--label <name>]` runs the kNDS perf-trajectory workloads
//! (`fig8_query_size`, `fig9_topk`) instead of a report and appends the
//! measurements to `BENCH_knds.json` in the current directory, computing
//! per-figure speedups against the first recorded run. `--json --smoke`
//! is the CI variant: micro scale, prints the run to stdout, re-parses
//! its own output, and writes nothing.
//!
//! Absolute times are not comparable to the paper (different hardware,
//! language, and data scale); the *shapes* — who wins, growth rates,
//! where optima sit — are the reproduction target and are annotated on
//! each report. EXPERIMENTS.md records a full run.

#![forbid(unsafe_code)]

use cbr_bench::json::Json;
use cbr_bench::trajectory::TrajectorySpec;
use cbr_bench::{fmt_duration, Scale, Table, Timing, Workbench};
use cbr_corpus::CorpusStats;
use cbr_dradix::{brute, Drc};
use cbr_knds::{baseline, ta, Knds, KndsConfig, KndsWorkspace, QueryMetrics};
use cbr_ontology::{ConceptId, OntologyStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// The schema of the trajectory file `--json` maintains (relative to the
/// working directory; `scripts/check.sh` runs from the repository root).
/// `BENCH_scale.json` (the `scale` binary) shares the same format through
/// the same [`TrajectorySpec`] machinery.
const TRAJECTORY: TrajectorySpec = TrajectorySpec {
    file: "BENCH_knds.json",
    bench: "knds",
    figures: &["fig8_query_size", "fig9_topk"],
    key_fields: &["collection", "kind", "nq", "k"],
    measure_fields: &["median_ns", "qps", "workspace_bytes", "table_bytes"],
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut scale = Scale::small();
    let mut queries_override = None;
    let mut json = false;
    let mut smoke = false;
    let mut label = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(|s| s.as_str()) {
                    Some("micro") => Scale::micro(),
                    Some("small") => Scale::small(),
                    Some("paper") => Scale::paper(),
                    other => {
                        eprintln!("unknown scale {other:?} (micro|small|paper)");
                        std::process::exit(2);
                    }
                };
            }
            "--queries" => {
                i += 1;
                queries_override = args.get(i).and_then(|s| s.parse::<usize>().ok());
            }
            "--json" => json = true,
            "--smoke" => smoke = true,
            "--label" => {
                i += 1;
                label = args.get(i).cloned();
            }
            cmd if command.is_none() => command = Some(cmd.to_string()),
            other => {
                eprintln!("unexpected argument {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if smoke && !json {
        eprintln!("--smoke requires --json");
        std::process::exit(2);
    }
    if smoke {
        // CI smoke: smallest workbench, a couple of queries per point.
        scale = Scale::micro();
        scale.queries_per_point = 2;
    }
    if let Some(q) = queries_override {
        scale.queries_per_point = q;
    }
    let command = command.unwrap_or_else(|| "all".to_string());

    eprintln!(
        "building workbench (ontology {} concepts, PATIENT {}×{:.0}, RADIO {}×{:.0}, {} queries/point) …",
        scale.ontology_concepts,
        scale.patient_docs,
        scale.patient_concepts,
        scale.radio_docs,
        scale.radio_concepts,
        scale.queries_per_point
    );
    let t = Instant::now();
    let wb = Workbench::build(scale);
    eprintln!("workbench ready in {:.1?}\n", t.elapsed());

    if json {
        trajectory(&wb, label.as_deref(), smoke);
        return;
    }

    match command.as_str() {
        "ontology" => ontology_report(&wb),
        "table3" => table3(&wb),
        "fig6" => fig6(&wb),
        "fig7" => fig7(&wb),
        "fig8" => fig8(&wb),
        "fig9" => fig9(&wb),
        "ablation" => ablation(&wb),
        "effectiveness" => effectiveness(&wb),
        "phases" => phases(&wb),
        "all" => {
            ontology_report(&wb);
            table3(&wb);
            fig6(&wb);
            fig7(&wb);
            fig8(&wb);
            fig9(&wb);
            ablation(&wb);
            effectiveness(&wb);
        }
        other => {
            eprintln!("unknown command {other:?}");
            std::process::exit(2);
        }
    }
}

// ---------------------------------------------------------------------------
// Workload runners
// ---------------------------------------------------------------------------

fn run_knds_rds(
    wb: &Workbench,
    coll: &cbr_bench::Collection,
    queries: &[Vec<ConceptId>],
    k: usize,
    eps: f64,
) -> Timing {
    let cfg = KndsConfig::default().with_error_threshold(eps);
    let engine = Knds::new(&wb.ontology, &coll.source, cfg);
    let metrics: Vec<QueryMetrics> = queries.iter().map(|q| engine.rds(q, k).metrics).collect();
    Timing::from_metrics(&metrics, k)
}

fn run_knds_sds(
    wb: &Workbench,
    coll: &cbr_bench::Collection,
    queries: &[Vec<ConceptId>],
    k: usize,
    eps: f64,
) -> Timing {
    let cfg = KndsConfig::default().with_error_threshold(eps);
    let engine = Knds::new(&wb.ontology, &coll.source, cfg);
    let metrics: Vec<QueryMetrics> = queries.iter().map(|q| engine.sds(q, k).metrics).collect();
    Timing::from_metrics(&metrics, k)
}

fn run_baseline_rds(
    wb: &Workbench,
    coll: &cbr_bench::Collection,
    queries: &[Vec<ConceptId>],
    k: usize,
) -> Timing {
    let metrics: Vec<QueryMetrics> =
        queries.iter().map(|q| baseline::rds(&wb.ontology, &coll.source, q, k).metrics).collect();
    Timing::from_metrics(&metrics, k)
}

fn run_baseline_sds(
    wb: &Workbench,
    coll: &cbr_bench::Collection,
    queries: &[Vec<ConceptId>],
    k: usize,
) -> Timing {
    let metrics: Vec<QueryMetrics> =
        queries.iter().map(|q| baseline::sds(&wb.ontology, &coll.source, q, k).metrics).collect();
    Timing::from_metrics(&metrics, k)
}

// ---------------------------------------------------------------------------
// Machine-readable perf trajectory (--json)
// ---------------------------------------------------------------------------

/// Measures one trajectory point: warm-workspace kNDS over `queries`.
/// One uncounted warm-up query fills the workspace capacities so the
/// numbers reflect the steady state the service path runs in.
fn trajectory_point(
    wb: &Workbench,
    coll: &cbr_bench::Collection,
    kind: &str,
    queries: &[Vec<ConceptId>],
    nq: usize,
    k: usize,
    eps: f64,
) -> Json {
    let cfg = KndsConfig::default().with_error_threshold(eps);
    let engine = Knds::new(&wb.ontology, &coll.source, cfg);
    let mut ws = KndsWorkspace::new();
    let run = |ws: &mut KndsWorkspace, q: &Vec<ConceptId>| match kind {
        "RDS" => engine.rds_with(ws, q, k),
        _ => engine.sds_with(ws, q, k),
    };
    if let Some(q) = queries.first() {
        let warm = run(&mut ws, q);
        debug_assert!(warm.results.len() <= k, "warm-up returned more than k results");
    }
    let metrics: Vec<QueryMetrics> = queries.iter().map(|q| run(&mut ws, q).metrics).collect();
    let timing = Timing::from_metrics(&metrics, k);
    let total: Duration = metrics.iter().map(|m| m.total()).sum();
    let qps = metrics.len() as f64 / total.as_secs_f64().max(1e-12);
    let workspace_bytes = metrics.iter().map(|m| m.workspace_bytes).max().unwrap_or(0);
    let table_bytes = metrics.iter().map(|m| m.table_bytes).max().unwrap_or(0);
    Json::Obj(vec![
        ("collection".into(), Json::Str(coll.name.into())),
        ("kind".into(), Json::Str(kind.into())),
        ("nq".into(), Json::Num(nq as f64)),
        ("k".into(), Json::Num(k as f64)),
        ("median_ns".into(), Json::Num(timing.p50.as_nanos() as f64)),
        ("p95_ns".into(), Json::Num(timing.p95.as_nanos() as f64)),
        ("qps".into(), Json::Num(qps)),
        ("workspace_bytes".into(), Json::Num(workspace_bytes as f64)),
        ("table_bytes".into(), Json::Num(table_bytes as f64)),
    ])
}

/// Runs the two trajectory figures and packages them as one run object.
fn trajectory_run(wb: &Workbench, label: &str) -> Json {
    let k_default = 10;
    let nq_default = 5;
    let mut fig8 = Vec::new();
    for coll in &wb.collections {
        for nq in [1usize, 3, 5, 10] {
            eprintln!("fig8_query_size: {} RDS nq = {nq} …", coll.name);
            let queries = coll.rds_queries(wb.scale.queries_per_point, nq, wb.scale.seed ^ 0x80);
            fig8.push(trajectory_point(wb, coll, "RDS", &queries, nq, k_default, coll.default_eps));
        }
    }
    let mut fig9 = Vec::new();
    for coll in &wb.collections {
        for kind in ["RDS", "SDS"] {
            eprintln!("fig9_topk: {} {kind} k sweep …", coll.name);
            let queries = match kind {
                "RDS" => {
                    coll.rds_queries(wb.scale.queries_per_point, nq_default, wb.scale.seed ^ 0x90)
                }
                _ => coll.sds_queries(wb.scale.queries_per_point, wb.scale.seed ^ 0x91),
            };
            for k in [3usize, 5, 10, 50, 100] {
                fig9.push(trajectory_point(
                    wb,
                    coll,
                    kind,
                    &queries,
                    nq_default,
                    k,
                    coll.default_eps,
                ));
            }
        }
    }
    Json::Obj(vec![
        ("label".into(), Json::Str(label.into())),
        ("ontology_concepts".into(), Json::Num(wb.scale.ontology_concepts as f64)),
        ("queries_per_point".into(), Json::Num(wb.scale.queries_per_point as f64)),
        (
            "figures".into(),
            Json::Obj(vec![
                ("fig8_query_size".into(), Json::Arr(fig8)),
                ("fig9_topk".into(), Json::Arr(fig9)),
            ]),
        ),
    ])
}

/// `--json` driver: measure, self-validate, and either print (smoke) or
/// merge into the trajectory file with speedups vs the first recorded
/// run — all through the shared [`TrajectorySpec`] machinery.
fn trajectory(wb: &Workbench, label: Option<&str>, smoke: bool) {
    let label = label.unwrap_or(if smoke { "smoke" } else { "run" });
    let run = trajectory_run(wb, label);

    if smoke {
        match TRAJECTORY.smoke(&run) {
            Ok(text) => {
                print!("{text}");
                eprintln!("smoke OK: run re-parsed and validated; nothing written");
            }
            Err(e) => {
                eprintln!("smoke: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    match TRAJECTORY.record(run) {
        Ok(recorded) => {
            for (fig, s) in &recorded.speedups {
                eprintln!("{fig}: median speedup {s}x vs baseline run");
            }
            print!("{}", recorded.text);
            eprintln!("recorded run {label:?} in {}", TRAJECTORY.file);
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

fn ontology_report(wb: &Workbench) {
    println!("== Ontology statistics (Section 6.1) ==");
    println!("paper: SNOMED-CT, 296,433 concepts, 4.53 avg children,");
    println!("       9.78 paths/concept (max 29), avg path length 14.1\n");
    println!("{}\n", OntologyStats::compute(&wb.ontology));
}

fn table3(wb: &Workbench) {
    println!("== Table 3: document corpus statistics ==");
    println!("paper:                  PATIENT    RADIO");
    println!("  total documents       983        12,373");
    println!("  total concepts        16,811     8,629");
    println!("  avg tokens/document   8,184      273.7");
    println!("  avg concepts/document 706.6      125.3\n");
    let mut t = Table::new(&["metric", "PATIENT", "RADIO"]);
    // Table 3 describes the extracted corpus before the Section 6.1
    // thresholds, so report the raw statistics.
    let stats: Vec<CorpusStats> = wb.collections.iter().map(|c| c.raw_stats.clone()).collect();
    t.row(vec![
        "total documents".into(),
        stats[0].total_documents.to_string(),
        stats[1].total_documents.to_string(),
    ]);
    t.row(vec![
        "total concepts".into(),
        stats[0].total_concepts.to_string(),
        stats[1].total_concepts.to_string(),
    ]);
    t.row(vec![
        "avg tokens/document".into(),
        format!("{:.1}", stats[0].avg_tokens_per_doc),
        format!("{:.1}", stats[1].avg_tokens_per_doc),
    ]);
    t.row(vec![
        "avg concepts/document".into(),
        format!("{:.1}", stats[0].avg_concepts_per_doc),
        format!("{:.1}", stats[1].avg_concepts_per_doc),
    ]);
    println!("{}", Table::render(&t));
}

/// Figure 6: distance-calculation time vs query size, BL vs DRC (SDS
/// document-document distance).
fn fig6(wb: &Workbench) {
    println!("== Figure 6: distance calculation time vs query size nq (SDS) ==");
    println!("paper shape: BL grows quadratically with nq; DRC grows n·log n and");
    println!("wins by orders of magnitude at large nq on both collections.\n");
    let sweep = [1usize, 3, 5, 10, 30, 100];
    for coll in &wb.collections {
        let mut t = Table::new(&["nq", "BL / calc", "DRC / calc", "speedup"]);
        let docs_per_query = 3;
        let n_queries = wb.scale.queries_per_point;
        let mut rng = StdRng::seed_from_u64(wb.scale.seed ^ 0x6);
        let mut drc = Drc::new(&wb.ontology);
        // Force path-table materialization outside the timings.
        let _ = wb.ontology.path_table();
        for &nq in &sweep {
            if nq > coll.query_pool.len() {
                continue;
            }
            let queries = coll.query_documents(n_queries, nq, wb.scale.seed ^ nq as u64);
            let targets: Vec<&[ConceptId]> = (0..n_queries * docs_per_query)
                .map(|_| loop {
                    let d = rng.random_range(0..coll.corpus.len());
                    let doc = coll.corpus.get(cbr_corpus::DocId(d as u32));
                    if doc.num_concepts() > 0 {
                        break doc.concepts();
                    }
                })
                .collect();

            let t0 = Instant::now();
            let mut sink = 0.0f64;
            for (qi, q) in queries.iter().enumerate() {
                for ti in 0..docs_per_query {
                    sink += brute::document_document_distance(
                        &wb.ontology,
                        targets[qi * docs_per_query + ti],
                        q,
                    );
                }
            }
            let bl = t0.elapsed() / (n_queries * docs_per_query) as u32;

            let t0 = Instant::now();
            for (qi, q) in queries.iter().enumerate() {
                for ti in 0..docs_per_query {
                    sink += drc.document_document_distance(targets[qi * docs_per_query + ti], q);
                }
            }
            let dd = t0.elapsed() / (n_queries * docs_per_query) as u32;
            std::hint::black_box(sink);

            t.row(vec![
                nq.to_string(),
                fmt_duration(bl),
                fmt_duration(dd),
                format!("{:.1}x", bl.as_secs_f64() / dd.as_secs_f64().max(1e-12)),
            ]);
        }
        println!("-- Figure 6 ({}) --", coll.name);
        println!("{}", t.render());
    }
}

/// Figure 7: query time vs error threshold εθ (sensitivity analysis).
fn fig7(wb: &Workbench) {
    println!("== Figure 7: query time vs error threshold εθ ==");
    println!("paper shape: PATIENT favours εθ = 0 (wait for full coverage; DRC is");
    println!("expensive on dense records); RADIO favours large εθ (≈0.9) and the");
    println!("optimal εθ grows with query size (7f).\n");
    let eps_sweep = [0.0, 0.25, 0.5, 0.75, 1.0];
    let k = 10;

    // 7(a)-(e): RDS sweeps.
    for (coll_name, nqs, figs) in
        [("PATIENT", vec![3usize, 5], "7(a)-(b)"), ("RADIO", vec![3, 5, 10], "7(c)-(e)")]
    {
        let coll = wb.collection(coll_name);
        let mut t = Table::new(&["nq \\ εθ", "0.00", "0.25", "0.50", "0.75", "1.00", "best εθ"]);
        let mut optimal: Vec<(usize, f64)> = Vec::new();
        for &nq in &nqs {
            let queries = coll.rds_queries(wb.scale.queries_per_point, nq, wb.scale.seed ^ 0x70);
            let mut cells = vec![nq.to_string()];
            let mut best = (f64::INFINITY, 0.0);
            for &eps in &eps_sweep {
                let timing = run_knds_rds(wb, coll, &queries, k, eps);
                if timing.ms().total_cmp(&best.0).is_lt() {
                    best = (timing.ms(), eps);
                }
                cells.push(format!("{:.2} ms", timing.ms()));
            }
            optimal.push((nq, best.1));
            cells.push(format!("{:.2}", best.1));
            t.row(cells);
        }
        println!("-- Figure {figs}: RDS time vs εθ ({coll_name}, k = {k}) --");
        println!("{}", t.render());
        if coll_name == "RADIO" {
            let mut t = Table::new(&["nq", "optimal εθ"]);
            for (nq, eps) in optimal {
                t.row(vec![nq.to_string(), format!("{eps:.2}")]);
            }
            println!("-- Figure 7(f): optimal εθ vs nq (RADIO, RDS) --");
            println!("{}", t.render());
        }
    }

    // 7(g)-(h): SDS sweeps.
    for coll in &wb.collections {
        let queries = coll.sds_queries(wb.scale.queries_per_point, wb.scale.seed ^ 0x71);
        let mut t = Table::new(&["εθ", "time", "examined", "DRC calls"]);
        for &eps in &eps_sweep {
            let timing = run_knds_sds(wb, coll, &queries, k, eps);
            t.row(vec![
                format!("{eps:.2}"),
                format!("{:.2} ms", timing.ms()),
                format!("{:.1}", timing.docs_examined),
                format!("{:.1}", timing.drc_calls),
            ]);
        }
        println!("-- Figure 7(g)/(h): SDS time vs εθ ({}, k = {k}) --", coll.name);
        println!("{}", t.render());
    }
}

/// Figure 8: RDS query time vs query size, kNDS vs baseline.
fn fig8(wb: &Workbench) {
    println!("== Figure 8: RDS query time vs query size nq ==");
    println!("paper shape: both methods grow ≈ n·log n with nq; kNDS beats the");
    println!("no-pruning baseline by a wide margin at every query size.\n");
    let k = 10;
    for coll in &wb.collections {
        let mut t = Table::new(&["nq", "kNDS", "baseline", "speedup", "kNDS examined"]);
        for nq in [1usize, 3, 5, 10] {
            let queries = coll.rds_queries(wb.scale.queries_per_point, nq, wb.scale.seed ^ 0x80);
            let fast = run_knds_rds(wb, coll, &queries, k, coll.default_eps);
            let slow = run_baseline_rds(wb, coll, &queries, k);
            t.row(vec![
                nq.to_string(),
                format!("{:.2} ms", fast.ms()),
                format!("{:.2} ms", slow.ms()),
                format!("{:.1}x", slow.ms() / fast.ms().max(1e-9)),
                format!("{:.1}/{}", fast.docs_examined, coll.corpus.len()),
            ]);
        }
        println!("-- Figure 8 ({}, k = {k}, εθ = {}) --", coll.name, coll.default_eps);
        println!("{}", t.render());
    }
}

/// Figure 9: query time vs k for RDS and SDS, kNDS vs baseline.
fn fig9(wb: &Workbench) {
    println!("== Figure 9: query time vs number of results k ==");
    println!("paper shape: the baseline is flat in k (it always scans everything);");
    println!("kNDS is far faster (99% at k = 10 SDS/PATIENT) and only mildly");
    println!("sensitive to k. Examination precision: ≈99% for RDS/PATIENT, >60%");
    println!("for SDS.\n");
    let nq = 5;
    for coll in &wb.collections {
        for kind in ["RDS", "SDS"] {
            let queries = match kind {
                "RDS" => coll.rds_queries(wb.scale.queries_per_point, nq, wb.scale.seed ^ 0x90),
                _ => coll.sds_queries(wb.scale.queries_per_point, wb.scale.seed ^ 0x91),
            };
            let mut t =
                Table::new(&["k", "kNDS", "kNDS p95", "baseline", "speedup", "exam. precision"]);
            for k in [3usize, 5, 10, 50, 100] {
                let (fast, slow) = match kind {
                    "RDS" => (
                        run_knds_rds(wb, coll, &queries, k, coll.default_eps),
                        run_baseline_rds(wb, coll, &queries, k),
                    ),
                    _ => (
                        run_knds_sds(wb, coll, &queries, k, coll.default_eps),
                        run_baseline_sds(wb, coll, &queries, k),
                    ),
                };
                t.row(vec![
                    k.to_string(),
                    format!("{:.2} ms", fast.ms()),
                    format!("{:.2} ms", fast.p95.as_secs_f64() * 1e3),
                    format!("{:.2} ms", slow.ms()),
                    format!("{:.1}x", slow.ms() / fast.ms().max(1e-9)),
                    format!("{:.0}%", fast.examination_precision * 100.0),
                ]);
            }
            println!(
                "-- Figure 9: {kind} ({}, nq = {nq}, εθ = {}) --",
                coll.name, coll.default_eps
            );
            println!("{}", t.render());

            // Section 6.1's significance check: a two-tailed Welch t-test
            // over the per-query times at the paper's default k = 10.
            let cfg = KndsConfig::default().with_error_threshold(coll.default_eps);
            let engine = Knds::new(&wb.ontology, &coll.source, cfg);
            let fast_samples: Vec<f64> = queries
                .iter()
                .map(|q| {
                    let m = match kind {
                        "RDS" => engine.rds(q, 10).metrics,
                        _ => engine.sds(q, 10).metrics,
                    };
                    m.total().as_secs_f64()
                })
                .collect();
            let slow_samples: Vec<f64> = queries
                .iter()
                .map(|q| {
                    let m = match kind {
                        "RDS" => baseline::rds(&wb.ontology, &coll.source, q, 10).metrics,
                        _ => baseline::sds(&wb.ontology, &coll.source, q, 10).metrics,
                    };
                    m.total().as_secs_f64()
                })
                .collect();
            if let Some(tt) = cbr_eval::welch_t_test(&fast_samples, &slow_samples) {
                let verdict = if tt.p < 0.001 {
                    "p < 0.001 — significant, as in the paper".to_string()
                } else {
                    format!("p = {:.4}", tt.p)
                };
                println!(
                    "two-tailed Welch t-test (kNDS vs baseline, k = 10): t = {:.2}, {verdict}\n",
                    tt.t
                );
            }
        }
    }
}

/// Ablations over the design choices called out in DESIGN.md.
fn ablation(wb: &Workbench) {
    println!("== Ablations ==\n");
    let k = 10;
    let nq = 5;

    // (a) BFS state deduplication (the paper's prototype skips it).
    let coll = wb.collection("RADIO");
    let queries = coll.rds_queries(wb.scale.queries_per_point, nq, wb.scale.seed ^ 0xA0);
    let mut t = Table::new(&["dedup", "time", "states visited"]);
    for dedup in [true, false] {
        let cfg =
            KndsConfig::default().with_error_threshold(coll.default_eps).with_dedup_visits(dedup);
        let engine = Knds::new(&wb.ontology, &coll.source, cfg);
        let metrics: Vec<QueryMetrics> = queries.iter().map(|q| engine.rds(q, k).metrics).collect();
        let states: usize = metrics.iter().map(|m| m.nodes_visited).sum();
        let timing = Timing::from_metrics(&metrics, k);
        t.row(vec![
            dedup.to_string(),
            format!("{:.2} ms", timing.ms()),
            format!("{:.0}", states as f64 / metrics.len() as f64),
        ]);
    }
    println!("-- (a) BFS state deduplication (RDS, RADIO, nq = {nq}) --");
    println!("{}", t.render());

    // (b) Queue watermark sensitivity (forces early DRC rounds).
    let coll = wb.collection("PATIENT");
    let queries = coll.sds_queries(wb.scale.queries_per_point, wb.scale.seed ^ 0xA1);
    let mut t = Table::new(&["queue cap", "time", "DRC calls", "forced rounds"]);
    for cap in [100usize, 1_000, 10_000, 50_000] {
        let cfg = KndsConfig::default().with_error_threshold(coll.default_eps).with_queue_cap(cap);
        let engine = Knds::new(&wb.ontology, &coll.source, cfg);
        let metrics: Vec<QueryMetrics> = queries.iter().map(|q| engine.sds(q, k).metrics).collect();
        let forced: usize = metrics.iter().map(|m| m.forced_rounds).sum();
        let timing = Timing::from_metrics(&metrics, k);
        t.row(vec![
            cap.to_string(),
            format!("{:.2} ms", timing.ms()),
            format!("{:.1}", timing.drc_calls),
            format!("{:.1}", forced as f64 / metrics.len() as f64),
        ]);
    }
    println!("-- (b) queue watermark (SDS, PATIENT) --");
    println!("{}", t.render());

    // (c) TA comparator vs kNDS vs full scan (RDS only; Section 4.1).
    let coll = wb.collection("RADIO");
    let queries = coll.rds_queries(wb.scale.queries_per_point, nq, wb.scale.seed ^ 0xA2);
    let mut t = Table::new(&["method", "time", "notes"]);
    let fast = run_knds_rds(wb, coll, &queries, k, coll.default_eps);
    t.row(vec!["kNDS".into(), format!("{:.2} ms", fast.ms()), "no precomputation".into()]);
    let metrics: Vec<QueryMetrics> =
        queries.iter().map(|q| ta::rds(&wb.ontology, &coll.source, q, k).metrics).collect();
    let tat = Timing::from_metrics(&metrics, k);
    t.row(vec![
        "TA".into(),
        format!("{:.2} ms", tat.ms()),
        format!("incl. {:.2} ms/query list materialization", tat.distance_calc.as_secs_f64() * 1e3),
    ]);
    let slow = run_baseline_rds(wb, coll, &queries, k);
    t.row(vec!["full scan".into(), format!("{:.2} ms", slow.ms()), "DRC on every doc".into()]);
    println!("-- (c) RDS method comparison (RADIO, nq = {nq}, k = {k}) --");
    println!("{}", t.render());

    // (d) Progressive output (Section 5.3, optimization 4).
    let coll = wb.collection("RADIO");
    let queries = coll.rds_queries(wb.scale.queries_per_point, nq, wb.scale.seed ^ 0xA3);
    let engine = Knds::new(
        &wb.ontology,
        &coll.source,
        KndsConfig::default().with_error_threshold(coll.default_eps),
    );
    let mut emitted = 0usize;
    for q in &queries {
        emitted += engine.rds(q, k).metrics.progressive_results;
    }
    println!("-- (d) progressive output (RDS, RADIO) --");
    println!(
        "{:.1} of {k} results on average were provably final before termination\n",
        emitted as f64 / queries.len() as f64
    );

    // (e) Compressed postings: space vs decode-time trade-off.
    let mut t = Table::new(&["collection", "raw bytes", "compressed", "ratio", "kNDS time"]);
    for coll in &wb.collections {
        let raw_bytes = coll.source.inverted().total_postings() * 4;
        let compressed =
            cbr_index::CompressedSource::new(coll.source.inverted(), coll.source.forward().clone());
        // Both layouts carry the same per-concept offset table; compare the
        // postings payloads themselves.
        let comp_bytes = compressed.postings().data_bytes();
        let queries = coll.rds_queries(wb.scale.queries_per_point, nq, wb.scale.seed ^ 0xA4);
        let cfg = KndsConfig::default().with_error_threshold(coll.default_eps);
        let engine = Knds::new(&wb.ontology, &compressed, cfg);
        let metrics: Vec<QueryMetrics> = queries.iter().map(|q| engine.rds(q, k).metrics).collect();
        let timing = Timing::from_metrics(&metrics, k);
        t.row(vec![
            coll.name.to_string(),
            format!("{raw_bytes}"),
            format!("{comp_bytes}"),
            format!("{:.2}x", raw_bytes as f64 / comp_bytes as f64),
            format!("{:.2} ms", timing.ms()),
        ]);
    }
    println!("-- (e) delta-varint postings compression (RDS, nq = {nq}) --");
    println!("{}", t.render());

    // (f) Weighted edges (Section 7 future work): unit weights through the
    // Dijkstra engine must cost about the same as the BFS engine; a
    // non-uniform weighting shows the overhead of real weights.
    let coll = wb.collection("RADIO");
    let queries = coll.rds_queries(wb.scale.queries_per_point, nq, wb.scale.seed ^ 0xA5);
    let cfg = KndsConfig::default().with_error_threshold(coll.default_eps);
    let unit = cbr_ontology::EdgeWeights::uniform(&wb.ontology);
    let skewed = cbr_ontology::EdgeWeights::from_fn(&wb.ontology, |p, _| {
        if wb.ontology.depth(p) < 3 {
            3
        } else {
            1
        }
    });
    let mut t = Table::new(&["engine", "time"]);
    let timing = run_knds_rds(wb, coll, &queries, k, coll.default_eps);
    t.row(vec!["BFS (unit)".into(), format!("{:.2} ms", timing.ms())]);
    for (name, w) in [("Dijkstra (unit)", &unit), ("Dijkstra (skewed)", &skewed)] {
        let engine = cbr_knds::WeightedKnds::new(&wb.ontology, w, &coll.source, cfg.clone());
        let metrics: Vec<QueryMetrics> = queries.iter().map(|q| engine.rds(q, k).metrics).collect();
        let timing = Timing::from_metrics(&metrics, k);
        t.row(vec![name.to_string(), format!("{:.2} ms", timing.ms())]);
    }
    println!("-- (f) weighted-edge engine (RDS, RADIO, nq = {nq}) --");
    println!("{}", t.render());
}

/// Effectiveness on synthetic relevance: cohort members (documents built
/// from the same cluster centers) are each query document's "similar
/// records". The paper defers effectiveness to prior user studies; this
/// report quantifies it for the ranking families the library offers.
fn effectiveness(wb: &Workbench) {
    use cbr_corpus::DocId;
    use std::collections::HashSet;

    println!("== Effectiveness on cohort ground truth (extension) ==");
    println!("relevant(q) = other documents of q's generation cohort; k = 10.");
    println!("families: SDS shortest-path (Eq. 3, kNDS), Lin-reranked top-50,");
    println!("and a worst-case random ordering for reference.\n");
    let k = 10;

    for coll in &wb.collections {
        // Query documents: members of cohorts with ≥ 3 live documents.
        let mut by_cohort: std::collections::HashMap<u32, Vec<DocId>> = Default::default();
        for (i, &cohort) in coll.cohorts.iter().enumerate() {
            let d = DocId::from_index(i);
            if cohort != u32::MAX && coll.corpus.get(d).num_concepts() > 0 {
                by_cohort.entry(cohort).or_default().push(d);
            }
        }
        let mut queries: Vec<(DocId, HashSet<DocId>)> = Vec::new();
        for members in by_cohort.values() {
            if members.len() < 3 {
                continue;
            }
            let q = members[0];
            let relevant: HashSet<DocId> = members.iter().copied().filter(|&d| d != q).collect();
            queries.push((q, relevant));
            if queries.len() >= wb.scale.queries_per_point {
                break;
            }
        }
        if queries.is_empty() {
            println!("-- {} : no cohorts large enough --", coll.name);
            continue;
        }

        let cfg = KndsConfig::default().with_error_threshold(coll.default_eps);
        let engine = Knds::new(&wb.ontology, &coll.source, cfg);
        let sim = cbr_ontology::SemanticSimilarity::new(&wb.ontology, {
            let mut counts = vec![0u64; wb.ontology.len()];
            for (c, n) in coll.corpus.concept_frequencies() {
                counts[c.index()] = n as u64;
            }
            cbr_ontology::InformationContent::from_counts(&wb.ontology, &counts)
        });

        let mut sds_runs = Vec::new();
        let mut lin_runs = Vec::new();
        let mut random_runs = Vec::new();
        let mut rng = StdRng::seed_from_u64(wb.scale.seed ^ 0xEF);
        for (q, relevant) in &queries {
            let profile = coll.corpus.get(*q).concepts().to_vec();
            // Shortest-path SDS, query document excluded from the ranking.
            let ranked: Vec<DocId> = engine
                .sds(&profile, k + 1)
                .results
                .iter()
                .map(|r| r.doc)
                .filter(|d| d != q)
                .take(k)
                .collect();
            sds_runs.push((ranked, relevant.clone()));

            // Lin re-rank of the shortest-path top-50.
            let pool: Vec<DocId> =
                engine.sds(&profile, 50).results.iter().map(|r| r.doc).filter(|d| d != q).collect();
            let mut scored: Vec<(f64, DocId)> = pool
                .iter()
                .map(|&d| {
                    let concepts = coll.corpus.get(d).concepts();
                    let s = concept_rank::rerank::best_match_average(
                        &sim,
                        concept_rank::Measure::Lin,
                        concepts,
                        &profile,
                    );
                    (s, d)
                })
                .collect();
            scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
            lin_runs.push((scored.into_iter().map(|(_, d)| d).take(k).collect(), relevant.clone()));

            // Random reference.
            let mut all: Vec<DocId> = coll.corpus.doc_ids().filter(|d| d != q).collect();
            for i in (1..all.len()).rev() {
                all.swap(i, rng.random_range(0..=i));
            }
            all.truncate(k);
            random_runs.push((all, relevant.clone()));
        }

        let mut t = Table::new(&["ranking", "P@10", "R@10", "MAP", "nDCG@10"]);
        for (name, runs) in
            [("shortest-path SDS", &sds_runs), ("Lin re-rank", &lin_runs), ("random", &random_runs)]
        {
            let e = cbr_eval::evaluate(runs, k);
            t.row(vec![
                name.to_string(),
                format!("{:.3}", e.precision),
                format!("{:.3}", e.recall),
                format!("{:.3}", e.map),
                format!("{:.3}", e.ndcg),
            ]);
        }
        println!("-- {} ({} cohort queries) --", coll.name, queries.len());
        println!("{}", t.render());
    }
}

/// Phase breakdown of the trajectory workloads: where each fig8/fig9
/// point spends its time (ontology traversal + candidate bookkeeping,
/// index access, exact-distance computation). The paper's Table 5
/// analogue, and the compass for hot-loop work: a point dominated by
/// DRC probes will not move however fast the BFS bookkeeping gets.
fn phases(wb: &Workbench) {
    println!("== Phase breakdown (warm workspace, default εθ) ==\n");
    for coll in &wb.collections {
        let mut t =
            Table::new(&["kind", "nq", "k", "total", "traversal", "index", "distance", "DRC/q"]);
        let mut points: Vec<(&str, usize, usize, Vec<Vec<ConceptId>>)> = Vec::new();
        for nq in [1usize, 3, 5, 10] {
            let q = coll.rds_queries(wb.scale.queries_per_point, nq, wb.scale.seed ^ 0x80);
            points.push(("RDS", nq, 10, q));
        }
        for k in [10usize, 100] {
            let q = coll.sds_queries(wb.scale.queries_per_point, wb.scale.seed ^ 0x91);
            points.push(("SDS", 5, k, q));
        }
        for (kind, nq, k, queries) in points {
            let cfg = KndsConfig::default().with_error_threshold(coll.default_eps);
            let engine = Knds::new(&wb.ontology, &coll.source, cfg);
            let mut ws = KndsWorkspace::new();
            let run = |ws: &mut KndsWorkspace, q: &Vec<ConceptId>| match kind {
                "RDS" => engine.rds_with(ws, q, k),
                _ => engine.sds_with(ws, q, k),
            };
            if let Some(q) = queries.first() {
                let warm = run(&mut ws, q);
                debug_assert!(warm.results.len() <= k, "warm-up overfilled top-k");
            }
            let metrics: Vec<QueryMetrics> =
                queries.iter().map(|q| run(&mut ws, q).metrics).collect();
            let timing = Timing::from_metrics(&metrics, k);
            let pct = |d: Duration| {
                format!(
                    "{} ({:.0}%)",
                    fmt_duration(d),
                    100.0 * d.as_secs_f64() / timing.total.as_secs_f64().max(1e-12)
                )
            };
            t.row(vec![
                kind.into(),
                nq.to_string(),
                k.to_string(),
                fmt_duration(timing.total),
                pct(timing.traversal),
                pct(timing.io),
                pct(timing.distance_calc),
                format!("{:.1}", timing.drc_calls),
            ]);
        }
        println!("-- {} --", coll.name);
        println!("{}", t.render());
    }
}
