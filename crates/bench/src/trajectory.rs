//! Shared machinery for the `BENCH_*.json` perf-trajectory files.
//!
//! Two binaries record trajectories — `repro --json` (the paper-figure
//! workloads, `BENCH_knds.json`) and `scale` (the million-document mixed
//! read/write workload, `BENCH_scale.json`) — and both files must stay
//! mutually intelligible: one `runs` array in append order, each run
//! carrying named figures of keyed measurement points, with per-figure
//! median speedups computed against the first recorded run. This module
//! is that shared format. A binary describes its file once as a
//! [`TrajectorySpec`] (which figures exist, which fields identify a point,
//! which fields are measurements) and gets validation, cross-run point
//! matching, speedup computation, the read-modify-write append, and the
//! CI smoke round trip (render → re-parse → validate, write nothing) for
//! free.

use crate::json::Json;

/// The schema of one trajectory file: enough structure for generic
/// validation and cross-run speedup matching.
#[derive(Debug, Clone)]
pub struct TrajectorySpec {
    /// File name, relative to the working directory (`scripts/check.sh`
    /// runs from the repository root).
    pub file: &'static str,
    /// Value of the document's top-level `bench` tag.
    pub bench: &'static str,
    /// Figure names every run must carry (non-empty point arrays).
    pub figures: &'static [&'static str],
    /// Fields that identify a point across runs (strings or numbers).
    pub key_fields: &'static [&'static str],
    /// Numeric measurement fields every point must carry; validation
    /// rejects NaN and negatives. The first one is the latency used for
    /// speedup-vs-baseline (smaller is better).
    pub measure_fields: &'static [&'static str],
}

/// The outcome of [`TrajectorySpec::record`]: the run as written
/// (speedups included) plus the per-figure speedups for logging.
#[derive(Debug)]
pub struct RecordedRun {
    /// The recorded run object, rendered.
    pub text: String,
    /// `(figure, median speedup vs the baseline run)`, rounded to 2
    /// decimals; empty for the first run of a file.
    pub speedups: Vec<(String, f64)>,
}

impl TrajectorySpec {
    /// Identity of a point, for cross-run matching: its key fields
    /// rendered in spec order. `None` if any key field is missing.
    fn point_key(&self, p: &Json) -> Option<String> {
        let mut key = String::new();
        for field in self.key_fields {
            let v = p.get(field)?;
            match v {
                Json::Str(s) => key.push_str(s),
                Json::Num(n) => key.push_str(&format!("{n}")),
                _ => return None,
            }
            key.push('\u{1f}');
        }
        Some(key)
    }

    /// Structural validation of one run: every figure present and
    /// non-empty, every point carrying its identity and sane numbers.
    /// The smoke step relies on this to fail on malformed output.
    pub fn validate_run(&self, run: &Json) -> Result<(), String> {
        let figures = run.get("figures").ok_or("run has no figures object")?;
        for fig in self.figures {
            let points = figures
                .get(fig)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("figure {fig} missing"))?;
            if points.is_empty() {
                return Err(format!("figure {fig} is empty"));
            }
            for p in points {
                self.point_key(p).ok_or_else(|| format!("{fig}: point without identity"))?;
                for field in self.measure_fields {
                    let n = p
                        .get(field)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("{fig}: point without {field}"))?;
                    if n.is_nan() || n < 0.0 {
                        return Err(format!("{fig}: {field} = {n} is not a sane measurement"));
                    }
                }
            }
        }
        Ok(())
    }

    /// Median `baseline / current` ratio of the primary latency field over
    /// the matching points of one figure (> 1 means the current run is
    /// faster).
    fn figure_speedup(&self, baseline: &[Json], current: &[Json]) -> Option<f64> {
        let latency = self.measure_fields.first()?;
        let mut ratios = Vec::new();
        for p in current {
            let key = self.point_key(p)?;
            let base = baseline.iter().find(|b| self.point_key(b).as_deref() == Some(&key))?;
            let (b, c) = (base.get(latency)?.as_f64()?, p.get(latency)?.as_f64()?);
            if c > 0.0 {
                ratios.push(b / c);
            }
        }
        median_of(ratios)
    }

    /// The CI smoke round trip: render the run, re-parse the rendered
    /// text, validate the re-parsed value. Proves the emitter produces
    /// well-formed, schema-complete output without writing anything.
    /// Returns the rendered text for printing.
    pub fn smoke(&self, run: &Json) -> Result<String, String> {
        let text = run.render();
        let reparsed =
            Json::parse(&text).map_err(|e| format!("emitted JSON does not re-parse: {e}"))?;
        self.validate_run(&reparsed).map_err(|e| format!("emitted run is malformed: {e}"))?;
        Ok(text)
    }

    /// Pure core of [`TrajectorySpec::record`]: validates `run`, computes
    /// per-figure speedups against `existing_runs.first()`, and returns
    /// the full document to write plus the recorded-run report.
    fn merge(
        &self,
        existing_runs: Vec<Json>,
        mut run: Json,
    ) -> Result<(Json, RecordedRun), String> {
        self.validate_run(&run).map_err(|e| format!("refusing to record a malformed run: {e}"))?;

        let mut speedups = Vec::new();
        if let Some(baseline) = existing_runs.first() {
            for fig in self.figures {
                let base = baseline.get("figures").and_then(|f| f.get(fig)).and_then(Json::as_arr);
                let cur = run.get("figures").and_then(|f| f.get(fig)).and_then(Json::as_arr);
                if let (Some(base), Some(cur)) = (base, cur) {
                    if let Some(s) = self.figure_speedup(base, cur) {
                        let rounded = (s * 100.0).round() / 100.0;
                        speedups.push((fig.to_string(), rounded));
                    }
                }
            }
            if !speedups.is_empty() {
                if let Json::Obj(members) = &mut run {
                    members.push((
                        "speedup_vs_baseline".into(),
                        Json::Obj(
                            speedups.iter().map(|(f, s)| (f.clone(), Json::Num(*s))).collect(),
                        ),
                    ));
                }
            }
        }

        let text = run.render();
        let mut runs = existing_runs;
        runs.push(run);
        let doc = Json::Obj(vec![
            ("bench".into(), Json::Str(self.bench.into())),
            ("runs".into(), Json::Arr(runs)),
        ]);
        Ok((doc, RecordedRun { text, speedups }))
    }

    /// Appends `run` to the trajectory file: validate, re-read the file,
    /// compute speedups against the first recorded run, write the merged
    /// document back. An existing file that does not parse is an error —
    /// fix or remove it, never silently overwrite a trajectory.
    pub fn record(&self, run: Json) -> Result<RecordedRun, String> {
        let existing_runs: Vec<Json> = match std::fs::read_to_string(self.file) {
            Ok(text) => match Json::parse(&text) {
                Ok(doc) => doc.get("runs").and_then(Json::as_arr).unwrap_or(&[]).to_vec(),
                Err(e) => {
                    return Err(format!(
                        "{} exists but does not parse ({e}); fix or remove it",
                        self.file
                    ));
                }
            },
            Err(_) => Vec::new(),
        };
        let (doc, recorded) = self.merge(existing_runs, run)?;
        std::fs::write(self.file, doc.render())
            .map_err(|e| format!("failed to write {}: {e}", self.file))?;
        Ok(recorded)
    }
}

/// The median of a sample (lower-middle for even sizes); `None` when
/// empty.
pub fn median_of(mut v: Vec<f64>) -> Option<f64> {
    if v.is_empty() {
        return None;
    }
    v.sort_by(f64::total_cmp);
    Some(v[v.len() / 2])
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: TrajectorySpec = TrajectorySpec {
        file: "BENCH_test.json",
        bench: "test",
        figures: &["fig"],
        key_fields: &["name", "n"],
        measure_fields: &["median_ns", "qps"],
    };

    fn point(name: &str, n: f64, median_ns: f64) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(name.into())),
            ("n".into(), Json::Num(n)),
            ("median_ns".into(), Json::Num(median_ns)),
            ("qps".into(), Json::Num(1e9 / median_ns)),
        ])
    }

    fn run(label: &str, median_ns: f64) -> Json {
        Json::Obj(vec![
            ("label".into(), Json::Str(label.into())),
            (
                "figures".into(),
                Json::Obj(vec![(
                    "fig".into(),
                    Json::Arr(vec![point("a", 1.0, median_ns), point("b", 2.0, median_ns * 2.0)]),
                )]),
            ),
        ])
    }

    #[test]
    fn validates_complete_runs_and_rejects_broken_ones() {
        assert_eq!(SPEC.validate_run(&run("ok", 100.0)), Ok(()));
        assert!(SPEC.validate_run(&Json::Obj(vec![])).is_err(), "missing figures");
        let empty_fig =
            Json::Obj(vec![("figures".into(), Json::Obj(vec![("fig".into(), Json::Arr(vec![]))]))]);
        assert!(SPEC.validate_run(&empty_fig).is_err(), "empty figure");
        let mut bad = run("bad", 100.0);
        if let Json::Obj(m) = &mut bad {
            if let Json::Obj(figs) = &mut m[1].1 {
                if let Json::Arr(points) = &mut figs[0].1 {
                    if let Json::Obj(p) = &mut points[0] {
                        p[2].1 = Json::Num(-1.0); // negative median_ns
                    }
                }
            }
        }
        assert!(SPEC.validate_run(&bad).is_err(), "negative measurement");
    }

    #[test]
    fn smoke_round_trips() {
        let text = SPEC.smoke(&run("s", 50.0)).unwrap();
        assert!(Json::parse(&text).is_ok());
    }

    #[test]
    fn merge_computes_speedup_vs_first_run() {
        // First run: no baseline, no speedups.
        let (doc, rec) = SPEC.merge(Vec::new(), run("base", 200.0)).unwrap();
        assert!(rec.speedups.is_empty());
        let runs = doc.get("runs").and_then(Json::as_arr).unwrap().to_vec();
        assert_eq!(runs.len(), 1);
        assert_eq!(doc.get("bench").and_then(Json::as_str), Some("test"));

        // Second run at half the latency: 2x speedup, recorded in the run.
        let (doc, rec) = SPEC.merge(runs, run("fast", 100.0)).unwrap();
        assert_eq!(rec.speedups, vec![("fig".to_string(), 2.0)]);
        let runs = doc.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), 2);
        let s = runs[1].get("speedup_vs_baseline").and_then(|s| s.get("fig"));
        assert_eq!(s.and_then(Json::as_f64), Some(2.0));
        assert!(rec.text.contains("speedup_vs_baseline"));
    }

    #[test]
    fn merge_rejects_malformed_runs() {
        let err = SPEC.merge(Vec::new(), Json::Obj(vec![])).unwrap_err();
        assert!(err.contains("refusing to record"), "{err}");
    }

    #[test]
    fn median_of_picks_the_middle() {
        assert_eq!(median_of(vec![]), None);
        assert_eq!(median_of(vec![3.0, 1.0, 2.0]), Some(2.0));
    }
}
