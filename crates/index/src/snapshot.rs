//! Typed binary snapshots of serde values.
//!
//! The reproduction pipeline builds its artifacts (ontology, corpus,
//! indexes) deterministically but not instantly; [`SnapshotStore`] lets the
//! harness persist and reload them between runs, playing the role of the
//! paper's MySQL-loaded index tables. Values are encoded with the
//! workspace's binary codec ([`cbr_ontology::ser`]) and framed with a magic
//! header so a wrong-type load fails loudly instead of misdecoding.

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"CBRSNAP1";

/// A directory of named binary snapshots.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// Opens (creating if needed) a snapshot directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<SnapshotStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(SnapshotStore { dir })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.snap"))
    }

    /// Whether a snapshot named `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.path(name).is_file()
    }

    /// Serializes `value` under `name`, replacing any previous snapshot.
    pub fn save<T: Serialize>(&self, name: &str, value: &T) -> io::Result<()> {
        let body = cbr_ontology::ser::to_tokens(value)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let tmp = self.path(&format!("{name}.tmp"));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(MAGIC)?;
            f.write_all(&(body.len() as u64).to_le_bytes())?;
            f.write_all(&body)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.path(name))
    }

    /// Loads and decodes the snapshot `name` as a `T`.
    pub fn load<T: DeserializeOwned>(&self, name: &str) -> io::Result<T> {
        let raw = fs::read(self.path(name))?;
        if raw.len() < 16 || &raw[..8] != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad snapshot header"));
        }
        let len = u64::from_le_bytes(raw[8..16].try_into().unwrap()) as usize;
        let body = raw
            .get(16..16 + len)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "snapshot truncated"))?;
        cbr_ontology::ser::from_tokens(body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Names of all snapshots in the store.
    pub fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if let Some(name) = entry.file_name().to_str().and_then(|n| n.strip_suffix(".snap")) {
                names.push(name.to_string());
            }
        }
        names.sort();
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbr_corpus::Corpus;
    use cbr_ontology::ConceptId;

    fn store(tag: &str) -> SnapshotStore {
        let dir = std::env::temp_dir().join(format!("cbr-snap-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        SnapshotStore::open(dir).unwrap()
    }

    #[test]
    fn save_load_roundtrip() {
        let s = store("rt");
        let corpus = Corpus::from_concept_sets(vec![(vec![ConceptId(7)], 3)]);
        s.save("corpus", &corpus).unwrap();
        assert!(s.contains("corpus"));
        let back: Corpus = s.load("corpus").unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.get(cbr_corpus::DocId(0)).concepts(), &[ConceptId(7)]);
        fs::remove_dir_all(s.dir()).unwrap();
    }

    #[test]
    fn list_names_snapshots() {
        let s = store("list");
        s.save("b", &1u32).unwrap();
        s.save("a", &2u32).unwrap();
        assert_eq!(s.list().unwrap(), vec!["a".to_string(), "b".to_string()]);
        fs::remove_dir_all(s.dir()).unwrap();
    }

    #[test]
    fn corrupt_snapshot_fails_loudly() {
        let s = store("corrupt");
        fs::write(s.dir().join("x.snap"), b"garbage").unwrap();
        let err = s.load::<u32>("x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(s.dir()).unwrap();
    }

    #[test]
    fn missing_snapshot_is_not_found() {
        let s = store("missing");
        assert!(!s.contains("nope"));
        assert!(s.load::<u32>("nope").is_err());
        fs::remove_dir_all(s.dir()).unwrap();
    }
}
