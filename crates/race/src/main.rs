//! `cbr-race` CLI: run the static lock-discipline analysis.
//!
//! ```sh
//! cbr-race                           # analyze the real workspace (race.allow applied)
//! cbr-race --json                    # machine-readable report with the R04 proof stats
//! cbr-race --fixtures                # analyze the seeded-violation fixture tree
//! cbr-race --fixtures --expect-findings  # assert every rule R01-R05 fires
//! ```
//!
//! Exit codes: `0` clean (or, with `--expect-findings`, all rules
//! fired), `1` findings (or a missing rule), `2` usage error.

#![forbid(unsafe_code)]

use cbr_flow::workspace_root;
use cbr_race::{run_fixtures, run_workspace};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cbr-race [--json] [--fixtures] [--expect-findings]\n\n\
         options:\n  \
         --json             emit the machine-readable report\n  \
         --fixtures         analyze the seeded-violation fixture tree instead of the workspace\n  \
         --expect-findings  fail unless every rule R01-R05 produced at least one finding"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut json = false;
    let mut fixtures = false;
    let mut expect_findings = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--fixtures" => fixtures = true,
            "--expect-findings" => expect_findings = true,
            "--help" | "-h" => {
                let _ = usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    let root = workspace_root();
    let rr = if fixtures { run_fixtures(&root) } else { run_workspace(&root) };

    if json {
        print!("{}", rr.render_json());
    } else {
        print!("{}", rr.render_text());
    }

    if expect_findings {
        let missing: Vec<&str> = ["R01", "R02", "R03", "R04", "R05"]
            .into_iter()
            .filter(|rule| !rr.report.findings.iter().any(|f| f.rule == *rule))
            .collect();
        if missing.is_empty() {
            eprintln!("expect-findings: all rules R01-R05 fired");
            ExitCode::SUCCESS
        } else {
            eprintln!("expect-findings: rule(s) {} produced no findings", missing.join(", "));
            ExitCode::FAILURE
        }
    } else if rr.report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
