//! Typed binary snapshots of serde values.
//!
//! The reproduction pipeline builds its artifacts (ontology, corpus,
//! indexes) deterministically but not instantly; [`SnapshotStore`] lets the
//! harness persist and reload them between runs, playing the role of the
//! paper's MySQL-loaded index tables. Values are encoded with the
//! workspace's binary codec ([`cbr_ontology::ser`]) and framed with a magic
//! header — magic, body length, and an `FxHash` checksum of the body — so
//! a wrong-type load or a flipped bit fails loudly instead of misdecoding.
//!
//! The frame layer ([`encode_frame`] / [`decode_frame`]) is independent of
//! the codec and compiles without the `serde` feature, so the `cbr-audit`
//! invariant runner can exercise round-trip hashing in default builds;
//! [`SnapshotStore`] itself needs `serde`.

use std::hash::Hasher;
use std::io;

const MAGIC: &[u8; 8] = b"CBRSNAP2";
/// Header layout: magic (8) + body length (8) + body checksum (8).
const HEADER_LEN: usize = 24;

fn checksum(body: &[u8]) -> u64 {
    let mut h = cbr_ontology::hash::FxHasher::default();
    h.write(body);
    h.finish()
}

/// Frames `body` with the snapshot header: magic, length, and checksum.
pub fn encode_frame(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum(body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Validates a snapshot frame and returns the body it carries. Fails with
/// `InvalidData` on a bad magic, a truncated payload, or a checksum
/// mismatch — every corruption class a round-trip can detect.
pub fn decode_frame(raw: &[u8]) -> io::Result<&[u8]> {
    if raw.len() < HEADER_LEN || raw.get(..8) != Some(MAGIC.as_slice()) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad snapshot header"));
    }
    let word = |at: usize| {
        raw.get(at..at + 8)
            .and_then(|b| b.try_into().ok())
            .map(u64::from_le_bytes)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad snapshot header"))
    };
    let len = word(8)? as usize;
    let expected = word(16)?;
    let body = raw
        .get(HEADER_LEN..HEADER_LEN.saturating_add(len))
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "snapshot truncated"))?;
    if checksum(body) != expected {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "snapshot checksum mismatch"));
    }
    Ok(body)
}

#[cfg(feature = "serde")]
mod store {
    use super::{decode_frame, encode_frame};
    use serde::de::DeserializeOwned;
    use serde::Serialize;
    use std::fs;
    use std::io::{self, Write};
    use std::path::{Path, PathBuf};

    /// A directory of named binary snapshots.
    #[derive(Debug, Clone)]
    pub struct SnapshotStore {
        dir: PathBuf,
    }

    impl SnapshotStore {
        /// Opens (creating if needed) a snapshot directory.
        pub fn open(dir: impl Into<PathBuf>) -> io::Result<SnapshotStore> {
            let dir = dir.into();
            fs::create_dir_all(&dir)?;
            Ok(SnapshotStore { dir })
        }

        /// The directory backing this store.
        pub fn dir(&self) -> &Path {
            &self.dir
        }

        fn path(&self, name: &str) -> PathBuf {
            self.dir.join(format!("{name}.snap"))
        }

        /// Whether a snapshot named `name` exists.
        pub fn contains(&self, name: &str) -> bool {
            self.path(name).is_file()
        }

        /// Serializes `value` under `name`, replacing any previous snapshot.
        pub fn save<T: Serialize>(&self, name: &str, value: &T) -> io::Result<()> {
            let body = cbr_ontology::ser::to_tokens(value)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            let tmp = self.path(&format!("{name}.tmp"));
            {
                let mut f = fs::File::create(&tmp)?;
                f.write_all(&encode_frame(&body))?;
                f.sync_all()?;
            }
            fs::rename(&tmp, self.path(name))
        }

        /// Loads and decodes the snapshot `name` as a `T`.
        pub fn load<T: DeserializeOwned>(&self, name: &str) -> io::Result<T> {
            let raw = fs::read(self.path(name))?;
            let body = decode_frame(&raw)?;
            cbr_ontology::ser::from_tokens(body)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
        }

        /// Names of all snapshots in the store.
        pub fn list(&self) -> io::Result<Vec<String>> {
            let mut names = Vec::new();
            for entry in fs::read_dir(&self.dir)? {
                let entry = entry?;
                if let Some(name) = entry.file_name().to_str().and_then(|n| n.strip_suffix(".snap"))
                {
                    names.push(name.to_string());
                }
            }
            names.sort();
            Ok(names)
        }
    }
}

#[cfg(feature = "serde")]
pub use store::SnapshotStore;

#[cfg(test)]
mod frame_tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let body = b"the quick brown fox";
        let framed = encode_frame(body);
        assert_eq!(decode_frame(&framed).unwrap(), body);
        assert_eq!(decode_frame(&encode_frame(&[])).unwrap(), &[] as &[u8]);
    }

    #[test]
    fn flipped_body_bit_fails_checksum() {
        let mut framed = encode_frame(b"payload");
        let last = framed.len() - 1;
        framed[last] ^= 0x01;
        let err = decode_frame(&framed).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn garbage_and_truncation_fail_loudly() {
        assert!(decode_frame(b"garbage").is_err());
        let framed = encode_frame(b"payload");
        assert!(decode_frame(&framed[..framed.len() - 1]).is_err());
        let mut wrong_magic = framed.clone();
        wrong_magic[7] = b'9';
        assert!(decode_frame(&wrong_magic).is_err());
    }
}

#[cfg(all(test, feature = "serde"))]
mod tests {
    use super::*;
    use cbr_corpus::Corpus;
    use cbr_ontology::ConceptId;
    use std::fs;

    fn store(tag: &str) -> SnapshotStore {
        let dir = std::env::temp_dir().join(format!("cbr-snap-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        SnapshotStore::open(dir).unwrap()
    }

    #[test]
    fn save_load_roundtrip() {
        let s = store("rt");
        let corpus = Corpus::from_concept_sets(vec![(vec![ConceptId(7)], 3)]);
        s.save("corpus", &corpus).unwrap();
        assert!(s.contains("corpus"));
        let back: Corpus = s.load("corpus").unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.get(cbr_corpus::DocId(0)).concepts(), &[ConceptId(7)]);
        fs::remove_dir_all(s.dir()).unwrap();
    }

    #[test]
    fn list_names_snapshots() {
        let s = store("list");
        s.save("b", &1u32).unwrap();
        s.save("a", &2u32).unwrap();
        assert_eq!(s.list().unwrap(), vec!["a".to_string(), "b".to_string()]);
        fs::remove_dir_all(s.dir()).unwrap();
    }

    #[test]
    fn corrupt_snapshot_fails_loudly() {
        let s = store("corrupt");
        fs::write(s.dir().join("x.snap"), b"garbage").unwrap();
        let err = s.load::<u32>("x").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        fs::remove_dir_all(s.dir()).unwrap();
    }

    #[test]
    fn missing_snapshot_is_not_found() {
        let s = store("missing");
        assert!(!s.contains("nope"));
        assert!(s.load::<u32>("nope").is_err());
        fs::remove_dir_all(s.dir()).unwrap();
    }
}
