//! Schedule-selection strategies: exhaustive DFS with sleep-set
//! (DPOR-lite) reduction, a seeded random walk, and schedule-ID replay.
//!
//! All strategies are *re-execution based*: an execution cannot be
//! checkpointed, so the DFS replays the planned prefix from scratch each
//! run and only branches at the deepest frame. Sleep sets prune
//! executions that only reorder independent operations — every
//! Mazurkiewicz trace is still visited at least once, so no finding can
//! be missed by the reduction.

use crate::analysis::independent;
use crate::rt::{Choice, Op, Tid};

/// One scheduling point on the DFS stack.
#[derive(Debug)]
struct Frame {
    /// Enabled thread ids at this point (ascending).
    enabled: Vec<Tid>,
    /// Pending op of each enabled thread (parallel to `enabled`).
    ops: Vec<Op>,
    /// Threads whose pending op here is already covered by a previously
    /// explored branch (with the op they were sleeping on).
    sleep: Vec<(Tid, Op)>,
    /// Index into `enabled` of the branch the current run takes.
    chosen: usize,
}

/// Exhaustive DFS over the schedule tree with sleep-set reduction.
#[derive(Debug, Default)]
pub struct Dfs {
    frames: Vec<Frame>,
    /// Depth reached so far in the current run.
    depth: usize,
}

impl Dfs {
    /// Creates a fresh DFS positioned at the first (leftmost) schedule.
    pub fn new() -> Dfs {
        Dfs::default()
    }

    /// The chooser for one run. Replays the planned prefix, then extends
    /// with fresh frames picking the lowest non-sleeping thread.
    pub fn choose(&mut self, step: usize, enabled: &[Tid], ops: &[Op]) -> Choice {
        debug_assert_eq!(step, self.depth);
        self.depth += 1;
        if step < self.frames.len() {
            let f = &self.frames[step];
            if f.enabled != enabled || f.ops != ops {
                return Choice::Diverged(format!(
                    "step {step}: enabled set changed between runs \
                     (was {:?}, now {:?}) — code under test is nondeterministic \
                     between sync points",
                    f.enabled, enabled
                ));
            }
            return Choice::Pick(f.enabled[f.chosen]);
        }
        // Fresh frame: inherit the parent's sleep set, dropping entries
        // that are dependent with the parent's chosen op or whose pending
        // op has changed.
        let sleep: Vec<(Tid, Op)> = match self.frames.last() {
            None => Vec::new(),
            Some(p) => {
                let p_tid = p.enabled[p.chosen];
                let p_op = &p.ops[p.chosen];
                p.sleep
                    .iter()
                    .filter(|(t, op)| {
                        let still =
                            enabled.iter().position(|&e| e == *t).is_some_and(|i| &ops[i] == op);
                        still && independent((p_tid, p_op), (*t, op))
                    })
                    .cloned()
                    .collect()
            }
        };
        let chosen = (0..enabled.len()).find(|&i| !sleep.iter().any(|(t, _)| *t == enabled[i]));
        let Some(chosen) = chosen else {
            // Every enabled op is covered elsewhere: this whole subtree
            // is redundant.
            return Choice::Prune;
        };
        let pick = enabled[chosen];
        self.frames.push(Frame { enabled: enabled.to_vec(), ops: ops.to_vec(), sleep, chosen });
        Choice::Pick(pick)
    }

    /// Advances to the next unexplored branch after a run finishes.
    /// Returns `false` when the whole tree has been explored.
    pub fn backtrack(&mut self) -> bool {
        self.depth = 0;
        loop {
            let Some(f) = self.frames.last_mut() else {
                return false;
            };
            // Retire the branch just taken into the sleep set, then find
            // the lowest enabled thread not yet covered.
            let t = f.enabled[f.chosen];
            f.sleep.push((t, f.ops[f.chosen].clone()));
            let next =
                (0..f.enabled.len()).find(|&i| !f.sleep.iter().any(|(t, _)| *t == f.enabled[i]));
            if let Some(i) = next {
                f.chosen = i;
                return true;
            }
            self.frames.pop();
        }
    }
}

/// Minimal deterministic PRNG (xorshift64*) — no external deps.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeds the generator; a zero seed is bumped to keep the state live.
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 { state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..n` (n must be non-zero).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A seeded random walk: picks uniformly among the enabled threads.
#[derive(Debug)]
pub struct RandomWalk {
    rng: XorShift64,
}

impl RandomWalk {
    /// One walk driven by `seed`.
    pub fn new(seed: u64) -> RandomWalk {
        RandomWalk { rng: XorShift64::new(seed) }
    }

    /// The chooser for one run.
    pub fn choose(&mut self, _step: usize, enabled: &[Tid], _ops: &[Op]) -> Choice {
        Choice::Pick(enabled[self.rng.below(enabled.len())])
    }
}

/// Replays a decoded schedule ID digit for digit.
#[derive(Debug)]
pub struct Replay {
    digits: Vec<u8>,
    next: usize,
}

impl Replay {
    /// Prepares to replay `digits` (from [`crate::replay::decode`]).
    pub fn new(digits: Vec<u8>) -> Replay {
        Replay { digits, next: 0 }
    }

    /// The chooser for the replayed run. Forced steps consume no digit;
    /// after the digits run out the walk continues deterministically on
    /// the lowest enabled thread.
    pub fn choose(&mut self, step: usize, enabled: &[Tid], _ops: &[Op]) -> Choice {
        if enabled.len() == 1 {
            return Choice::Pick(enabled[0]);
        }
        let Some(&d) = self.digits.get(self.next) else {
            return Choice::Pick(enabled[0]);
        };
        self.next += 1;
        match enabled.get(d as usize) {
            Some(&t) => Choice::Pick(t),
            None => Choice::Diverged(format!(
                "step {step}: schedule digit {d} out of range for {} enabled threads — \
                 the id does not match this harness/build",
                enabled.len()
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads, two independent ops each: with sleep sets the DFS
    /// must visit strictly fewer runs than the full 6-interleaving tree.
    #[test]
    fn dfs_enumerates_and_terminates() {
        // Simulated tree: at every step both threads have one pending
        // independent op; each thread takes 2 steps then finishes.
        let mut dfs = Dfs::new();
        let mut runs = 0;
        let mut complete_runs = 0;
        let mut pruned_runs = 0;
        loop {
            runs += 1;
            let mut remaining = [2usize, 2usize];
            let mut step = 0;
            let mut pruned = false;
            loop {
                let enabled: Vec<Tid> =
                    (0..2).filter(|&t| remaining[t] > 0).map(|t| t as Tid).collect();
                if enabled.is_empty() {
                    break;
                }
                let ops: Vec<Op> = enabled.iter().map(|&t| Op::AtomicRmw(t as u32)).collect();
                match dfs.choose(step, &enabled, &ops) {
                    Choice::Pick(t) => remaining[t] -= 1,
                    Choice::Prune => {
                        pruned = true;
                        break;
                    }
                    Choice::Diverged(m) => panic!("diverged: {m}"),
                }
                step += 1;
            }
            if pruned {
                pruned_runs += 1;
            } else {
                complete_runs += 1;
            }
            if !dfs.backtrack() {
                break;
            }
            assert!(runs < 100, "dfs failed to terminate");
        }
        // Ops touch distinct resources => fully independent => a single
        // Mazurkiewicz trace: sleep sets must prune below the full
        // 6-interleaving tree.
        assert!(complete_runs < 6, "{complete_runs} complete runs of 6 interleavings");
        assert!(pruned_runs > 0, "expected the sleep-set reduction to prune something");
    }

    #[test]
    fn dependent_ops_explore_both_orders() {
        // One shared resource: orders are NOT equivalent, both must run.
        let mut dfs = Dfs::new();
        let mut orders = Vec::new();
        loop {
            let mut remaining = [1usize, 1usize];
            let mut order = Vec::new();
            let mut step = 0;
            loop {
                let enabled: Vec<Tid> =
                    (0..2).filter(|&t| remaining[t] > 0).map(|t| t as Tid).collect();
                if enabled.is_empty() {
                    break;
                }
                let ops: Vec<Op> = enabled.iter().map(|_| Op::AtomicRmw(7)).collect();
                match dfs.choose(step, &enabled, &ops) {
                    Choice::Pick(t) => {
                        remaining[t] -= 1;
                        order.push(t);
                    }
                    Choice::Prune => break,
                    Choice::Diverged(m) => panic!("diverged: {m}"),
                }
                step += 1;
            }
            if order.len() == 2 {
                orders.push(order);
            }
            if !dfs.backtrack() {
                break;
            }
        }
        assert!(orders.contains(&vec![0, 1]) && orders.contains(&vec![1, 0]), "{orders:?}");
    }

    #[test]
    fn random_walk_is_deterministic_per_seed() {
        let picks = |seed| {
            let mut w = RandomWalk::new(seed);
            (0..16)
                .map(|s| match w.choose(s, &[0, 1, 2], &[Op::Yield, Op::Yield, Op::Yield]) {
                    Choice::Pick(t) => t,
                    _ => unreachable!(),
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(picks(42), picks(42));
        assert_ne!(picks(42), picks(43));
    }
}
