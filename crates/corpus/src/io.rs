//! Plain-text interchange formats for ontologies and corpora.
//!
//! Downstream users rarely have their data in this workspace's binary
//! snapshots; these tab-separated formats let the `crank` CLI (and tests)
//! load real data:
//!
//! * **ontology edge list** — one `parent<TAB>child` pair of concept labels
//!   per line; concepts are created on first mention, children are
//!   numbered in file order (which fixes their Dewey components), `#`
//!   starts a comment;
//! * **document list** — one document per line:
//!   `doc_name<TAB>label|label|...`; unknown labels are reported, not
//!   silently dropped.

use crate::document::{Corpus, DocId, Document};
use cbr_ontology::{Ontology, OntologyBuilder};
use std::fmt;

/// Errors from parsing the text formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line did not have the expected `left<TAB>right` shape.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// A document referenced a label missing from the ontology.
    UnknownLabel {
        /// 1-based line number.
        line: usize,
        /// The unresolved label.
        label: String,
    },
    /// The edge list did not validate as a single-rooted DAG.
    InvalidOntology(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
            ParseError::UnknownLabel { line, label } => {
                write!(f, "line {line}: unknown concept label {label:?}")
            }
            ParseError::InvalidOntology(e) => write!(f, "invalid ontology: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses an ontology edge list (see module docs).
pub fn parse_ontology(text: &str) -> Result<Ontology, ParseError> {
    let mut builder = OntologyBuilder::new();
    let mut by_label = cbr_ontology::FxHashMap::default();
    let mut intern = |builder: &mut OntologyBuilder, label: &str| {
        *by_label.entry(label.to_string()).or_insert_with(|| builder.add_concept(label))
    };
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((parent, child)) = line.split_once('\t') else {
            return Err(ParseError::BadLine {
                line: i + 1,
                reason: "expected `parent<TAB>child`".to_string(),
            });
        };
        let (parent, child) = (parent.trim(), child.trim());
        if parent.is_empty() || child.is_empty() {
            return Err(ParseError::BadLine {
                line: i + 1,
                reason: "empty concept label".to_string(),
            });
        }
        let p = intern(&mut builder, parent);
        let c = intern(&mut builder, child);
        builder.add_edge(p, c).map_err(|e| ParseError::InvalidOntology(e.to_string()))?;
    }
    builder.build().map_err(|e| ParseError::InvalidOntology(e.to_string()))
}

/// Serializes an ontology back to the edge-list format (parents in id
/// order, children in Dewey order — re-parsing reproduces the addresses).
pub fn render_ontology(ont: &Ontology) -> String {
    let mut out = String::new();
    out.push_str("# concept-rank ontology edge list: parent<TAB>child\n");
    for p in ont.concepts() {
        for &c in ont.children(p) {
            out.push_str(ont.label(p));
            out.push('\t');
            out.push_str(ont.label(c));
            out.push('\n');
        }
    }
    out
}

/// Parses a document list against an ontology. Returns the corpus and the
/// document names in id order.
pub fn parse_documents(text: &str, ont: &Ontology) -> Result<(Corpus, Vec<String>), ParseError> {
    let mut docs = Vec::new();
    let mut names = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name, labels)) = line.split_once('\t') else {
            return Err(ParseError::BadLine {
                line: i + 1,
                reason: "expected `name<TAB>label|label|...`".to_string(),
            });
        };
        let mut concepts = Vec::new();
        for label in labels.split('|') {
            let label = label.trim();
            if label.is_empty() {
                continue;
            }
            let c = ont.concept_by_label(label).ok_or_else(|| ParseError::UnknownLabel {
                line: i + 1,
                label: label.to_string(),
            })?;
            concepts.push(c);
        }
        let tokens = concepts.len() as u32;
        docs.push(Document::new(DocId::from_index(docs.len()), concepts, tokens));
        names.push(name.trim().to_string());
    }
    Ok((Corpus::new(docs), names))
}

/// Parses raw clinical-note documents: one per line,
/// `name<TAB>free text…`, pushed through a [`ConceptExtractor`]
/// (tokenization, abbreviation expansion, negation filtering). Unknown
/// terms are simply not matched — unlike [`parse_documents`], free text is
/// allowed to contain anything.
pub fn parse_text_documents(
    text: &str,
    extractor: &crate::extract::ConceptExtractor,
) -> Result<(Corpus, Vec<String>), ParseError> {
    let mut docs = Vec::new();
    let mut names = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name, body)) = line.split_once('\t') else {
            return Err(ParseError::BadLine {
                line: i + 1,
                reason: "expected `name<TAB>note text`".to_string(),
            });
        };
        let doc = extractor.extract_document(DocId::from_index(docs.len()), body);
        docs.push(doc);
        names.push(name.trim().to_string());
    }
    Ok((Corpus::new(docs), names))
}

/// Serializes a corpus to the document-list format.
pub fn render_documents(corpus: &Corpus, ont: &Ontology, names: &[String]) -> String {
    let mut out = String::new();
    out.push_str("# concept-rank document list: name<TAB>label|label|...\n");
    for d in corpus.documents() {
        let name = names.get(d.id().index()).cloned().unwrap_or_else(|| d.id().to_string());
        out.push_str(&name);
        out.push('\t');
        let labels: Vec<&str> = d.concepts().iter().map(|&c| ont.label(c)).collect();
        out.push_str(&labels.join("|"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const ONT: &str = "\
# tiny hierarchy
root\tdisease
root\tfinding
disease\theart disease
heart disease\tstenosis
finding\tstenosis
";

    #[test]
    fn parses_edge_list_with_dewey_order() {
        let ont = parse_ontology(ONT).unwrap();
        assert_eq!(ont.len(), 5);
        let root = ont.concept_by_label("root").unwrap();
        assert_eq!(ont.root(), root);
        let disease = ont.concept_by_label("disease").unwrap();
        assert_eq!(ont.child_ordinal(root, disease), Some(1));
        let stenosis = ont.concept_by_label("stenosis").unwrap();
        assert_eq!(ont.parents(stenosis).len(), 2, "DAG edge preserved");
    }

    #[test]
    fn ontology_roundtrips_through_render() {
        let ont = parse_ontology(ONT).unwrap();
        let rendered = render_ontology(&ont);
        let back = parse_ontology(&rendered).unwrap();
        assert_eq!(back.len(), ont.len());
        for c in ont.concepts() {
            let label = ont.label(c);
            let b = back.concept_by_label(label).unwrap();
            let children_a: Vec<&str> = ont.children(c).iter().map(|&x| ont.label(x)).collect();
            let children_b: Vec<&str> = back.children(b).iter().map(|&x| back.label(x)).collect();
            assert_eq!(children_a, children_b, "children of {label}");
        }
    }

    #[test]
    fn rejects_malformed_edges() {
        assert!(matches!(parse_ontology("no-tab-here"), Err(ParseError::BadLine { line: 1, .. })));
        assert!(matches!(parse_ontology("a\t"), Err(ParseError::BadLine { .. })));
        // Two roots.
        assert!(matches!(parse_ontology("a\tb\nc\td"), Err(ParseError::InvalidOntology(_))));
    }

    #[test]
    fn parses_documents_and_reports_unknown_labels() {
        let ont = parse_ontology(ONT).unwrap();
        let (corpus, names) =
            parse_documents("patient-1\tstenosis|heart disease\npatient-2\tfinding\n", &ont)
                .unwrap();
        assert_eq!(corpus.len(), 2);
        assert_eq!(names, vec!["patient-1", "patient-2"]);
        assert_eq!(corpus.get(DocId(0)).num_concepts(), 2);

        let err = parse_documents("p\tnot-a-concept", &ont).unwrap_err();
        assert!(matches!(err, ParseError::UnknownLabel { line: 1, .. }));
        assert!(err.to_string().contains("not-a-concept"));
    }

    #[test]
    fn documents_roundtrip_through_render() {
        let ont = parse_ontology(ONT).unwrap();
        let (corpus, names) = parse_documents("a\tstenosis\nb\tdisease|finding\n", &ont).unwrap();
        let rendered = render_documents(&corpus, &ont, &names);
        let (back, back_names) = parse_documents(&rendered, &ont).unwrap();
        assert_eq!(back_names, names);
        for (x, y) in corpus.documents().zip(back.documents()) {
            assert_eq!(x.concepts(), y.concepts());
        }
    }

    #[test]
    fn parses_text_documents_through_the_extractor() {
        use crate::extract::{ConceptExtractor, ExtractorConfig};
        let ont = parse_ontology(ONT).unwrap();
        let ex = ConceptExtractor::new(&ont, ExtractorConfig::default());
        let input = "note-a\tPatient presents with stenosis; no heart disease.\n\
                     note-b\tUnremarkable exam, disease of unknown site.\n";
        let (corpus, names) = parse_text_documents(input, &ex).unwrap();
        assert_eq!(names, vec!["note-a", "note-b"]);
        let stenosis = ont.concept_by_label("stenosis").unwrap();
        let heart = ont.concept_by_label("heart disease").unwrap();
        let disease = ont.concept_by_label("disease").unwrap();
        assert!(corpus.get(DocId(0)).contains(stenosis));
        assert!(!corpus.get(DocId(0)).contains(heart), "negated mention dropped");
        assert!(corpus.get(DocId(1)).contains(disease));
        // Token counts come from the raw text, not the concepts.
        assert!(corpus.get(DocId(0)).token_count() >= 7);

        assert!(matches!(
            parse_text_documents("no-tab-line", &ex),
            Err(ParseError::BadLine { .. })
        ));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let ont = parse_ontology(ONT).unwrap();
        let (corpus, _) = parse_documents("# header\n\np\tstenosis\n  \n", &ont).unwrap();
        assert_eq!(corpus.len(), 1);
    }
}
