//! Finding types and the machine-readable report.

use std::fmt::Write as _;

/// One lint finding or invariant failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier (`A01`..`A06`, `ALLOW`, or `INV-*`).
    pub rule: String,
    /// Workspace-relative file (or check name for invariants).
    pub file: String,
    /// 1-based line, or 0 when a finding has no line anchor.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Finding {
    /// Convenience constructor.
    pub fn new(rule: &str, file: &str, line: usize, message: impl Into<String>) -> Finding {
        Finding { rule: rule.to_string(), file: file.to_string(), line, message: message.into() }
    }
}

/// The aggregate result of an audit run.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived the allowlist; non-empty means failure.
    pub findings: Vec<Finding>,
    /// Names of checks/rules that ran clean (for the human summary).
    pub passed: Vec<String>,
}

impl Report {
    /// Whether the audit passed.
    pub fn ok(&self) -> bool {
        self.findings.is_empty()
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: Report) {
        self.findings.extend(other.findings);
        self.passed.extend(other.passed);
    }

    /// Renders the human-readable summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for p in &self.passed {
            let _ = writeln!(out, "ok   {p}");
        }
        for f in &self.findings {
            if f.line > 0 {
                let _ = writeln!(out, "FAIL [{}] {}:{}: {}", f.rule, f.file, f.line, f.message);
            } else {
                let _ = writeln!(out, "FAIL [{}] {}: {}", f.rule, f.file, f.message);
            }
        }
        let _ = writeln!(
            out,
            "audit: {} check(s) passed, {} finding(s)",
            self.passed.len(),
            self.findings.len()
        );
        out
    }

    /// Renders the report as a JSON object (hand-rolled: the default build
    /// has no serde).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"ok\": ");
        out.push_str(if self.ok() { "true" } else { "false" });
        out.push_str(",\n  \"passed\": [");
        for (i, p) in self.passed.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            push_json_str(&mut out, p);
        }
        out.push_str("],\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            out.push_str("{\"rule\": ");
            push_json_str(&mut out, &f.rule);
            out.push_str(", \"file\": ");
            push_json_str(&mut out, &f.file);
            let _ = write!(out, ", \"line\": {}", f.line);
            out.push_str(", \"message\": ");
            push_json_str(&mut out, &f.message);
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_structure() {
        let mut r = Report::default();
        r.passed.push("A01".to_string());
        r.findings.push(Finding::new("A02", "a/b.rs", 3, "no \"unwrap\"\nhere"));
        let json = r.render_json();
        assert!(json.contains("\"ok\": false"));
        assert!(json.contains("\\\"unwrap\\\"\\nhere"));
        assert!(json.contains("\"line\": 3"));
    }

    #[test]
    fn empty_report_is_ok() {
        let r = Report::default();
        assert!(r.ok());
        assert!(r.render_json().contains("\"ok\": true"));
    }
}
