//! `cbr-audit` — run the workspace's self-audit from the command line.
//!
//! ```text
//! cbr-audit lint        [--json]   static analysis rules A01–A06
//! cbr-audit flow        [--json]   call-graph dataflow rules F01–F05
//! cbr-audit race        [--json]   lock-discipline rules R01–R05
//! cbr-audit bound       [--json]   numeric-safety rules B01–B05
//! cbr-audit invariants  [--json]   structural validate() suite
//! cbr-audit all         [--json]   lint + flow + race + bound + invariants
//! ```
//!
//! Exits 0 when clean, 1 when any finding survives the allowlist, 2 on
//! usage errors.

#![forbid(unsafe_code)]

use cbr_audit::report::Report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let command = args.iter().find(|a| !a.starts_with("--")).map(String::as_str);

    let root = cbr_audit::workspace_root();
    let mut report = Report::default();
    match command {
        Some("lint") => report.merge(cbr_audit::run_lint(&root)),
        Some("flow") => report.merge(cbr_flow::run_workspace(&root).report),
        Some("race") => report.merge(cbr_race::run_workspace(&root).report),
        Some("bound") => report.merge(cbr_bound::run_workspace(&root).report),
        Some("invariants") => report.merge(cbr_audit::invariants::run()),
        Some("all") => {
            report.merge(cbr_audit::run_lint(&root));
            report.merge(cbr_flow::run_workspace(&root).report);
            report.merge(cbr_race::run_workspace(&root).report);
            report.merge(cbr_bound::run_workspace(&root).report);
            report.merge(cbr_audit::invariants::run());
        }
        _ => {
            eprintln!("usage: cbr-audit <lint|flow|race|bound|invariants|all> [--json]");
            std::process::exit(2);
        }
    }

    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    std::process::exit(if report.ok() { 0 } else { 1 });
}
