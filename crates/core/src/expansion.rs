//! Ontology-based query expansion.
//!
//! The related work (Section 2) surveys expansion pipelines — Matos et
//! al.'s concept-oriented expansion, Lu et al.'s MeSH expansion in PubMed,
//! Ding et al.'s concept-instance substitutions ("pet" → "cat"/"dog") —
//! and footnote 3 specifies how the paper's own scores combine across
//! expanded queries: `Ddq(d, qi)` is normalized by the size of each query
//! variant. This module implements that recipe on top of kNDS:
//!
//! 1. each query concept contributes **substitution variants**: the
//!    concepts within valid-path distance `radius` of it (nearest first,
//!    capped);
//! 2. each variant query runs through the engine;
//! 3. documents merge by the **minimum normalized distance** across
//!    variants (footnote 3's `Ddq / |q|`).

use crate::engine::{Engine, EngineError};
use cbr_corpus::DocId;
use cbr_knds::RankedDoc;
use cbr_ontology::{distance::multi_source_distances, ConceptId, FxHashMap, Ontology};

/// Expansion configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpansionConfig {
    /// Maximum valid-path distance of a substitute from the original
    /// concept.
    pub radius: u32,
    /// Maximum substitutes kept per query concept (nearest first).
    pub max_substitutes: usize,
    /// Maximum total variant queries (guards combinatorial blowup; variants
    /// beyond the cap are dropped in generation order).
    pub max_variants: usize,
}

impl Default for ExpansionConfig {
    fn default() -> Self {
        ExpansionConfig { radius: 2, max_substitutes: 3, max_variants: 16 }
    }
}

/// The substitutes of one query concept, nearest first (the concept itself
/// is always the first entry at distance 0).
#[derive(Debug, Clone, PartialEq)]
pub struct Substitutes {
    /// The original query concept.
    pub concept: ConceptId,
    /// `(substitute, valid-path distance)`, ascending by distance.
    pub alternatives: Vec<(ConceptId, u32)>,
}

/// Computes the substitution sets for each query concept.
pub fn substitutes(
    ont: &Ontology,
    query: &[ConceptId],
    config: &ExpansionConfig,
    eligible: impl Fn(ConceptId) -> bool,
) -> Vec<Substitutes> {
    query
        .iter()
        .map(|&qc| {
            let dist = multi_source_distances(ont, &[qc]);
            let mut alts: Vec<(ConceptId, u32)> = ont
                .concepts()
                .filter(|&c| dist[c.index()] <= config.radius && eligible(c))
                .map(|c| (c, dist[c.index()]))
                .collect();
            alts.sort_unstable_by_key(|&(c, d)| (d, c));
            alts.truncate(config.max_substitutes + 1); // keep the original + n
            Substitutes { concept: qc, alternatives: alts }
        })
        .collect()
}

/// One-substitution-at-a-time variant generation: the original query plus,
/// for each query position, each substitute swapped in. (Full cartesian
/// products explode; single swaps match the Ding et al. substitution
/// semantics the paper cites.)
pub fn variants(subs: &[Substitutes], config: &ExpansionConfig) -> Vec<Vec<ConceptId>> {
    let original: Vec<ConceptId> = subs.iter().map(|s| s.concept).collect();
    let mut out = vec![original.clone()];
    'outer: for (i, s) in subs.iter().enumerate() {
        for &(alt, d) in &s.alternatives {
            if d == 0 {
                continue; // the original itself
            }
            let mut v = original.clone();
            v[i] = alt;
            v.sort_unstable();
            v.dedup();
            if !out.contains(&v) {
                out.push(v);
            }
            if out.len() >= config.max_variants {
                break 'outer;
            }
        }
    }
    out
}

impl Engine {
    /// Expanded RDS: runs every variant query and merges documents by their
    /// minimum size-normalized distance (footnote 3). Returns the top-k by
    /// merged score along with the number of variants evaluated.
    pub fn rds_expanded(
        &self,
        query: &[ConceptId],
        k: usize,
        config: &ExpansionConfig,
    ) -> Result<(Vec<RankedDoc>, usize), EngineError> {
        let q: Vec<ConceptId> = query.iter().copied().filter(|&c| self.eligible(c)).collect();
        if q.is_empty() {
            return Err(EngineError::EmptyQuery);
        }
        let subs = substitutes(self.ontology(), &q, config, |c| self.eligible(c));
        let variant_queries = variants(&subs, config);

        let mut best: FxHashMap<DocId, f64> = FxHashMap::default();
        for v in &variant_queries {
            let r = self.rds(v, k)?;
            for hit in &r.results {
                let normalized = hit.distance / v.len() as f64;
                best.entry(hit.doc).and_modify(|d| *d = d.min(normalized)).or_insert(normalized);
            }
        }
        let mut merged: Vec<RankedDoc> =
            best.into_iter().map(|(doc, distance)| RankedDoc { doc, distance }).collect();
        merged.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.doc.cmp(&b.doc)));
        merged.truncate(k);
        Ok((merged, variant_queries.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineBuilder;
    use cbr_corpus::Corpus;
    use cbr_ontology::fixture;

    fn engine() -> (Engine, Vec<ConceptId>, Vec<ConceptId>) {
        let fig = fixture::figure3();
        let c = |n: &str| fig.concept(n);
        // Doc 1 contains M — distance 2 from I (sibling under I? M is I's
        // child: distance 1). An expanded query substituting I -> M reaches
        // it at distance 0.
        let corpus = Corpus::from_concept_sets(vec![
            (vec![c("C")], 0),
            (vec![c("M")], 0),
            (vec![c("I")], 0),
        ]);
        let q = vec![c("I")];
        let m = vec![c("M")];
        (EngineBuilder::new().build(fig.ontology, corpus), q, m)
    }

    #[test]
    fn substitutes_are_sorted_and_capped() {
        let fig = fixture::figure3();
        let cfg = ExpansionConfig { radius: 2, max_substitutes: 4, max_variants: 32 };
        let subs = substitutes(&fig.ontology, &[fig.concept("I")], &cfg, |_| true);
        assert_eq!(subs.len(), 1);
        let alts = &subs[0].alternatives;
        assert_eq!(alts[0], (fig.concept("I"), 0), "the concept itself leads");
        assert!(alts.len() <= 5);
        assert!(alts.windows(2).all(|w| w[0].1 <= w[1].1), "sorted by distance");
        for &(_, d) in alts {
            assert!(d <= 2);
        }
    }

    #[test]
    fn variants_swap_one_position() {
        let fig = fixture::figure3();
        let cfg = ExpansionConfig::default();
        let subs =
            substitutes(&fig.ontology, &[fig.concept("I"), fig.concept("L")], &cfg, |_| true);
        let vs = variants(&subs, &cfg);
        assert_eq!(vs[0], vec![fig.concept("I"), fig.concept("L")]);
        assert!(vs.len() > 1);
        for v in &vs[1..] {
            assert!(!v.is_empty() && v.len() <= 2);
        }
        assert!(vs.len() <= cfg.max_variants);
    }

    #[test]
    fn expansion_finds_documents_plain_rds_ranks_lower() {
        let (engine, q, _m) = engine();
        let plain = engine.rds(&q, 3).unwrap();
        // Plain RDS: doc 2 (contains I) at 0; doc 1 (contains M) at 1.
        assert_eq!(plain.results[0].doc, DocId(2));
        assert_eq!(plain.results[1].doc, DocId(1));
        assert_eq!(plain.results[1].distance, 1.0);

        let cfg = ExpansionConfig { radius: 1, max_substitutes: 4, max_variants: 8 };
        let (expanded, nvars) = engine.rds_expanded(&q, 3, &cfg).unwrap();
        assert!(nvars > 1, "expansion must generate variants");
        // Doc 1 now matches the M-variant exactly: merged distance 0,
        // tying with doc 2.
        let d1 = expanded.iter().find(|r| r.doc == DocId(1)).unwrap();
        assert_eq!(d1.distance, 0.0);
    }

    #[test]
    fn zero_radius_reduces_to_plain_rds() {
        let (engine, q, _m) = engine();
        let cfg = ExpansionConfig { radius: 0, max_substitutes: 0, max_variants: 4 };
        let (expanded, nvars) = engine.rds_expanded(&q, 3, &cfg).unwrap();
        assert_eq!(nvars, 1);
        let plain = engine.rds(&q, 3).unwrap();
        for (a, b) in expanded.iter().zip(plain.results.iter()) {
            assert_eq!(a.doc, b.doc);
            assert_eq!(a.distance, b.distance / q.len() as f64);
        }
    }
}
