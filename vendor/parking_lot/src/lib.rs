//! Offline subset of the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API (the
//! subset the workspace uses). The sandbox has no registry access; drop
//! the `[patch.crates-io]` entry to use the real crate.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Poison-free reader-writer lock over `std::sync::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Poison-free mutex over `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_panic() {
        let l = std::sync::Arc::new(Mutex::new(0));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.lock();
            panic!("poison attempt");
        })
        .join();
        *l.lock() += 1;
        assert_eq!(*l.lock(), 1);
    }
}
