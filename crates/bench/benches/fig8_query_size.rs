//! Criterion bench for Figure 8: RDS query time vs query size nq,
//! kNDS vs the no-pruning baseline.

use cbr_bench::{Scale, Workbench};
use cbr_knds::{baseline, Knds, KndsConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_fig8(c: &mut Criterion) {
    let wb = Workbench::build(Scale::micro());
    for coll in &wb.collections {
        let mut group = c.benchmark_group(format!("fig8/{}", coll.name));
        group.sample_size(10).measurement_time(Duration::from_secs(2));
        let cfg = KndsConfig::default().with_error_threshold(coll.default_eps);
        let engine = Knds::new(&wb.ontology, &coll.source, cfg);
        for nq in [1usize, 5, 10] {
            let q = coll.rds_queries(1, nq, 11).remove(0);
            group.bench_with_input(BenchmarkId::new("kNDS", nq), &q, |b, q| {
                b.iter(|| black_box(engine.rds(black_box(q), 10).results.len()))
            });
            group.bench_with_input(BenchmarkId::new("baseline", nq), &q, |b, q| {
                b.iter(|| {
                    black_box(
                        baseline::rds(&wb.ontology, &coll.source, black_box(q), 10).results.len(),
                    )
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
