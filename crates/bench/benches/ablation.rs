//! Criterion bench for the design-choice ablations:
//! BFS state dedup on/off, queue watermark, TA vs kNDS (RDS), and
//! fresh-per-query workspaces vs one reused `KndsWorkspace`.

use cbr_bench::{Scale, Workbench};
use cbr_knds::{ta, Knds, KndsConfig, KndsWorkspace};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_ablation(c: &mut Criterion) {
    let wb = Workbench::build(Scale::micro());
    let coll = wb.collection("RADIO");
    let q = coll.rds_queries(1, 5, 31).remove(0);
    let sds_q = coll.sds_queries(1, 32).remove(0);

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10).measurement_time(Duration::from_secs(2));

    for dedup in [true, false] {
        let cfg =
            KndsConfig::default().with_error_threshold(coll.default_eps).with_dedup_visits(dedup);
        let engine = Knds::new(&wb.ontology, &coll.source, cfg);
        group.bench_with_input(BenchmarkId::new("dedup", dedup), &q, |b, q| {
            b.iter(|| black_box(engine.rds(black_box(q), 10).results.len()))
        });
    }

    for cap in [100usize, 50_000] {
        let cfg = KndsConfig::default().with_error_threshold(coll.default_eps).with_queue_cap(cap);
        let engine = Knds::new(&wb.ontology, &coll.source, cfg);
        group.bench_with_input(BenchmarkId::new("queue_cap", cap), &sds_q, |b, q| {
            b.iter(|| black_box(engine.sds(black_box(q), 10).results.len()))
        });
    }

    group.bench_function("ta_rds", |b| {
        b.iter(|| black_box(ta::rds(&wb.ontology, &coll.source, &q, 10).results.len()))
    });
    let engine = Knds::new(
        &wb.ontology,
        &coll.source,
        KndsConfig::default().with_error_threshold(coll.default_eps),
    );
    group.bench_function("knds_rds", |b| b.iter(|| black_box(engine.rds(&q, 10).results.len())));

    // Zero-allocation query path: fresh per-query state vs one warm
    // workspace reused across iterations (RDS and SDS).
    group.bench_function("workspace_fresh_rds", |b| {
        b.iter(|| black_box(engine.rds(&q, 10).results.len()))
    });
    group.bench_function("workspace_reused_rds", |b| {
        let mut ws = KndsWorkspace::new();
        b.iter(|| black_box(engine.rds_with(&mut ws, &q, 10).results.len()))
    });
    group.bench_function("workspace_fresh_sds", |b| {
        b.iter(|| black_box(engine.sds(&sds_q, 10).results.len()))
    });
    group.bench_function("workspace_reused_sds", |b| {
        let mut ws = KndsWorkspace::new();
        b.iter(|| black_box(engine.sds_with(&mut ws, &sds_q, 10).results.len()))
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
