//! End-to-end EMR pipeline: free text → concepts → index → queries.
//!
//! Reproduces the full ingestion path of Section 6.1: clinical notes are
//! tokenized, abbreviations expanded, concept mentions matched against the
//! ontology lexicon, negated mentions ("absence of bradycardia") dropped,
//! and the resulting concept sets indexed and queried. The MetaMap role is
//! played by the dictionary extractor of `cbr-corpus`.
//!
//! ```sh
//! cargo run --release --example emr_pipeline
//! ```

use cbr_corpus::{ConceptExtractor, Corpus, DocId, ExtractorConfig, NoteGenerator, Polarity};
use concept_rank::prelude::*;
use concept_rank::EngineBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // A small ontology so concept labels stay unique natural phrases.
    let ontology = OntologyGenerator::new(GeneratorConfig::small(600)).generate();

    // The extractor's lexicon comes from the ontology labels; register the
    // initials-style abbreviations a public abbreviation list would give.
    let mut extractor = ConceptExtractor::new(&ontology, ExtractorConfig::default());
    for c in ontology.concepts() {
        let label = ontology.label(c).to_string();
        extractor.add_abbreviation(&NoteGenerator::abbreviation(&label), &label);
    }
    println!("lexicon: {} phrases\n", extractor.lexicon_size());

    // Author 40 synthetic clinical notes: each mentions its "true" concepts
    // (sometimes abbreviated) plus negated distractors.
    let mut rng = StdRng::seed_from_u64(2014);
    let eligible: Vec<ConceptId> =
        ontology.concepts().filter(|&c| ontology.depth(c) >= 3).collect();
    let mut truth: Vec<Vec<ConceptId>> = Vec::new();
    let mut notes: Vec<String> = Vec::new();
    for i in 0..40 {
        let n = rng.random_range(4..10);
        let mut concepts: Vec<ConceptId> =
            (0..n).map(|_| eligible[rng.random_range(0..eligible.len())]).collect();
        concepts.sort_unstable();
        concepts.dedup();
        let distractors: Vec<ConceptId> = (0..4)
            .map(|_| eligible[rng.random_range(0..eligible.len())])
            .filter(|d| !concepts.contains(d))
            .collect();
        let note = NoteGenerator::new(&ontology, 9_000 + i).render(&concepts, &distractors);
        truth.push(concepts);
        notes.push(note);
    }
    println!("example note:\n  {}\n", &notes[0][..notes[0].len().min(240)]);

    // Extract concept sets, reporting polarity statistics.
    let mut documents = Vec::new();
    let mut negated = 0usize;
    for (i, note) in notes.iter().enumerate() {
        negated +=
            extractor.extract(note).iter().filter(|m| m.polarity == Polarity::Negative).count();
        let doc = extractor.extract_document(DocId::from_index(i), note);
        documents.push(doc);
    }
    println!("extracted {} notes; {} negated mentions dropped", documents.len(), negated);

    // Extraction quality against the known ground truth.
    let mut recovered = 0usize;
    let mut total = 0usize;
    for (doc, t) in documents.iter().zip(&truth) {
        total += t.len();
        recovered += t.iter().filter(|&&c| doc.contains(c)).count();
    }
    println!(
        "recall of positive mentions: {recovered}/{total} ({:.1}%)\n",
        100.0 * recovered as f64 / total as f64
    );

    // Index and query.
    let corpus = Corpus::new(documents);
    let engine = EngineBuilder::new().build(ontology, corpus);
    let query = truth[7][..2.min(truth[7].len())].to_vec();
    println!("querying for:");
    for &c in &query {
        println!("  - {}", engine.ontology().label(c));
    }
    let hits = engine.rds(&query, 5).expect("query non-empty");
    println!("top-5 notes:");
    for hit in &hits.results {
        let is_source = if hit.doc == DocId(7) { "  ← the note the query came from" } else { "" };
        println!("  {}  Ddq = {}{is_source}", hit.doc, hit.distance);
    }
    assert_eq!(hits.results[0].distance, 0.0, "source note must match exactly");
}
