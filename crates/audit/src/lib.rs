//! `cbr-audit`: self-hosted static analysis and structural-invariant
//! audit for the concept-rank workspace.
//!
//! Two halves, one binary:
//!
//! * **Lint** ([`run_lint`]) — token-level rules `A01`–`A09` over every
//!   workspace source and manifest, filtered through the checked-in
//!   `audit.allow` ratchet. No external parser: the build environment is
//!   offline, so the scanner is ~300 lines of hand-rolled lexing that
//!   understands exactly what the rules need (comments, literals,
//!   `#[cfg(test)]` and `#[cfg(feature = "serde")]` regions).
//! * **Invariants** ([`invariants::run`]) — every `validate()` in the
//!   workspace (ontology graph + Dewey paths, forward/inverted index
//!   pair, tuned D-Radix DAGs with brute-force spot checks), corruption
//!   injection to prove the validators catch what they claim to, snapshot
//!   frame round-trip hashing, and a deterministic stress of the
//!   `SharedEngine` workspace pool.
//!
//! The shared scanner, report, and allowlist machinery lives in
//! `cbr-flow` (the bottom of the tooling stack, which also runs the
//! call-graph dataflow rules `F01`–`F05`); this crate re-exports those
//! modules so existing `cbr_audit::scanner::..` paths keep working, and
//! `cbr-audit all` runs lint + flow + invariants in one gate.
//!
//! ```sh
//! cargo run -p cbr-audit -- all          # lint + flow + invariants
//! cargo run -p cbr-audit -- lint --json  # machine-readable report
//! ```
//!
//! The binary exits non-zero when any finding survives the allowlist, so
//! `scripts/check.sh` can gate merges on it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod invariants;
pub mod rules;

pub use cbr_flow::{allowlist, report, scanner};
pub use cbr_flow::{collect_manifests, collect_sources, workspace_root};

use report::Report;
use std::path::Path;

/// Runs the lint half: all rules over all sources and manifests, with
/// `audit.allow` applied.
pub fn run_lint(root: &Path) -> Report {
    let files = collect_sources(root);
    let mut findings = rules::run_source_rules(&files);
    for (rel, text) in collect_manifests(root) {
        findings.extend(rules::a06_no_registry_deps(&rel, &text));
    }

    let allow_content = allowlist::load(root, "audit.allow");
    let findings = allowlist::ratchet(findings, &allow_content, "audit.allow");

    let mut report = Report { findings, passed: Vec::new() };
    if report.ok() {
        for rule in ["A01", "A02", "A03", "A04", "A05", "A06", "A07", "A08", "A09"] {
            report.passed.push(format!("lint {rule} ({} files)", files.len()));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The audit must be silent on its own tree: every rule passes on the
    /// current sources modulo the checked-in allowlist.
    #[test]
    fn current_tree_is_clean() {
        let report = run_lint(&workspace_root());
        assert!(report.ok(), "lint findings on the current tree:\n{}", report.render_text());
    }

    #[test]
    fn collectors_find_the_workspace() {
        let root = workspace_root();
        let files = collect_sources(&root);
        assert!(files.iter().any(|f| f.rel == "crates/knds/src/engine.rs"));
        assert!(files.iter().any(|f| f.rel == "src/lib.rs"));
        assert!(!files.iter().any(|f| f.rel.starts_with("vendor/")));
        let manifests = collect_manifests(&root);
        assert!(manifests.iter().any(|(rel, _)| rel == "Cargo.toml"));
        assert!(manifests.iter().any(|(rel, _)| rel == "vendor/serde/Cargo.toml"));
    }
}
