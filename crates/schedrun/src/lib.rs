//! Model-checked harnesses over the engine's concurrent paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod report;
