//! Small ordering helpers shared by the engines.

use cbr_corpus::DocId;
use cbr_ontology::ConceptId;
use std::cmp::Ordering;

/// Normalizes a query into `out`: copies, sorts, and deduplicates the
/// concepts (queries are sets — Definition 1). Shared by every engine
/// entry point so the set semantics cannot drift between them; writes
/// into a caller-owned buffer so warm workspaces reuse its capacity.
pub(crate) fn normalize_query_into(query: &[ConceptId], out: &mut Vec<ConceptId>) {
    out.clear();
    out.extend_from_slice(query);
    out.sort_unstable();
    out.dedup();
}

/// A totally ordered `f64` wrapper for heap keys, ordered by
/// [`f64::total_cmp`]. Distances are never NaN; if a (positive) one sneaks
/// in it orders after +∞.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Bounded max-heap of the k best (lowest-distance) documents — the `Hk`
/// of Algorithm 2. `peek_worst` is the paper's `D⁺ₖ` when full.
#[derive(Debug)]
pub struct TopK {
    k: usize,
    heap: std::collections::BinaryHeap<(OrdF64, DocId)>,
}

impl TopK {
    /// Creates an empty heap of capacity `k` (≥ 1).
    pub fn new(k: usize) -> TopK {
        assert!(k > 0, "k must be positive");
        TopK { k, heap: std::collections::BinaryHeap::with_capacity(k + 1) }
    }

    /// Offers a document; keeps it only if it beats the current k-th.
    /// Ties on distance prefer the smaller document id (deterministic).
    pub fn offer(&mut self, doc: DocId, distance: f64) {
        let key = (OrdF64(distance), doc);
        if self.heap.len() < self.k {
            self.heap.push(key);
        } else if let Some(&worst) = self.heap.peek() {
            if key < worst {
                self.heap.pop();
                self.heap.push(key);
            }
        }
    }

    /// Whether k documents are held.
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// Number of documents held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no documents are held.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The distance of the k-th (worst kept) document — `D⁺ₖ`; `+∞` while
    /// not yet full.
    pub fn threshold(&self) -> f64 {
        if self.is_full() {
            self.heap.peek().map(|&(OrdF64(d), _)| d).unwrap_or(f64::INFINITY)
        } else {
            f64::INFINITY
        }
    }

    /// Extracts the results sorted by ascending distance (ties by id).
    pub fn into_sorted(self) -> Vec<(DocId, f64)> {
        let mut v: Vec<(OrdF64, DocId)> = self.heap.into_vec();
        v.sort_unstable();
        v.into_iter().map(|(OrdF64(d), doc)| (doc, d)).collect()
    }

    /// Iterates over the held entries in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (DocId, f64)> + '_ {
        self.heap.iter().map(|&(OrdF64(d), doc)| (doc, d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordf64_total_order() {
        assert!(OrdF64(1.0) < OrdF64(2.0));
        assert!(OrdF64(f64::INFINITY) > OrdF64(1e300));
        assert!(OrdF64(f64::NAN) > OrdF64(f64::INFINITY), "NaN orders last");
        assert_eq!(OrdF64(3.0).cmp(&OrdF64(3.0)), std::cmp::Ordering::Equal);
    }

    #[test]
    fn topk_keeps_k_best() {
        let mut h = TopK::new(2);
        assert_eq!(h.threshold(), f64::INFINITY);
        h.offer(DocId(1), 5.0);
        h.offer(DocId(2), 3.0);
        h.offer(DocId(3), 4.0); // evicts 5.0
        h.offer(DocId(4), 9.0); // rejected
        assert!(h.is_full());
        assert_eq!(h.threshold(), 4.0);
        assert_eq!(h.into_sorted(), vec![(DocId(2), 3.0), (DocId(3), 4.0)]);
    }

    #[test]
    fn topk_breaks_ties_by_doc_id() {
        let mut h = TopK::new(1);
        h.offer(DocId(7), 2.0);
        h.offer(DocId(3), 2.0); // same distance, lower id wins
        assert_eq!(h.into_sorted(), vec![(DocId(3), 2.0)]);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        TopK::new(0);
    }
}
