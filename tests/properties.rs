//! Property-based tests over the core invariants.
//!
//! Random ontologies are derived from proptest-chosen seeds through the
//! deterministic generator, then concept sets and queries are sampled from
//! them. Each property pins an invariant the paper's algorithms rely on.

use cbr_corpus::Corpus;
use cbr_dradix::{brute, Drc};
use cbr_index::MemorySource;
use cbr_knds::{baseline, Knds, KndsConfig, KndsWorkspace};
use cbr_ontology::{
    concept_distance, concept_distance_graph, distance::multi_source_distances, ConceptId,
    GeneratorConfig, Ontology, OntologyGenerator,
};
use proptest::prelude::*;

fn ontology(seed: u64, n: usize) -> Ontology {
    OntologyGenerator::new(GeneratorConfig::small(n).with_seed(seed)).generate()
}

fn pick_concepts(ont: &Ontology, picks: &[u32]) -> Vec<ConceptId> {
    let mut v: Vec<ConceptId> = picks.iter().map(|&p| ConceptId(p % ont.len() as u32)).collect();
    v.sort_unstable();
    v.dedup();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The Dewey-address distance equals the graph-BFS distance — two
    /// independent formulations of the valid-path metric.
    #[test]
    fn dewey_and_graph_distances_agree(
        seed in 0u64..500,
        a in 0u32..10_000,
        b in 0u32..10_000,
    ) {
        let ont = ontology(seed, 80);
        let pt = ont.path_table();
        let ca = ConceptId(a % ont.len() as u32);
        let cb = ConceptId(b % ont.len() as u32);
        prop_assert_eq!(concept_distance(pt, ca, cb), concept_distance_graph(&ont, ca, cb));
    }

    /// Metric sanity: identity, symmetry, and the depth bounds
    /// |depth(a)−depth(b)| ≤ D(a,b) ≤ depth(a)+depth(b).
    /// (The triangle inequality does NOT hold for valid-path distances —
    /// G/J/F in Figure 3 is a counterexample — so it is deliberately not
    /// asserted.)
    #[test]
    fn distance_metric_sanity(
        seed in 0u64..500,
        a in 0u32..10_000,
        b in 0u32..10_000,
    ) {
        let ont = ontology(seed, 80);
        let pt = ont.path_table();
        let ca = ConceptId(a % ont.len() as u32);
        let cb = ConceptId(b % ont.len() as u32);
        let d = concept_distance(pt, ca, cb);
        prop_assert_eq!(concept_distance(pt, ca, ca), 0);
        prop_assert_eq!(concept_distance(pt, cb, ca), d);
        let (da, db) = (ont.depth(ca), ont.depth(cb));
        prop_assert!(d >= da.abs_diff(db), "D={d} < |Δdepth|={}", da.abs_diff(db));
        prop_assert!(d <= da + db, "D={d} > depth sum={}", da + db);
    }

    /// DRC computes exactly the brute-force Equation 2 / Equation 3 values.
    #[test]
    fn drc_matches_brute_force(
        seed in 0u64..200,
        doc_picks in prop::collection::vec(0u32..10_000, 1..12),
        query_picks in prop::collection::vec(0u32..10_000, 1..8),
    ) {
        let ont = ontology(seed, 120);
        let d = pick_concepts(&ont, &doc_picks);
        let q = pick_concepts(&ont, &query_picks);
        let mut drc = Drc::new(&ont);
        prop_assert_eq!(
            drc.document_query_distance(&d, &q),
            brute::document_query_distance(&ont, &d, &q)
        );
        let x = drc.document_document_distance(&d, &q);
        let y = brute::document_document_distance(&ont, &d, &q);
        prop_assert!((x - y).abs() < 1e-9, "Ddd {x} vs {y}");
    }

    /// The symmetric distance really is symmetric, zero on identity, and
    /// monotone under the "subset grows similarity" sanity direction is NOT
    /// claimed (it is false in general) — only the exchange symmetry.
    #[test]
    fn ddd_symmetry(
        seed in 0u64..200,
        a_picks in prop::collection::vec(0u32..10_000, 1..10),
        b_picks in prop::collection::vec(0u32..10_000, 1..10),
    ) {
        let ont = ontology(seed, 100);
        let a = pick_concepts(&ont, &a_picks);
        let b = pick_concepts(&ont, &b_picks);
        let mut drc = Drc::new(&ont);
        let ab = drc.document_document_distance(&a, &b);
        let ba = drc.document_document_distance(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert_eq!(drc.document_document_distance(&a, &a), 0.0);
        prop_assert!(ab >= 0.0);
    }

    /// Multi-source distances equal the minimum of single-source ones.
    #[test]
    fn multi_source_is_min_of_singles(
        seed in 0u64..200,
        picks in prop::collection::vec(0u32..10_000, 1..6),
        probe in 0u32..10_000,
    ) {
        let ont = ontology(seed, 90);
        let sources = pick_concepts(&ont, &picks);
        let c = ConceptId(probe % ont.len() as u32);
        let multi = multi_source_distances(&ont, &sources);
        let expected = sources
            .iter()
            .map(|&s| multi_source_distances(&ont, &[s])[c.index()])
            .min()
            .unwrap();
        prop_assert_eq!(multi[c.index()], expected);
    }

    /// kNDS returns the same distance profile as the exhaustive baseline
    /// for random corpora, thresholds, and k — the paper's central
    /// correctness claim.
    #[test]
    fn knds_is_exact(
        seed in 0u64..100,
        query_picks in prop::collection::vec(0u32..10_000, 1..5),
        eps in 0.0f64..=1.0,
        k in 1usize..8,
        doc_seeds in prop::collection::vec(0u64..10_000, 4..20),
    ) {
        let ont = ontology(seed, 150);
        // Random corpus: each doc_seed expands into a few concepts.
        let sets: Vec<(Vec<ConceptId>, u32)> = doc_seeds
            .iter()
            .map(|&s| {
                let picks: Vec<u32> =
                    (0..(s % 6 + 1)).map(|i| (s.wrapping_mul(31).wrapping_add(i * 977)) as u32).collect();
                (pick_concepts(&ont, &picks), 0)
            })
            .collect();
        let corpus = Corpus::from_concept_sets(sets);
        let source = MemorySource::build(&corpus, ont.len());
        let q = pick_concepts(&ont, &query_picks);

        let cfg = KndsConfig::default().with_error_threshold(eps);
        let fast = Knds::new(&ont, &source, cfg).rds(&q, k);
        let slow = baseline::rds(&ont, &source, &q, k);
        prop_assert_eq!(fast.results.len(), slow.results.len());
        for (a, b) in fast.results.iter().zip(slow.results.iter()) {
            let same = (a.distance - b.distance).abs() < 1e-9
                || (a.distance.is_infinite() && b.distance.is_infinite());
            prop_assert!(same, "rank mismatch: {} vs {}", a.distance, b.distance);
        }
    }

    /// Documents survive the sort/dedup normalization with set semantics.
    #[test]
    fn document_is_a_set(picks in prop::collection::vec(0u32..50, 0..30)) {
        let doc = cbr_corpus::Document::new(
            cbr_corpus::DocId(0),
            picks.iter().map(|&p| ConceptId(p)).collect(),
            0,
        );
        let cs = doc.concepts();
        prop_assert!(cs.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
        for &p in &picks {
            prop_assert!(doc.contains(ConceptId(p)));
        }
    }

    /// The binary codec never panics on malformed input — it returns an
    /// error for garbage and only accepts byte strings that decode fully.
    #[cfg(feature = "serde")]
    #[test]
    fn codec_rejects_garbage_without_panicking(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = cbr_ontology::ser::from_tokens::<u64>(&bytes);
        let _ = cbr_ontology::ser::from_tokens::<String>(&bytes);
        let _ = cbr_ontology::ser::from_tokens::<Vec<u32>>(&bytes);
        let _ = cbr_ontology::ser::from_tokens::<Option<(bool, String)>>(&bytes);
        let _ = cbr_ontology::ser::from_tokens::<cbr_corpus::Document>(&bytes);
    }

    /// The binary codec round-trips arbitrary nested values.
    #[cfg(feature = "serde")]
    #[test]
    fn codec_roundtrips(
        nums in prop::collection::vec(any::<u32>(), 0..20),
        text in ".{0,40}",
        flag in prop::option::of(any::<bool>()),
    ) {
        #[derive(serde::Serialize, serde::Deserialize, PartialEq, Debug)]
        struct Blob {
            nums: Vec<u32>,
            text: String,
            flag: Option<bool>,
        }
        let v = Blob { nums, text, flag };
        let bytes = cbr_ontology::ser::to_tokens(&v).unwrap();
        let back: Blob = cbr_ontology::ser::from_tokens(&bytes).unwrap();
        prop_assert_eq!(back, v);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Wu–Palmer and Lin stay within [0, 1] and are reflexive on random
    /// DAGs — the bound that the naive depth-ratio formulation violates.
    #[test]
    fn similarity_measures_are_bounded(
        seed in 0u64..300,
        a in 0u32..10_000,
        b in 0u32..10_000,
    ) {
        use cbr_ontology::{InformationContent, SemanticSimilarity};
        let ont = ontology(seed, 80);
        let sim = SemanticSimilarity::new(&ont, InformationContent::uniform(&ont));
        let ca = ConceptId(a % ont.len() as u32);
        let cb = ConceptId(b % ont.len() as u32);
        let wp = sim.wu_palmer(ca, cb);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&wp), "wu_palmer {}", wp);
        prop_assert!((sim.wu_palmer(ca, ca) - 1.0).abs() < 1e-12);
        let lin = sim.lin(ca, cb);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&lin), "lin {}", lin);
        prop_assert!(sim.jiang_conrath(ca, cb) >= 0.0);
        prop_assert!(sim.resnik(ca, cb) >= 0.0);
        // Symmetry of all four measures.
        prop_assert!((sim.wu_palmer(cb, ca) - wp).abs() < 1e-12);
        prop_assert!((sim.lin(cb, ca) - lin).abs() < 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// kNDS SDS is exact against the exhaustive baseline on random
    /// corpora — the symmetric-distance counterpart of `knds_is_exact`.
    #[test]
    fn knds_sds_is_exact(
        seed in 0u64..60,
        eps in 0.0f64..=1.0,
        k in 1usize..6,
        doc_seeds in prop::collection::vec(0u64..10_000, 4..14),
    ) {
        let ont = ontology(seed, 120);
        let sets: Vec<(Vec<ConceptId>, u32)> = doc_seeds
            .iter()
            .map(|&s| {
                let picks: Vec<u32> = (0..(s % 5 + 1))
                    .map(|i| (s.wrapping_mul(37).wrapping_add(i * 613)) as u32)
                    .collect();
                (pick_concepts(&ont, &picks), 0)
            })
            .collect();
        let corpus = Corpus::from_concept_sets(sets);
        let source = MemorySource::build(&corpus, ont.len());
        let q = corpus
            .documents()
            .find(|d| d.num_concepts() > 0)
            .map(|d| d.concepts().to_vec());
        let Some(q) = q else { return Ok(()) };

        let cfg = KndsConfig::default().with_error_threshold(eps);
        let fast = Knds::new(&ont, &source, cfg).sds(&q, k);
        let slow = baseline::sds(&ont, &source, &q, k);
        prop_assert_eq!(fast.results.len(), slow.results.len());
        for (a, b) in fast.results.iter().zip(slow.results.iter()) {
            let same = (a.distance - b.distance).abs() < 1e-9
                || (a.distance.is_infinite() && b.distance.is_infinite());
            prop_assert!(same, "SDS rank mismatch: {} vs {}", a.distance, b.distance);
        }
    }

    /// One `KndsWorkspace` reused across interleaved RDS and SDS queries
    /// (random `εθ`, `k`, and corpus) produces bit-identical results and
    /// metrics counters to fresh-workspace runs — the zero-allocation query
    /// path never changes observable behavior.
    #[test]
    fn workspace_reuse_is_equivalent_to_fresh_state(
        seed in 0u64..60,
        eps_idx in 0usize..5,
        k in 1usize..6,
        query_picks in prop::collection::vec(0u32..10_000, 1..5),
        doc_seeds in prop::collection::vec(0u64..10_000, 4..14),
    ) {
        let eps = [0.0, 0.25, 0.5, 0.75, 1.0][eps_idx];
        let ont = ontology(seed, 120);
        let sets: Vec<(Vec<ConceptId>, u32)> = doc_seeds
            .iter()
            .map(|&s| {
                let picks: Vec<u32> = (0..(s % 5 + 1))
                    .map(|i| (s.wrapping_mul(41).wrapping_add(i * 769)) as u32)
                    .collect();
                (pick_concepts(&ont, &picks), 0)
            })
            .collect();
        let corpus = Corpus::from_concept_sets(sets);
        let source = MemorySource::build(&corpus, ont.len());
        let q1 = pick_concepts(&ont, &query_picks);
        let q2 = corpus
            .documents()
            .find(|d| d.num_concepts() > 0)
            .map(|d| d.concepts().to_vec())
            .unwrap_or_else(|| q1.clone());

        let cfg = KndsConfig::default().with_error_threshold(eps);
        let engine = Knds::new(&ont, &source, cfg);
        let mut ws = KndsWorkspace::new();
        // Interleave RDS and SDS on the same workspace; compare each run
        // against a fresh-state evaluation of the identical query.
        for (round, q) in [&q1, &q2, &q1, &q2].iter().enumerate() {
            let shared = engine.rds_with(&mut ws, q, k);
            let fresh = engine.rds(q, k);
            prop_assert_eq!(&shared.results, &fresh.results, "RDS round {}", round);
            prop_assert_eq!(shared.metrics.drc_calls, fresh.metrics.drc_calls);
            prop_assert_eq!(shared.metrics.nodes_visited, fresh.metrics.nodes_visited);

            let shared = engine.sds_with(&mut ws, q, k);
            let fresh = engine.sds(q, k);
            prop_assert_eq!(&shared.results, &fresh.results, "SDS round {}", round);
            prop_assert_eq!(shared.metrics.docs_examined, fresh.metrics.docs_examined);
        }
    }

    /// Uniform edge weights reproduce the unit-weight metric exactly.
    #[test]
    fn uniform_weights_equal_unit_metric(
        seed in 0u64..200,
        a in 0u32..10_000,
        b in 0u32..10_000,
    ) {
        use cbr_ontology::{weighted, EdgeWeights};
        let ont = ontology(seed, 70);
        let w = EdgeWeights::uniform(&ont);
        let ca = ConceptId(a % ont.len() as u32);
        let cb = ConceptId(b % ont.len() as u32);
        prop_assert_eq!(
            weighted::concept_distance(&ont, &w, ca, cb),
            concept_distance(ont.path_table(), ca, cb)
        );
    }
}

/// A query that panics mid-flight leaves the workspace dirty; the next
/// borrow must reset it and produce results identical to a fresh run.
#[test]
fn poisoned_workspace_is_reset_on_next_borrow() {
    let ont = ontology(7, 120);
    let sets: Vec<(Vec<ConceptId>, u32)> = (0u32..8)
        .map(|s| (pick_concepts(&ont, &[s * 131, s * 977 + 5, s * 613 + 11]), 0))
        .collect();
    let corpus = Corpus::from_concept_sets(sets);
    let source = MemorySource::build(&corpus, ont.len());
    let engine = Knds::new(&ont, &source, KndsConfig::default());
    let q = pick_concepts(&ont, &[42, 4242, 424242]);

    let mut ws = KndsWorkspace::new();
    // Warm the workspace, then poison it: an empty query panics after the
    // workspace has been borrowed for the query, leaving it dirty.
    engine.rds_with(&mut ws, &q, 3);
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engine.rds_with(&mut ws, &[], 3);
    }));
    assert!(panicked.is_err(), "empty query must panic");

    // The poisoned workspace is safely reset on the next borrow and the
    // results match a fresh-state run exactly.
    let reused = engine.rds_with(&mut ws, &q, 3);
    let fresh = engine.rds(&q, 3);
    assert_eq!(reused.results, fresh.results);
    let reused = engine.sds_with(&mut ws, &q, 3);
    let fresh = engine.sds(&q, 3);
    assert_eq!(reused.results, fresh.results);
}
