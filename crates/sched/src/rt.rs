//! The deterministic cooperative runtime behind the model.
//!
//! One OS thread runs at a time. Every modeled thread, at each visible
//! operation (a *sync point*), posts the operation it is about to perform
//! and parks; a coordinator (the [`crate::explore`] driver) waits until
//! every live thread has posted, computes which pending operations are
//! *enabled* under the modeled resource state (lock ownership, reader
//! sets, join targets, condvar wait sets), and grants exactly one. The
//! granted thread applies the operation against the real, always
//! uncontended primitive underneath and runs to its next sync point.
//! Because the grant order is the only source of nondeterminism, a
//! recorded choice sequence replays an execution exactly.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Index of a modeled thread within one execution (0 = the harness body).
pub type Tid = usize;

/// Identifier of a modeled resource (lock, atomic, queue, condvar) within
/// one execution, assigned densely in first-use order.
pub type Rid = u32;

/// A visible operation a modeled thread is about to perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Acquire a mutex (or a condvar re-acquire after wake).
    Lock(Rid),
    /// Release a mutex.
    Unlock(Rid),
    /// Acquire an `RwLock` read guard.
    Read(Rid),
    /// Release an `RwLock` read guard.
    UnlockRead(Rid),
    /// Acquire an `RwLock` write guard.
    Write(Rid),
    /// Release an `RwLock` write guard.
    UnlockWrite(Rid),
    /// Atomically release `lock` and sleep on `cv`.
    CondWait {
        /// The condvar slept on.
        cv: Rid,
        /// The mutex released for the duration of the wait.
        lock: Rid,
    },
    /// Wake the first waiter of a condvar (deterministically lowest tid).
    NotifyOne(Rid),
    /// Wake every waiter of a condvar.
    NotifyAll(Rid),
    /// A pure atomic read.
    AtomicLoad(Rid),
    /// An atomic store or read-modify-write.
    AtomicRmw(Rid),
    /// Push onto a modeled queue.
    QPush(Rid),
    /// Pop from a modeled queue (never blocks; empty pops return `None`).
    QPop(Rid),
    /// Read a modeled queue's length.
    QLen(Rid),
    /// A voluntary scheduling point.
    Yield,
    /// The spawn of a new modeled thread (already registered).
    Spawn(Tid),
    /// Wait for the listed threads to finish.
    Join(Vec<Tid>),
    /// The thread's final operation.
    Finish {
        /// Whether the thread is finishing by unwinding a panic.
        panicked: bool,
    },
}

impl Op {
    /// The resources this operation touches (at most two, for `CondWait`).
    pub fn rids(&self) -> (Option<Rid>, Option<Rid>) {
        use Op::*;
        match *self {
            Lock(r) | Unlock(r) | Read(r) | UnlockRead(r) | Write(r) | UnlockWrite(r)
            | NotifyOne(r) | NotifyAll(r) | AtomicLoad(r) | AtomicRmw(r) | QPush(r) | QPop(r)
            | QLen(r) => (Some(r), None),
            CondWait { cv, lock } => (Some(cv), Some(lock)),
            Yield | Spawn(_) | Join(_) | Finish { .. } => (None, None),
        }
    }

    /// Whether the operation leaves every modeled resource unchanged.
    pub fn is_pure_read(&self) -> bool {
        matches!(self, Op::AtomicLoad(_) | Op::QLen(_))
    }
}

/// What kind of resource a [`Rid`] names (drives the analyses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResKind {
    /// A mutex or rwlock.
    Lock,
    /// An atomic cell.
    Atomic,
    /// A queue.
    Queue,
    /// A queue used as a resource pool: the leak analysis checks that no
    /// non-panicking thread finishes while still holding popped items.
    PoolQueue,
    /// A condition variable.
    Condvar,
}

/// A problem observed while executing one schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFinding {
    /// The analysis that fired.
    pub kind: FindingKind,
    /// Human-readable description.
    pub message: String,
}

/// The analyses that can report findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FindingKind {
    /// Every live thread is blocked.
    Deadlock,
    /// A thread re-acquired a lock it already holds (self-deadlock).
    DoubleLock,
    /// The union of lock acquisition orders contains a cycle.
    LockOrderCycle,
    /// A non-panicking thread finished still holding items popped from a
    /// pool queue.
    PoolLeak,
    /// The harness body returned an error on this schedule.
    Invariant,
    /// Code under test panicked on this schedule.
    Panic,
    /// An execution exceeded the per-schedule step budget.
    StepBudget,
    /// A replayed or re-executed prefix diverged: the code under test is
    /// not deterministic between sync points.
    Nondeterminism,
}

impl FindingKind {
    /// Stable rule identifier, `cbr-audit` style.
    pub fn rule(&self) -> &'static str {
        match self {
            FindingKind::Deadlock => "S01",
            FindingKind::DoubleLock => "S02",
            FindingKind::LockOrderCycle => "S03",
            FindingKind::PoolLeak => "S04",
            FindingKind::Invariant => "S05",
            FindingKind::Panic => "S06",
            FindingKind::StepBudget => "S07",
            FindingKind::Nondeterminism => "S08",
        }
    }
}

/// Panic payload used to tear down parked threads when an execution
/// aborts (deadlock, prune, budget). Filtered silent by the panic hook.
#[derive(Debug)]
pub struct SchedAbort;

#[derive(Debug, Clone, PartialEq, Eq)]
enum TStat {
    /// Executing user code (or not yet reached its first sync point).
    Running,
    /// Parked at a pending operation.
    Posted(Op),
    /// Sleeping on a condvar (woken by a notify into `Posted(Lock)`).
    CondBlocked {
        cv: Rid,
    },
    Finished {
        panicked: bool,
    },
}

#[derive(Debug, Default, Clone)]
struct LockState {
    writer: Option<Tid>,
    readers: Vec<Tid>,
}

/// The decision taken by a strategy at one scheduling point.
#[derive(Debug, Clone)]
pub enum Choice {
    /// Run this thread's pending operation next.
    Pick(Tid),
    /// Sleep-set pruning: every enabled choice is covered elsewhere.
    Prune,
    /// A replayed schedule no longer matches the execution.
    Diverged(String),
}

/// A scheduling strategy: maps `(step, enabled threads, pending ops)`
/// to the next [`Choice`].
pub type Chooser<'a> = &'a mut dyn FnMut(usize, &[Tid], &[Op]) -> Choice;

#[derive(Debug, Default)]
struct ExecInner {
    threads: Vec<TStat>,
    /// Condvar sleepers remember the mutex to re-acquire on wake.
    cond_lock: Vec<Option<Rid>>,
    /// Per-thread grant flags: a grant can only be consumed by its
    /// target, so a grant to a finishing thread (which never posts
    /// again) cannot be overwritten by the next scheduling step.
    granted: Vec<bool>,
    aborted: bool,
    pruned: bool,
    steps: usize,
    next_rid: Rid,
    locks: Vec<LockState>,
    kinds: Vec<ResKind>,
    queue_len: Vec<i64>,
    /// Outstanding popped-but-not-returned items per (thread, queue).
    pop_balance: Vec<Vec<i64>>,
    /// Locks currently held per thread, in acquisition order.
    held: Vec<Vec<Rid>>,
    /// Lock-order edges (held, acquired) observed this execution.
    order_edges: BTreeSet<(Rid, Rid)>,
    /// Granted operations in order.
    trace: Vec<(Tid, Op)>,
    /// `(enabled_count, chosen_index)` per scheduling decision.
    digits: Vec<(u8, u8)>,
    findings: Vec<RawFinding>,
    reported_self_blocks: BTreeSet<(Tid, Rid)>,
}

/// Everything an execution produced, for the explorer.
#[derive(Debug, Default)]
pub struct ExecRecord {
    /// Granted operations in order.
    pub trace: Vec<(Tid, Op)>,
    /// `(enabled_count, chosen_index)` per scheduling decision.
    pub digits: Vec<(u8, u8)>,
    /// Findings observed during the execution.
    pub findings: Vec<RawFinding>,
    /// Lock-order edges observed.
    pub order_edges: BTreeSet<(Rid, Rid)>,
    /// Whether the execution was cut short by sleep-set pruning.
    pub pruned: bool,
}

/// Outcome of one coordinator step.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum StepOutcome {
    Continue,
    Done,
    Aborted,
}

static NEXT_EXEC_ID: AtomicU64 = AtomicU64::new(1);

/// One model execution: the shared state every modeled thread and the
/// coordinator synchronize through.
#[derive(Debug)]
pub struct Exec {
    id: u64,
    max_steps: usize,
    inner: Mutex<ExecInner>,
    cv: Condvar,
}

fn lk(m: &Mutex<ExecInner>) -> MutexGuard<'_, ExecInner> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Exec {
    /// Creates a fresh execution with a per-schedule step budget.
    pub fn new(max_steps: usize) -> Arc<Exec> {
        Arc::new(Exec {
            id: NEXT_EXEC_ID.fetch_add(1, Ordering::Relaxed),
            max_steps,
            inner: Mutex::new(ExecInner::default()),
            cv: Condvar::new(),
        })
    }

    /// Low 32 bits of the globally unique execution id (for rid caches).
    pub fn id_low(&self) -> u32 {
        self.id as u32
    }

    /// Registers a new modeled thread; it starts `Running` and the
    /// coordinator will wait for its first post.
    pub fn register_thread(&self) -> Tid {
        let mut g = lk(&self.inner);
        g.threads.push(TStat::Running);
        g.granted.push(false);
        g.cond_lock.push(None);
        g.held.push(Vec::new());
        let queues = g.next_rid as usize;
        g.pop_balance.push(vec![0; queues]);
        g.threads.len() - 1
    }

    /// Registers a resource on first use, mirroring `initial_len` for
    /// queues created (and possibly filled) before the execution began.
    pub fn register_resource(&self, kind: ResKind, initial_len: usize) -> Rid {
        let mut g = lk(&self.inner);
        let rid = g.next_rid;
        g.next_rid += 1;
        g.locks.push(LockState::default());
        g.kinds.push(kind);
        g.queue_len.push(initial_len as i64);
        for b in &mut g.pop_balance {
            b.push(0);
        }
        rid
    }

    /// Records a finding against the schedule explored so far.
    pub fn finding(&self, kind: FindingKind, message: impl Into<String>) {
        let mut g = lk(&self.inner);
        g.findings.push(RawFinding { kind, message: message.into() });
    }

    /// Posts `op` as the calling thread's pending operation and parks
    /// until the coordinator grants it (after applying its effects).
    pub fn post(&self, tid: Tid, op: Op) {
        self.post_inner(tid, op, false);
    }

    /// `quiet_abort`: when the execution aborts while this post is
    /// pending, mark the thread finished and return normally instead of
    /// unwinding — used for the final `Finish` post, which must never
    /// panic out of `post_finish`.
    fn post_inner(&self, tid: Tid, op: Op, quiet_abort: bool) {
        let mut g = lk(&self.inner);
        if g.aborted {
            // Teardown: whatever this thread was about to do, it is done
            // as far as the coordinator is concerned. Marking it finished
            // here (not only in `post_finish`) is what lets
            // `drain_after_abort` terminate even for threads parked at
            // their final op.
            g.threads[tid] = TStat::Finished { panicked: true };
            self.cv.notify_all();
            drop(g);
            if !quiet_abort {
                abort_thread();
            }
            return;
        }
        g.threads[tid] = TStat::Posted(op);
        self.cv.notify_all();
        loop {
            if g.aborted {
                g.threads[tid] = TStat::Finished { panicked: true };
                self.cv.notify_all();
                drop(g);
                if !quiet_abort {
                    abort_thread();
                }
                return;
            }
            if g.granted[tid] {
                g.granted[tid] = false;
                return;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Marks the calling thread finished. `panic_msg`/`invariant_err`
    /// become findings tied to the current schedule. Never unwinds, even
    /// when the execution aborts mid-call.
    pub fn post_finish(&self, tid: Tid, panic_msg: Option<String>, invariant_err: Option<String>) {
        {
            let mut g = lk(&self.inner);
            if g.aborted {
                // Teardown: panics and errors raised while the execution
                // is being torn down are unwind noise, not findings.
                g.threads[tid] = TStat::Finished { panicked: true };
                self.cv.notify_all();
                return;
            }
            if let Some(m) = panic_msg.as_ref() {
                g.findings
                    .push(RawFinding { kind: FindingKind::Panic, message: format!("t{tid}: {m}") });
            }
            if let Some(m) = invariant_err {
                g.findings.push(RawFinding { kind: FindingKind::Invariant, message: m });
            }
        }
        self.post_inner(tid, Op::Finish { panicked: panic_msg.is_some() }, true);
    }

    /// Consumes the execution's results.
    pub fn take_record(&self) -> ExecRecord {
        let mut g = lk(&self.inner);
        ExecRecord {
            trace: std::mem::take(&mut g.trace),
            digits: std::mem::take(&mut g.digits),
            findings: std::mem::take(&mut g.findings),
            order_edges: std::mem::take(&mut g.order_edges),
            pruned: g.pruned,
        }
    }

    /// Runs one coordinator step: waits for every live thread to park at
    /// a pending operation, asks `chooser` to pick among the enabled
    /// ones, applies the chosen operation's effects, and grants it.
    pub(crate) fn step(&self, chooser: Chooser<'_>) -> StepOutcome {
        let mut g = lk(&self.inner);
        while g.threads.iter().any(|t| matches!(t, TStat::Running)) {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        if g.threads.iter().all(|t| matches!(t, TStat::Finished { .. })) {
            return StepOutcome::Done;
        }
        let mut enabled: Vec<Tid> = Vec::new();
        let mut ops: Vec<Op> = Vec::new();
        for tid in 0..g.threads.len() {
            if let TStat::Posted(op) = &g.threads[tid] {
                let op = op.clone();
                if self.op_enabled(&mut g, tid, &op) {
                    enabled.push(tid);
                    ops.push(op);
                }
            }
        }
        if enabled.is_empty() {
            let blocked: Vec<String> = g
                .threads
                .iter()
                .enumerate()
                .filter_map(|(t, st)| match st {
                    TStat::Posted(op) => Some(format!("t{t} blocked on {op:?}")),
                    TStat::CondBlocked { cv } => Some(format!("t{t} waiting on condvar r{cv}")),
                    _ => None,
                })
                .collect();
            g.findings.push(RawFinding {
                kind: FindingKind::Deadlock,
                message: format!("deadlock: {}", blocked.join(", ")),
            });
            return self.abort_locked(g);
        }
        let step = g.digits.len();
        let choice = chooser(step, &enabled, &ops);
        let tid = match choice {
            Choice::Pick(t) => t,
            Choice::Prune => {
                g.pruned = true;
                return self.abort_locked(g);
            }
            Choice::Diverged(msg) => {
                g.findings.push(RawFinding { kind: FindingKind::Nondeterminism, message: msg });
                return self.abort_locked(g);
            }
        };
        let idx = enabled.iter().position(|&t| t == tid).expect("chooser picked an enabled tid");
        g.steps += 1;
        if g.steps > self.max_steps {
            g.findings.push(RawFinding {
                kind: FindingKind::StepBudget,
                message: format!("schedule exceeded {} sync points", self.max_steps),
            });
            return self.abort_locked(g);
        }
        g.digits.push((enabled.len() as u8, idx as u8));
        let op = ops[idx].clone();
        let grants = self.apply(&mut g, tid, &op);
        if grants {
            // Back to running user code until its next sync point (unless
            // the op was the thread's finish, which `apply` recorded).
            if !matches!(op, Op::Finish { .. }) {
                g.threads[tid] = TStat::Running;
            }
            g.granted[tid] = true;
        }
        g.trace.push((tid, op));
        self.cv.notify_all();
        StepOutcome::Continue
    }

    fn abort_locked(&self, mut g: MutexGuard<'_, ExecInner>) -> StepOutcome {
        g.aborted = true;
        self.cv.notify_all();
        StepOutcome::Aborted
    }

    /// Waits until every modeled thread has torn down after an abort.
    pub(crate) fn drain_after_abort(&self) {
        let mut g = lk(&self.inner);
        while !g.threads.iter().all(|t| matches!(t, TStat::Finished { .. })) {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn op_enabled(&self, g: &mut ExecInner, tid: Tid, op: &Op) -> bool {
        match op {
            Op::Lock(r) | Op::Write(r) => {
                let r = *r;
                let ls = &g.locks[r as usize];
                let self_block = ls.writer == Some(tid) || ls.readers.contains(&tid);
                if self_block && g.reported_self_blocks.insert((tid, r)) {
                    let what = if ls.writer == Some(tid) {
                        "a lock it already holds"
                    } else {
                        "a write lock over its own read guard"
                    };
                    g.findings.push(RawFinding {
                        kind: FindingKind::DoubleLock,
                        message: format!("t{tid} acquiring {what} (r{r})"),
                    });
                }
                ls.writer.is_none() && (matches!(op, Op::Lock(_)) || ls.readers.is_empty())
            }
            Op::Read(r) => {
                let ls = &g.locks[*r as usize];
                if ls.writer == Some(tid) && g.reported_self_blocks.insert((tid, *r)) {
                    g.findings.push(RawFinding {
                        kind: FindingKind::DoubleLock,
                        message: format!(
                            "t{tid} acquiring a read lock over its own write guard (r{r})"
                        ),
                    });
                }
                ls.writer.is_none()
            }
            Op::Join(ts) => ts.iter().all(|&t| matches!(g.threads[t], TStat::Finished { .. })),
            _ => true,
        }
    }

    /// Applies the modeled effect of `op`. Returns whether the posting
    /// thread should be granted (condvar waits stay parked).
    fn apply(&self, g: &mut ExecInner, tid: Tid, op: &Op) -> bool {
        match op {
            Op::Lock(r) | Op::Write(r) => {
                for i in 0..g.held[tid].len() {
                    let h = g.held[tid][i];
                    g.order_edges.insert((h, *r));
                }
                g.held[tid].push(*r);
                g.locks[*r as usize].writer = Some(tid);
            }
            Op::Read(r) => {
                for i in 0..g.held[tid].len() {
                    let h = g.held[tid][i];
                    g.order_edges.insert((h, *r));
                }
                g.held[tid].push(*r);
                g.locks[*r as usize].readers.push(tid);
            }
            Op::Unlock(r) | Op::UnlockWrite(r) => {
                g.locks[*r as usize].writer = None;
                remove_last(&mut g.held[tid], *r);
            }
            Op::UnlockRead(r) => {
                let readers = &mut g.locks[*r as usize].readers;
                if let Some(p) = readers.iter().rposition(|&t| t == tid) {
                    readers.remove(p);
                }
                remove_last(&mut g.held[tid], *r);
            }
            Op::CondWait { cv, lock } => {
                g.locks[*lock as usize].writer = None;
                remove_last(&mut g.held[tid], *lock);
                g.cond_lock[tid] = Some(*lock);
                g.threads[tid] = TStat::CondBlocked { cv: *cv };
                return false;
            }
            Op::NotifyOne(cv) | Op::NotifyAll(cv) => {
                let all = matches!(op, Op::NotifyAll(_));
                for t in 0..g.threads.len() {
                    if matches!(g.threads[t], TStat::CondBlocked { cv: c } if c == *cv) {
                        let lock = g.cond_lock[t].take().expect("condvar sleeper has a lock");
                        g.threads[t] = TStat::Posted(Op::Lock(lock));
                        if !all {
                            break;
                        }
                    }
                }
            }
            Op::QPush(r) => {
                g.queue_len[*r as usize] += 1;
                g.pop_balance[tid][*r as usize] -= 1;
            }
            Op::QPop(r) => {
                if g.queue_len[*r as usize] > 0 {
                    g.queue_len[*r as usize] -= 1;
                    g.pop_balance[tid][*r as usize] += 1;
                }
            }
            Op::Finish { panicked } => {
                if !panicked {
                    for r in 0..g.pop_balance[tid].len() {
                        if g.kinds[r] == ResKind::PoolQueue && g.pop_balance[tid][r] > 0 {
                            let n = g.pop_balance[tid][r];
                            g.findings.push(RawFinding {
                                kind: FindingKind::PoolLeak,
                                message: format!(
                                    "t{tid} finished holding {n} item(s) popped from pool r{r}"
                                ),
                            });
                        }
                    }
                }
                g.threads[tid] = TStat::Finished { panicked: *panicked };
            }
            Op::AtomicLoad(_)
            | Op::AtomicRmw(_)
            | Op::QLen(_)
            | Op::Yield
            | Op::Spawn(_)
            | Op::Join(_) => {}
        }
        true
    }
}

fn remove_last(v: &mut Vec<Rid>, r: Rid) {
    if let Some(p) = v.iter().rposition(|&x| x == r) {
        v.remove(p);
    }
}

/// Unwinds the calling thread out of an aborted execution (no-op while
/// already panicking, so teardown never double-panics).
fn abort_thread() {
    if !std::thread::panicking() {
        std::panic::panic_any(SchedAbort);
    }
}

// --- per-thread session -----------------------------------------------------

thread_local! {
    static SESSION: std::cell::RefCell<Option<(Arc<Exec>, Tid)>> =
        const { std::cell::RefCell::new(None) };
}

/// The calling thread's active model execution, if it is a modeled thread.
pub fn session() -> Option<(Arc<Exec>, Tid)> {
    SESSION.with(|s| s.borrow().clone())
}

/// Marks the calling thread as modeled thread `tid` of `exec` (or clears
/// the marking with `None`). Used by the facade's spawn wrappers.
pub fn set_session(v: Option<(Arc<Exec>, Tid)>) {
    SESSION.with(|s| *s.borrow_mut() = v);
}

/// Posts `op` for the calling thread if it is modeled; no-op otherwise.
pub fn sync_point(op: Op) {
    if let Some((exec, tid)) = session() {
        exec.post(tid, op);
    }
}

/// A cached per-primitive resource id, lazily assigned per execution.
#[derive(Debug, Default)]
pub struct RidCell(AtomicU64);

impl RidCell {
    /// Creates an unassigned cell.
    pub const fn new() -> RidCell {
        RidCell(AtomicU64::new(0))
    }

    /// The primitive's rid under `exec`, assigning one on first use.
    /// `initial_len` mirrors pre-existing queue contents.
    pub fn rid(&self, exec: &Exec, kind: ResKind, initial_len: usize) -> Rid {
        let packed = self.0.load(Ordering::Relaxed);
        let (eid, rid) = ((packed >> 32) as u32, packed as u32);
        if eid == exec.id_low() && packed != 0 {
            return rid;
        }
        let rid = exec.register_resource(kind, initial_len);
        self.0.store(((exec.id_low() as u64) << 32) | rid as u64, Ordering::Relaxed);
        rid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a two-thread token exchange entirely through the raw
    /// runtime API, always picking the first enabled op.
    #[test]
    fn serialized_two_thread_run_completes() {
        let exec = Exec::new(1000);
        let t0 = exec.register_thread();
        let t1 = exec.register_thread();
        let e0 = exec.clone();
        let e1 = exec.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                e0.post(t0, Op::Yield);
                e0.post_finish(t0, None, None);
            });
            s.spawn(move || {
                e1.post(t1, Op::Yield);
                e1.post_finish(t1, None, None);
            });
            let mut first = |_s: usize, en: &[Tid], _o: &[Op]| Choice::Pick(en[0]);
            loop {
                match exec.step(&mut first) {
                    StepOutcome::Continue => {}
                    StepOutcome::Done => break,
                    StepOutcome::Aborted => panic!("unexpected abort"),
                }
            }
        });
        let rec = exec.take_record();
        assert_eq!(rec.trace.len(), 4, "{:?}", rec.trace);
        assert!(rec.findings.is_empty());
    }

    /// Runs the classic two-lock inversion with a caller-chosen chooser
    /// and returns the record.
    fn run_inversion(chooser: Chooser<'_>) -> ExecRecord {
        let exec = Exec::new(1000);
        let a = exec.register_resource(ResKind::Lock, 0);
        let b = exec.register_resource(ResKind::Lock, 0);
        let t0 = exec.register_thread();
        let t1 = exec.register_thread();
        let e0 = exec.clone();
        let e1 = exec.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    e0.post(t0, Op::Lock(a));
                    e0.post(t0, Op::Lock(b));
                    e0.post(t0, Op::Unlock(b));
                    e0.post(t0, Op::Unlock(a));
                }));
                e0.post_finish(t0, r.err().map(|_| "abort".into()), None);
            });
            s.spawn(move || {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    e1.post(t1, Op::Lock(b));
                    e1.post(t1, Op::Lock(a));
                    e1.post(t1, Op::Unlock(a));
                    e1.post(t1, Op::Unlock(b));
                }));
                e1.post_finish(t1, r.err().map(|_| "abort".into()), None);
            });
            loop {
                match exec.step(chooser) {
                    StepOutcome::Continue => {}
                    StepOutcome::Done => break,
                    StepOutcome::Aborted => {
                        exec.drain_after_abort();
                        break;
                    }
                }
            }
        });
        exec.take_record()
    }

    #[test]
    fn deadlock_is_detected_and_torn_down() {
        // Alternate grants while both threads are enabled: t0 takes a,
        // t1 takes b, then both block on the other's lock.
        let mut alternate =
            |step: usize, en: &[Tid], _o: &[Op]| Choice::Pick(en[step.min(en.len() - 1)]);
        let rec = run_inversion(&mut alternate);
        assert!(rec.findings.iter().any(|f| f.kind == FindingKind::Deadlock), "{:?}", rec.findings);
    }

    #[test]
    fn serialized_inversion_records_both_lock_orders() {
        // Always run the lowest thread: t0 completes, then t1 — no
        // deadlock on this schedule, but the conflicting acquisition
        // orders (a->b and b->a) both land in the order-edge union.
        let mut first = |_s: usize, en: &[Tid], _o: &[Op]| Choice::Pick(en[0]);
        let rec = run_inversion(&mut first);
        assert!(rec.findings.is_empty(), "{:?}", rec.findings);
        assert!(rec.order_edges.contains(&(0, 1)), "{:?}", rec.order_edges);
        assert!(rec.order_edges.contains(&(1, 0)), "{:?}", rec.order_edges);
    }
}
