//! A concurrent engine handle for the point-of-care scenario.
//!
//! The paper's motivating deployment interleaves reads (clinicians
//! querying) with writes (new EMRs arriving) — "when a new patient arrives
//! at the point-of-care, we can instantly add his or her EMR to our
//! database" (Section 1). [`SharedEngine`] splits that workload along the
//! engine's snapshot/session seam:
//!
//! * **Readers** run against an epoch-published
//!   [`EngineSnapshot`]: each query pops a pooled session (a
//!   [`KndsWorkspace`] plus a [`Cached`] snapshot handle), revalidates the
//!   snapshot with **one atomic epoch load**, and evaluates entirely over
//!   immutable structures. The steady-state query path acquires no lock of
//!   any kind — publishes only cost a reader a brief shared section on the
//!   *next* query after a write.
//! * **The writer** (appends, deletes, compaction) serializes behind a
//!   mutex that queries never touch, mutates the segmented index, and
//!   publishes the resulting snapshot to the epoch cell. Old snapshots are
//!   retired implicitly: readers still pinning them keep them alive, so a
//!   compaction can never free a segment out from under a running query.
//!
//! Query scratch never waits on anything either: sessions live in a
//! lock-free pool (a [`SegQueue`]), so concurrent readers each get their
//! own warm buffers with no contention, and steady-state queries allocate
//! nothing. A session held during a panic simply never returns to the
//! pool; those that do return are always clean.
//!
//! All synchronization goes through the [`sched::sync`] facade, so the
//! `cbr-sched` model checker can exhaustively explore this module's
//! interleavings — including publish/retire racing readers and compaction
//! (see the `publish-retire` and `compact-race` harnesses); in normal
//! builds the facade compiles straight down to the real primitives.

use crate::engine::{Engine, EngineError};
use crate::snapshot::EngineSnapshot;
use cbr_corpus::DocId;
use cbr_knds::{KndsWorkspace, QueryResult};
use cbr_ontology::ConceptId;
use sched::sync::{Arc, Cached, Mutex, Published, SegQueue};

/// A pooled query session: warm kNDS scratch plus an epoch-validated
/// snapshot handle. Reusing the handle means a reader that queries twice
/// between publishes touches the epoch cell's lock zero times.
#[derive(Debug, Default)]
struct Session {
    ws: KndsWorkspace,
    snap: Cached<EngineSnapshot>,
}

/// A cloneable, thread-safe handle to a shared [`Engine`].
#[derive(Debug, Clone)]
pub struct SharedEngine {
    /// The current snapshot, epoch-published to readers.
    published: Arc<Published<EngineSnapshot>>,
    /// The writer half; queries never touch this mutex.
    writer: Arc<Mutex<Engine>>,
    /// Lock-free pool of per-query sessions, shared by all clones.
    pool: Arc<SegQueue<Session>>,
}

impl SharedEngine {
    /// Wraps an engine.
    pub fn new(engine: Engine) -> SharedEngine {
        let published = Arc::new(Published::new(engine.snapshot().clone()));
        SharedEngine {
            published,
            writer: Arc::new(Mutex::new(engine)),
            pool: Arc::new(SegQueue::pooled()),
        }
    }

    /// Runs `f` as a query session: a pooled workspace plus the current
    /// snapshot, revalidated with one atomic epoch load. The session
    /// returns to the pool afterwards (unless `f` panics, in which case
    /// it is dropped). The workspace's dense tables are re-reserved
    /// against the snapshot's size first, so pooled sessions survive
    /// index growth between queries without ever growing mid-query.
    fn with_session<R>(&self, f: impl FnOnce(&EngineSnapshot, &mut KndsWorkspace) -> R) -> R {
        let mut session = self.pool.pop().unwrap_or_default();
        let Session { ws, snap } = &mut session;
        let snapshot = snap.get(&self.published);
        let (concepts, docs) = snapshot.workspace_hint();
        ws.reserve(concepts, docs);
        let r = f(snapshot, ws);
        self.pool.push(session);
        r
    }

    /// Number of idle sessions currently pooled.
    pub fn pooled_workspaces(&self) -> usize {
        self.pool.len()
    }

    /// The current published snapshot: pin it to run many queries —
    /// batches, shards — against one consistent epoch.
    pub fn snapshot(&self) -> Arc<EngineSnapshot> {
        self.published.load()
    }

    /// Concurrent RDS query (lock-free; pooled session).
    pub fn rds(&self, query: &[ConceptId], k: usize) -> Result<QueryResult, EngineError> {
        self.with_session(|snap, ws| snap.rds_with(ws, query, k))
    }

    /// Concurrent SDS query (lock-free; pooled session).
    pub fn sds(&self, query_doc: &[ConceptId], k: usize) -> Result<QueryResult, EngineError> {
        self.with_session(|snap, ws| snap.sds_with(ws, query_doc, k))
    }

    /// Concurrent SDS query with a collection document (lock-free; pooled
    /// session).
    pub fn sds_by_doc(&self, doc: DocId, k: usize) -> Result<QueryResult, EngineError> {
        self.with_session(|snap, ws| snap.sds_by_doc_with(ws, doc, k))
    }

    /// Runs `mutate` on the writer engine, then publishes the resulting
    /// snapshot. Publishing inside the writer section keeps the epoch
    /// order identical to the mutation order.
    fn write<R>(&self, mutate: impl FnOnce(&mut Engine) -> R) -> R {
        let mut engine = self.writer.lock();
        let r = mutate(&mut engine);
        self.published.publish(engine.snapshot().clone());
        r
    }

    /// Appends a document (writer mutex); visible to every query that
    /// starts after the publish.
    pub fn add_document(&self, concepts: Vec<ConceptId>) -> DocId {
        self.write(|e| e.add_document(concepts))
    }

    /// Tombstones a document (writer mutex); it disappears from results
    /// at the next epoch, and compaction later drops it physically.
    pub fn remove_document(&self, doc: DocId) -> Result<(), EngineError> {
        self.write(|e| e.remove_document(doc))
    }

    /// Seals and merges the segmented index (writer mutex), publishing
    /// the compacted snapshot. In-flight queries keep their pinned
    /// epoch's segments alive; new queries see the merged set.
    pub fn compact(&self) -> bool {
        self.write(|e| e.compact())
    }

    /// Total documents currently searchable.
    pub fn num_docs(&self) -> usize {
        self.published.load().num_docs()
    }

    /// Runs `f` with access to the writer engine (for reads not covered
    /// by the convenience methods; takes the writer mutex, so prefer
    /// [`SharedEngine::snapshot`] on hot paths).
    pub fn with_engine<R>(&self, f: impl FnOnce(&Engine) -> R) -> R {
        f(&self.writer.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineBuilder;
    use cbr_corpus::{CorpusGenerator, CorpusProfile};
    use cbr_ontology::{GeneratorConfig, OntologyGenerator};

    fn shared() -> (SharedEngine, Vec<ConceptId>) {
        let ont = OntologyGenerator::new(GeneratorConfig::small(1_000)).generate();
        let corpus = CorpusGenerator::new(
            &ont,
            CorpusProfile::radio_like().with_num_docs(50).with_mean_concepts(8.0),
        )
        .generate();
        let engine = EngineBuilder::new().build(ont, corpus);
        let q = engine
            .corpus()
            .documents()
            .find(|d| d.num_concepts() >= 2)
            .map(|d| d.concepts()[..2].to_vec())
            .unwrap();
        (SharedEngine::new(engine), q)
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let (shared, q) = shared();
        let before = shared.num_docs();
        std::thread::scope(|scope| {
            // Readers hammer queries while a writer appends documents.
            for _ in 0..4 {
                let s = shared.clone();
                let q = q.clone();
                scope.spawn(move || {
                    for _ in 0..20 {
                        let r = s.rds(&q, 3).unwrap();
                        assert!(!r.results.is_empty());
                    }
                });
            }
            let s = shared.clone();
            let q = q.clone();
            scope.spawn(move || {
                for _ in 0..10 {
                    s.add_document(q.clone());
                }
            });
        });
        assert_eq!(shared.num_docs(), before + 10);
        // The appended exact matches dominate the ranking now.
        let r = shared.rds(&q, 1).unwrap();
        assert_eq!(r.results[0].distance, 0.0);
    }

    #[test]
    fn workspace_pool_recycles_across_queries() {
        let (shared, q) = shared();
        assert_eq!(shared.pooled_workspaces(), 0);
        let cold = shared.rds(&q, 3).unwrap();
        assert_eq!(cold.metrics.workspace_reused, 0, "pool starts empty");
        assert_eq!(shared.pooled_workspaces(), 1, "workspace returned to pool");
        // Sequential queries — including via a clone — reuse the single
        // pooled workspace instead of growing the pool.
        let warm = shared.clone().sds(&q, 3).unwrap();
        assert_eq!(warm.metrics.workspace_reused, 1, "pooled workspace is warm");
        assert_eq!(shared.pooled_workspaces(), 1);
    }

    #[test]
    fn pool_never_exceeds_peak_concurrency() {
        let (shared, q) = shared();
        const THREADS: usize = 4;
        const ROUNDS: usize = 5;
        let barrier = std::sync::Barrier::new(THREADS);
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let s = shared.clone();
                let q = q.clone();
                let barrier = &barrier;
                scope.spawn(move || {
                    for _ in 0..ROUNDS {
                        // All threads hold a workspace simultaneously, so
                        // the pool is drained at the barrier and refilled
                        // after — it can never grow past THREADS.
                        barrier.wait();
                        let r = s.rds(&q, 3).unwrap();
                        assert!(!r.results.is_empty());
                    }
                });
            }
        });
        let pooled = shared.pooled_workspaces();
        assert!(pooled <= THREADS, "pool leaked: {pooled} workspaces for {THREADS} threads");
        assert!(pooled >= 1, "at least one workspace must have been returned");
    }

    #[test]
    fn panicking_query_drops_its_workspace() {
        let (shared, q) = shared();
        shared.rds(&q, 3).unwrap();
        assert_eq!(shared.pooled_workspaces(), 1);
        // k = 0 trips the kNDS precondition assert while the pooled
        // workspace is checked out; it must be dropped, not returned dirty.
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = shared.rds(&q, 0);
        }));
        assert!(panicked.is_err(), "k = 0 must panic");
        assert_eq!(shared.pooled_workspaces(), 0, "poisoned workspace returned to pool");
        // Service still healthy: the next query cold-starts a fresh one.
        let r = shared.rds(&q, 3).unwrap();
        assert_eq!(r.metrics.workspace_reused, 0, "fresh workspace after poison");
        assert!(!r.results.is_empty());
        assert_eq!(shared.pooled_workspaces(), 1);
    }

    #[test]
    fn with_engine_exposes_reads() {
        let (shared, _q) = shared();
        let n = shared.with_engine(|e| e.ontology().len());
        assert_eq!(n, 1_000);
    }

    #[test]
    fn clones_share_state() {
        let (shared, q) = shared();
        let other = shared.clone();
        let id = shared.add_document(q);
        assert!(other.num_docs() > id.index());
        assert_eq!(other.num_docs(), shared.num_docs());
    }
}
