//! Error types for ontology construction and lookup.

use crate::ConceptId;
use std::fmt;

/// Convenience alias for fallible ontology operations.
pub type Result<T> = std::result::Result<T, OntologyError>;

/// Errors produced while building or querying an [`Ontology`](crate::Ontology).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OntologyError {
    /// An edge referenced a concept id that was never declared.
    UnknownConcept(ConceptId),
    /// A concept label was looked up but does not exist.
    UnknownLabel(String),
    /// The declared edges contain a directed cycle, so the graph is not a DAG.
    CycleDetected,
    /// The graph has no root (a node without parents) or the declared root
    /// cannot reach every concept.
    Disconnected {
        /// Number of concepts unreachable from the root.
        unreachable: usize,
    },
    /// More than one node has no parents; the paper's model (and the Dewey
    /// addressing scheme) requires a single root.
    MultipleRoots(Vec<ConceptId>),
    /// The same edge was declared twice.
    DuplicateEdge(ConceptId, ConceptId),
    /// An empty ontology was requested.
    Empty,
    /// Enumerating Dewey addresses exceeded the configured per-concept cap.
    TooManyPaths {
        /// Concept whose address count exceeded the cap.
        concept: ConceptId,
        /// The configured cap.
        cap: usize,
    },
    /// A Dewey address did not resolve to a node (component out of range).
    BadDeweyAddress(String),
}

impl fmt::Display for OntologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OntologyError::UnknownConcept(c) => write!(f, "unknown concept {c}"),
            OntologyError::UnknownLabel(l) => write!(f, "unknown concept label {l:?}"),
            OntologyError::CycleDetected => write!(f, "concept graph contains a cycle"),
            OntologyError::Disconnected { unreachable } => {
                write!(f, "{unreachable} concepts unreachable from the root")
            }
            OntologyError::MultipleRoots(roots) => {
                write!(f, "ontology has {} parentless nodes: {roots:?}", roots.len())
            }
            OntologyError::DuplicateEdge(p, c) => write!(f, "duplicate edge {p} -> {c}"),
            OntologyError::Empty => write!(f, "ontology has no concepts"),
            OntologyError::TooManyPaths { concept, cap } => {
                write!(f, "concept {concept} has more than {cap} Dewey addresses")
            }
            OntologyError::BadDeweyAddress(a) => write!(f, "Dewey address {a} does not resolve"),
        }
    }
}

impl std::error::Error for OntologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = OntologyError::UnknownConcept(ConceptId(9));
        assert!(e.to_string().contains("c9"));
        let e = OntologyError::TooManyPaths { concept: ConceptId(1), cap: 32 };
        assert!(e.to_string().contains("32"));
        let e = OntologyError::Disconnected { unreachable: 3 };
        assert!(e.to_string().contains('3'));
    }
}
