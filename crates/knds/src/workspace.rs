//! Reusable per-query scratch for the kNDS engines.
//!
//! Every kNDS query needs a family of lookup tables and buffers — the
//! candidate table, the coverage sets, the BFS frontier, posting/concept
//! fetch buffers, and the DRC DAG scratch. Allocating them per query
//! dominates short-query latency and defeats the paper's "no
//! precomputation, instant admission" story at service scale. A
//! [`KndsWorkspace`] owns all of that state once: engines borrow it for
//! the duration of one query via the `*_with` entry points
//! ([`Knds::rds_with`](crate::Knds::rds_with) and friends), clear it —
//! never free it — on return, and the hot loop stops allocating after the
//! first few queries warm the capacities up.
//!
//! # Dense epoch-stamped tables
//!
//! The per-state lookups of Algorithm 2 (BFS dedup, coverage-applied
//! pairs, the candidate map, Dijkstra tentative distances) live in
//! [`DenseTables`]: flat arrays sized by `|C|` and `|D|`, indexed by
//! arithmetic on `(origin, concept)` or by `DocId`, with **epoch stamps**
//! instead of per-query clearing. Every entry carries the epoch of the
//! query that last wrote it; a stamp that does not match the current
//! epoch reads as empty. Opening a query bumps one counter — O(1)
//! regardless of how much the previous query touched — and the arrays are
//! never memset between queries. When the 32-bit counter wraps (once per
//! ~4 billion queries) the stamps are zeroed wholesale so no entry from
//! the pre-wrap era can alias a live epoch; the event is surfaced as the
//! [`epoch_rollover`](crate::QueryMetrics::epoch_rollover) metric and
//! regression-tested via [`KndsWorkspace::force_epoch_wrap`].
//!
//! # Poisoning
//!
//! A query that panics mid-flight leaves the workspace dirty. The next
//! borrow detects this and resets the logical content before use, so a
//! pooled workspace can never leak one query's candidates into another's
//! results.

use crate::engine::{Candidate, State};
use cbr_corpus::DocId;
use cbr_dradix::DagScratch;
use cbr_index::packing;
use cbr_ontology::ConceptId;

/// Owned, reusable query state for [`Knds`](crate::Knds),
/// [`WeightedKnds`](crate::WeightedKnds), and the scan baselines.
///
/// One workspace serves one query at a time but any number of queries in
/// sequence — RDS, SDS, weighted, and baseline runs may interleave freely
/// on the same workspace and are bit-identical to fresh-state runs (see
/// the reuse-equivalence property tests in `tests/properties.rs`).
#[derive(Debug, Default)]
pub struct KndsWorkspace {
    /// Normalized (sorted, deduplicated) query buffer.
    pub(crate) query: Vec<ConceptId>,
    /// Dense epoch-stamped state tables (candidates, coverage, dedup,
    /// Dijkstra distances, doc marks) — the hash-free hot path.
    pub(crate) dense: DenseTables,
    /// Posting-list fetch buffer.
    pub(crate) postings_buf: Vec<DocId>,
    /// Forward-index fetch buffer.
    pub(crate) concepts_buf: Vec<ConceptId>,
    /// Current BFS level (double-buffered with `next_frontier`).
    pub(crate) frontier: Vec<State>,
    /// Next BFS level (swap-and-clear, never reallocated per level).
    pub(crate) next_frontier: Vec<State>,
    /// Weighted: distance-indexed Dijkstra buckets.
    pub(crate) buckets: Vec<Vec<State>>,
    /// Examination order buffer: `(lower bound, doc)` per round.
    pub(crate) order: Vec<(f64, DocId)>,
    /// Scratch document list (exhaustion finalize, progressive emission).
    pub(crate) docs_buf: Vec<DocId>,
    /// The DRC D-Radix build scratch (node/label arenas et al.).
    pub(crate) dag: DagScratch,
    /// True while a query is in flight (or after a panic left one
    /// unfinished); `begin` resets a dirty workspace before reuse.
    dirty: bool,
    /// Queries served so far (drives the `workspace_reused` metric).
    uses: usize,
}

impl KndsWorkspace {
    /// An empty workspace; capacity accrues over the first queries.
    pub fn new() -> KndsWorkspace {
        KndsWorkspace::default()
    }

    /// Marks the start of a query. Returns whether the workspace has
    /// served a query before (i.e. its capacities are warm). If the
    /// previous query panicked mid-flight the logical content is still
    /// present; it is cleared here before reuse.
    pub(crate) fn begin(&mut self) -> bool {
        if self.dirty {
            self.clear();
        }
        self.dirty = true;
        let warm = self.uses > 0;
        self.uses = self.uses.saturating_add(1);
        warm
    }

    /// Marks the end of a query: clears all logical content (keeping
    /// capacity) so the workspace is returned clean.
    pub(crate) fn finish(&mut self) {
        self.clear();
        self.dirty = false;
    }

    /// Pre-sizes the `|C|`- and `|D|`-indexed dense tables for an index
    /// of `concepts` concepts and `docs` documents, so a pooled or
    /// per-worker workspace does not grow them inside its first query.
    /// Origin-dependent tables still size at query begin (once `nq` is
    /// known), which also keeps pooled workspaces correct when the index
    /// grows between queries.
    pub fn reserve(&mut self, concepts: usize, docs: usize) {
        self.dense.reserve(concepts, docs);
    }

    /// Test-only hook: primes the epoch counter so the *next* query wraps
    /// it, exercising the full-stamp-reset path (`epoch_rollover`).
    #[doc(hidden)]
    pub fn force_epoch_wrap(&mut self) {
        self.dense.epoch = u32::MAX;
    }

    /// Detaches the DRC scratch for the duration of a query (it rides
    /// inside a [`Drc`](cbr_dradix::Drc) value); pair with
    /// [`restore_dag`](Self::restore_dag).
    pub(crate) fn take_dag(&mut self) -> DagScratch {
        std::mem::take(&mut self.dag)
    }

    /// Re-attaches the DRC scratch after a query.
    pub(crate) fn restore_dag(&mut self, dag: DagScratch) {
        self.dag = dag;
    }

    fn clear(&mut self) {
        self.query.clear();
        self.dense.clear();
        self.postings_buf.clear();
        self.concepts_buf.clear();
        self.frontier.clear();
        self.next_frontier.clear();
        for b in &mut self.buckets {
            b.clear();
        }
        self.order.clear();
        self.docs_buf.clear();
        // The DAG scratch clears itself on the next build; the dense
        // stamp arrays are invalidated by the next epoch bump.
    }

    /// Approximate heap footprint of the retained capacities, in bytes.
    /// This is the quantity reported as
    /// [`QueryMetrics::workspace_bytes`](crate::QueryMetrics) and asserted
    /// stable by the steady-state allocation tests: once warm, repeated
    /// queries must not grow any backing buffer.
    pub fn footprint_bytes(&self) -> usize {
        use std::mem::size_of;
        self.query.capacity() * size_of::<ConceptId>()
            + self.dense.footprint_bytes()
            + self.postings_buf.capacity() * size_of::<DocId>()
            + self.concepts_buf.capacity() * size_of::<ConceptId>()
            + (self.frontier.capacity() + self.next_frontier.capacity()) * size_of::<State>()
            + self.buckets.capacity() * size_of::<Vec<State>>()
            + self.buckets.iter().map(|b| b.capacity() * size_of::<State>()).sum::<usize>()
            + self.order.capacity() * size_of::<(f64, DocId)>()
            + self.docs_buf.capacity() * size_of::<DocId>()
            + self.dag.footprint_bytes()
    }
}

/// The dense, epoch-stamped replacement for the per-query hash maps.
///
/// Layouts (all indexes are plain arithmetic, no hashing):
///
/// * **packed state** `(origin, node, descending)` →
///   `(origin · |C| + node) · 2 + descending` — one bit per state in
///   `state_bits` (BFS dedup) and one `u32` per state in `best`
///   (weighted tentative distances);
/// * **pair** `(origin, node)` → `origin · |C| + node` — one bit per pair
///   in `pair_bits` (coverage applied);
/// * **concept** `node` → one stamp in `touch_stamps` (SDS global first
///   touch);
/// * **document** `doc` → one bit in `doc_bits` (progressive emission /
///   TA scan marks) and one packed `stamp << 32 | row` entry in `slots`
///   pointing into the dense candidate rows.
///
/// Bitsets stamp per 64-bit word, with the stamp *beside* the word (one
/// [`StampedWord`] per 64 entries) so a test-and-set touches a single
/// cache line; value arrays stamp per entry. A stamp equal to the current
/// epoch means live; any other value reads as empty, which is what makes
/// clearing O(1).
///
/// Candidates are *rows*, not map entries: `slots[doc]` points at
/// parallel `cand`/`cand_docs` vectors, and each row owns `cover_stride`
/// words of the shared `cover_words` arena for its per-query-concept
/// coverage bits — no per-candidate heap allocation anywhere.
#[derive(Debug, Default)]
pub(crate) struct DenseTables {
    /// Current query generation; stamps equal to this are live.
    epoch: u32,
    /// `|C|` used for state/pair indexing this query.
    concepts: usize,
    /// Words per candidate coverage row this query (`⌈nq / 64⌉`).
    cover_stride: usize,
    /// BFS state visited bits, stamped per word.
    state_bits: Vec<StampedWord>,
    /// `(origin, node)` coverage-applied bits, stamped per word.
    pair_bits: Vec<StampedWord>,
    /// Per-document mark bits (emitted / TA-seen), stamped per word.
    doc_bits: Vec<StampedWord>,
    /// SDS: per-concept first-touch stamps (a pure set; the touch level
    /// itself is applied to candidates at mark time).
    touch_stamps: Vec<u32>,
    /// Weighted: per-state best tentative distance + per-entry stamps.
    best: Vec<u32>,
    best_stamps: Vec<u32>,
    /// Document → candidate row index, packed `stamp << 32 | slot` so one
    /// load answers the (random-access, cache-hostile) slot lookup.
    slots: Vec<u64>,
    /// Dense candidate rows (`Md` bookkeeping), truncated between queries.
    pub(crate) cand: Vec<Candidate>,
    /// Parallel row → document mapping (drives iteration in examine /
    /// finalize without touching the `|D|`-sized slot map).
    pub(crate) cand_docs: Vec<DocId>,
    /// Shared coverage-bit arena: row `r` owns words
    /// `[r · cover_stride, (r + 1) · cover_stride)`.
    cover_words: Vec<u64>,
}

/// One stamped bitset word: 64 membership bits and the epoch that wrote
/// them, side by side so a test-and-set touches one cache line instead of
/// two parallel arrays.
#[derive(Debug, Default, Clone, Copy)]
struct StampedWord {
    word: u64,
    stamp: u32,
}

/// Grows a stamped bitset to hold `bits` entries. Never shrinks; new
/// words arrive with stamp 0, which is dead for every live epoch.
// flow: workspace-fed
fn grow_words(words: &mut Vec<StampedWord>, bits: usize) {
    let n = bits.div_ceil(64);
    if words.len() < n {
        words.resize(n, StampedWord::default());
    }
}

/// Tests-and-sets bit `idx` of a stamped bitset: `Some(true)` if the bit
/// was newly set this epoch, `Some(false)` if it was already live, `None`
/// if `idx` is out of range.
#[inline]
fn set_bit(words: &mut [StampedWord], epoch: u32, idx: usize) -> Option<bool> {
    let mask = 1u64 << (idx & 63);
    let e = words.get_mut(idx >> 6)?;
    if e.stamp != epoch {
        e.stamp = epoch;
        e.word = 0;
    }
    let fresh = e.word & mask == 0;
    e.word |= mask;
    Some(fresh)
}

/// Reads bit `idx` of a stamped bitset (out of range reads as unset).
#[inline]
fn test_bit(words: &[StampedWord], epoch: u32, idx: usize) -> bool {
    match words.get(idx >> 6) {
        Some(e) => e.stamp == epoch && e.word & (1u64 << (idx & 63)) != 0,
        None => false,
    }
}

impl DenseTables {
    /// Packed index of a BFS state (see the type-level layout docs).
    #[inline]
    fn state_index(&self, origin: u32, node: ConceptId, descending: bool) -> usize {
        debug_assert!(node.index() < self.concepts, "node beyond the sized concept bound");
        // bound: proven — the table is allocated at 2·origins·concepts, so the shift fits usize
        ((origin as usize * self.concepts + node.index()) << 1) | descending as usize
    }

    /// Opens a new query epoch and grows the tables to the query's
    /// geometry (`origins` query concepts over `concepts` ontology ids
    /// and `docs` documents). Growth happens here — at workspace
    /// acquisition — and never mid-query; a warm workspace re-sizes
    /// nothing and pays exactly one counter bump. Returns whether the
    /// epoch counter wrapped (forcing the one-time full stamp reset).
    // flow: workspace-fed
    pub(crate) fn begin_query(
        &mut self,
        origins: usize,
        concepts: usize,
        docs: usize,
        needs_touch: bool,
        needs_best: bool,
    ) -> bool {
        self.concepts = concepts;
        self.cover_stride = origins.div_ceil(64).max(1);
        let states = origins * concepts * 2;
        grow_words(&mut self.state_bits, states);
        grow_words(&mut self.pair_bits, origins * concepts);
        grow_words(&mut self.doc_bits, docs);
        if needs_touch && self.touch_stamps.len() < concepts {
            self.touch_stamps.resize(concepts, 0);
        }
        if needs_best && self.best.len() < states {
            self.best.resize(states, 0);
            self.best_stamps.resize(states, 0);
        }
        if self.slots.len() < docs {
            self.slots.resize(docs, 0);
        }
        self.cand.clear();
        self.cand_docs.clear();
        self.cover_words.clear();

        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // The counter wrapped: stamps written ~4 billion queries ago
            // would now alias a live epoch. Reset them all once and
            // restart the epoch sequence above the dead stamp value.
            for e in &mut self.state_bits {
                e.stamp = 0;
            }
            for e in &mut self.pair_bits {
                e.stamp = 0;
            }
            for e in &mut self.doc_bits {
                e.stamp = 0;
            }
            for s in &mut self.touch_stamps {
                *s = 0;
            }
            for s in &mut self.best_stamps {
                *s = 0;
            }
            for s in &mut self.slots {
                *s = 0;
            }
            self.epoch = 1;
            return true;
        }
        false
    }

    /// Pre-sizes the `|C|`/`|D|`-indexed tables (see
    /// [`KndsWorkspace::reserve`]).
    // flow: workspace-fed
    pub(crate) fn reserve(&mut self, concepts: usize, docs: usize) {
        if self.touch_stamps.len() < concepts {
            self.touch_stamps.resize(concepts, 0);
        }
        grow_words(&mut self.doc_bits, docs);
        if self.slots.len() < docs {
            self.slots.resize(docs, 0);
        }
    }

    /// Truncates the per-query candidate rows (capacity retained). The
    /// stamped arrays need no touch: the next epoch bump invalidates them.
    pub(crate) fn clear(&mut self) {
        self.cand.clear();
        self.cand_docs.clear();
        self.cover_words.clear();
    }

    /// Marks BFS state `(origin, node, descending)` visited; `true` if it
    /// was not yet visited this query.
    #[inline]
    pub(crate) fn mark_state(&mut self, origin: u32, node: ConceptId, descending: bool) -> bool {
        let idx = self.state_index(origin, node, descending);
        match set_bit(&mut self.state_bits, self.epoch, idx) {
            Some(fresh) => fresh,
            None => {
                debug_assert!(false, "state table smaller than the query geometry");
                false
            }
        }
    }

    /// Marks `(origin, node)` coverage-applied; `true` if newly applied.
    #[inline]
    pub(crate) fn mark_pair(&mut self, origin: u32, node: ConceptId) -> bool {
        debug_assert!(node.index() < self.concepts, "node beyond the sized concept bound");
        let idx = origin as usize * self.concepts + node.index();
        match set_bit(&mut self.pair_bits, self.epoch, idx) {
            Some(fresh) => fresh,
            None => {
                debug_assert!(false, "pair table smaller than the query geometry");
                false
            }
        }
    }

    /// SDS: records the global first touch of `node`; `true` exactly once
    /// per query per concept.
    #[inline]
    pub(crate) fn touch_first(&mut self, node: ConceptId) -> bool {
        let Some(stamp) = self.touch_stamps.get_mut(node.index()) else {
            debug_assert!(false, "touch table smaller than the ontology");
            return false;
        };
        if *stamp == self.epoch {
            return false;
        }
        *stamp = self.epoch;
        true
    }

    /// Weighted: the live best tentative distance of a state, if any.
    #[inline]
    pub(crate) fn best_dist(&self, origin: u32, node: ConceptId, descending: bool) -> Option<u32> {
        let idx = self.state_index(origin, node, descending);
        match (self.best.get(idx), self.best_stamps.get(idx)) {
            (Some(&v), Some(&s)) if s == self.epoch => Some(v),
            _ => None,
        }
    }

    /// Weighted relaxation: keeps `dist` iff it strictly improves (or
    /// first-sets) the state's tentative distance; `true` if kept.
    #[inline]
    pub(crate) fn improve_best(
        &mut self,
        origin: u32,
        node: ConceptId,
        descending: bool,
        dist: u32,
    ) -> bool {
        let idx = self.state_index(origin, node, descending);
        let epoch = self.epoch;
        let Some(stamp) = self.best_stamps.get_mut(idx) else {
            debug_assert!(false, "best table smaller than the query geometry");
            // Degrade to processing the push (duplicate work, never a
            // dropped state) — the sound direction.
            return true;
        };
        let Some(val) = self.best.get_mut(idx) else {
            debug_assert!(false, "best table smaller than the query geometry");
            return true;
        };
        if *stamp == epoch && *val <= dist {
            return false;
        }
        *stamp = epoch;
        *val = dist;
        true
    }

    /// The candidate row of `doc`, if one exists this query.
    #[inline]
    pub(crate) fn slot_of(&self, doc: DocId) -> Option<usize> {
        let &e = self.slots.get(doc.index())?;
        let (stamp, slot) = packing::unpack_stamp_slot(e);
        (stamp == self.epoch).then_some(slot as usize)
    }

    /// Appends a candidate row for `doc` and points the slot map at it.
    /// Rows and their arena words are retained capacity: pushes stop
    /// allocating once the workspace has seen the collection's reach.
    // flow: workspace-fed
    pub(crate) fn insert_candidate(&mut self, doc: DocId, doc_len: u32) -> usize {
        let slot = self.cand.len();
        self.cand.push(Candidate::new(doc_len));
        self.cand_docs.push(doc);
        // The arena was truncated at query begin, so the row's words are
        // freshly zeroed here (capacity, not contents, is retained).
        self.cover_words.resize(self.cover_words.len() + self.cover_stride, 0);
        let i = doc.index();
        debug_assert!(i < self.slots.len(), "doc beyond the sized document bound");
        if let Some(e) = self.slots.get_mut(i) {
            *e = packing::pack_stamp_slot(self.epoch, packing::narrow_u32(slot));
        }
        slot
    }

    /// Applies one posting hit to the row at `slot` in a single row
    /// access: skips examined rows (already in `Sd`, Algorithm 2 line
    /// 11), forward-covers `origin` at `level` if `fwd`, reverse-covers
    /// (SDS) if `rev`.
    #[inline]
    pub(crate) fn apply_to_candidate(
        &mut self,
        slot: usize,
        origin: u32,
        level: u32,
        fwd: bool,
        rev: bool,
    ) {
        let Some(c) = self.cand.get_mut(slot) else {
            debug_assert!(false, "posting hit without a candidate row");
            return;
        };
        if c.examined {
            return;
        }
        if fwd {
            let w = slot * self.cover_stride + (origin as usize >> 6);
            let mask = 1u64 << (origin & 63);
            if let Some(word) = self.cover_words.get_mut(w) {
                if *word & mask == 0 {
                    *word |= mask;
                    c.covered += 1;
                    c.partial += level as u64;
                }
            } else {
                debug_assert!(false, "coverage row beyond the arena");
            }
        }
        if rev {
            c.rev_covered += 1;
            c.rev_sum += level as u64;
        }
    }

    /// The candidate row at `slot`.
    #[inline]
    pub(crate) fn candidate(&self, slot: usize) -> Option<&Candidate> {
        self.cand.get(slot)
    }

    /// The candidate row at `slot`, mutably.
    #[inline]
    pub(crate) fn candidate_mut(&mut self, slot: usize) -> Option<&mut Candidate> {
        self.cand.get_mut(slot)
    }

    /// Marks `doc` (progressive emission / TA scan); `true` if newly
    /// marked this query.
    #[inline]
    pub(crate) fn mark_doc(&mut self, doc: DocId) -> bool {
        match set_bit(&mut self.doc_bits, self.epoch, doc.index()) {
            Some(fresh) => fresh,
            None => {
                debug_assert!(false, "doc table smaller than the collection");
                false
            }
        }
    }

    /// Whether `doc` is marked this query.
    #[inline]
    pub(crate) fn doc_marked(&self, doc: DocId) -> bool {
        test_bit(&self.doc_bits, self.epoch, doc.index())
    }

    /// Retained bytes of every dense table — the
    /// [`table_bytes`](crate::QueryMetrics::table_bytes) metric and part
    /// of the workspace footprint.
    pub(crate) fn footprint_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.state_bits.capacity() + self.pair_bits.capacity() + self.doc_bits.capacity())
            * size_of::<StampedWord>()
            + (self.touch_stamps.capacity() + self.best.capacity() + self.best_stamps.capacity())
                * size_of::<u32>()
            + self.slots.capacity() * size_of::<u64>()
            + self.cand.capacity() * size_of::<Candidate>()
            + self.cand_docs.capacity() * size_of::<DocId>()
            + self.cover_words.capacity() * size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_reports_warmth_and_finish_returns_clean() {
        let mut ws = KndsWorkspace::new();
        assert!(!ws.begin(), "first borrow is cold");
        ws.postings_buf.push(DocId(1));
        ws.finish();
        assert!(!ws.dirty);
        assert!(ws.postings_buf.is_empty(), "finish clears content");
        assert!(ws.begin(), "second borrow is warm");
    }

    #[test]
    fn dirty_workspace_is_cleared_on_next_begin() {
        let mut ws = KndsWorkspace::new();
        ws.begin();
        ws.query.push(ConceptId(3));
        ws.dense.begin_query(1, 8, 4, false, false);
        ws.dense.insert_candidate(DocId(0), 0);
        // No finish(): simulates a panic mid-query.
        ws.begin();
        assert!(ws.query.is_empty(), "stale query leaked");
        assert!(ws.dense.cand.is_empty(), "stale candidates leaked");
    }

    #[test]
    fn clearing_keeps_capacity() {
        let mut ws = KndsWorkspace::new();
        ws.begin();
        ws.postings_buf.extend((0..100).map(DocId));
        ws.buckets.push(vec![(0, ConceptId(0), false); 16]);
        ws.dense.begin_query(2, 64, 32, true, true);
        ws.dense.insert_candidate(DocId(5), 3);
        let footprint = ws.footprint_bytes();
        ws.finish();
        assert_eq!(ws.footprint_bytes(), footprint, "finish must keep capacity");
    }

    #[test]
    fn epoch_bump_empties_every_table_without_clearing() {
        let mut d = DenseTables::default();
        d.begin_query(2, 16, 8, true, true);
        assert!(d.mark_state(1, ConceptId(3), true), "first visit");
        assert!(!d.mark_state(1, ConceptId(3), true), "dup visit");
        assert!(d.mark_pair(0, ConceptId(7)));
        assert!(d.touch_first(ConceptId(9)));
        assert!(d.improve_best(1, ConceptId(2), false, 5));
        assert!(!d.improve_best(1, ConceptId(2), false, 5), "equal is not an improvement");
        assert!(d.improve_best(1, ConceptId(2), false, 4), "strict improvement");
        assert_eq!(d.best_dist(1, ConceptId(2), false), Some(4));
        assert!(d.mark_doc(DocId(6)));
        assert!(d.doc_marked(DocId(6)));
        let slot = d.insert_candidate(DocId(4), 2);
        assert_eq!(d.slot_of(DocId(4)), Some(slot));
        d.apply_to_candidate(slot, 0, 1, true, false);
        assert_eq!(d.candidate(slot).map(|c| (c.covered, c.partial)), Some((1, 1)));
        d.apply_to_candidate(slot, 0, 2, true, false);
        assert_eq!(
            d.candidate(slot).map(|c| (c.covered, c.partial)),
            Some((1, 1)),
            "origin already covered"
        );

        // Next query: everything reads empty again, at O(1) cost.
        d.begin_query(2, 16, 8, true, true);
        assert!(d.mark_state(1, ConceptId(3), true), "stale visit leaked");
        assert!(d.mark_pair(0, ConceptId(7)), "stale pair leaked");
        assert!(d.touch_first(ConceptId(9)), "stale touch leaked");
        assert_eq!(d.best_dist(1, ConceptId(2), false), None, "stale distance leaked");
        assert!(!d.doc_marked(DocId(6)), "stale doc mark leaked");
        assert_eq!(d.slot_of(DocId(4)), None, "stale slot leaked");
        assert!(d.cand.is_empty(), "stale rows leaked");
    }

    #[test]
    fn epoch_wrap_resets_stamps_instead_of_aliasing() {
        let mut d = DenseTables::default();
        assert!(!d.begin_query(1, 8, 4, true, true));
        d.mark_state(0, ConceptId(1), false);
        d.mark_pair(0, ConceptId(2));
        d.mark_doc(DocId(3));
        // Prime the counter at the wrap boundary, as the workspace hook
        // does, then open the wrapping query.
        d.epoch = u32::MAX;
        assert!(d.begin_query(1, 8, 4, true, true), "wrap must be reported");
        assert!(d.mark_state(0, ConceptId(1), false), "pre-wrap visit aliased the new epoch");
        assert!(d.mark_pair(0, ConceptId(2)), "pre-wrap pair aliased the new epoch");
        assert!(d.mark_doc(DocId(3)), "pre-wrap doc mark aliased the new epoch");
        assert!(!d.begin_query(1, 8, 4, true, true), "post-wrap queries are ordinary");
    }

    #[test]
    fn geometry_can_grow_between_queries() {
        let mut d = DenseTables::default();
        d.begin_query(1, 4, 2, false, false);
        d.mark_state(0, ConceptId(3), true);
        let small = d.footprint_bytes();
        // A wider query over a grown index re-sizes at begin and the old
        // stamps stay dead under the new indexing.
        d.begin_query(3, 64, 50, true, true);
        assert!(d.footprint_bytes() > small, "tables grew with the geometry");
        for c in 0..64u32 {
            for o in 0..3u32 {
                assert!(d.mark_state(o, ConceptId(c), false), "stale state under new geometry");
            }
        }
    }

    #[test]
    fn reserve_pre_sizes_the_collection_tables() {
        let mut ws = KndsWorkspace::new();
        ws.reserve(1000, 500);
        let reserved = ws.footprint_bytes();
        assert!(reserved > 0);
        // A query inside the reserved bounds grows nothing doc/concept
        // sized (state/pair tables still size by nq at begin).
        ws.dense.begin_query(0, 0, 400, true, false);
        assert_eq!(ws.footprint_bytes(), reserved, "reserved tables re-grew");
    }
}
