//! Cross-schedule analyses: the independence relation that powers the
//! sleep-set reduction, and the lock-order graph with cycle detection.

use crate::rt::{Op, Rid, Tid};
use std::collections::{BTreeMap, BTreeSet};

/// Whether two pending operations from *different* threads commute: if
/// executing them in either order reaches the same state, exploring both
/// orders is redundant and the sleep-set reduction may prune one.
///
/// Deliberately conservative — when unsure, report dependent (which only
/// costs extra schedules, never soundness).
pub fn independent(a: (Tid, &Op), b: (Tid, &Op)) -> bool {
    let ((ta, oa), (tb, ob)) = (a, b);
    if ta == tb {
        return false;
    }
    // A finish is dependent only with a join that waits for it.
    match (oa, ob) {
        (Op::Finish { .. }, Op::Join(ts)) => return !ts.contains(&ta),
        (Op::Join(ts), Op::Finish { .. }) => return !ts.contains(&tb),
        _ => {}
    }
    // Thread-local operations commute with everything.
    if matches!(oa, Op::Yield | Op::Spawn(_) | Op::Join(_) | Op::Finish { .. })
        || matches!(ob, Op::Yield | Op::Spawn(_) | Op::Join(_) | Op::Finish { .. })
    {
        return true;
    }
    // Operations on disjoint resources commute. A notify is dependent
    // with anything touching the same condvar; a condvar wait also
    // touches its mutex, which `rids()` reports.
    let (a1, a2) = oa.rids();
    let (b1, b2) = ob.rids();
    let shared = |x: Option<Rid>, y: Option<Rid>| x.is_some() && x == y;
    if !(shared(a1, b1) || shared(a1, b2) || shared(a2, b1) || shared(a2, b2)) {
        return true;
    }
    // Same resource: only two pure reads commute.
    oa.is_pure_read() && ob.is_pure_read()
}

/// A directed graph over lock [`Rid`]s: an edge `a -> b` means some
/// thread acquired `b` while holding `a`. Unions edges across every
/// explored schedule, so an inversion is caught even when no single
/// explored schedule deadlocks.
#[derive(Debug, Default)]
pub struct LockOrderGraph {
    edges: BTreeSet<(Rid, Rid)>,
}

impl LockOrderGraph {
    /// Merges one execution's observed edges.
    pub fn extend(&mut self, edges: impl IntoIterator<Item = (Rid, Rid)>) {
        self.edges.extend(edges);
    }

    /// Number of distinct edges observed.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges were observed.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Finds a cycle, returned as the lock sequence `r0 -> r1 -> ... -> r0`,
    /// or `None` if the acquisition order is consistent.
    pub fn find_cycle(&self) -> Option<Vec<Rid>> {
        let mut adj: BTreeMap<Rid, Vec<Rid>> = BTreeMap::new();
        let mut nodes: BTreeSet<Rid> = BTreeSet::new();
        for &(a, b) in &self.edges {
            if a == b {
                // Self-edge: re-acquisition, reported separately as S02.
                continue;
            }
            adj.entry(a).or_default().push(b);
            nodes.insert(a);
            nodes.insert(b);
        }
        // Iterative DFS with colors; reconstruct the cycle from the stack.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: BTreeMap<Rid, Color> = nodes.iter().map(|&n| (n, Color::White)).collect();
        for &start in &nodes {
            if color[&start] != Color::White {
                continue;
            }
            // Stack of (node, next-child-index) frames.
            let mut stack: Vec<(Rid, usize)> = vec![(start, 0)];
            color.insert(start, Color::Gray);
            while let Some(&(node, next)) = stack.last() {
                let children = adj.get(&node).map(|v| v.as_slice()).unwrap_or(&[]);
                if next < children.len() {
                    let child = children[next];
                    stack.last_mut().expect("non-empty stack").1 += 1;
                    match color[&child] {
                        Color::White => {
                            color.insert(child, Color::Gray);
                            stack.push((child, 0));
                        }
                        Color::Gray => {
                            // Found a back edge: slice the stack from the
                            // first occurrence of `child`.
                            let pos = stack
                                .iter()
                                .position(|&(n, _)| n == child)
                                .expect("gray node is on the stack");
                            let mut cycle: Vec<Rid> =
                                stack[pos..].iter().map(|&(n, _)| n).collect();
                            cycle.push(child);
                            return Some(cycle);
                        }
                        Color::Black => {}
                    }
                } else {
                    color.insert(node, Color::Black);
                    stack.pop();
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_resources_commute() {
        assert!(independent((0, &Op::Lock(1)), (1, &Op::Lock(2))));
        assert!(!independent((0, &Op::Lock(1)), (1, &Op::Lock(1))));
    }

    #[test]
    fn pure_reads_commute_on_the_same_resource() {
        assert!(independent((0, &Op::AtomicLoad(3)), (1, &Op::AtomicLoad(3))));
        assert!(!independent((0, &Op::AtomicLoad(3)), (1, &Op::AtomicRmw(3))));
        assert!(!independent((0, &Op::QPop(4)), (1, &Op::QPush(4))));
    }

    #[test]
    fn finish_depends_only_on_its_join() {
        let join = Op::Join(vec![2]);
        assert!(!independent((2, &Op::Finish { panicked: false }), (0, &join)));
        assert!(independent((1, &Op::Finish { panicked: false }), (0, &join)));
    }

    #[test]
    fn condwait_touches_its_mutex() {
        let wait = Op::CondWait { cv: 7, lock: 3 };
        assert!(!independent((0, &wait), (1, &Op::Lock(3))));
        assert!(!independent((0, &wait), (1, &Op::NotifyAll(7))));
        assert!(independent((0, &wait), (1, &Op::Lock(9))));
    }

    #[test]
    fn cycle_detection_finds_an_inversion() {
        let mut g = LockOrderGraph::default();
        g.extend([(1, 2), (2, 3)]);
        assert!(g.find_cycle().is_none());
        g.extend([(3, 1)]);
        let cycle = g.find_cycle().expect("cycle");
        assert!(cycle.len() >= 3);
        assert_eq!(cycle.first(), cycle.last());
    }

    #[test]
    fn self_edges_do_not_count_as_cycles() {
        let mut g = LockOrderGraph::default();
        g.extend([(5, 5)]);
        assert!(g.find_cycle().is_none());
    }
}
