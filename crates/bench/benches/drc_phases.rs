//! Criterion bench splitting DRC into its two phases (Section 4.3):
//! D-Radix construction (`O((|Pd|+|Pq|) log(|Pd|+|Pq|))`) vs distance
//! tuning (`O(|Pd|+|Pq|)`), across document sizes. The paper analyses the
//! phases separately; this bench verifies construction dominates. The
//! `reused` rows rebuild into one retained DAG (the `DagScratch` path every
//! query takes through a warm `KndsWorkspace`) vs allocating fresh.

use cbr_bench::{Scale, Workbench};
use cbr_dradix::DRadixDag;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_drc_phases(c: &mut Criterion) {
    let wb = Workbench::build(Scale::micro());
    let coll = wb.collection("PATIENT");
    let query = coll.query_documents(1, 5, 77).remove(0);
    let _ = wb.ontology.path_table();

    let mut group = c.benchmark_group("drc_phases");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for doc_size in [10usize, 30, 60] {
        let doc: Vec<_> = coll
            .corpus
            .documents()
            .flat_map(|d| d.concepts().iter().copied())
            .take(doc_size)
            .collect();
        group.bench_with_input(BenchmarkId::new("construct", doc_size), &doc, |b, doc| {
            b.iter(|| black_box(DRadixDag::build(&wb.ontology, black_box(doc), &query).stats()))
        });
        group.bench_with_input(BenchmarkId::new("construct+tune", doc_size), &doc, |b, doc| {
            b.iter(|| {
                let mut dag = DRadixDag::build(&wb.ontology, black_box(doc), &query);
                dag.tune();
                black_box(dag.stats())
            })
        });
        group.bench_with_input(BenchmarkId::new("construct_reused", doc_size), &doc, |b, doc| {
            let mut dag = DRadixDag::new();
            b.iter(|| {
                dag.build_into(&wb.ontology, black_box(doc), &query);
                black_box(dag.stats())
            })
        });
        group.bench_with_input(
            BenchmarkId::new("construct+tune_reused", doc_size),
            &doc,
            |b, doc| {
                let mut dag = DRadixDag::new();
                b.iter(|| {
                    dag.build_into(&wb.ontology, black_box(doc), &query);
                    dag.tune();
                    black_box(dag.stats())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_drc_phases);
criterion_main!(benches);
