//! Property-based equivalence for the dense-table kNDS engines.
//!
//! The dense, epoch-stamped workspace tables are a pure representation
//! change: for any ontology, corpus, query, and error threshold, the
//! engines must return exactly the distance profile of the exhaustive
//! baseline scan, and a reused (warm) workspace must be indistinguishable
//! from a fresh one — including across an epoch-counter rollover, where a
//! stamping bug would alias stale entries from a query run billions of
//! queries ago.

use cbr_corpus::{Corpus, CorpusGenerator, CorpusProfile};
use cbr_index::MemorySource;
use cbr_knds::{baseline, Knds, KndsConfig, KndsWorkspace, RankedDoc};
use cbr_ontology::{ConceptId, GeneratorConfig, Ontology, OntologyGenerator};
use proptest::prelude::*;

struct Fixture {
    ont: Ontology,
    corpus: Corpus,
    source: MemorySource,
}

fn fixture(seed: u64) -> Fixture {
    let ont = OntologyGenerator::new(GeneratorConfig::small(150).with_seed(seed)).generate();
    let profile = CorpusProfile::radio_like()
        .with_num_docs(40)
        .with_mean_concepts(8.0)
        .with_seed(seed.wrapping_add(29));
    let corpus = CorpusGenerator::new(&ont, profile).generate();
    let source = MemorySource::build(&corpus, ont.len());
    Fixture { ont, corpus, source }
}

fn pick_concepts(ont: &Ontology, picks: &[u32]) -> Vec<ConceptId> {
    let mut v: Vec<ConceptId> = picks.iter().map(|&p| ConceptId(p % ont.len() as u32)).collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Exact-distance profile equality (documents may swap only within ties).
fn same_profile(a: &[RankedDoc], b: &[RankedDoc]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b.iter()).all(|(x, y)| {
            x.distance == y.distance || (x.distance.is_infinite() && y.distance.is_infinite())
        })
}

/// Full bit-identity: same documents, same distance *bits*, same order.
/// `==` on f64 would accept `-0.0 == 0.0` and reject equal NaNs; the
/// warm-workspace and epoch-rollover guarantees are about the exact bits
/// the scorer produced, so compare through `to_bits`.
fn identical(a: &[RankedDoc], b: &[RankedDoc]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|(x, y)| x.doc == y.doc && x.distance.to_bits() == y.distance.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Dense-table RDS matches the exhaustive baseline at every error
    /// threshold, and a warm workspace returns bit-identical results to a
    /// fresh one.
    #[test]
    fn rds_dense_tables_match_baseline(
        seed in 0u64..200,
        query_picks in prop::collection::vec(0u32..10_000, 1..5),
        k in 1usize..8,
    ) {
        let f = fixture(seed);
        let q = pick_concepts(&f.ont, &query_picks);
        let expect = baseline::rds(&f.ont, &f.source, &q, k);
        let mut warm = KndsWorkspace::new();
        for eps in [0.0, 0.5, 1.0] {
            let cfg = KndsConfig::default().with_error_threshold(eps);
            let engine = Knds::new(&f.ont, &f.source, cfg);
            let fresh = engine.rds(&q, k);
            prop_assert!(
                same_profile(&fresh.results, &expect.results),
                "eps {eps}: {:?} vs baseline {:?}", fresh.results, expect.results
            );
            // Same engine, warm workspace: not just the same profile — the
            // same bits. Run twice so the second pass reads tables the
            // first one dirtied.
            for pass in 0..2 {
                let reused = engine.rds_with(&mut warm, &q, k);
                prop_assert!(
                    identical(&reused.results, &fresh.results),
                    "eps {eps} pass {pass}: warm workspace diverged"
                );
            }
        }
    }

    /// Dense-table SDS matches the exhaustive baseline at every error
    /// threshold, with query documents drawn from the corpus.
    #[test]
    fn sds_dense_tables_match_baseline(
        seed in 0u64..200,
        doc_pick in 0u32..10_000,
        k in 1usize..6,
    ) {
        let f = fixture(seed);
        let doc = f.corpus.get(cbr_corpus::DocId(doc_pick % f.corpus.len() as u32));
        let q = if doc.num_concepts() > 0 {
            doc.concepts().to_vec()
        } else {
            vec![f.ont.root()]
        };
        let expect = baseline::sds(&f.ont, &f.source, &q, k);
        let mut warm = KndsWorkspace::new();
        for eps in [0.0, 0.5, 1.0] {
            let cfg = KndsConfig::default().with_error_threshold(eps);
            let engine = Knds::new(&f.ont, &f.source, cfg);
            let fresh = engine.sds(&q, k);
            prop_assert!(
                same_profile(&fresh.results, &expect.results),
                "eps {eps}: {:?} vs baseline {:?}", fresh.results, expect.results
            );
            for pass in 0..2 {
                let reused = engine.sds_with(&mut warm, &q, k);
                prop_assert!(
                    identical(&reused.results, &fresh.results),
                    "eps {eps} pass {pass}: warm workspace diverged"
                );
            }
        }
    }
}

/// Epoch rollover must reset every stamp array instead of aliasing entries
/// from 2³² queries ago: a query straddling the wrap returns the same bits
/// as one on a fresh workspace, and reports the rollover in its metrics.
#[test]
fn epoch_rollover_is_invisible_to_results() {
    let f = fixture(42);
    let q: Vec<ConceptId> = f
        .corpus
        .documents()
        .find(|d| d.num_concepts() >= 3)
        .map(|d| d.concepts()[..3].to_vec())
        .expect("corpus has a 3-concept document");
    let engine = Knds::new(&f.ont, &f.source, KndsConfig::default());
    let expect = engine.rds(&q, 5);

    let mut ws = KndsWorkspace::new();
    // Dirty the tables, then force the epoch counter to the wrap point.
    let warm = engine.rds_with(&mut ws, &q, 5);
    assert_eq!(warm.results, expect.results);
    assert_eq!(warm.metrics.epoch_rollover, 0, "no rollover before the wrap");
    ws.force_epoch_wrap();

    let wrapped = engine.rds_with(&mut ws, &q, 5);
    assert!(
        identical(&wrapped.results, &expect.results),
        "results diverged across the epoch wrap: {:?} vs {:?}",
        wrapped.results,
        expect.results
    );
    assert_eq!(wrapped.metrics.epoch_rollover, 1, "the wrapping query must report the rollover");

    // The query after the wrap runs on epoch 1 over fully zeroed stamps.
    let after = engine.rds_with(&mut ws, &q, 5);
    assert!(identical(&after.results, &expect.results), "post-wrap query diverged");
    assert_eq!(after.metrics.epoch_rollover, 0, "rollover is a one-query event");
}

/// Same wrap regression for SDS, whose extra touch-stamp table has its own
/// epoch discipline.
#[test]
fn epoch_rollover_is_invisible_to_sds() {
    let f = fixture(43);
    let q: Vec<ConceptId> = f
        .corpus
        .documents()
        .find(|d| d.num_concepts() >= 3)
        .map(|d| d.concepts().to_vec())
        .expect("corpus has a 3-concept document");
    let engine = Knds::new(&f.ont, &f.source, KndsConfig::default());
    let expect = engine.sds(&q, 4);

    let mut ws = KndsWorkspace::new();
    let _ = engine.sds_with(&mut ws, &q, 4);
    ws.force_epoch_wrap();
    let wrapped = engine.sds_with(&mut ws, &q, 4);
    assert!(
        identical(&wrapped.results, &expect.results),
        "SDS results diverged across the epoch wrap: {:?} vs {:?}",
        wrapped.results,
        expect.results
    );
    assert_eq!(wrapped.metrics.epoch_rollover, 1);

    // SDS normalizes through f64 division, so bit-identity after the wrap
    // additionally proves the packed stamp/slot entries were fully reset —
    // a stale slot would feed a different doc_len into the normalization.
    let after = engine.sds_with(&mut ws, &q, 4);
    assert!(identical(&after.results, &expect.results), "post-wrap SDS query diverged");
    assert_eq!(after.metrics.epoch_rollover, 0);
}
