//! Property: a replayed schedule ID reproduces the identical
//! interleaving — the granted sync-point trace, the re-encoded schedule,
//! and the findings are all byte-identical across two replays of the
//! same ID, for arbitrary (including over-long or out-of-range) IDs.

use proptest::prelude::*;
use sched::explore::Options;
use schedrun::harness::registry;

fn opts() -> Options {
    Options { budget: 50, max_steps: 5_000, seed: 11, dfs_quarters: 3 }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn replayed_schedule_ids_are_deterministic(digits in prop::collection::vec(0u8..4, 0..10)) {
        // Base36 digits drawn from 0..4: mostly valid decision indices,
        // occasionally past the enabled count (a deterministic divergence).
        let id: String = digits
            .iter()
            .map(|d| char::from_digit(u32::from(*d), 36).expect("digit below 36"))
            .collect();
        let harnesses = registry();
        let pool = harnesses.iter().find(|h| h.name == "pool-stress").expect("registered");
        let a = pool.replay(&opts(), &id).expect("well-formed id");
        let b = pool.replay(&opts(), &id).expect("well-formed id");
        prop_assert_eq!(&a.trace, &b.trace);
        prop_assert_eq!(&a.schedule, &b.schedule);
        prop_assert_eq!(&a.findings, &b.findings);
    }
}

#[test]
fn malformed_ids_are_rejected() {
    let harnesses = registry();
    let pool = harnesses.iter().find(|h| h.name == "pool-stress").expect("registered");
    assert!(pool.replay(&opts(), "a!b").is_err());
}
