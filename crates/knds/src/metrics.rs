//! Per-query instrumentation.
//!
//! The paper's plots split query latency into distance-calculation time
//! (DRC), ontology-traversal time (kNDS only) and index I/O time
//! (Section 6.2). [`QueryMetrics`] captures the same three buckets plus the
//! counters behind the secondary statistics the paper reports (e.g. the
//! fraction of DRC-probed documents that end up in the top-k).

use std::fmt;
use std::time::Duration;

/// Timing and work counters for one query evaluation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryMetrics {
    /// Time in ontology traversal and candidate bookkeeping.
    pub traversal: Duration,
    /// Time computing exact distances (DRC probes and partial finalizes).
    pub distance_calc: Duration,
    /// Time inside the index source (postings + forward fetches) — the
    /// analogue of the paper's database access time.
    pub io: Duration,

    /// Exact distances computed via a DRC probe.
    pub drc_calls: usize,
    /// Exact distances obtained from complete partial information
    /// (Section 5.3, optimization 3 — no DRC call needed).
    pub exact_from_partial: usize,
    /// Documents whose exact distance was computed (`|Sd|`).
    pub docs_examined: usize,
    /// Documents that entered the candidate list (`|Ld ∪ Sd|`).
    pub candidates_seen: usize,
    /// BFS states processed.
    pub nodes_visited: usize,
    /// Breadth-first levels completed.
    pub levels: u32,
    /// Examination rounds forced by the queue watermark.
    pub forced_rounds: usize,
    /// Results that were provably final before termination
    /// (Section 5.3, optimization 4).
    pub progressive_results: usize,
    /// 1 if this query ran on a previously warmed (reused) workspace,
    /// 0 on a cold one. Sums to a reuse count under [`accumulate`]
    /// (Self::accumulate).
    pub workspace_reused: usize,
    /// Retained workspace footprint (bytes of buffer capacity) after the
    /// query returned it clean. Steady-state tests assert this stops
    /// growing once the workspace is warm. [`accumulate`](Self::accumulate)
    /// keeps the maximum.
    pub workspace_bytes: usize,
    /// Dense-table lookups that hit an already-present live entry (BFS
    /// state dedup rejections, candidate slot re-touches, Dijkstra
    /// relaxation rejects). Sums under [`accumulate`](Self::accumulate).
    pub dense_hits: usize,
    /// 1 if this query's epoch bump wrapped the stamp counter (forcing
    /// the one-in-4-billion full stamp reset), 0 otherwise. Sums under
    /// [`accumulate`](Self::accumulate).
    pub epoch_rollover: usize,
    /// Bytes retained by the dense epoch-stamped tables (a subset of
    /// [`workspace_bytes`](Self::workspace_bytes)).
    /// [`accumulate`](Self::accumulate) keeps the maximum.
    pub table_bytes: usize,
}

impl QueryMetrics {
    /// Total wall time across the three buckets.
    pub fn total(&self) -> Duration {
        self.traversal + self.distance_calc + self.io
    }

    /// Fraction of examined documents that made the final top-k — the
    /// Section 6.2 statistic ("99% of the documents for which the actual
    /// distance was calculated were returned in the top-k results").
    pub fn examination_precision(&self, k: usize) -> f64 {
        if self.docs_examined == 0 {
            return 1.0;
        }
        k.min(self.docs_examined) as f64 / self.docs_examined as f64
    }

    /// Accumulates another query's metrics (for workload averages).
    pub fn accumulate(&mut self, other: &QueryMetrics) {
        self.traversal += other.traversal;
        self.distance_calc += other.distance_calc;
        self.io += other.io;
        self.drc_calls += other.drc_calls;
        self.exact_from_partial += other.exact_from_partial;
        self.docs_examined += other.docs_examined;
        self.candidates_seen += other.candidates_seen;
        self.nodes_visited += other.nodes_visited;
        self.levels += other.levels;
        self.forced_rounds += other.forced_rounds;
        self.progressive_results += other.progressive_results;
        self.workspace_reused += other.workspace_reused;
        self.workspace_bytes = self.workspace_bytes.max(other.workspace_bytes);
        self.dense_hits += other.dense_hits;
        self.epoch_rollover += other.epoch_rollover;
        self.table_bytes = self.table_bytes.max(other.table_bytes);
    }

    /// Divides all durations by `n` (workload averaging).
    pub fn averaged(mut self, n: u32) -> QueryMetrics {
        if n > 0 {
            self.traversal /= n;
            self.distance_calc /= n;
            self.io /= n;
        }
        self
    }
}

impl fmt::Display for QueryMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {:>9.3?} (calc {:.3?}, traversal {:.3?}, io {:.3?}); \
             {} examined ({} DRC, {} partial), {} candidates, {} states, {} levels",
            self.total(),
            self.distance_calc,
            self.traversal,
            self.io,
            self.docs_examined,
            self.drc_calls,
            self.exact_from_partial,
            self.candidates_seen,
            self.nodes_visited,
            self.levels,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_buckets() {
        let m = QueryMetrics {
            traversal: Duration::from_millis(2),
            distance_calc: Duration::from_millis(3),
            io: Duration::from_millis(5),
            ..Default::default()
        };
        assert_eq!(m.total(), Duration::from_millis(10));
    }

    #[test]
    fn accumulate_and_average() {
        let mut a = QueryMetrics {
            traversal: Duration::from_millis(4),
            drc_calls: 2,
            ..Default::default()
        };
        let b = QueryMetrics {
            traversal: Duration::from_millis(6),
            drc_calls: 3,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.drc_calls, 5);
        let avg = a.averaged(2);
        assert_eq!(avg.traversal, Duration::from_millis(5));
        assert_eq!(avg.drc_calls, 5, "counters are not averaged");
    }

    #[test]
    fn examination_precision_bounds() {
        let mut m = QueryMetrics::default();
        assert_eq!(m.examination_precision(10), 1.0);
        m.docs_examined = 20;
        assert_eq!(m.examination_precision(10), 0.5);
        m.docs_examined = 5;
        assert_eq!(m.examination_precision(10), 1.0);
    }

    #[test]
    fn display_is_informative() {
        let m = QueryMetrics { drc_calls: 7, ..Default::default() };
        assert!(m.to_string().contains("7 DRC"));
    }
}
