//! The bound rules B01–B05, run over per-function numeric sites and
//! the whole-program call graph.
//!
//! * **B01** — no potentially-truncating `as` cast on the query path:
//!   narrowing width, sign changes, and narrow targets with an unproven
//!   source type must go through the checked `cbr_index::packing`
//!   helpers or carry a justified `// bound: proven` directive.
//! * **B02** — overflow-capable left shifts (the `stamp << 32 | slot`
//!   packing shape) are confined to the packing axiom module; the
//!   literal-LHS set-bit idiom (`1u64 << (i & 63)`) is exempt.
//! * **B03** — buffers reachable from the query roots grow only with
//!   capacity established at construction or sized by `|C|`/`|D|`; a
//!   growth call inside a loop needs a `// bound: sized` justification.
//!   This is the static complement of flow F01's dynamic steady-state
//!   allocation check.
//! * **B04** — the hot path is proven recursion-free: no call-graph
//!   cycle among functions reachable from [`ROOT_SPECS`].
//! * **B05** — float hygiene on the ranking path: no division without a
//!   lexical nonzero guard, and no `as f64` on 64-bit integers (exact
//!   only below 2^53) — extending audit A01 from comparison sites to
//!   the producer sites feeding them.
//!
//! A meta-rule (`BOUND`) guards against vacuity: every entry of
//! [`ROOT_SPECS`] must match a function, otherwise the rules would
//! "pass" by proving nothing.

use crate::summary::{Cast, Directive, NumSites, SrcTy};
use cbr_flow::graph::{propagate, Graph};
use cbr_flow::parser::Workspace;
use cbr_flow::report::Finding;
use std::collections::BTreeSet;

/// The hot-path roots the bound rules protect, as `(module, fn)`
/// pairs: the snapshot/engine/TA/weighted query entry points plus the
/// D-Radix DAG build that every exact distance goes through.
pub const ROOT_SPECS: [(&str, &str); 8] = [
    ("core::snapshot", "rds_with"),
    ("core::snapshot", "sds_with"),
    ("knds::engine", "rds_with"),
    ("knds::engine", "sds_with"),
    ("knds::ta", "rds_with"),
    ("knds::weighted", "rds_with"),
    ("knds::weighted", "sds_with"),
    ("dradix::dag", "build_into"),
];

/// B04 proof statistics, reported even when everything passes: a clean
/// run must show *what* was proven (roots matched, functions covered,
/// zero cycles), not just the absence of findings.
#[derive(Debug, Default, Clone, Copy)]
pub struct RuleStats {
    /// Root functions matched by [`ROOT_SPECS`].
    pub b04_roots: usize,
    /// Non-test functions transitively reachable from the roots.
    pub b04_reachable_fns: usize,
    /// Functions participating in a reachable call cycle (findings).
    pub b04_cyclic_fns: usize,
}

/// Runs all bound rules; returns findings plus the B04 proof stats.
pub fn run(ws: &Workspace, graph: &Graph, sites: &NumSites) -> (Vec<Finding>, RuleStats) {
    let edges = bound_edges(ws, graph, false);
    let mut findings = Vec::new();

    let seeds = match_roots(ws, &mut findings);
    let reach = propagate(&edges, &seeds);
    let mut stats = RuleStats { b04_roots: seeds.len(), ..RuleStats::default() };

    for (id, f) in ws.fns.iter().enumerate() {
        if f.is_test || !reach.reached(id) {
            continue;
        }
        stats.b04_reachable_fns += 1;
        let file = &ws.files[f.file];
        let fx = &sites.fns[id];

        for cast in &fx.casts {
            let Some(detail) = b01_verdict(cast) else { continue };
            if let Some(msg) = directive_note(cast.proven, &detail) {
                findings.push(Finding::new("B01", &file.rel, file.line_of(cast.at), msg));
            }
        }
        for shift in &fx.shifts {
            let detail = "overflow-capable left shift outside the checked packing \
                          helpers; route through `cbr_index::packing` or prove the bound"
                .to_string();
            if let Some(msg) = directive_note(shift.proven, &detail) {
                findings.push(Finding::new("B02", &file.rel, file.line_of(shift.at), msg));
            }
        }
        for g in &fx.growths {
            let detail = format!(
                "`{}.{}` grows a buffer inside a loop on the hot path; establish \
                 capacity at construction or justify with `// bound: sized <why>`",
                g.receiver, g.method
            );
            if let Some(msg) = sized_note(g.sized, &detail) {
                findings.push(Finding::new("B03", &file.rel, file.line_of(g.at), msg));
            }
        }
        for div in &fx.divisions {
            let detail = format!(
                "division by `{}` without a zero/NaN guard on the ranking path",
                div.divisor
            );
            if let Some(msg) = directive_note(div.proven, &detail) {
                findings.push(Finding::new("B05", &file.rel, file.line_of(div.at), msg));
            }
        }
        for cast in &fx.casts {
            let Some(detail) = b05_float_verdict(cast) else { continue };
            if let Some(msg) = directive_note(cast.proven, &detail) {
                findings.push(Finding::new("B05", &file.rel, file.line_of(cast.at), msg));
            }
        }
    }

    let call_edges = bound_edges(ws, graph, true);
    b04_recursion_free(ws, &call_edges, &reach, &mut stats, &mut findings);
    findings.sort_by(|a, b| (&a.rule, &a.file, a.line).cmp(&(&b.rule, &b.file, b.line)));
    (findings, stats)
}

/// Suppression for `bound: proven`: justified directives discharge the
/// site; bare ones fire with a note so the argument cannot evaporate.
fn directive_note(d: Directive, detail: &str) -> Option<String> {
    match d {
        Directive::Justified => None,
        Directive::Absent => Some(detail.to_string()),
        Directive::Unjustified => Some(format!(
            "{detail} (bare `bound: proven` directive — write the invariant justification)"
        )),
    }
}

/// Suppression for `bound: sized`, with the same bare-directive rule.
fn sized_note(d: Directive, detail: &str) -> Option<String> {
    match d {
        Directive::Justified => None,
        Directive::Absent => Some(detail.to_string()),
        Directive::Unjustified => Some(format!(
            "{detail} (bare `bound: sized` directive — write the sizing justification)"
        )),
    }
}

/// Width rank of a primitive type token (bool ranks 0: never wider).
fn rank(ty: &str) -> u8 {
    match ty {
        "bool" => 0,
        "u8" | "i8" => 1,
        "u16" | "i16" => 2,
        "u32" | "i32" | "f32" => 4,
        _ => 8, // u64, i64, usize, isize, f64
    }
}

fn signed(ty: &str) -> bool {
    ty.starts_with('i')
}

fn unsigned(ty: &str) -> bool {
    ty.starts_with('u')
}

fn float(ty: &str) -> bool {
    ty == "f32" || ty == "f64"
}

/// Narrow integer targets where an unknown source is flagged.
const NARROW_TARGETS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// The B01 verdict for one cast: `Some(detail)` when truncation is
/// possible, `None` when the cast is provably value-preserving.
fn b01_verdict(cast: &Cast) -> Option<String> {
    let t = cast.target.as_str();
    if float(t) {
        return None; // B05 owns float targets
    }
    match &cast.src {
        SrcTy::Lit => None,
        SrcTy::Known(s) => {
            let s = s.as_str();
            if s == t {
                return None;
            }
            if float(s) {
                return Some(format!(
                    "float-to-integer cast `{} as {t}` truncates on the query path",
                    cast.expr
                ));
            }
            if signed(s) && unsigned(t) {
                return Some(format!(
                    "sign-changing cast `{} as {t}` ({s} -> {t}); use a checked conversion",
                    cast.expr
                ));
            }
            if rank(s) > rank(t) {
                return Some(format!(
                    "narrowing cast `{} as {t}` ({s} -> {t}); use `cbr_index::packing` \
                     or prove the bound",
                    cast.expr
                ));
            }
            if s == "u64" && t == "usize" {
                return Some(format!(
                    "platform-dependent cast `{} as usize` (u64 -> usize truncates on \
                     32-bit targets)",
                    cast.expr
                ));
            }
            if unsigned(s) && signed(t) && rank(s) >= rank(t) {
                return Some(format!(
                    "sign-overflowing cast `{} as {t}` ({s} -> {t}); the high bit flips \
                     the sign",
                    cast.expr
                ));
            }
            None
        }
        SrcTy::Unknown => {
            if NARROW_TARGETS.contains(&t) {
                Some(format!(
                    "cast `{} as {t}` with unproven source type on the query path; use \
                     `cbr_index::packing` or prove the bound",
                    cast.expr
                ))
            } else {
                None
            }
        }
    }
}

/// The B05 verdict for float-target casts: 64-bit integers are exact in
/// `f64` only below 2^53 (and 32-bit in `f32` below 2^24).
fn b05_float_verdict(cast: &Cast) -> Option<String> {
    let t = cast.target.as_str();
    if !float(t) {
        return None;
    }
    let SrcTy::Known(s) = &cast.src else { return None };
    if float(s.as_str()) || rank(s) < rank(t) {
        return None;
    }
    Some(format!(
        "`{} as {t}` on a {s} loses precision for values beyond the mantissa; bound \
         the operand or prove the range",
        cast.expr
    ))
}

/// Call edges the bound rules work over: the resolved graph minus
/// test-region and debug-gated sites, and test functions on either end.
///
/// Two precision modes. Reachability (`confident = false`) keeps the
/// full name-resolved over-approximation — more reach means more code
/// checked, which is the conservative direction for B01/B02/B03/B05.
/// The B04 cycle check (`confident = true`) keeps only confidently
/// resolved calls: free-function calls, `self.` method calls, and
/// method calls with a unique candidate. Name-ambiguous dispatch like
/// `self.inner.postings(..)` otherwise resolves back to the delegating
/// wrapper itself and every same-name trait impl, manufacturing call
/// "cycles" no execution can take.
fn bound_edges(ws: &Workspace, graph: &Graph, confident: bool) -> Vec<Vec<usize>> {
    ws.fns
        .iter()
        .enumerate()
        .map(|(id, f)| {
            if f.is_test {
                return Vec::new();
            }
            let file = &ws.files[f.file];
            let mut out = BTreeSet::new();
            for (ci, call) in f.calls.iter().enumerate() {
                if file.is_test(call.at) || file.is_debug_gated(call.at) {
                    continue;
                }
                let targets: Vec<usize> =
                    graph.targets[id][ci].iter().copied().filter(|&t| !ws.fns[t].is_test).collect();
                if confident && call.method && !call.recv_self && targets.len() > 1 {
                    continue;
                }
                out.extend(targets);
            }
            out.into_iter().collect()
        })
        .collect()
}

/// Matches [`ROOT_SPECS`] against the workspace; emits `BOUND`
/// meta-findings for unmatched specs so the proof can never go vacuous.
fn match_roots(ws: &Workspace, findings: &mut Vec<Finding>) -> Vec<usize> {
    let mut seeds = Vec::new();
    for (module, name) in ROOT_SPECS {
        let matched: Vec<usize> = ws
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.is_test && f.module == module && f.name == name)
            .map(|(id, _)| id)
            .collect();
        if matched.is_empty() {
            findings.push(Finding::new(
                "BOUND",
                "crates/bound/src/rules.rs",
                0,
                format!(
                    "root spec `{module}::{name}` matched no function — the numeric-safety \
                     proof is vacuous; update ROOT_SPECS"
                ),
            ));
        }
        seeds.extend(matched);
    }
    seeds
}

/// B04: every strongly-connected component among the reachable
/// functions must be trivial (single node, no self loop).
fn b04_recursion_free(
    ws: &Workspace,
    edges: &[Vec<usize>],
    reach: &cbr_flow::graph::Reach,
    stats: &mut RuleStats,
    findings: &mut Vec<Finding>,
) {
    let keep: Vec<bool> =
        ws.fns.iter().enumerate().map(|(id, f)| !f.is_test && reach.reached(id)).collect();
    for comp in sccs(edges, &keep) {
        let cyclic = comp.len() > 1 || edges[comp[0]].contains(&comp[0]);
        if !cyclic {
            continue;
        }
        stats.b04_cyclic_fns += comp.len();
        // Anchor the finding at the lexically-first member.
        let anchor = comp
            .iter()
            .copied()
            .min_by_key(|&id| (&ws.files[ws.fns[id].file].rel, ws.fns[id].line))
            .unwrap_or(comp[0]);
        let mut names: Vec<String> = comp.iter().map(|&id| ws.display(id)).collect();
        names.sort();
        let chain = names.iter().map(|n| format!("`{n}`")).collect::<Vec<_>>().join(" -> ");
        let f = &ws.fns[anchor];
        findings.push(Finding::new(
            "B04",
            &ws.files[f.file].rel,
            f.line,
            format!(
                "recursive call cycle on the hot path: {chain} -> back; the query \
                     path must have a static depth bound"
            ),
        ));
    }
}

/// Strongly-connected components of the kept subgraph (iterative
/// Tarjan — the recursion checker must not itself recurse).
fn sccs(edges: &[Vec<usize>], keep: &[bool]) -> Vec<Vec<usize>> {
    let n = edges.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next = 0usize;
    let mut out = Vec::new();
    for s in 0..n {
        if !keep[s] || index[s] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = Vec::new();
        index[s] = next;
        low[s] = next;
        next += 1;
        stack.push(s);
        on[s] = true;
        call.push((s, 0));
        while let Some(frame) = call.last_mut() {
            let v = frame.0;
            let ci = frame.1;
            frame.1 += 1;
            match edges[v].get(ci).copied() {
                Some(w) => {
                    if !keep[w] {
                        continue;
                    }
                    if index[w] == usize::MAX {
                        index[w] = next;
                        low[w] = next;
                        next += 1;
                        stack.push(w);
                        on[w] = true;
                        call.push((w, 0));
                    } else if on[w] {
                        low[v] = low[v].min(index[w]);
                    }
                }
                None => {
                    call.pop();
                    if let Some(parent) = call.last() {
                        low[parent.0] = low[parent.0].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        out.push(comp);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::extract;
    use cbr_flow::graph::CrateDeps;
    use cbr_flow::scanner::SourceFile;

    fn check(files: &[(&str, &str)]) -> (Vec<Finding>, RuleStats) {
        let ws = Workspace::parse(files.iter().map(|(r, t)| SourceFile::parse(r, t)).collect());
        let graph = Graph::build(&ws, &CrateDeps::default());
        let sites = extract(&ws);
        run(&ws, &graph, &sites)
    }

    /// Fixture files matching every root spec, so the meta-rule stays
    /// quiet in tests that target specific rules. Files already present
    /// in the test's own input are not duplicated.
    const ROOTS: [(&str, &str); 5] = [
        (
            "crates/core/src/snapshot.rs",
            "pub struct Snap;\nimpl Snap {\n\
             pub fn rds_with(&self) -> u32 { 0 }\n\
             pub fn sds_with(&self) -> u32 { 0 }\n\
             }\n",
        ),
        (
            "crates/knds/src/engine.rs",
            "pub struct Knds;\nimpl Knds {\n\
             pub fn rds_with(&self) -> u32 { 0 }\n\
             pub fn sds_with(&self) -> u32 { 0 }\n\
             }\n",
        ),
        ("crates/knds/src/ta.rs", "pub fn rds_with() -> u32 { 0 }\n"),
        (
            "crates/knds/src/weighted.rs",
            "pub struct W;\nimpl W {\n\
             pub fn rds_with(&self) -> u32 { 0 }\n\
             pub fn sds_with(&self) -> u32 { 0 }\n\
             }\n",
        ),
        ("crates/dradix/src/dag.rs", "pub fn build_into() {}\n"),
    ];

    fn with_roots<'a>(files: &[(&'a str, &'a str)]) -> Vec<(&'a str, &'a str)> {
        let mut all = files.to_vec();
        for (rel, text) in ROOTS {
            if !files.iter().any(|(r, _)| *r == rel) {
                all.push((rel, text));
            }
        }
        all
    }

    fn count(findings: &[Finding], rule: &str) -> usize {
        findings.iter().filter(|f| f.rule == rule).count()
    }

    #[test]
    fn narrowing_casts_fire_only_on_the_hot_path() {
        let (findings, _) = check(&with_roots(&[(
            "crates/knds/src/ta.rs",
            "pub fn rds_with() -> u32 { helper(9) }\n\
             fn helper(n: usize) -> u32 { n as u32 }\n\
             fn cold(n: usize) -> u32 { n as u32 }\n",
        )]));
        let b01: Vec<_> = findings.iter().filter(|f| f.rule == "B01").collect();
        assert_eq!(b01.len(), 1, "only the reachable cast:\n{findings:#?}");
        assert_eq!(b01[0].line, 2);
        assert!(b01[0].message.contains("usize -> u32"));
    }

    #[test]
    fn justified_directives_suppress_and_bare_ones_fire() {
        let (findings, _) = check(&with_roots(&[(
            "crates/knds/src/ta.rs",
            "pub fn rds_with() -> u32 { a(1) + b(2) }\n\
             fn a(n: usize) -> u32 {\n\
             // bound: proven — n indexes the u32 doc id space\n\
             n as u32\n\
             }\n\
             fn b(n: usize) -> u32 {\n\
             // bound: proven\n\
             n as u32\n\
             }\n",
        )]));
        let b01: Vec<_> = findings.iter().filter(|f| f.rule == "B01").collect();
        assert_eq!(b01.len(), 1, "bare directive still fires:\n{findings:#?}");
        assert!(b01[0].message.contains("bare `bound: proven`"));
    }

    #[test]
    fn packing_shifts_fire_and_set_bit_idiom_is_exempt() {
        let (findings, _) = check(&with_roots(&[(
            "crates/knds/src/ta.rs",
            "pub fn rds_with() -> u64 { pack(1, 2) | mask(3) }\n\
             fn pack(stamp: u64, slot: u64) -> u64 { stamp << 32 | slot }\n\
             fn mask(idx: usize) -> u64 { 1u64 << (idx & 63) }\n",
        )]));
        let b02: Vec<_> = findings.iter().filter(|f| f.rule == "B02").collect();
        assert_eq!(b02.len(), 1, "only the packing shift:\n{findings:#?}");
        assert_eq!(b02[0].line, 2);
    }

    #[test]
    fn loop_growth_needs_a_sizing_justification() {
        let (findings, _) = check(&with_roots(&[(
            "crates/knds/src/ta.rs",
            "pub fn rds_with(xs: &[u32]) -> usize { collect(xs) }\n\
             fn collect(xs: &[u32]) -> usize {\n\
             let mut out = Vec::new();\n\
             for &x in xs {\n\
             out.push(x);\n\
             }\n\
             out.len()\n\
             }\n",
        )]));
        let b03: Vec<_> = findings.iter().filter(|f| f.rule == "B03").collect();
        assert_eq!(b03.len(), 1, "push in loop:\n{findings:#?}");
        assert!(b03[0].message.contains("out.push"));
    }

    #[test]
    fn recursion_on_the_hot_path_is_b04() {
        let (findings, stats) = check(&with_roots(&[(
            "crates/knds/src/ta.rs",
            "pub fn rds_with(n: u32) -> u32 { descend(n) }\n\
             fn descend(n: u32) -> u32 { if n == 0 { 0 } else { ascend(n - 1) } }\n\
             fn ascend(n: u32) -> u32 { descend(n) }\n",
        )]));
        let b04: Vec<_> = findings.iter().filter(|f| f.rule == "B04").collect();
        assert_eq!(b04.len(), 1, "one cycle:\n{findings:#?}");
        assert!(b04[0].message.contains("descend") && b04[0].message.contains("ascend"));
        assert_eq!(stats.b04_cyclic_fns, 2);
        assert_eq!(stats.b04_roots, 8);
    }

    #[test]
    fn unguarded_division_and_wide_float_casts_are_b05() {
        let (findings, _) = check(&with_roots(&[(
            "crates/knds/src/ta.rs",
            "pub struct C { partial: u64 }\n\
             pub fn rds_with(c: &C, lb: f64) -> f64 { score(c, lb) }\n\
             fn score(c: &C, lb: f64) -> f64 { c.partial as f64 / lb }\n",
        )]));
        let b05: Vec<_> = findings.iter().filter(|f| f.rule == "B05").collect();
        assert_eq!(b05.len(), 2, "division + wide cast:\n{findings:#?}");
        assert!(b05.iter().any(|f| f.message.contains("division by `lb`")));
        assert!(b05.iter().any(|f| f.message.contains("loses precision")));
    }

    #[test]
    fn missing_root_specs_fail_the_meta_rule() {
        let (findings, stats) = check(&[("crates/svc/src/lib.rs", "pub fn quiet() {}\n")]);
        assert_eq!(count(&findings, "BOUND"), ROOT_SPECS.len(), "all specs unmatched");
        assert_eq!(stats.b04_roots, 0);
    }

    #[test]
    fn clean_roots_prove_everything_with_stats() {
        let (findings, stats) = check(&with_roots(&[]));
        assert!(findings.is_empty(), "clean tree:\n{findings:#?}");
        assert_eq!(stats.b04_roots, 8);
        assert_eq!(stats.b04_cyclic_fns, 0);
        assert!(stats.b04_reachable_fns >= 8);
    }
}
