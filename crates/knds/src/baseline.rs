//! The no-pruning baseline of Section 6.2.
//!
//! "This experiment compares kNDS against a baseline method that does not
//! apply any pruning of documents. In order to isolate the performance
//! gains achieved because of the documents pruning that kNDS applies, we
//! used the DRC algorithm as the distance calculation component for both
//! kNDS and the baseline method." The baseline therefore computes the DRC
//! distance of **every** document and keeps the k smallest — its cost is
//! independent of `k` (the flat lines of Figure 9).
//!
//! Like the kNDS engines, the scan can run over a borrowed
//! [`KndsWorkspace`] (`*_with` variants) so that the forward-index fetch
//! buffer and the DRC DAG scratch are reused across queries.

use crate::engine::{QueryResult, RankedDoc};
use crate::metrics::QueryMetrics;
use crate::util::TopK;
use crate::workspace::KndsWorkspace;
use cbr_corpus::DocId;
use cbr_dradix::Drc;
use cbr_index::IndexSource;
use cbr_ontology::{ConceptId, Ontology};
use std::time::Instant;

/// Full-scan RDS: DRC `Ddq` for every document, keep the k smallest.
pub fn rds<S: IndexSource>(
    ontology: &Ontology,
    source: &S,
    query: &[ConceptId],
    k: usize,
) -> QueryResult {
    let mut ws = KndsWorkspace::new();
    rds_with(ontology, source, &mut ws, query, k)
}

/// [`rds`] over a caller-owned workspace (reusable buffers + DAG scratch).
pub fn rds_with<S: IndexSource>(
    ontology: &Ontology,
    source: &S,
    ws: &mut KndsWorkspace,
    query: &[ConceptId],
    k: usize,
) -> QueryResult {
    scan(ontology, source, ws, query, k, |drc, doc_concepts, q| {
        let d = drc.document_query_distance(doc_concepts, q);
        if d == cbr_dradix::INFINITE {
            f64::INFINITY
        } else {
            d as f64
        }
    })
}

/// Full-scan SDS: DRC `Ddd` for every document, keep the k smallest.
pub fn sds<S: IndexSource>(
    ontology: &Ontology,
    source: &S,
    query_doc: &[ConceptId],
    k: usize,
) -> QueryResult {
    let mut ws = KndsWorkspace::new();
    sds_with(ontology, source, &mut ws, query_doc, k)
}

/// [`sds`] over a caller-owned workspace (reusable buffers + DAG scratch).
pub fn sds_with<S: IndexSource>(
    ontology: &Ontology,
    source: &S,
    ws: &mut KndsWorkspace,
    query_doc: &[ConceptId],
    k: usize,
) -> QueryResult {
    scan(ontology, source, ws, query_doc, k, |drc, doc_concepts, q| {
        drc.document_document_distance(doc_concepts, q)
    })
}

fn scan<S: IndexSource>(
    ontology: &Ontology,
    source: &S,
    ws: &mut KndsWorkspace,
    query: &[ConceptId],
    k: usize,
    mut distance: impl FnMut(&mut Drc<'_>, &[ConceptId], &[ConceptId]) -> f64,
) -> QueryResult {
    assert!(k > 0, "k must be positive");
    let reused = ws.begin();
    let mut q = std::mem::take(&mut ws.query);
    crate::util::normalize_query_into(query, &mut q);
    assert!(!q.is_empty(), "query must contain at least one concept");
    let mut drc = Drc::new(ontology).with_scratch(ws.take_dag());
    let mut heap = TopK::new(k);
    let mut metrics = QueryMetrics::default();
    let mut buf = std::mem::take(&mut ws.concepts_buf);

    for i in 0..source.num_docs() {
        let doc = DocId::from_index(i);
        if !source.is_live(doc) {
            continue;
        }
        let t = Instant::now();
        buf.clear();
        source.doc_concepts(doc, &mut buf);
        metrics.io += t.elapsed();

        let t = Instant::now();
        let d = distance(&mut drc, &buf, &q);
        metrics.distance_calc += t.elapsed();
        metrics.drc_calls += 1;
        metrics.docs_examined += 1;
        heap.offer(doc, d);
    }
    metrics.candidates_seen = source.num_docs();

    buf.clear();
    ws.concepts_buf = buf;
    q.clear();
    ws.query = q;
    ws.restore_dag(drc.into_scratch());
    ws.finish();
    metrics.workspace_reused = reused as usize;
    metrics.workspace_bytes = ws.footprint_bytes();

    let results =
        heap.into_sorted().into_iter().map(|(doc, distance)| RankedDoc { doc, distance }).collect();
    QueryResult { results, metrics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbr_corpus::Corpus;
    use cbr_index::MemorySource;
    use cbr_ontology::fixture;

    fn setup() -> (fixture::Figure3, MemorySource) {
        let fig = fixture::figure3();
        let c = |n: &str| fig.concept(n);
        let corpus = Corpus::from_concept_sets(vec![
            (vec![c("F"), c("R"), c("T"), c("V")], 0),
            (vec![c("I"), c("L"), c("U")], 0),
            (vec![c("M"), c("N")], 0),
        ]);
        let source = MemorySource::build(&corpus, fig.ontology.len());
        (fig, source)
    }

    #[test]
    fn rds_ranks_all_documents() {
        let (fig, source) = setup();
        let q = fig.example_query();
        let r = rds(&fig.ontology, &source, &q, 3);
        assert_eq!(r.results.len(), 3);
        assert_eq!(r.results[0].doc, DocId(1));
        assert_eq!(r.results[0].distance, 0.0);
        let d0 = r.results.iter().find(|r| r.doc == DocId(0)).unwrap();
        assert_eq!(d0.distance, 7.0);
        assert_eq!(r.metrics.drc_calls, 3, "every document gets a DRC call");
    }

    #[test]
    fn sds_is_symmetric_and_exhaustive() {
        let (fig, source) = setup();
        let q = fig.example_query();
        let r = sds(&fig.ontology, &source, &q, 2);
        assert_eq!(r.results[0].doc, DocId(1));
        assert_eq!(r.results[0].distance, 0.0);
        assert_eq!(r.metrics.docs_examined, 3);
    }

    #[test]
    fn cost_is_independent_of_k() {
        let (fig, source) = setup();
        let q = fig.example_query();
        let a = rds(&fig.ontology, &source, &q, 1);
        let b = rds(&fig.ontology, &source, &q, 3);
        assert_eq!(a.metrics.drc_calls, b.metrics.drc_calls);
    }

    #[test]
    fn workspace_scan_matches_fresh_scan() {
        let (fig, source) = setup();
        let q = fig.example_query();
        let mut ws = KndsWorkspace::new();
        for _ in 0..3 {
            let a = rds_with(&fig.ontology, &source, &mut ws, &q, 3);
            let b = rds(&fig.ontology, &source, &q, 3);
            assert_eq!(a.results, b.results);
            let a = sds_with(&fig.ontology, &source, &mut ws, &q, 2);
            let b = sds(&fig.ontology, &source, &q, 2);
            assert_eq!(a.results, b.results);
        }
    }
}
