//! Significance testing for timing comparisons.
//!
//! Section 6.1: "In order to examine the statistical significance of our
//! results, we ran a two-tailed t-test for the times reported in Figure 9
//! with two sample variances and found out that the execution times
//! measured are statistically significant with p-value < 0.001." This
//! module provides the same instrument — Welch's unequal-variance t-test —
//! so the harness can print the paper's claim from live measurements.

/// Sample mean and unbiased variance. Returns `(mean, var, n)`.
pub fn mean_var(samples: &[f64]) -> (f64, f64, usize) {
    let n = samples.len();
    if n == 0 {
        return (0.0, 0.0, 0);
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    if n < 2 {
        return (mean, 0.0, n);
    }
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
    (mean, var, n)
}

/// Result of a two-sample Welch t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTest {
    /// The t statistic (sign follows `a − b`).
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// Two-tailed p-value.
    pub p: f64,
}

/// Welch's unequal-variance two-sample t-test ("two sample variances" in
/// the paper's words). Returns `None` when either sample has fewer than
/// two points or both variances are zero.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Option<TTest> {
    let (ma, va, na) = mean_var(a);
    let (mb, vb, nb) = mean_var(b);
    if na < 2 || nb < 2 {
        return None;
    }
    let sa = va / na as f64;
    let sb = vb / nb as f64;
    if sa + sb == 0.0 {
        return None;
    }
    let t = (ma - mb) / (sa + sb).sqrt();
    let df = (sa + sb).powi(2) / (sa.powi(2) / (na as f64 - 1.0) + sb.powi(2) / (nb as f64 - 1.0));
    let p = two_tailed_p(t, df);
    Some(TTest { t, df, p })
}

/// Two-tailed p-value for a t statistic with `df` degrees of freedom:
/// `p = I_{df/(df+t²)}(df/2, 1/2)` (regularized incomplete beta).
pub fn two_tailed_p(t: f64, df: f64) -> f64 {
    if !t.is_finite() || df <= 0.0 {
        return f64::NAN;
    }
    let x = df / (df + t * t);
    reg_inc_beta(df / 2.0, 0.5, x).clamp(0.0, 1.0)
}

/// Regularized incomplete beta function `I_x(a, b)` via the Lentz
/// continued fraction (Numerical Recipes §6.4).
fn reg_inc_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Lanczos approximation of `ln Γ(x)` (g = 7, n = 9), accurate to ~1e-13
/// for positive arguments.
fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_312e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-12); // Γ(1) = 1
        assert!((ln_gamma(2.0)).abs() < 1e-12); // Γ(2) = 1
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10); // Γ(5) = 24
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn p_values_match_tables() {
        // Standard t tables: t = 2.228, df = 10 → p = 0.05.
        assert!((two_tailed_p(2.228, 10.0) - 0.05).abs() < 1e-3);
        // t = 4.587, df = 10 → p = 0.001.
        assert!((two_tailed_p(4.587, 10.0) - 0.001).abs() < 2e-4);
        // t = 0 → p = 1.
        assert!((two_tailed_p(0.0, 10.0) - 1.0).abs() < 1e-12);
        // Large df approaches the normal distribution: t = 1.96 → p ≈ 0.05.
        assert!((two_tailed_p(1.96, 10_000.0) - 0.05).abs() < 1e-3);
    }

    #[test]
    fn welch_distinguishes_separated_samples() {
        let a = [1.0, 1.1, 0.9, 1.05, 0.95, 1.0];
        let b = [5.0, 5.2, 4.8, 5.1, 4.9, 5.0];
        let r = welch_t_test(&a, &b).unwrap();
        assert!(r.t < 0.0, "a is smaller");
        assert!(r.p < 0.001, "clear separation: p = {}", r.p);
    }

    #[test]
    fn welch_accepts_identical_distributions() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.1, 2.1, 2.9, 4.1, 4.8];
        let r = welch_t_test(&a, &b).unwrap();
        assert!(r.p > 0.5, "no real difference: p = {}", r.p);
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        assert!(welch_t_test(&[1.0], &[1.0, 2.0]).is_none());
        assert!(welch_t_test(&[1.0, 1.0], &[1.0, 1.0]).is_none());
        let (m, v, n) = mean_var(&[]);
        assert_eq!((m, v, n), (0.0, 0.0, 0));
    }
}
