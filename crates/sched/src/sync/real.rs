//! Default facade implementation: thin, poison-free wrappers over the
//! real `std`/`crossbeam` primitives. No scheduling, no instrumentation.

use std::num::NonZeroUsize;

pub use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A poison-free mutex (parking-lot-style API over `std::sync::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, ignoring poison (a panicked holder does not
    /// make the data unreachable).
    // race: acquire
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A poison-free reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read guard.
    // race: acquire-shared
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    // race: acquire
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a condvar.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically releases `guard` and sleeps until notified.
    // race: blocking
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// An unbounded MPMC queue (crossbeam `SegQueue` underneath).
#[derive(Debug, Default)]
pub struct SegQueue<T>(crossbeam::queue::SegQueue<T>);

impl<T> SegQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> SegQueue<T> {
        SegQueue(crossbeam::queue::SegQueue::new())
    }

    /// Creates an empty queue used as a resource pool. Under the `model`
    /// feature this opts the queue into the pool-leak analysis; here it
    /// is identical to [`SegQueue::new`].
    pub fn pooled() -> SegQueue<T> {
        SegQueue::new()
    }

    /// Pushes `value` onto the back of the queue.
    // race: pool-op
    pub fn push(&self, value: T) {
        self.0.push(value);
    }

    /// Pops from the front, or `None` when empty.
    // race: pool-op
    pub fn pop(&self) -> Option<T> {
        self.0.pop()
    }

    /// Number of elements currently queued.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Handle to a thread started with [`spawn`].
#[derive(Debug)]
pub struct JoinHandle<T>(std::thread::JoinHandle<T>);

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, returning its result.
    // race: blocking
    pub fn join(self) -> std::thread::Result<T> {
        self.0.join()
    }
}

/// Spawns a detached-by-default OS thread (see [`std::thread::spawn`]).
// race: spawn
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    JoinHandle(std::thread::spawn(f))
}

/// A scope handle mirroring [`std::thread::Scope`].
#[derive(Debug)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a thread started with [`Scope::spawn`].
#[derive(Debug)]
pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish, returning its result.
    // race: blocking
    pub fn join(self) -> std::thread::Result<T> {
        self.0.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread (see [`std::thread::Scope::spawn`]).
    // race: spawn
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        ScopedJoinHandle(self.inner.spawn(f))
    }
}

/// Runs `f` with a scope in which borrowing threads can be spawned; all
/// unjoined scoped threads are joined before `scope` returns.
// race: blocking
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Yields the current thread's timeslice.
pub fn yield_now() {
    std::thread::yield_now();
}

/// The parallelism available to the process (at least 1).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_primitives_behave_like_the_real_ones() {
        let m = Mutex::new(0usize);
        *m.lock() += 3;
        assert_eq!(*m.lock(), 3);

        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);

        let q = SegQueue::pooled();
        q.push(7u32);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some(7));
        assert!(q.is_empty());

        let h = spawn(|| 41 + 1);
        assert_eq!(h.join().unwrap(), 42);

        let total = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    total.fetch_add(1, Ordering::SeqCst);
                    yield_now();
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 4);
        assert!(available_parallelism() >= 1);
    }
}
