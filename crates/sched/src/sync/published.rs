//! `Published<T>`: an epoch-published cell for snapshot handoff.
//!
//! The writer half of a snapshot/session split calls [`Published::publish`]
//! with a freshly built immutable value; readers either [`Published::load`]
//! the current `Arc<T>` or — the intended hot path — keep a [`Cached`]
//! handle whose [`Cached::get`] performs **one atomic epoch load** per call
//! and only touches the lock when a publish actually happened. Between
//! publishes a reader therefore acquires no lock at all, which is what
//! makes a query against a published engine snapshot lock-free end to end.
//!
//! The cell is built from the facade's own primitives (`AtomicU64` +
//! `RwLock<Arc<T>>`), so the same source file compiles under both the real
//! build and the `model` build — `cbr-sched` model-checks publish/retire
//! interleavings against concurrent readers with no extra shims. Retire is
//! implicit: the old `Arc<T>` drops when the last reader caching it moves
//! to the new epoch, so a reader can never observe a freed value.
//!
//! Protocol invariants:
//! * the epoch is bumped *inside* the writer's exclusive section, and
//!   readers re-read it *inside* their shared section, so an (epoch, value)
//!   pair observed under the read guard is always consistent — no torn
//!   snapshot;
//! * epochs are monotone: a cached reader only ever moves forward.

use super::{Arc, AtomicU64, Ordering, RwLock};

/// An epoch-stamped, atomically publishable `Arc<T>` cell.
#[derive(Debug)]
pub struct Published<T> {
    /// Bumped on every publish, strictly inside the write section.
    epoch: AtomicU64,
    /// The current value. Writers hold the exclusive guard only for the
    /// duration of an `Arc` swap; readers hold the shared guard only for
    /// the duration of an `Arc` clone.
    value: RwLock<Arc<T>>,
}

impl<T> Published<T> {
    /// Wraps `value` as epoch 0.
    pub fn new(value: T) -> Published<T> {
        Published::from_arc(Arc::new(value))
    }

    /// Wraps an already-shared `value` as epoch 0.
    pub fn from_arc(value: Arc<T>) -> Published<T> {
        Published { epoch: AtomicU64::new(0), value: RwLock::new(value) }
    }

    /// The current epoch: one atomic load, no lock.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Clones the current value together with the epoch it was published
    /// at. The epoch is read while the shared guard is held, so the pair
    /// is consistent even when a publish races this load.
    pub fn load_with_epoch(&self) -> (u64, Arc<T>) {
        let guard = self.value.read();
        let epoch = self.epoch.load(Ordering::Acquire);
        (epoch, Arc::clone(&guard))
    }

    /// Clones the current value (a brief shared section).
    pub fn load(&self) -> Arc<T> {
        self.load_with_epoch().1
    }

    /// Publishes `value` as the new current snapshot, retiring the old
    /// one, and returns the new epoch. The epoch bump happens inside the
    /// exclusive section so readers can never pair a new epoch with the
    /// old value or vice versa.
    // race: publish
    pub fn publish(&self, value: T) -> u64 {
        self.publish_arc(Arc::new(value))
    }

    /// [`Published::publish`] for an already-shared value.
    // race: publish
    pub fn publish_arc(&self, value: Arc<T>) -> u64 {
        let mut guard = self.value.write();
        *guard = value;
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }
}

/// A reader-side cache over a [`Published<T>`] cell.
///
/// [`Cached::get`] revalidates with a single atomic epoch load and reuses
/// the cached `Arc<T>` while the epoch is unchanged — the steady-state
/// read path acquires no lock. Only when a publish has happened does it
/// fall back to [`Published::load_with_epoch`]'s brief shared section.
#[derive(Debug)]
pub struct Cached<T> {
    epoch: u64,
    value: Option<Arc<T>>,
}

impl<T> Default for Cached<T> {
    fn default() -> Self {
        Cached::new()
    }
}

impl<T> Cached<T> {
    /// An empty cache; the first [`Cached::get`] always loads.
    pub fn new() -> Cached<T> {
        Cached { epoch: 0, value: None }
    }

    /// The current value of `cell`: one atomic epoch load when the cache
    /// is still fresh, a shared-section reload otherwise.
    pub fn get(&mut self, cell: &Published<T>) -> &Arc<T> {
        let fresh = self.value.is_some() && self.epoch == cell.epoch();
        if !fresh {
            let (epoch, value) = cell.load_with_epoch();
            self.epoch = epoch;
            self.value = Some(value);
        }
        self.value.as_ref().expect("cache was just filled")
    }

    /// Drops the cached value so the next [`Cached::get`] reloads. Used
    /// when a pooled reader wants to release its reference early.
    pub fn clear(&mut self) {
        self.value = None;
    }
}

#[cfg(all(test, not(feature = "model")))]
mod tests {
    use super::*;

    #[test]
    fn publish_bumps_epoch_and_swaps_value() {
        let cell = Published::new(1u32);
        assert_eq!(cell.epoch(), 0);
        assert_eq!(*cell.load(), 1);
        assert_eq!(cell.publish(2), 1);
        assert_eq!(cell.epoch(), 1);
        assert_eq!(*cell.load(), 2);
        let (epoch, value) = cell.load_with_epoch();
        assert_eq!((epoch, *value), (1, 2));
    }

    #[test]
    fn cached_reader_skips_the_lock_until_a_publish() {
        let cell = Published::new(String::from("a"));
        let mut cache = Cached::new();
        assert_eq!(cache.get(&cell).as_str(), "a");
        // Same epoch: the cached Arc is reused (pointer identity).
        let first = Arc::clone(cache.get(&cell));
        assert!(Arc::ptr_eq(&first, cache.get(&cell)));
        cell.publish(String::from("b"));
        assert_eq!(cache.get(&cell).as_str(), "b");
        cache.clear();
        assert_eq!(cache.get(&cell).as_str(), "b");
    }

    #[test]
    fn concurrent_readers_never_see_a_torn_pair() {
        // Values are (epoch, payload) pairs kept in lockstep by the
        // writer; a reader observing epoch e must observe payload e.
        let cell = Arc::new(Published::new((0u64, 0u64)));
        super::super::scope(|s| {
            for _ in 0..3 {
                let cell = Arc::clone(&cell);
                s.spawn(move || {
                    let mut cache = Cached::new();
                    for _ in 0..200 {
                        let snap = cache.get(&cell);
                        assert_eq!(snap.0, snap.1);
                    }
                });
            }
            let cell = Arc::clone(&cell);
            s.spawn(move || {
                for e in 1..50u64 {
                    cell.publish((e, e));
                    super::super::yield_now();
                }
            });
        });
    }
}
