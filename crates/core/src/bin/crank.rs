//! `crank` — a command-line front end for concept-based document ranking.
//!
//! ```text
//! crank demo  --out DIR [--concepts N] [--docs N]     write demo data files
//! crank build --ontology FILE --docs FILE --out DIR   parse + snapshot an index
//! crank stats --index DIR                             ontology + corpus statistics
//! crank rds   --index DIR --query "l1|l2|l3" [-k N] [--eps E] [--expand R]
//! crank sds   --index DIR --doc NAME_OR_ID [-k N] [--eps E]
//! ```
//!
//! Data files use the tab-separated formats of `cbr_corpus::io`; built
//! indexes are binary snapshot directories (`cbr_index::SnapshotStore`).

#![forbid(unsafe_code)]

use cbr_corpus::{io as cio, Corpus, CorpusStats, DocId, FilterConfig};
use cbr_index::SnapshotStore;
use cbr_knds::KndsConfig;
use cbr_ontology::{GeneratorConfig, Ontology, OntologyGenerator, OntologyStats};
use concept_rank::{Engine, EngineBuilder, ExpansionConfig};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

type AnyError = Box<dyn std::error::Error>;

fn run(args: &[String]) -> Result<(), AnyError> {
    let Some(command) = args.first() else {
        return Err(usage().into());
    };
    let flags = parse_flags(&args[1..])?;
    match command.as_str() {
        "demo" => demo(&flags),
        "build" => build(&flags),
        "stats" => stats(&flags),
        "rds" => rds(&flags),
        "sds" => sds(&flags),
        "tune" => tune(&flags),
        "dot" => dot(&flags),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage()).into()),
    }
}

fn usage() -> &'static str {
    "usage: crank <demo|build|stats|rds|sds> [flags]\n\
     \x20 demo  --out DIR [--concepts N] [--docs N]\n\
     \x20 build --ontology FILE (--docs FILE | --text-docs FILE) --out DIR\n\
     \x20 stats --index DIR\n\
     \x20 rds   --index DIR --query \"label|label\" [-k N] [--eps E] [--expand RADIUS]\n\
     \x20 sds   --index DIR --doc NAME_OR_ID [-k N] [--eps E]\n\
     \x20 tune  --index DIR [--kind rds|sds] [-k N]\n\
     \x20 dot   --index DIR --query \"label|label\" [--radius R] [--out FILE]"
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, AnyError> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .or_else(|| args[i].strip_prefix('-'))
            .ok_or_else(|| format!("expected a flag, found {:?}", args[i]))?;
        let value = args.get(i + 1).ok_or_else(|| format!("flag --{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn required<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, AnyError> {
    flags
        .get(key)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("missing required flag --{key}").into())
}

fn parse_or<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, AnyError>
where
    T::Err: std::fmt::Display,
{
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("--{key}: {e}").into()),
    }
}

// ---------------------------------------------------------------------------
// Commands
// ---------------------------------------------------------------------------

/// Writes a small synthetic ontology + corpus in the text formats, ready
/// for `crank build`.
fn demo(flags: &HashMap<String, String>) -> Result<(), AnyError> {
    let out = required(flags, "out")?;
    let n_concepts: usize = parse_or(flags, "concepts", 800)?;
    let n_docs: usize = parse_or(flags, "docs", 120)?;
    std::fs::create_dir_all(out)?;

    let ont = OntologyGenerator::new(GeneratorConfig::small(n_concepts)).generate();
    let corpus = cbr_corpus::CorpusGenerator::new(
        &ont,
        cbr_corpus::CorpusProfile::radio_like().with_num_docs(n_docs).with_mean_concepts(12.0),
    )
    .generate();
    let names: Vec<String> = (0..corpus.len()).map(|i| format!("note-{i:04}")).collect();

    let ont_path = format!("{out}/ontology.tsv");
    let docs_path = format!("{out}/documents.tsv");
    std::fs::write(&ont_path, cio::render_ontology(&ont))?;
    std::fs::write(&docs_path, cio::render_documents(&corpus, &ont, &names))?;
    println!("wrote {ont_path} ({} concepts)", ont.len());
    println!("wrote {docs_path} ({} documents)", corpus.len());
    println!("next: crank build --ontology {ont_path} --docs {docs_path} --out {out}/index");
    Ok(())
}

fn build(flags: &HashMap<String, String>) -> Result<(), AnyError> {
    let ont_path = required(flags, "ontology")?;
    let out = required(flags, "out")?;

    let ont = cio::parse_ontology(&std::fs::read_to_string(ont_path)?)?;
    // Two ingestion modes: --docs (concept lists) or --text-docs (raw notes
    // pushed through the dictionary extractor).
    let (corpus, names) = match (flags.get("docs"), flags.get("text-docs")) {
        (Some(path), None) => cio::parse_documents(&std::fs::read_to_string(path)?, &ont)?,
        (None, Some(path)) => {
            let extractor =
                cbr_corpus::ConceptExtractor::new(&ont, cbr_corpus::ExtractorConfig::default());
            cio::parse_text_documents(&std::fs::read_to_string(path)?, &extractor)?
        }
        _ => return Err("pass exactly one of --docs or --text-docs".into()),
    };
    println!("parsed {} concepts, {} documents", ont.len(), corpus.len());

    let store = SnapshotStore::open(out)?;
    store.save("ontology", &ont)?;
    store.save("corpus", &corpus)?;
    store.save("names", &names)?;
    println!("index written to {out}");
    Ok(())
}

struct LoadedIndex {
    engine: Engine,
    names: Vec<String>,
}

fn load(flags: &HashMap<String, String>) -> Result<LoadedIndex, AnyError> {
    let dir = required(flags, "index")?;
    let store = SnapshotStore::open(dir)?;
    let ont: Ontology = store.load("ontology")?;
    let corpus: Corpus = store.load("corpus")?;
    let names: Vec<String> = store.load("names")?;

    let eps: f64 = parse_or(flags, "eps", 0.5)?;
    let min_depth: u32 = parse_or(flags, "min-depth", 0)?;
    let mut builder =
        EngineBuilder::new().knds_config(KndsConfig::default().with_error_threshold(eps));
    if min_depth > 0 {
        builder = builder.filter(FilterConfig { min_depth, cf_sigma: f64::INFINITY });
    }
    Ok(LoadedIndex { engine: builder.build(ont, corpus), names })
}

fn stats(flags: &HashMap<String, String>) -> Result<(), AnyError> {
    let idx = load(flags)?;
    println!("== ontology ==");
    println!("{}", OntologyStats::compute(idx.engine.ontology()));
    println!("\n== corpus ==");
    println!("{}", CorpusStats::compute(idx.engine.corpus()));
    Ok(())
}

fn rds(flags: &HashMap<String, String>) -> Result<(), AnyError> {
    let idx = load(flags)?;
    let query_text = required(flags, "query")?;
    let k: usize = parse_or(flags, "k", 10)?;
    let labels: Vec<&str> =
        query_text.split('|').map(str::trim).filter(|l| !l.is_empty()).collect();
    let query = idx.engine.concepts_by_labels(&labels)?;

    let expand_radius: u32 = parse_or(flags, "expand", 0)?;
    let results = if expand_radius > 0 {
        let cfg = ExpansionConfig { radius: expand_radius, ..ExpansionConfig::default() };
        let (hits, variants) = idx.engine.rds_expanded(&query, k, &cfg)?;
        println!("(expanded into {variants} query variants; distances are per-concept normalized)");
        hits
    } else {
        idx.engine.rds(&query, k)?.results
    };

    println!("{:<24} {:>10}", "document", "distance");
    for hit in &results {
        let name = idx.names.get(hit.doc.index()).cloned().unwrap_or_else(|| hit.doc.to_string());
        println!("{name:<24} {:>10.3}", hit.distance);
    }
    Ok(())
}

fn sds(flags: &HashMap<String, String>) -> Result<(), AnyError> {
    let idx = load(flags)?;
    let doc_ref = required(flags, "doc")?;
    let k: usize = parse_or(flags, "k", 10)?;
    let doc = resolve_doc(doc_ref, &idx.names)?;

    let r = idx.engine.sds_by_doc(doc, k)?;
    println!("{:<24} {:>10}", "document", "Ddd");
    for hit in &r.results {
        let name = idx.names.get(hit.doc.index()).cloned().unwrap_or_else(|| hit.doc.to_string());
        let marker = if hit.doc == doc { "  (query document)" } else { "" };
        println!("{name:<24} {:>10.3}{marker}", hit.distance);
    }
    Ok(())
}

/// Auto-tunes εθ on a sample of the indexed collection and prints the
/// sweep (the Figure 7 procedure, automated).
fn tune(flags: &HashMap<String, String>) -> Result<(), AnyError> {
    let idx = load(flags)?;
    let k: usize = parse_or(flags, "k", 10)?;
    let kind = match flags.get("kind").map(|s| s.as_str()).unwrap_or("rds") {
        "rds" => cbr_knds::TuneFor::Rds,
        "sds" => cbr_knds::TuneFor::Sds,
        other => return Err(format!("--kind must be rds or sds, got {other:?}").into()),
    };
    let sample: Vec<Vec<cbr_ontology::ConceptId>> = idx
        .engine
        .corpus()
        .documents()
        .filter(|d| d.num_concepts() >= 2)
        .take(8)
        .map(|d| match kind {
            cbr_knds::TuneFor::Rds => d.concepts()[..2.min(d.num_concepts())].to_vec(),
            cbr_knds::TuneFor::Sds => d.concepts().to_vec(),
        })
        .collect();
    if sample.is_empty() {
        return Err("collection has no usable sample documents".into());
    }
    let mut engine = idx.engine;
    let best = engine.auto_tune(kind, &sample, k)?;
    println!("recommended error threshold: --eps {best}");
    Ok(())
}

/// Renders the neighborhood of a concept query as Graphviz DOT.
fn dot(flags: &HashMap<String, String>) -> Result<(), AnyError> {
    let idx = load(flags)?;
    let query_text = required(flags, "query")?;
    let radius: u32 = parse_or(flags, "radius", 2)?;
    let labels: Vec<&str> =
        query_text.split('|').map(str::trim).filter(|l| !l.is_empty()).collect();
    let query = idx.engine.concepts_by_labels(&labels)?;
    let opts = cbr_ontology::dot::DotOptions { triangles: query.clone(), ..Default::default() };
    let rendered =
        cbr_ontology::dot::neighborhood_dot(idx.engine.ontology(), &query, radius, &opts);
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, rendered)?;
            println!("wrote {path}");
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

fn resolve_doc(reference: &str, names: &[String]) -> Result<DocId, AnyError> {
    if let Some(pos) = names.iter().position(|n| n == reference) {
        return Ok(DocId::from_index(pos));
    }
    if let Ok(raw) = reference.parse::<u32>() {
        return Ok(DocId(raw));
    }
    Err(format!("no document named {reference:?} (and it is not a numeric id)").into())
}
