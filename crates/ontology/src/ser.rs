//! A compact bincode-style binary codec for serde types.
//!
//! The paper's prototype persists its ontology, inverted, and forward
//! indexes in MySQL (Section 6.1). This reproduction instead snapshots them
//! to flat binary files; this module provides the codec. It is a
//! non-self-describing little-endian format:
//!
//! * fixed-width little-endian integers and floats;
//! * `bool` as one byte (`0`/`1`);
//! * lengths (strings, byte arrays, sequences, maps) as `u64`;
//! * `Option` as a one-byte tag followed by the value;
//! * enum variants as a `u32` variant index followed by the payload.
//!
//! Because the format is not self-describing, decoding must use the same
//! type the value was encoded from — exactly how the snapshot files are
//! used. `deserialize_any` is unsupported by design.

use serde::de::{self, DeserializeOwned, IntoDeserializer, Visitor};
use serde::{ser, Serialize};
use std::fmt;

/// Errors from encoding or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Custom message from serde.
    Message(String),
    /// Input ended before the value was fully decoded.
    UnexpectedEof,
    /// A string was not valid UTF-8.
    InvalidUtf8,
    /// A `bool`/`Option` tag byte had an invalid value.
    InvalidTag(u8),
    /// A char was not a valid Unicode scalar value.
    InvalidChar(u32),
    /// Decoding finished with bytes left over.
    TrailingBytes(usize),
    /// A sequence was serialized without a known length.
    UnknownLength,
    /// `deserialize_any` was called (the format is not self-describing).
    NotSelfDescribing,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Message(m) => write!(f, "{m}"),
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::InvalidUtf8 => write!(f, "invalid utf-8 in string"),
            CodecError::InvalidTag(t) => write!(f, "invalid tag byte {t}"),
            CodecError::InvalidChar(c) => write!(f, "invalid char scalar {c}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            CodecError::UnknownLength => write!(f, "sequence length must be known up front"),
            CodecError::NotSelfDescribing => {
                write!(f, "format is not self-describing (deserialize_any unsupported)")
            }
        }
    }
}

impl std::error::Error for CodecError {}

impl ser::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError::Message(msg.to_string())
    }
}

impl de::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError::Message(msg.to_string())
    }
}

/// Encodes `value` into a byte vector.
pub fn to_tokens<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    value.serialize(&mut Encoder { out: &mut out })?;
    Ok(out)
}

/// Decodes a value of type `T` from `bytes`, requiring full consumption.
pub fn from_tokens<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut dec = Decoder { input: bytes };
    let value = T::deserialize(&mut dec)?;
    if dec.input.is_empty() {
        Ok(value)
    } else {
        Err(CodecError::TrailingBytes(dec.input.len()))
    }
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

struct Encoder<'a> {
    out: &'a mut Vec<u8>,
}

impl Encoder<'_> {
    fn put_len(&mut self, len: usize) {
        self.out.extend_from_slice(&(len as u64).to_le_bytes());
    }
}

macro_rules! encode_prim {
    ($fn_name:ident, $ty:ty) => {
        fn $fn_name(self, v: $ty) -> Result<(), CodecError> {
            self.out.extend_from_slice(&v.to_le_bytes());
            Ok(())
        }
    };
}

impl<'a, 'b> ser::Serializer for &'a mut Encoder<'b> {
    type Ok = ();
    type Error = CodecError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), CodecError> {
        self.out.push(v as u8);
        Ok(())
    }

    encode_prim!(serialize_i8, i8);
    encode_prim!(serialize_i16, i16);
    encode_prim!(serialize_i32, i32);
    encode_prim!(serialize_i64, i64);
    encode_prim!(serialize_u8, u8);
    encode_prim!(serialize_u16, u16);
    encode_prim!(serialize_u32, u32);
    encode_prim!(serialize_u64, u64);
    encode_prim!(serialize_f32, f32);
    encode_prim!(serialize_f64, f64);

    fn serialize_char(self, v: char) -> Result<(), CodecError> {
        self.serialize_u32(v as u32)
    }

    fn serialize_str(self, v: &str) -> Result<(), CodecError> {
        self.put_len(v.len());
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), CodecError> {
        self.put_len(v.len());
        self.out.extend_from_slice(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<(), CodecError> {
        self.out.push(0);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), CodecError> {
        self.out.push(1);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), CodecError> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), CodecError> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), CodecError> {
        self.serialize_u32(variant_index)
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        self.serialize_u32(variant_index)?;
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or(CodecError::UnknownLength)?;
        self.put_len(len);
        Ok(self)
    }

    fn serialize_tuple(self, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }

    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        self.out.extend_from_slice(&variant_index.to_le_bytes());
        Ok(self)
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or(CodecError::UnknownLength)?;
        self.put_len(len);
        Ok(self)
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        self.out.extend_from_slice(&variant_index.to_le_bytes());
        Ok(self)
    }
}

macro_rules! encode_compound {
    ($trait_:path, $method:ident) => {
        impl<'a, 'b> $trait_ for &'a mut Encoder<'b> {
            type Ok = ();
            type Error = CodecError;

            fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
                value.serialize(&mut **self)
            }

            fn end(self) -> Result<(), CodecError> {
                Ok(())
            }
        }
    };
}

encode_compound!(ser::SerializeSeq, serialize_element);
encode_compound!(ser::SerializeTuple, serialize_element);
encode_compound!(ser::SerializeTupleStruct, serialize_field);
encode_compound!(ser::SerializeTupleVariant, serialize_field);

impl<'a, 'b> ser::SerializeMap for &'a mut Encoder<'b> {
    type Ok = ();
    type Error = CodecError;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), CodecError> {
        key.serialize(&mut **self)
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl<'a, 'b> ser::SerializeStruct for &'a mut Encoder<'b> {
    type Ok = ();
    type Error = CodecError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }

    fn skip_field(&mut self, _key: &'static str) -> Result<(), CodecError> {
        Ok(())
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl<'a, 'b> ser::SerializeStructVariant for &'a mut Encoder<'b> {
    type Ok = ();
    type Error = CodecError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

struct Decoder<'de> {
    input: &'de [u8],
}

impl<'de> Decoder<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8], CodecError> {
        if self.input.len() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    fn take_len(&mut self) -> Result<usize, CodecError> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().unwrap()) as usize)
    }

    fn take_u32(&mut self) -> Result<u32, CodecError> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().unwrap()))
    }
}

macro_rules! decode_prim {
    ($fn_name:ident, $visit:ident, $ty:ty, $n:expr) => {
        fn $fn_name<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
            let bytes = self.take($n)?;
            visitor.$visit(<$ty>::from_le_bytes(bytes.try_into().unwrap()))
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut Decoder<'de> {
    type Error = CodecError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::NotSelfDescribing)
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.take(1)?[0] {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            t => Err(CodecError::InvalidTag(t)),
        }
    }

    decode_prim!(deserialize_i8, visit_i8, i8, 1);
    decode_prim!(deserialize_i16, visit_i16, i16, 2);
    decode_prim!(deserialize_i32, visit_i32, i32, 4);
    decode_prim!(deserialize_i64, visit_i64, i64, 8);
    decode_prim!(deserialize_u8, visit_u8, u8, 1);
    decode_prim!(deserialize_u16, visit_u16, u16, 2);
    decode_prim!(deserialize_u32, visit_u32, u32, 4);
    decode_prim!(deserialize_u64, visit_u64, u64, 8);
    decode_prim!(deserialize_f32, visit_f32, f32, 4);
    decode_prim!(deserialize_f64, visit_f64, f64, 8);

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let scalar = self.take_u32()?;
        let c = char::from_u32(scalar).ok_or(CodecError::InvalidChar(scalar))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.take_len()?;
        let bytes = self.take(len)?;
        let s = std::str::from_utf8(bytes).map_err(|_| CodecError::InvalidUtf8)?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.take_len()?;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.take(1)?[0] {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            t => Err(CodecError::InvalidTag(t)),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.take_len()?;
        visitor.visit_seq(Counted { de: self, remaining: len })
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_seq(Counted { de: self, remaining: len })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.take_len()?;
        visitor.visit_map(Counted { de: self, remaining: len })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::NotSelfDescribing)
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::NotSelfDescribing)
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct Counted<'a, 'de> {
    de: &'a mut Decoder<'de>,
    remaining: usize,
}

impl<'de, 'a> de::SeqAccess<'de> for Counted<'a, 'de> {
    type Error = CodecError;

    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'de, 'a> de::MapAccess<'de> for Counted<'a, 'de> {
    type Error = CodecError;

    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: de::DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, CodecError> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut Decoder<'de>,
}

impl<'de, 'a> de::EnumAccess<'de> for EnumAccess<'a, 'de> {
    type Error = CodecError;
    type Variant = Self;

    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self), CodecError> {
        let index = self.de.take_u32()?;
        let value = seed.deserialize(index.into_deserializer())?;
        Ok((value, self))
    }
}

impl<'de, 'a> de::VariantAccess<'de> for EnumAccess<'a, 'de> {
    type Error = CodecError;

    fn unit_variant(self) -> Result<(), CodecError> {
        Ok(())
    }

    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, CodecError> {
        seed.deserialize(self.de)
    }

    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.de, len, visitor)
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.de, fields.len(), visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn rt<T: Serialize + DeserializeOwned + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = to_tokens(&value).unwrap();
        let back: T = from_tokens(&bytes).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_roundtrip() {
        rt(true);
        rt(false);
        rt(42u8);
        rt(-7i32);
        rt(u64::MAX);
        rt(3.5f64);
        rt('λ');
        rt("hello".to_string());
        rt(());
    }

    #[test]
    fn containers_roundtrip() {
        rt(vec![1u32, 2, 3]);
        rt(Vec::<String>::new());
        rt(Some(9i64));
        rt(Option::<u8>::None);
        rt((1u8, "two".to_string(), 3.0f32));
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), vec![1u32]);
        m.insert("b".to_string(), vec![2, 3]);
        rt(m);
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Nested {
        name: String,
        values: Vec<u32>,
        flag: Option<bool>,
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    enum Shape {
        Unit,
        Newtype(u32),
        Tuple(u8, u8),
        Struct { w: u32, h: u32 },
    }

    #[test]
    fn structs_and_enums_roundtrip() {
        rt(Nested { name: "n".into(), values: vec![1, 2], flag: Some(true) });
        rt(Shape::Unit);
        rt(Shape::Newtype(5));
        rt(Shape::Tuple(1, 2));
        rt(Shape::Struct { w: 3, h: 4 });
        rt(vec![Shape::Unit, Shape::Newtype(1)]);
    }

    #[test]
    fn rejects_truncated_input() {
        let bytes = to_tokens(&12345u64).unwrap();
        let r: Result<u64, _> = from_tokens(&bytes[..4]);
        assert_eq!(r.unwrap_err(), CodecError::UnexpectedEof);
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = to_tokens(&1u8).unwrap();
        bytes.push(0);
        let r: Result<u8, _> = from_tokens(&bytes);
        assert_eq!(r.unwrap_err(), CodecError::TrailingBytes(1));
    }

    #[test]
    fn rejects_bad_tags() {
        let r: Result<bool, _> = from_tokens(&[7]);
        assert_eq!(r.unwrap_err(), CodecError::InvalidTag(7));
        let r: Result<Option<u8>, _> = from_tokens(&[9]);
        assert_eq!(r.unwrap_err(), CodecError::InvalidTag(9));
    }
}
