//! The symbolic bound language.
//!
//! A loop or function cost is a [`Bound`]: a normalized sum of
//! [`Product`]s over a fixed vocabulary of [`Atom`]s — the corpus and
//! profile parameters the paper's recurrences are stated in. The
//! vocabulary is deliberately small: every atom either appears in the
//! paper's Section 4/5 bounds or names a structural quantity the
//! reproduction's loops are actually driven by.
//!
//! | atom    | written | meaning |
//! |---------|---------|---------|
//! | `One`   | `1`     | a constant number of iterations |
//! | `Log`   | `log`   | a logarithmic factor (comparison sorts, heaps) |
//! | `Depth` | `depth` | the ontology's Dewey depth / valid-path diameter |
//! | `Deg`   | `deg`   | the bounded in/out-degree of a concept or DAG node |
//! | `K`     | `k`     | the requested result count |
//! | `Seg`   | `seg`   | index segments in a [`SegmentedView`] |
//! | `Nq`    | `nq`    | query profile size `\|Pq\|` |
//! | `Nd`    | `nd`    | document profile size `\|Pd\|` |
//! | `P`     | `P`     | combined profile size `\|Pq\|+\|Pd\|` |
//! | `Post`  | `post`  | total posting entries Σ_c `\|postings(c)\|` |
//! | `C`     | `C`     | ontology concept count `\|C\|` |
//! | `D`     | `D`     | corpus document count `\|D\|` |
//! | `Unk`   | `?`     | finite but symbolically untyped |
//!
//! `Unk` is the honesty atom: a `for` loop over a materialized
//! collection always terminates, so it is *bounded*, but if the lexical
//! environment cannot type the collection the bound is not *symbolic*.
//! C01 accepts `Unk`; the C03 recognizers do not, which is what forces
//! the D-Radix path to be fully typed.

/// One symbolic parameter in a bound product.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Atom {
    /// A constant number of iterations.
    One,
    /// A logarithmic factor.
    Log,
    /// Ontology Dewey depth / valid-path diameter.
    Depth,
    /// Bounded concept or DAG-node degree.
    Deg,
    /// The requested result count `k`.
    K,
    /// Index segments.
    Seg,
    /// Query profile size `|Pq|`.
    Nq,
    /// Document profile size `|Pd|`.
    Nd,
    /// Combined profile size `|Pq|+|Pd|`.
    P,
    /// Total posting entries over all concepts.
    Post,
    /// Ontology concept count `|C|`.
    C,
    /// Corpus document count `|D|`.
    D,
    /// Finite but symbolically untyped.
    Unk,
}

impl Atom {
    /// The surface spelling used in directives and rendered bounds.
    pub fn name(self) -> &'static str {
        match self {
            Atom::One => "1",
            Atom::Log => "log",
            Atom::Depth => "depth",
            Atom::Deg => "deg",
            Atom::K => "k",
            Atom::Seg => "seg",
            Atom::Nq => "nq",
            Atom::Nd => "nd",
            Atom::P => "P",
            Atom::Post => "post",
            Atom::C => "C",
            Atom::D => "D",
            Atom::Unk => "?",
        }
    }

    /// Parses one directive token (case-insensitive).
    pub fn parse(token: &str) -> Option<Atom> {
        Some(match token.to_ascii_lowercase().as_str() {
            "1" | "one" => Atom::One,
            "log" => Atom::Log,
            "depth" => Atom::Depth,
            "deg" => Atom::Deg,
            "k" => Atom::K,
            "seg" => Atom::Seg,
            "nq" => Atom::Nq,
            "nd" => Atom::Nd,
            "p" => Atom::P,
            "post" => Atom::Post,
            "c" => Atom::C,
            "d" => Atom::D,
            _ => return None,
        })
    }
}

/// A product of atoms, kept sorted; `[]` is the unit product (O(1)).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Product(pub Vec<Atom>);

impl Product {
    /// The unit product, O(1).
    pub fn one() -> Product {
        Product(Vec::new())
    }

    /// A single-atom product.
    pub fn atom(a: Atom) -> Product {
        if a == Atom::One {
            return Product::one();
        }
        Product(vec![a])
    }

    /// Multiplies two products (multiset union, `One` is the identity).
    pub fn times(&self, other: &Product) -> Product {
        let mut v: Vec<Atom> =
            self.0.iter().chain(other.0.iter()).copied().filter(|&a| a != Atom::One).collect();
        v.sort();
        Product(v)
    }

    /// Number of occurrences of `a` in the product.
    pub fn count(&self, a: Atom) -> usize {
        self.0.iter().filter(|&&x| x == a).count()
    }

    /// True when the product is corpus-pairwise: `D·D` or `C·D`, the
    /// shapes the paper's recurrence forbids on the query path (C02).
    pub fn is_forbidden_pairwise(&self) -> bool {
        self.count(Atom::D) >= 2 || (self.count(Atom::C) >= 1 && self.count(Atom::D) >= 1)
    }

    /// True when the product contains the TA-style quadratic `nq·D`
    /// (every query concept touching every corpus document) — the shape
    /// C03 allows only on the TA baseline root.
    pub fn is_ta_quadratic(&self) -> bool {
        self.count(Atom::Nq) >= 1 && self.count(Atom::D) >= 1
    }

    /// Multiset-inclusion dominance: `self` covers `other` when every
    /// atom of `other` (with multiplicity) appears in `self`. Used by
    /// C04 to check a sized table's capacity against the loop nest that
    /// fills it.
    pub fn dominates(&self, other: &Product) -> bool {
        let mut have = self.0.clone();
        for a in &other.0 {
            match have.iter().position(|x| x == a) {
                Some(i) => {
                    have.swap_remove(i);
                }
                None => return false,
            }
        }
        true
    }

    /// Renders the product, e.g. `nq·C` or `P·log`; the unit product is
    /// `1`.
    pub fn render(&self) -> String {
        if self.0.is_empty() {
            return "1".to_string();
        }
        self.0.iter().map(|a| a.name()).collect::<Vec<_>>().join("·")
    }
}

/// A normalized sum of products.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bound(pub Vec<Product>);

impl Bound {
    /// The O(1) bound.
    pub fn one() -> Bound {
        Bound(vec![Product::one()])
    }

    /// A single-product bound.
    pub fn product(p: Product) -> Bound {
        Bound(vec![p])
    }

    /// Adds the terms of `other` into `self`, renormalizing.
    pub fn plus(&self, other: &Bound) -> Bound {
        let mut terms = self.0.clone();
        terms.extend(other.0.iter().cloned());
        Bound(terms).normalize()
    }

    /// Multiplies every term by `p`.
    pub fn scale(&self, p: &Product) -> Bound {
        Bound(self.0.iter().map(|t| t.times(p)).collect()).normalize()
    }

    /// Sorts terms, drops duplicates and unit terms subsumed by real
    /// work, and caps the term count (the analysis only ever inspects
    /// term *shapes*, so capping keeps composition linear without
    /// changing any verdict on terms that survive).
    pub fn normalize(self) -> Bound {
        let mut terms = self.0;
        terms.sort();
        terms.dedup();
        if terms.len() > 1 {
            terms.retain(|t| !t.0.is_empty());
            if terms.is_empty() {
                terms.push(Product::one());
            }
        }
        // Drop dominated terms: a term already covered by a larger one
        // adds nothing to an O(·) sum.
        let mut keep: Vec<Product> = Vec::new();
        for t in terms {
            if keep.iter().any(|k| k != &t && k.dominates(&t)) {
                continue;
            }
            keep.retain(|k| !t.dominates(k) || k == &t);
            keep.push(t);
        }
        keep.sort();
        keep.dedup();
        keep.truncate(16);
        Bound(keep)
    }

    /// True when any term satisfies `pred`.
    pub fn any(&self, pred: impl Fn(&Product) -> bool) -> bool {
        self.0.iter().any(pred)
    }

    /// Renders the bound as `O(t1 + t2 + …)`.
    pub fn render(&self) -> String {
        if self.0.is_empty() {
            return "O(1)".to_string();
        }
        format!("O({})", self.0.iter().map(Product::render).collect::<Vec<_>>().join(" + "))
    }
}

/// Parses a directive bound expression: products of atoms joined by `*`
/// or `·`, summed with `+` — e.g. `p*depth`, `nq*c+d*log`. Returns
/// `None` on any unknown atom so the caller can surface the bad
/// expression instead of silently mistyping a loop.
pub fn parse_expr(expr: &str) -> Option<Bound> {
    let mut terms = Vec::new();
    for term in expr.split('+') {
        let mut p = Product::one();
        for token in term.split(['*', '·']) {
            let token = token.trim();
            if token.is_empty() {
                return None;
            }
            p = p.times(&Product::atom(Atom::parse(token)?));
        }
        terms.push(p);
    }
    if terms.is_empty() {
        return None;
    }
    Some(Bound(terms).normalize())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_the_vocabulary() {
        let b = parse_expr("nq*c+p*log+1").unwrap();
        assert_eq!(b.render(), "O(log·P + nq·C)");
        assert!(parse_expr("nq*banana").is_none());
        assert!(parse_expr("").is_none());
        assert_eq!(parse_expr("d·d").unwrap().render(), "O(D·D)");
    }

    #[test]
    fn forbidden_shapes_are_detected() {
        assert!(parse_expr("d*d").unwrap().any(|p| p.is_forbidden_pairwise()));
        assert!(parse_expr("c*d").unwrap().any(|p| p.is_forbidden_pairwise()));
        assert!(!parse_expr("nq*d").unwrap().any(|p| p.is_forbidden_pairwise()));
        assert!(parse_expr("nq*d").unwrap().any(|p| p.is_ta_quadratic()));
        assert!(!parse_expr("nq*post").unwrap().any(|p| p.is_ta_quadratic()));
    }

    #[test]
    fn dominance_is_multiset_inclusion() {
        let cap = parse_expr("nq*c").unwrap().0[0].clone();
        assert!(cap.dominates(&parse_expr("nq").unwrap().0[0]));
        assert!(cap.dominates(&cap));
        assert!(!cap.dominates(&parse_expr("nq*d").unwrap().0[0]));
        assert!(!parse_expr("d").unwrap().0[0].dominates(&parse_expr("d*d").unwrap().0[0]));
    }

    #[test]
    fn normalization_drops_dominated_terms() {
        let b = parse_expr("d+d*log+1").unwrap();
        assert_eq!(b.render(), "O(log·D)");
        assert_eq!(Bound::one().scale(&Product::atom(Atom::D)).render(), "O(D)");
    }
}
