//! Offline subset of the `rand` crate (0.9 API surface).
//!
//! The sandbox has no registry access, so this crate implements the small
//! slice of `rand` the workspace uses: `rngs::StdRng`,
//! `SeedableRng::{seed_from_u64, from_seed}`, and the `Rng` extension
//! methods `random::<T>()` / `random_range(..)`. The generator core is
//! xoshiro256** seeded via SplitMix64 — deterministic across runs and
//! platforms, which is all the synthetic-data generators require (they
//! promise "same seed → same output", not any particular stream).
//! Numeric streams therefore differ from the real `rand` crate's ChaCha12
//! `StdRng`. Drop the `[patch.crates-io]` entry to use the real crate.

/// Low-level generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, as rand_core does for seed material.
        let mut sm = state;
        let mut seed = Self::Seed::default();
        for b in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut sm).to_le_bytes();
            b.copy_from_slice(&v[..b.len()]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types producible by [`Rng::random`].
pub trait StandardSample {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

// No `Range<f32>` impl: a second float impl would make unannotated float
// literals (`rng.random_range(0.8..1.2)`) ambiguous, and the workspace
// only samples f64 ranges.

/// User-facing extension methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand`'s
    /// ChaCha12-based `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro requires a non-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Alias: the workspace only needs determinism, not a distinct small
    /// generator.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.random_range(3..10);
            assert!((3..10).contains(&v));
            let w = r.random_range(0..=4u32);
            assert!(w <= 4);
            let f = r.random_range(0.8..1.2);
            assert!((0.8..1.2).contains(&f));
            let u: f64 = r.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_hits_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
