//! `cbr-audit`: self-hosted static analysis and structural-invariant
//! audit for the concept-rank workspace.
//!
//! Two halves, one binary:
//!
//! * **Lint** ([`run_lint`]) — token-level rules `A01`–`A09` over every
//!   workspace source and manifest, filtered through the checked-in
//!   `audit.allow` ratchet. No external parser: the build environment is
//!   offline, so the scanner is ~300 lines of hand-rolled lexing that
//!   understands exactly what the rules need (comments, literals,
//!   `#[cfg(test)]` and `#[cfg(feature = "serde")]` regions).
//! * **Invariants** ([`invariants::run`]) — every `validate()` in the
//!   workspace (ontology graph + Dewey paths, forward/inverted index
//!   pair, tuned D-Radix DAGs with brute-force spot checks), corruption
//!   injection to prove the validators catch what they claim to, snapshot
//!   frame round-trip hashing, and a deterministic stress of the
//!   `SharedEngine` workspace pool.
//!
//! The shared scanner, report, and allowlist machinery lives in
//! `cbr-flow` (the bottom of the tooling stack, which also runs the
//! call-graph dataflow rules `F01`–`F05`); this crate re-exports those
//! modules so existing `cbr_audit::scanner::..` paths keep working, and
//! `cbr-audit all` runs lint + flow + race + bound + cplx + invariants
//! in one gate, over a single shared [`cbr_flow::ParsedWorkspace`].
//!
//! ```sh
//! cargo run -p cbr-audit -- all          # the full six-way gate
//! cargo run -p cbr-audit -- lint --json  # machine-readable report
//! ```
//!
//! The binary exits non-zero when any finding survives the allowlist, so
//! `scripts/check.sh` can gate merges on it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod invariants;
pub mod rules;

pub use cbr_flow::{allowlist, report, scanner};
pub use cbr_flow::{collect_manifests, collect_sources, workspace_root};

use report::Report;
use std::path::Path;

/// Runs the lint half: all rules over all sources and manifests, with
/// `audit.allow` applied.
pub fn run_lint(root: &Path) -> Report {
    let files = collect_sources(root);
    run_lint_files(root, &files)
}

/// [`run_lint`] over already-collected sources, so `cbr-audit all` can
/// share one parsed workspace across every analyzer instead of walking
/// and re-reading the tree once per tool.
pub fn run_lint_files(root: &Path, files: &[scanner::SourceFile]) -> Report {
    let mut findings = rules::run_source_rules(files);
    for (rel, text) in collect_manifests(root) {
        findings.extend(rules::a06_no_registry_deps(&rel, &text));
    }

    let allow_content = allowlist::load(root, "audit.allow");
    let findings = allowlist::ratchet(findings, &allow_content, "audit.allow");

    let mut report = Report { findings, passed: Vec::new() };
    if report.ok() {
        for rule in ["A01", "A02", "A03", "A04", "A05", "A06", "A07", "A08", "A09"] {
            report.passed.push(format!("lint {rule} ({} files)", files.len()));
        }
    }
    report
}

/// Exit-status bit assigned to each analyzer, so one `cbr-audit all`
/// run reports exactly *which* gates failed: a CI wrapper can decode
/// `exit & 8 != 0` as "bound findings" without re-parsing the output.
/// Unknown names (and usage errors in the binary) map to [`USAGE_BIT`].
pub fn analyzer_bit(name: &str) -> i32 {
    match name {
        "lint" => 1,
        "flow" => 2,
        "race" => 4,
        "bound" => 8,
        "cplx" => 16,
        "invariants" => 32,
        _ => USAGE_BIT,
    }
}

/// Exit status for usage errors — above every analyzer bit so a bad
/// invocation is never mistaken for a findings failure.
pub const USAGE_BIT: i32 = 64;

/// Folds per-analyzer outcomes into a process exit code: 0 when every
/// analyzer passed, otherwise the bitwise OR of the failing analyzers'
/// [`analyzer_bit`]s.
pub fn exit_code(outcomes: &[(&str, bool)]) -> i32 {
    outcomes.iter().filter(|(_, ok)| !ok).fold(0, |acc, (name, _)| acc | analyzer_bit(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The audit must be silent on its own tree: every rule passes on the
    /// current sources modulo the checked-in allowlist.
    #[test]
    fn current_tree_is_clean() {
        let report = run_lint(&workspace_root());
        assert!(report.ok(), "lint findings on the current tree:\n{}", report.render_text());
    }

    /// Pins the analyzer → exit-bit mapping: each analyzer owns one
    /// distinct bit, failures OR together, and usage errors sit above
    /// them all.
    #[test]
    fn exit_bits_are_distinct_and_compose() {
        let names = ["lint", "flow", "race", "bound", "cplx", "invariants"];
        let bits: Vec<i32> = names.iter().map(|n| analyzer_bit(n)).collect();
        assert_eq!(bits, vec![1, 2, 4, 8, 16, 32]);
        for (i, a) in bits.iter().enumerate() {
            for b in &bits[i + 1..] {
                assert_eq!(a & b, 0, "bits must be disjoint");
            }
        }
        assert_eq!(analyzer_bit("mystery"), USAGE_BIT);
        assert_eq!(exit_code(&[("lint", true), ("flow", true)]), 0);
        assert_eq!(exit_code(&[("lint", false), ("flow", true)]), 1);
        assert_eq!(exit_code(&[("flow", false), ("bound", false)]), 2 | 8);
        assert_eq!(
            exit_code(&[
                ("lint", false),
                ("flow", false),
                ("race", false),
                ("bound", false),
                ("cplx", false),
                ("invariants", false),
            ]),
            63
        );
    }

    /// The parse-once lint entry point matches the walking one.
    #[test]
    fn run_lint_files_matches_run_lint() {
        let root = workspace_root();
        let files = collect_sources(&root);
        let a = run_lint(&root);
        let b = run_lint_files(&root, &files);
        assert_eq!(a.findings.len(), b.findings.len());
        assert_eq!(a.passed, b.passed);
    }

    #[test]
    fn collectors_find_the_workspace() {
        let root = workspace_root();
        let files = collect_sources(&root);
        assert!(files.iter().any(|f| f.rel == "crates/knds/src/engine.rs"));
        assert!(files.iter().any(|f| f.rel == "src/lib.rs"));
        assert!(!files.iter().any(|f| f.rel.starts_with("vendor/")));
        let manifests = collect_manifests(&root);
        assert!(manifests.iter().any(|(rel, _)| rel == "Cargo.toml"));
        assert!(manifests.iter().any(|(rel, _)| rel == "vendor/serde/Cargo.toml"));
    }
}
