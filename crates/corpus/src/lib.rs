//! Document corpora for concept-based ranking.
//!
//! The paper (Section 1, Section 3.1) views a document — an Electronic
//! Medical Record — as a **set of ontological concepts** extracted from its
//! free text with tools such as MetaMap or cTAKES. This crate provides that
//! document model plus everything around it:
//!
//! * [`Document`] / [`Corpus`] — concept-set documents with token counts;
//! * [`CorpusStats`] — the Table 3 statistics (documents, distinct
//!   concepts, average tokens and concepts per document);
//! * [`ConceptFilter`] — the Section 6.1 preprocessing thresholds: a depth
//!   threshold excluding overly generic concepts (default 4) and a
//!   collection-frequency threshold excluding very common ones (µ + σ);
//! * [`generator`] — synthetic corpora calibrated to the paper's two MIMIC
//!   II collections: **PATIENT** (983 documents, ~706 densely clustered
//!   concepts each) and **RADIO** (12,373 documents, ~125 sparse concepts
//!   each); the real MIMIC II data sits behind a data-use agreement;
//! * [`textgen`] + [`extract`] — a deterministic clinical-note generator
//!   and a dictionary-based concept extractor (with abbreviation expansion
//!   and negation filtering) standing in for the MetaMap pipeline, so the
//!   full text → concepts → index path is exercised end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod document;
pub mod extract;
pub mod filter;
pub mod generator;
pub mod io;
pub mod stats;
pub mod textgen;

pub use document::{normalize_concepts, Corpus, DocId, Document};
pub use extract::{ConceptExtractor, ExtractorConfig, Mention, Polarity};
pub use filter::{ConceptFilter, FilterConfig};
pub use generator::{CorpusGenerator, CorpusProfile};
pub use stats::CorpusStats;
pub use textgen::NoteGenerator;
