//! The checked-in lint allowlist and its ratchet semantics.
//!
//! `audit.allow` and `flow.allow` at the workspace root carry one entry
//! per `(rule, file)` pair that is permitted a fixed number of findings,
//! each with a justification. The counts ratchet in both directions:
//! *more* findings than allowed fail the build (a regression), and
//! *fewer* findings also fail (the entry is stale and must be lowered or
//! removed — the budget cannot silently accumulate slack for future
//! regressions).

use crate::report::Finding;
use std::collections::BTreeMap;
use std::path::Path;

/// One allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule identifier (`A01`..`A06`).
    pub rule: String,
    /// Workspace-relative file the findings live in.
    pub file: String,
    /// Exact number of findings tolerated.
    pub count: usize,
    /// Why the findings are acceptable.
    pub justification: String,
}

/// Parses allowlist content (`origin` names the file for error
/// findings, e.g. `audit.allow`). Grammar, one entry per line:
///
/// ```text
/// A02 crates/dradix/src/dag.rs 57 arena indices are bounded by the live watermark
/// ```
///
/// Blank lines and `#` comments are skipped. Returns parse errors as
/// findings so a malformed allowlist fails the audit loudly.
pub fn parse(content: &str, origin: &str) -> (Vec<AllowEntry>, Vec<Finding>) {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    for (i, raw) in content.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(4, char::is_whitespace);
        let (rule, file, count, just) =
            (parts.next(), parts.next(), parts.next(), parts.next().unwrap_or("").trim());
        match (rule, file, count.and_then(|c| c.parse::<usize>().ok())) {
            (Some(rule), Some(file), Some(count)) if !just.is_empty() => {
                entries.push(AllowEntry {
                    rule: rule.to_string(),
                    file: file.to_string(),
                    count,
                    justification: just.to_string(),
                });
            }
            _ => errors.push(Finding::new(
                "ALLOW",
                origin,
                i + 1,
                format!("malformed entry {line:?} (want: RULE FILE COUNT JUSTIFICATION)"),
            )),
        }
    }
    (entries, errors)
}

/// Applies the allowlist to raw findings: suppressed findings are removed,
/// and count mismatches (either direction) surface as `ALLOW` findings.
pub fn apply(findings: Vec<Finding>, entries: &[AllowEntry]) -> Vec<Finding> {
    let mut allowed: BTreeMap<(String, String), usize> = BTreeMap::new();
    let mut justification: BTreeMap<(String, String), String> = BTreeMap::new();
    for e in entries {
        allowed.insert((e.rule.clone(), e.file.clone()), e.count);
        justification.insert((e.rule.clone(), e.file.clone()), e.justification.clone());
    }

    let mut actual: BTreeMap<(String, String), usize> = BTreeMap::new();
    for f in &findings {
        *actual.entry((f.rule.clone(), f.file.clone())).or_insert(0) += 1;
    }

    let mut out = Vec::new();
    for f in findings {
        let key = (f.rule.clone(), f.file.clone());
        match allowed.get(&key) {
            Some(&n) if actual.get(&key) == Some(&n) => {} // fully allowlisted
            _ => out.push(f),
        }
    }
    // Over-budget groups keep their raw findings (pushed above); annotate
    // with the budget so the failure is self-explanatory.
    for (key, &n) in &allowed {
        let have = actual.get(key).copied().unwrap_or(0);
        if have > n {
            out.push(Finding::new(
                "ALLOW",
                &key.1,
                0,
                format!("rule {} has {have} finding(s) but the allowlist permits {n}", key.0),
            ));
        } else if have < n {
            out.push(Finding::new(
                "ALLOW",
                &key.1,
                0,
                format!(
                    "stale allowlist: rule {} permits {n} finding(s) but only {have} remain — \
                     ratchet the entry down",
                    key.0
                ),
            ));
        }
    }
    out
}

/// Reads the allowlist named `name` from the workspace root. A missing
/// file reads as empty — a tool with no debt needs no allowlist.
pub fn load(root: &Path, name: &str) -> String {
    std::fs::read_to_string(root.join(name)).unwrap_or_default()
}

/// The full ratchet in one call: parses `content` (with `origin` naming
/// the allowlist in error findings), applies the exact-count entries to
/// `findings`, and appends any parse errors. Every analyzer
/// (audit/flow/race/bound) funnels its raw findings through here so the
/// fewer-and-more-both-fail semantics cannot drift between tools.
pub fn ratchet(findings: Vec<Finding>, content: &str, origin: &str) -> Vec<Finding> {
    let (entries, mut parse_errors) = parse(content, origin);
    let mut out = apply(findings, &entries);
    out.append(&mut parse_errors);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str, file: &str) -> Finding {
        Finding::new(rule, file, 1, "x")
    }

    #[test]
    fn parse_accepts_entries_and_comments() {
        let (entries, errors) =
            parse("# header\n\nA02 crates/d/dag.rs 3 arena indices bounded\n", "audit.allow");
        assert!(errors.is_empty());
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].count, 3);
        assert_eq!(entries[0].justification, "arena indices bounded");
    }

    #[test]
    fn parse_rejects_missing_justification() {
        let (entries, errors) = parse("A02 crates/d/dag.rs 3\n", "flow.allow");
        assert!(entries.is_empty());
        assert_eq!(errors.len(), 1);
    }

    #[test]
    fn exact_count_suppresses() {
        let entries = parse("A02 f.rs 2 fine\n", "audit.allow").0;
        let out = apply(vec![finding("A02", "f.rs"), finding("A02", "f.rs")], &entries);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn over_budget_fails_with_annotation() {
        let entries = parse("A02 f.rs 1 fine\n", "audit.allow").0;
        let out = apply(vec![finding("A02", "f.rs"), finding("A02", "f.rs")], &entries);
        assert_eq!(out.len(), 3, "2 raw + 1 annotation: {out:?}");
        assert!(out.iter().any(|f| f.rule == "ALLOW" && f.message.contains("permits 1")));
    }

    #[test]
    fn stale_entry_fails() {
        let entries = parse("A02 f.rs 2 fine\n", "audit.allow").0;
        let out = apply(vec![finding("A02", "f.rs")], &entries);
        assert!(out.iter().any(|f| f.message.contains("stale allowlist")), "{out:?}");
    }

    /// The ratchet property all four analyzers inherit through
    /// [`ratchet`]: an exact-count entry fails when the tree drifts in
    /// *either* direction — more findings is a regression, fewer is a
    /// stale budget — and only the exact count runs clean.
    #[test]
    fn ratchet_fails_on_fewer_and_on_more() {
        let allow = "B01 f.rs 2 two packed casts proven by construction\n";
        let raw = |n: usize| (0..n).map(|_| finding("B01", "f.rs")).collect::<Vec<_>>();

        let exact = ratchet(raw(2), allow, "bound.allow");
        assert!(exact.is_empty(), "exact count must pass: {exact:?}");

        let fewer = ratchet(raw(1), allow, "bound.allow");
        assert!(
            fewer.iter().any(|f| f.rule == "ALLOW" && f.message.contains("stale allowlist")),
            "fewer findings must fail as a stale entry: {fewer:?}"
        );

        let more = ratchet(raw(3), allow, "bound.allow");
        assert!(
            more.iter().any(|f| f.rule == "ALLOW" && f.message.contains("permits 2")),
            "more findings must fail as a regression: {more:?}"
        );
        assert_eq!(more.iter().filter(|f| f.rule == "B01").count(), 3, "raw findings surface");
    }

    /// Parse errors surface through the one-call ratchet too.
    #[test]
    fn ratchet_surfaces_parse_errors() {
        let out = ratchet(Vec::new(), "B01 missing-count\n", "bound.allow");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "ALLOW");
        assert_eq!(out[0].file, "bound.allow");
    }

    #[test]
    fn unrelated_findings_pass_through() {
        let entries = parse("A02 f.rs 1 fine\n", "audit.allow").0;
        let out = apply(vec![finding("A01", "g.rs"), finding("A02", "f.rs")], &entries);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "A01");
    }
}
