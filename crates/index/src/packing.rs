//! Checked integer packing and narrowing for the hot path.
//!
//! The dense query path lives on packed-integer tricks: `stamp << 32 |
//! slot` doc→row entries in the kNDS workspace, `u32` CSR offsets in
//! every index segment, `u32` arena indexes in the D-Radix DAG. Each
//! trick is sound only under an invariant (`slot < 2³²`, posting counts
//! fit an offset word) that a bare `as` cast neither states nor checks.
//! This module is the single place those invariants live: every helper
//! documents its precondition, `debug_assert!`s it, and is covered by
//! boundary tests at the `u32::MAX` packing edge (plus the round-trip
//! proptest in `tests/packing.rs`).
//!
//! `cbr-bound` treats this file as its axiom module — the raw casts
//! below are the *implementation* of the checked discipline rules B01
//! and B02 enforce everywhere else, so the analyzer scans every hot
//! file except this one. Keep the helpers tiny and total: no panics
//! (the query path must stay panic-free under flow F04), no branches
//! beyond the debug assertions.

use cbr_corpus::DocId;

/// Packs an epoch stamp and a row slot into one `u64` word, stamp in
/// the high half: `stamp << 32 | slot`.
///
/// Invariant: the caller's slot indexes a table of at most `u32::MAX`
/// rows — true for every kNDS candidate table, whose rows are keyed by
/// [`DocId`] (itself a `u32`).
#[inline]
#[must_use]
pub fn pack_stamp_slot(stamp: u32, slot: u32) -> u64 {
    (u64::from(stamp) << 32) | u64::from(slot)
}

/// Splits a packed `stamp << 32 | slot` word back into `(stamp, slot)`.
/// Bit-exact inverse of [`pack_stamp_slot`] for every input pair.
#[inline]
#[must_use]
pub fn unpack_stamp_slot(packed: u64) -> (u32, u32) {
    // bound: proven — shifting the high half down and truncating to the
    // low half are the definition of the packed layout.
    ((packed >> 32) as u32, packed as u32)
}

/// Narrows a `usize` known to be bounded by a `u32`-indexed structure
/// (candidate rows, query-concept origins, shard-local doc ordinals).
///
/// Invariant: `n <= u32::MAX`. Checked in debug builds; in release the
/// truncation is unreachable because every caller's bound derives from
/// a `u32`-typed id space (`DocId`, `ConceptId`, epoch stamps).
#[inline]
#[must_use]
pub fn narrow_u32(n: usize) -> u32 {
    debug_assert!(u32::try_from(n).is_ok(), "value {n} exceeds the u32 id space");
    // bound: proven — guarded by the debug assertion above; callers
    // index u32-keyed spaces by construction.
    n as u32
}

/// Narrows a running CSR length into an offset word. Semantically
/// [`narrow_u32`], named separately so offset fence posts read as what
/// they are at the push site: `offsets.push(csr_offset(rows.len()))`.
///
/// Invariant: a segment holds fewer than `u32::MAX` postings — enforced
/// upstream by the `u32` [`DocId`]/[`ConceptId`](cbr_ontology::ConceptId)
/// spaces and re-proven by `validate_pair` on every build.
#[inline]
#[must_use]
pub fn csr_offset(len: usize) -> u32 {
    narrow_u32(len)
}

/// The doc→row ordinal of `doc` inside a block starting at `first`,
/// as a checked index.
///
/// Invariant: `doc.0 >= first` — callers test block membership before
/// computing the ordinal.
#[inline]
#[must_use]
pub fn doc_ordinal(doc: DocId, first: u32) -> usize {
    debug_assert!(doc.0 >= first, "doc {doc} precedes the block base {first}");
    (doc.0.wrapping_sub(first)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trips_at_the_edges() {
        for stamp in [0, 1, u32::MAX - 1, u32::MAX] {
            for slot in [0, 1, u32::MAX - 1, u32::MAX] {
                let packed = pack_stamp_slot(stamp, slot);
                assert_eq!(unpack_stamp_slot(packed), (stamp, slot));
            }
        }
    }

    #[test]
    fn pack_keeps_the_halves_disjoint() {
        // A full slot must never bleed into the stamp half and vice
        // versa — the aliasing bug the epoch discipline exists to avoid.
        assert_eq!(pack_stamp_slot(0, u32::MAX) >> 32, 0);
        assert_eq!(pack_stamp_slot(u32::MAX, 0) & 0xFFFF_FFFF, 0);
        assert_eq!(pack_stamp_slot(u32::MAX, u32::MAX), u64::MAX);
    }

    #[test]
    fn narrowing_is_exact_within_the_id_space() {
        assert_eq!(narrow_u32(0), 0);
        assert_eq!(narrow_u32(u32::MAX as usize), u32::MAX);
        assert_eq!(csr_offset(12_345), 12_345);
    }

    #[test]
    fn doc_ordinal_is_the_block_offset() {
        assert_eq!(doc_ordinal(DocId(7), 7), 0);
        assert_eq!(doc_ordinal(DocId(u32::MAX), u32::MAX - 3), 3);
    }
}
