//! Per-thread loop-iteration counters for the C05 dynamic cross-check.
//!
//! Compiled only under the `counters` cfg feature (which also forwards
//! to `cbr-dradix/counters`): release and bench builds carry no trace
//! of these. Each counter pairs with a `// cplx: counter <name>` marker
//! on a hot loop; the `cbr-cplx` test harness resets them, runs queries
//! over generated corpora, and asserts the observed iteration counts
//! stay within a constant factor of the statically proven bounds.

use std::cell::Cell;

thread_local! {
    static LEVELS: Cell<u64> = const { Cell::new(0) };
    static BUCKETS: Cell<u64> = const { Cell::new(0) };
}

/// Observed iteration counts since the last [`reset`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KndsCounters {
    /// BFS expansion levels in `engine::run` (static bound: `depth`).
    pub levels: u64,
    /// Distance buckets drained in `weighted` (static bound: `depth`).
    pub buckets: u64,
}

/// Zeroes every counter on this thread.
pub fn reset() {
    LEVELS.with(|c| c.set(0));
    BUCKETS.with(|c| c.set(0));
}

/// Reads every counter on this thread.
pub fn snapshot() -> KndsCounters {
    KndsCounters { levels: LEVELS.with(Cell::get), buckets: BUCKETS.with(Cell::get) }
}

/// One BFS expansion level.
pub fn bump_levels() {
    LEVELS.with(|c| c.set(c.get().wrapping_add(1)));
}

/// One distance bucket drained.
pub fn bump_buckets() {
    BUCKETS.with(|c| c.set(c.get().wrapping_add(1)));
}
