//! The concurrency facade the workspace's engine code imports instead of
//! `std::sync` / `parking_lot` / `crossbeam`.
//!
//! * Default build: thin zero-cost wrappers over the real primitives
//!   ([`real`]).
//! * With the `model` feature: instrumented versions whose every visible
//!   operation is a scheduler-controlled sync point ([`model`]). On
//!   threads that are not part of an active model execution the
//!   instrumented primitives pass straight through to the real ones, so
//!   feature-unified workspace builds behave identically outside
//!   [`crate::explore`].
//!
//! Both implementations expose the same poison-free API surface:
//! `Mutex`, `RwLock`, `Condvar`, `AtomicUsize`, `AtomicU64`, `Ordering`,
//! `Arc`, `SegQueue` (with a [`SegQueue::pooled`] constructor that opts a
//! queue into the pool-leak analysis), `spawn`, `scope`, `yield_now`, and
//! `available_parallelism`.
//!
//! [`Published`]/[`Cached`] — the epoch-published snapshot cell — are
//! built *on top of* the facade primitives in [`published`] and therefore
//! compile once for both variants: the real build gets a plain
//! atomic-epoch cell, the model build gets every publish/load as a
//! scheduler-visible sync point for free.

pub use std::sync::Arc;

mod published;
pub use published::{Cached, Published};

#[cfg(not(feature = "model"))]
mod real;
#[cfg(not(feature = "model"))]
pub use real::*;

#[cfg(feature = "model")]
mod model;
#[cfg(feature = "model")]
pub use model::*;
