//! Ranking-effectiveness metrics.
//!
//! The paper defers effectiveness to prior user studies ("previous works
//! [17, 21] have studied the effectiveness of the distance metrics that we
//! have used, hence our experiments will focus on efficiency"). This crate
//! provides the standard IR metrics so the reproduction can still *measure*
//! effectiveness on synthetic ground truth — the corpus generator's cohort
//! labels act as relevance judgments (documents generated from the same
//! cluster centers are "relevant" to each other), which lets the
//! `repro effectiveness` report compare ranking families (shortest-path vs
//! information-content vs expanded retrieval).
//!
//! All functions take the ranked list as document ids (best first) and the
//! relevant set; they are total (empty inputs give 0) and pure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod stats;

pub use stats::{welch_t_test, TTest};

use cbr_corpus::DocId;
use std::collections::HashSet;

/// Fraction of the top-k that is relevant. `k` is clamped to the ranking
/// length; an empty ranking or `k = 0` scores 0.
pub fn precision_at_k(ranking: &[DocId], relevant: &HashSet<DocId>, k: usize) -> f64 {
    let k = k.min(ranking.len());
    if k == 0 {
        return 0.0;
    }
    let hits = ranking[..k].iter().filter(|d| relevant.contains(d)).count();
    hits as f64 / k as f64
}

/// Fraction of the relevant set found in the top-k.
pub fn recall_at_k(ranking: &[DocId], relevant: &HashSet<DocId>, k: usize) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let k = k.min(ranking.len());
    let hits = ranking[..k].iter().filter(|d| relevant.contains(d)).count();
    hits as f64 / relevant.len() as f64
}

/// Average precision: the mean of `precision@i` over the ranks `i` holding
/// a relevant document, normalized by `|relevant|`. 1.0 iff every relevant
/// document precedes every irrelevant one.
pub fn average_precision(ranking: &[DocId], relevant: &HashSet<DocId>) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (i, d) in ranking.iter().enumerate() {
        if relevant.contains(d) {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    sum / relevant.len() as f64
}

/// Binary-gain nDCG@k: DCG with gain 1 at relevant ranks, divided by the
/// ideal DCG (all relevant documents first).
pub fn ndcg_at_k(ranking: &[DocId], relevant: &HashSet<DocId>, k: usize) -> f64 {
    let k = k.min(ranking.len());
    if k == 0 || relevant.is_empty() {
        return 0.0;
    }
    let discount = |rank: usize| 1.0 / ((rank + 2) as f64).log2();
    let dcg: f64 = ranking[..k]
        .iter()
        .enumerate()
        .filter(|(_, d)| relevant.contains(*d))
        .map(|(i, _)| discount(i))
        .sum();
    let ideal: f64 = (0..relevant.len().min(k)).map(discount).sum();
    if ideal == 0.0 {
        0.0
    } else {
        dcg / ideal
    }
}

/// Reciprocal rank of the first relevant document (`1/rank`), 0 when no
/// relevant document appears. Averaged over queries this is MRR.
pub fn reciprocal_rank(ranking: &[DocId], relevant: &HashSet<DocId>) -> f64 {
    ranking.iter().position(|d| relevant.contains(d)).map(|i| 1.0 / (i + 1) as f64).unwrap_or(0.0)
}

/// Whether any relevant document appears in the top-k (success@k).
pub fn success_at_k(ranking: &[DocId], relevant: &HashSet<DocId>, k: usize) -> bool {
    ranking[..k.min(ranking.len())].iter().any(|d| relevant.contains(d))
}

/// Kendall rank-correlation tau-a between two rankings of the same item
/// set, in `[-1, 1]`. Items missing from either ranking are ignored; fewer
/// than two shared items give 0.
pub fn kendall_tau(a: &[DocId], b: &[DocId]) -> f64 {
    let pos_b: std::collections::HashMap<DocId, usize> =
        b.iter().enumerate().map(|(i, &d)| (d, i)).collect();
    let shared: Vec<usize> = a.iter().filter_map(|d| pos_b.get(d).copied()).collect();
    let n = shared.len();
    if n < 2 {
        return 0.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in i + 1..n {
            if shared[i] < shared[j] {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    (concordant - discordant) as f64 / (n * (n - 1) / 2) as f64
}

/// Convenience aggregate over a workload of `(ranking, relevant)` pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Effectiveness {
    /// Mean precision@k.
    pub precision: f64,
    /// Mean recall@k.
    pub recall: f64,
    /// Mean average precision (MAP).
    pub map: f64,
    /// Mean nDCG@k.
    pub ndcg: f64,
    /// Mean reciprocal rank.
    pub mrr: f64,
    /// Fraction of queries with any relevant document in the top-k.
    pub success: f64,
}

/// Averages the four metrics over a workload at cutoff `k`.
pub fn evaluate(runs: &[(Vec<DocId>, HashSet<DocId>)], k: usize) -> Effectiveness {
    if runs.is_empty() {
        return Effectiveness::default();
    }
    let n = runs.len() as f64;
    let mut out = Effectiveness::default();
    for (ranking, relevant) in runs {
        out.precision += precision_at_k(ranking, relevant, k);
        out.recall += recall_at_k(ranking, relevant, k);
        out.map += average_precision(ranking, relevant);
        out.ndcg += ndcg_at_k(ranking, relevant, k);
        out.mrr += reciprocal_rank(ranking, relevant);
        out.success += success_at_k(ranking, relevant, k) as u8 as f64;
    }
    out.precision /= n;
    out.recall /= n;
    out.map /= n;
    out.ndcg /= n;
    out.mrr /= n;
    out.success /= n;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(v: u32) -> DocId {
        DocId(v)
    }

    fn rel(ids: &[u32]) -> HashSet<DocId> {
        ids.iter().map(|&v| DocId(v)).collect()
    }

    #[test]
    fn precision_and_recall_basics() {
        let ranking = vec![d(1), d(2), d(3), d(4)];
        let relevant = rel(&[1, 3, 9]);
        assert_eq!(precision_at_k(&ranking, &relevant, 2), 0.5);
        assert_eq!(precision_at_k(&ranking, &relevant, 4), 0.5);
        assert!((recall_at_k(&ranking, &relevant, 4) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(precision_at_k(&[], &relevant, 5), 0.0);
        assert_eq!(recall_at_k(&ranking, &rel(&[]), 5), 0.0);
    }

    #[test]
    fn perfect_ranking_scores_one() {
        let ranking = vec![d(1), d(2), d(3)];
        let relevant = rel(&[1, 2, 3]);
        assert_eq!(precision_at_k(&ranking, &relevant, 3), 1.0);
        assert_eq!(average_precision(&ranking, &relevant), 1.0);
        assert!((ndcg_at_k(&ranking, &relevant, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn average_precision_penalizes_late_hits() {
        let relevant = rel(&[1]);
        let early = average_precision(&[d(1), d(2), d(3)], &relevant);
        let late = average_precision(&[d(2), d(3), d(1)], &relevant);
        assert_eq!(early, 1.0);
        assert!((late - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_orders_by_position() {
        let relevant = rel(&[7]);
        let first = ndcg_at_k(&[d(7), d(1), d(2)], &relevant, 3);
        let third = ndcg_at_k(&[d(1), d(2), d(7)], &relevant, 3);
        assert_eq!(first, 1.0);
        assert!(third < first && third > 0.0);
    }

    #[test]
    fn kendall_tau_extremes() {
        let a = vec![d(1), d(2), d(3), d(4)];
        let rev: Vec<DocId> = a.iter().rev().copied().collect();
        assert_eq!(kendall_tau(&a, &a), 1.0);
        assert_eq!(kendall_tau(&a, &rev), -1.0);
        // One swap out of six pairs: (6-2·1)/6.
        let swapped = vec![d(2), d(1), d(3), d(4)];
        assert!((kendall_tau(&a, &swapped) - (4.0 / 6.0)).abs() < 1e-12);
        assert_eq!(kendall_tau(&a, &[d(9)]), 0.0);
    }

    #[test]
    fn kendall_ignores_non_shared_items() {
        let a = vec![d(1), d(5), d(2)];
        let b = vec![d(1), d(2), d(9)];
        assert_eq!(kendall_tau(&a, &b), 1.0, "only 1 and 2 are shared, in order");
    }

    #[test]
    fn mrr_and_success() {
        let relevant = rel(&[5]);
        assert_eq!(reciprocal_rank(&[d(5), d(1)], &relevant), 1.0);
        assert_eq!(reciprocal_rank(&[d(1), d(5)], &relevant), 0.5);
        assert_eq!(reciprocal_rank(&[d(1), d(2)], &relevant), 0.0);
        assert!(success_at_k(&[d(1), d(5)], &relevant, 2));
        assert!(!success_at_k(&[d(1), d(5)], &relevant, 1));
    }

    #[test]
    fn evaluate_averages() {
        let runs = vec![(vec![d(1), d(2)], rel(&[1])), (vec![d(3), d(4)], rel(&[4]))];
        let e = evaluate(&runs, 1);
        assert_eq!(e.precision, 0.5);
        assert_eq!(e.recall, 0.5);
        assert!(e.map > 0.0 && e.ndcg > 0.0);
        assert_eq!(e.success, 0.5);
        assert!((e.mrr - 0.75).abs() < 1e-12);
        assert_eq!(evaluate(&[], 5), Effectiveness::default());
    }
}
