//! `cbr-audit` — run the workspace's self-audit from the command line.
//!
//! ```text
//! cbr-audit lint        [--json]   static analysis rules A01–A06
//! cbr-audit flow        [--json]   call-graph dataflow rules F01–F05
//! cbr-audit race        [--json]   lock-discipline rules R01–R05
//! cbr-audit bound       [--json]   numeric-safety rules B01–B05
//! cbr-audit cplx        [--json]   symbolic complexity rules C01–C05
//! cbr-audit invariants  [--json]   structural validate() suite
//! cbr-audit all         [--json]   lint + flow + race + bound + cplx + invariants
//! ```
//!
//! `all` scans and parses the workspace **once** and hands the shared
//! [`cbr_flow::ParsedWorkspace`] to every analyzer, so the six-way gate
//! costs one parse instead of five.
//!
//! Exits 0 when clean; otherwise the bitwise OR of the failing
//! analyzers' bits (lint=1, flow=2, race=4, bound=8, cplx=16,
//! invariants=32), so CI logs show *which* gates failed straight from
//! the status. Usage errors exit 64.

#![forbid(unsafe_code)]

use cbr_audit::report::Report;
use cbr_flow::ParsedWorkspace;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let command = args.iter().find(|a| !a.starts_with("--")).map(String::as_str);

    let root = cbr_audit::workspace_root();
    // (analyzer name, its report) per analyzer that ran.
    let mut runs: Vec<(&str, Report)> = Vec::new();
    match command {
        Some("lint") => runs.push(("lint", cbr_audit::run_lint(&root))),
        Some("flow") => runs.push(("flow", cbr_flow::run_workspace(&root).report)),
        Some("race") => runs.push(("race", cbr_race::run_workspace(&root).report)),
        Some("bound") => runs.push(("bound", cbr_bound::run_workspace(&root).report)),
        Some("cplx") => runs.push(("cplx", cbr_cplx::run_workspace(&root).report)),
        Some("invariants") => runs.push(("invariants", cbr_audit::invariants::run())),
        Some("all") => {
            let pw = ParsedWorkspace::load(&root);
            runs.push(("lint", cbr_audit::run_lint_files(&root, &pw.ws.files)));
            runs.push(("flow", cbr_flow::run_parsed(&root, &pw).report));
            runs.push(("race", cbr_race::run_parsed(&root, &pw).report));
            runs.push(("bound", cbr_bound::run_parsed(&root, &pw).report));
            runs.push(("cplx", cbr_cplx::run_parsed(&root, &pw).report));
            runs.push(("invariants", cbr_audit::invariants::run()));
        }
        _ => {
            eprintln!("usage: cbr-audit <lint|flow|race|bound|cplx|invariants|all> [--json]");
            std::process::exit(cbr_audit::USAGE_BIT);
        }
    }

    let outcomes: Vec<(&str, bool)> = runs.iter().map(|(n, r)| (*n, r.ok())).collect();
    let mut report = Report::default();
    for (_, r) in runs {
        report.merge(r);
    }

    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    std::process::exit(cbr_audit::exit_code(&outcomes));
}
