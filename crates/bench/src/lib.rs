//! Shared scaffolding for the reproduction harness.
//!
//! The paper's evaluation (Section 6) runs over two MIMIC-II collections —
//! PATIENT (dense, clustered) and RADIO (sparse, dispersed) — linked to
//! SNOMED-CT, with 100 random queries per data point (5,000 random query
//! documents for the distance-calculation experiment). [`Workbench`]
//! rebuilds that setting over the synthetic substitutes at a configurable
//! [`Scale`], and the helpers below time workloads with the same
//! time-bucket split the paper plots (distance calculation, graph
//! traversal, index I/O).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod trajectory;

use cbr_corpus::{ConceptFilter, Corpus, CorpusGenerator, CorpusProfile, DocId, FilterConfig};
use cbr_index::MemorySource;
use cbr_knds::QueryMetrics;
use cbr_ontology::{ConceptId, GeneratorConfig, Ontology, OntologyGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Experiment sizing. The paper's full scale is expensive in wall-clock;
/// the default is a faithful reduction (collection shapes preserved, sizes
/// scaled) that completes a full reproduction run in minutes.
#[derive(Debug, Clone, PartialEq)]
pub struct Scale {
    /// Ontology size (paper: 296,433 SNOMED-CT concepts).
    pub ontology_concepts: usize,
    /// PATIENT collection: documents (paper: 983).
    pub patient_docs: usize,
    /// PATIENT collection: mean concepts/document (paper: 706.6).
    pub patient_concepts: f64,
    /// RADIO collection: documents (paper: 12,373).
    pub radio_docs: usize,
    /// RADIO collection: mean concepts/document (paper: 125.3).
    pub radio_concepts: f64,
    /// Queries per data point (paper: 100; 5,000 for Figure 6).
    pub queries_per_point: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Scale {
    /// The session-friendly default: ~1/6 of the paper on each axis.
    pub fn small() -> Scale {
        Scale {
            ontology_concepts: 20_000,
            patient_docs: 160,
            patient_concepts: 120.0,
            radio_docs: 2_000,
            radio_concepts: 40.0,
            queries_per_point: 12,
            seed: 0xBEEF,
        }
    }

    /// A micro scale for criterion benches and tests.
    pub fn micro() -> Scale {
        Scale {
            ontology_concepts: 4_000,
            patient_docs: 60,
            patient_concepts: 60.0,
            radio_docs: 400,
            radio_concepts: 20.0,
            queries_per_point: 5,
            seed: 0xBEEF,
        }
    }

    /// The paper's published sizes. Expect long runtimes — the paper's own
    /// baseline needed 104 s for a single PATIENT query on its hardware.
    pub fn paper() -> Scale {
        Scale {
            ontology_concepts: 296_433,
            patient_docs: 983,
            patient_concepts: 706.6,
            radio_docs: 12_373,
            radio_concepts: 125.3,
            queries_per_point: 100,
            seed: 0xBEEF,
        }
    }
}

/// One ready-to-query collection.
pub struct Collection {
    /// "PATIENT" or "RADIO".
    pub name: &'static str,
    /// The filtered corpus.
    pub corpus: Corpus,
    /// Resident indexes over it.
    pub source: MemorySource,
    /// The collection's default error threshold, chosen — as the paper
    /// chose its 0.5/0.9 — from the Figure 7 sensitivity analysis run *on
    /// this data*: 0.5 for both collections here (our traversal-vs-DRC
    /// cost ratio differs from the Java/MySQL prototype's; see
    /// EXPERIMENTS.md).
    pub default_eps: f64,
    /// Concepts eligible as query terms (depth-filtered, present in the
    /// corpus), the sampling pool for random queries.
    pub query_pool: Vec<ConceptId>,
    /// Per-document cohort labels from the generator (synthetic relevance
    /// judgments for the effectiveness report).
    pub cohorts: Vec<u32>,
    /// Statistics of the corpus *before* the Section 6.1 thresholds —
    /// what the paper's Table 3 describes.
    pub raw_stats: cbr_corpus::CorpusStats,
}

/// The full experimental setting: one ontology, two collections.
pub struct Workbench {
    /// The SNOMED-shaped ontology.
    pub ontology: Ontology,
    /// PATIENT and RADIO.
    pub collections: Vec<Collection>,
    /// The scale used.
    pub scale: Scale,
}

impl Workbench {
    /// Builds the setting: generate ontology + both corpora, apply the
    /// Section 6.1 filters, build indexes. Deterministic per scale.
    pub fn build(scale: Scale) -> Workbench {
        let ontology =
            OntologyGenerator::new(GeneratorConfig::snomed_like(scale.ontology_concepts))
                .generate();

        let mut collections = Vec::new();
        let profiles = [
            (
                "PATIENT",
                CorpusProfile::patient_like()
                    .with_num_docs(scale.patient_docs)
                    .with_mean_concepts(scale.patient_concepts),
                0.5,
            ),
            (
                "RADIO",
                CorpusProfile::radio_like()
                    .with_num_docs(scale.radio_docs)
                    .with_mean_concepts(scale.radio_concepts),
                0.5,
            ),
        ];
        for (name, profile, default_eps) in profiles {
            let (raw, cohorts) = CorpusGenerator::new(&ontology, profile).generate_with_cohorts();
            let raw_stats = cbr_corpus::CorpusStats::compute(&raw);
            let filter = ConceptFilter::build(&ontology, &raw, FilterConfig::default());
            let corpus = filter.apply(&raw);
            let source = MemorySource::build(&corpus, ontology.len());
            let mut pool: Vec<ConceptId> = Vec::new();
            let mut seen = cbr_ontology::FxHashSet::default();
            for d in corpus.documents() {
                for &c in d.concepts() {
                    if seen.insert(c) {
                        pool.push(c);
                    }
                }
            }
            pool.sort_unstable();
            collections.push(Collection {
                name,
                corpus,
                source,
                default_eps,
                query_pool: pool,
                cohorts,
                raw_stats,
            });
        }
        Workbench { ontology, collections, scale }
    }

    /// The named collection.
    pub fn collection(&self, name: &str) -> &Collection {
        self.collections
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("no collection named {name}"))
    }
}

impl Collection {
    /// `n` random RDS queries of `nq` concepts each, drawn from the query
    /// pool (Section 6.2: "randomly generated queries").
    pub fn rds_queries(&self, n: usize, nq: usize, seed: u64) -> Vec<Vec<ConceptId>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut q: Vec<ConceptId> = (0..nq)
                    .map(|_| self.query_pool[rng.random_range(0..self.query_pool.len())])
                    .collect();
                q.sort_unstable();
                q.dedup();
                q
            })
            .collect()
    }

    /// `n` random SDS query documents "randomly picked from the corpus"
    /// (Section 6.2), skipping empty ones.
    pub fn sds_queries(&self, n: usize, seed: u64) -> Vec<Vec<ConceptId>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let nonempty: Vec<DocId> =
            self.corpus.documents().filter(|d| d.num_concepts() > 0).map(|d| d.id()).collect();
        (0..n)
            .map(|_| {
                let d = nonempty[rng.random_range(0..nonempty.len())];
                self.corpus.get(d).concepts().to_vec()
            })
            .collect()
    }

    /// Random query documents of exactly `nq` concepts (the Figure 6
    /// workload: "5000 randomly generated query documents with nq concepts
    /// each").
    pub fn query_documents(&self, n: usize, nq: usize, seed: u64) -> Vec<Vec<ConceptId>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut q = cbr_ontology::FxHashSet::default();
                while q.len() < nq.min(self.query_pool.len()) {
                    q.insert(self.query_pool[rng.random_range(0..self.query_pool.len())]);
                }
                let mut v: Vec<ConceptId> = q.into_iter().collect();
                v.sort_unstable();
                v
            })
            .collect()
    }
}

/// Aggregated timings over a workload, split into the paper's buckets.
#[derive(Debug, Clone, Default)]
pub struct Timing {
    /// Mean total per query.
    pub total: Duration,
    /// Mean DRC / exact-distance time per query.
    pub distance_calc: Duration,
    /// Mean traversal time per query.
    pub traversal: Duration,
    /// Mean index-access time per query.
    pub io: Duration,
    /// Mean documents examined per query.
    pub docs_examined: f64,
    /// Mean DRC probes per query.
    pub drc_calls: f64,
    /// Mean fraction of examined documents that entered the top-k.
    pub examination_precision: f64,
    /// Median per-query total.
    pub p50: Duration,
    /// 95th-percentile per-query total.
    pub p95: Duration,
}

impl Timing {
    /// Averages per-query metrics.
    pub fn from_metrics(metrics: &[QueryMetrics], k: usize) -> Timing {
        let n = metrics.len().max(1) as u32;
        let mut acc = QueryMetrics::default();
        let mut precision = 0.0;
        let mut totals: Vec<Duration> = metrics.iter().map(|m| m.total()).collect();
        totals.sort_unstable();
        let pct = |q: f64| -> Duration {
            if totals.is_empty() {
                Duration::ZERO
            } else {
                totals[((totals.len() - 1) as f64 * q).round() as usize]
            }
        };
        let (p50, p95) = (pct(0.5), pct(0.95));
        for m in metrics {
            acc.accumulate(m);
            precision += m.examination_precision(k);
        }
        let docs_examined = acc.docs_examined as f64 / n as f64;
        let drc_calls = acc.drc_calls as f64 / n as f64;
        let avg = acc.averaged(n);
        Timing {
            total: avg.total(),
            distance_calc: avg.distance_calc,
            traversal: avg.traversal,
            io: avg.io,
            docs_examined,
            drc_calls,
            examination_precision: precision / n as f64,
            p50,
            p95,
        }
    }

    /// Milliseconds of the mean total (for table printing).
    pub fn ms(&self) -> f64 {
        self.total.as_secs_f64() * 1e3
    }
}

/// Fixed-width table printer for the repro reports.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with per-column alignment.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = width[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

/// Formats a duration as adaptive ms/µs text.
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us >= 10_000.0 {
        format!("{:.1} ms", us / 1e3)
    } else {
        format!("{us:.0} µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_workbench_builds() {
        let wb = Workbench::build(Scale::micro());
        assert_eq!(wb.collections.len(), 2);
        let patient = wb.collection("PATIENT");
        assert_eq!(patient.corpus.len(), 60);
        assert!(!patient.query_pool.is_empty());
        let radio = wb.collection("RADIO");
        assert_eq!(radio.corpus.len(), 400);
    }

    #[test]
    fn workloads_are_deterministic() {
        let wb = Workbench::build(Scale::micro());
        let c = wb.collection("RADIO");
        assert_eq!(c.rds_queries(3, 5, 1), c.rds_queries(3, 5, 1));
        assert_ne!(c.rds_queries(3, 5, 1), c.rds_queries(3, 5, 2));
        let qd = c.query_documents(2, 7, 3);
        assert!(qd.iter().all(|q| q.len() == 7));
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("long-name"));
        assert_eq!(r.lines().count(), 4);
    }

    #[test]
    fn fmt_duration_switches_units() {
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500 µs");
        assert_eq!(fmt_duration(Duration::from_millis(25)), "25.0 ms");
    }

    #[test]
    fn timing_aggregates() {
        let m = QueryMetrics {
            distance_calc: Duration::from_millis(4),
            drc_calls: 2,
            docs_examined: 10,
            ..Default::default()
        };
        let t = Timing::from_metrics(&[m.clone(), m], 5);
        assert_eq!(t.distance_calc, Duration::from_millis(4));
        assert_eq!(t.drc_calls, 2.0);
        assert_eq!(t.examination_precision, 0.5);
        assert_eq!(t.p50, Duration::from_millis(4));
        assert_eq!(t.p95, Duration::from_millis(4));
    }
}
