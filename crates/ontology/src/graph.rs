//! The concept DAG: a rooted `is-a` hierarchy in compressed sparse row form.
//!
//! Section 3.1 of the paper models an ontology as a labeled DAG
//! `G = {C, E}` with a single root, where every root-to-concept path is
//! encoded with a Dewey address. [`Ontology`] stores both edge directions in
//! CSR layout so the breadth-first expansions of kNDS (Section 5) and the
//! traversals of DRC (Section 4) touch contiguous memory.

use crate::dewey::PathTable;
use crate::error::{OntologyError, Result};
use crate::hash::FxHashMap;
use crate::id::ConceptId;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// A rooted concept DAG with string labels and precomputed depths.
///
/// Construction goes through [`OntologyBuilder`], which validates that the
/// graph is a single-rooted, connected DAG. The structure is immutable after
/// construction; per-concept data is indexed by [`ConceptId`].
#[derive(Debug)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Ontology {
    labels: Vec<String>,
    child_offsets: Vec<u32>,
    child_targets: Vec<ConceptId>,
    parent_offsets: Vec<u32>,
    parent_targets: Vec<ConceptId>,
    /// Parallel to `parent_targets`: the 1-based Dewey component of the
    /// concept under that parent, precomputed at build so the Dewey hot
    /// paths never scan a parent's child list for a position.
    parent_ordinals: Vec<u32>,
    /// Minimum number of edges from the root to each concept.
    depths: Vec<u32>,
    /// Concepts ordered so that every parent precedes all of its children.
    topo_order: Vec<ConceptId>,
    root: ConceptId,
    #[cfg_attr(feature = "serde", serde(skip))]
    label_index: OnceLock<FxHashMap<String, ConceptId>>,
    #[cfg_attr(feature = "serde", serde(skip))]
    path_table: OnceLock<PathTable>,
}

impl Ontology {
    /// Number of concepts in the ontology.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the ontology has no concepts (never true for built ontologies).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Exclusive upper bound on [`ConceptId::index`] values: ids are dense,
    /// so every concept's index is below `len()`. Dense per-concept tables
    /// (e.g. the kNDS workspace state tables) size themselves by this.
    #[inline]
    pub fn id_bound(&self) -> usize {
        self.labels.len()
    }

    /// The unique root concept.
    #[inline]
    pub fn root(&self) -> ConceptId {
        self.root
    }

    /// The children of `c`, in insertion order. The 1-based position of a
    /// child within this slice is its Dewey component under `c`.
    #[inline]
    pub fn children(&self, c: ConceptId) -> &[ConceptId] {
        let lo = self.child_offsets[c.index()] as usize;
        let hi = self.child_offsets[c.index() + 1] as usize;
        &self.child_targets[lo..hi]
    }

    /// The parents of `c`, in insertion order.
    #[inline]
    pub fn parents(&self, c: ConceptId) -> &[ConceptId] {
        let lo = self.parent_offsets[c.index()] as usize;
        let hi = self.parent_offsets[c.index() + 1] as usize;
        &self.parent_targets[lo..hi]
    }

    /// Whether `c` has no children.
    #[inline]
    pub fn is_leaf(&self, c: ConceptId) -> bool {
        self.children(c).is_empty()
    }

    /// Minimum depth of `c` (edges from the root; the root has depth 0).
    ///
    /// Section 6.1 uses this for the depth threshold that excludes overly
    /// generic concepts (default: depth < 4) from indexing and queries.
    #[inline]
    pub fn depth(&self, c: ConceptId) -> u32 {
        self.depths[c.index()]
    }

    /// The parents of `c` paired with `c`'s 1-based Dewey component under
    /// each — the precomputed form the Dewey address builder walks, one
    /// O(1) lookup per edge instead of a scan of the parent's child list.
    #[inline]
    pub fn parents_with_ordinals(
        &self,
        c: ConceptId,
    ) -> impl Iterator<Item = (ConceptId, u32)> + '_ {
        let lo = self.parent_offsets[c.index()] as usize;
        let hi = self.parent_offsets[c.index() + 1] as usize;
        let parents = self.parent_targets.get(lo..hi).unwrap_or(&[]);
        let ordinals = self.parent_ordinals.get(lo..hi).unwrap_or(&[]);
        parents.iter().copied().zip(ordinals.iter().copied())
    }

    /// The 1-based Dewey component of `child` under `parent`, or `None` if
    /// there is no such edge. Resolved from the per-edge ordinals computed
    /// at build time, so the cost is `O(parents(child))` — constant for
    /// tree-like regions — rather than a scan of `children(parent)`.
    pub fn child_ordinal(&self, parent: ConceptId, child: ConceptId) -> Option<u32> {
        self.parents_with_ordinals(child).find(|&(p, _)| p == parent).map(|(_, o)| o)
    }

    /// Resolves the 1-based Dewey component `ordinal` under `parent`.
    pub fn child_at(&self, parent: ConceptId, ordinal: u32) -> Option<ConceptId> {
        if ordinal == 0 {
            return None;
        }
        self.children(parent).get(ordinal as usize - 1).copied()
    }

    /// Human-readable label of `c`.
    #[inline]
    pub fn label(&self, c: ConceptId) -> &str {
        &self.labels[c.index()]
    }

    /// Looks a concept up by its exact label.
    pub fn concept_by_label(&self, label: &str) -> Option<ConceptId> {
        let idx = self.label_index.get_or_init(|| {
            self.labels
                .iter()
                .enumerate()
                .map(|(i, l)| (l.clone(), ConceptId::from_index(i)))
                .collect()
        });
        idx.get(label).copied()
    }

    /// Iterator over all concept ids.
    pub fn concepts(&self) -> impl Iterator<Item = ConceptId> + '_ {
        (0..self.len()).map(ConceptId::from_index)
    }

    /// Concepts in a topological order (every parent before its children).
    ///
    /// Both D-Radix tuning passes (Section 4.3) and path-count computations
    /// rely on this order.
    #[inline]
    pub fn topological_order(&self) -> &[ConceptId] {
        &self.topo_order
    }

    /// Corrupts one stored depth so validator tests can prove detection.
    /// Not part of the public API.
    #[doc(hidden)]
    pub fn corrupt_depth_for_tests(&mut self, concept: ConceptId) {
        if let Some(d) = self.depths.get_mut(concept.index()) {
            *d = d.saturating_add(1);
        }
    }

    /// Reverses the topological order so validator tests can prove
    /// detection. Not part of the public API.
    #[doc(hidden)]
    pub fn corrupt_topo_order_for_tests(&mut self) {
        self.topo_order.reverse();
    }

    /// Corrupts the first stored per-edge ordinal of `concept` so validator
    /// tests can prove detection. Not part of the public API.
    #[doc(hidden)]
    pub fn corrupt_parent_ordinal_for_tests(&mut self, concept: ConceptId) {
        let lo = self.parent_offsets[concept.index()] as usize;
        if let Some(o) = self.parent_ordinals.get_mut(lo) {
            *o = o.saturating_add(1);
        }
    }

    /// Total number of parent→child edges.
    pub fn num_edges(&self) -> usize {
        self.child_targets.len()
    }

    /// The lazily built table of Dewey addresses for every concept.
    ///
    /// Building is `O(Σ paths · depth)`; the result is cached for the
    /// lifetime of the ontology.
    // cplx: bound 1 — amortized: the lazy one-time PathTable build is paid at
    // first access and every later query-path call is a cached-field read
    pub fn path_table(&self) -> &PathTable {
        self.path_table.get_or_init(|| PathTable::build(self))
    }

    /// Resolves a Dewey address (sequence of 1-based child ordinals starting
    /// at the root) to a concept. An empty address resolves to the root.
    pub fn resolve_dewey(&self, components: &[u32]) -> Result<ConceptId> {
        let mut cur = self.root;
        for &comp in components {
            cur = self.child_at(cur, comp).ok_or_else(|| {
                OntologyError::BadDeweyAddress(
                    components.iter().map(|c| c.to_string()).collect::<Vec<_>>().join("."),
                )
            })?;
        }
        Ok(cur)
    }

    /// The number of distinct root-to-`c` paths for every concept, computed
    /// in one topological pass (`paths(root) = 1`, `paths(v) = Σ paths(u)`
    /// over parents `u`). Saturates at `u64::MAX`.
    pub fn path_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.len()];
        counts[self.root.index()] = 1;
        for &c in &self.topo_order {
            let mine = counts[c.index()];
            for &child in self.children(c) {
                counts[child.index()] = counts[child.index()].saturating_add(mine);
            }
        }
        counts
    }
}

/// Incremental builder for [`Ontology`].
///
/// ```
/// use cbr_ontology::OntologyBuilder;
///
/// let mut b = OntologyBuilder::new();
/// let root = b.add_concept("clinical finding");
/// let heart = b.add_concept("cardiac finding");
/// b.add_edge(root, heart).unwrap();
/// let ont = b.build().unwrap();
/// assert_eq!(ont.root(), root);
/// assert_eq!(ont.children(root), &[heart]);
/// ```
#[derive(Debug, Default)]
pub struct OntologyBuilder {
    labels: Vec<String>,
    edges: Vec<(ConceptId, ConceptId)>,
}

impl OntologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a concept and returns its dense id.
    pub fn add_concept(&mut self, label: impl Into<String>) -> ConceptId {
        let id = ConceptId::from_index(self.labels.len());
        self.labels.push(label.into());
        id
    }

    /// Number of concepts added so far.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether no concepts have been added.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Declares an `is-a` edge from `parent` to `child`.
    ///
    /// The insertion order of a parent's edges determines its children's
    /// Dewey component numbers, so builders that need reproducible addresses
    /// must add edges deterministically.
    pub fn add_edge(&mut self, parent: ConceptId, child: ConceptId) -> Result<()> {
        if parent.index() >= self.labels.len() {
            return Err(OntologyError::UnknownConcept(parent));
        }
        if child.index() >= self.labels.len() {
            return Err(OntologyError::UnknownConcept(child));
        }
        self.edges.push((parent, child));
        Ok(())
    }

    /// Validates and freezes the graph.
    ///
    /// Checks performed:
    /// * at least one concept exists;
    /// * no duplicate edges;
    /// * exactly one parentless node (the root);
    /// * the graph is acyclic (Kahn's algorithm);
    /// * every concept is reachable from the root.
    pub fn build(self) -> Result<Ontology> {
        let n = self.labels.len();
        if n == 0 {
            return Err(OntologyError::Empty);
        }

        // Duplicate-edge check.
        let mut seen: crate::hash::FxHashSet<(ConceptId, ConceptId)> =
            crate::hash::FxHashSet::default();
        for &(p, c) in &self.edges {
            if !seen.insert((p, c)) {
                return Err(OntologyError::DuplicateEdge(p, c));
            }
        }

        // CSR for children.
        let mut child_counts = vec![0u32; n];
        let mut parent_counts = vec![0u32; n];
        for &(p, c) in &self.edges {
            child_counts[p.index()] += 1;
            parent_counts[c.index()] += 1;
        }
        let child_offsets = prefix_sum(&child_counts);
        let parent_offsets = prefix_sum(&parent_counts);
        let mut child_targets = vec![ConceptId(0); self.edges.len()];
        let mut parent_targets = vec![ConceptId(0); self.edges.len()];
        let mut parent_ordinals = vec![0u32; self.edges.len()];
        let mut child_fill = child_offsets.clone();
        let mut parent_fill = parent_offsets.clone();
        for &(p, c) in &self.edges {
            // 1-based position of `c` in `p`'s child list — `c`'s Dewey
            // component under `p`, recorded on the reverse edge.
            let ordinal = child_fill[p.index()] - child_offsets[p.index()] + 1;
            child_targets[child_fill[p.index()] as usize] = c;
            child_fill[p.index()] += 1;
            parent_targets[parent_fill[c.index()] as usize] = p;
            parent_ordinals[parent_fill[c.index()] as usize] = ordinal;
            parent_fill[c.index()] += 1;
        }

        // Root detection.
        let roots: Vec<ConceptId> =
            (0..n).filter(|&i| parent_counts[i] == 0).map(ConceptId::from_index).collect();
        let root = match roots.as_slice() {
            [] => return Err(OntologyError::CycleDetected),
            [r] => *r,
            _ => return Err(OntologyError::MultipleRoots(roots)),
        };

        // Kahn topological sort (also proves acyclicity).
        let mut indegree = parent_counts.clone();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(root);
        let mut topo_order = Vec::with_capacity(n);
        while let Some(c) = queue.pop_front() {
            topo_order.push(c);
            let lo = child_offsets[c.index()] as usize;
            let hi = child_offsets[c.index() + 1] as usize;
            for &child in &child_targets[lo..hi] {
                indegree[child.index()] -= 1;
                if indegree[child.index()] == 0 {
                    queue.push_back(child);
                }
            }
        }
        if topo_order.len() != n {
            // Either a cycle or nodes unreachable from the root. Distinguish
            // by checking whether any unprocessed node still has indegree 0
            // ancestors — simplest correct report: if every unprocessed node
            // has positive indegree the remainder contains a cycle.
            let unprocessed: Vec<usize> =
                (0..n).filter(|&i| indegree[i] > 0 || !topo_done(&topo_order, i)).collect();
            let any_cycle = unprocessed.iter().all(|&i| indegree[i] > 0);
            if any_cycle && !unprocessed.is_empty() {
                return Err(OntologyError::CycleDetected);
            }
            return Err(OntologyError::Disconnected { unreachable: n - topo_order.len() });
        }

        // Min depths by processing in topological order.
        let mut depths = vec![u32::MAX; n];
        depths[root.index()] = 0;
        for &c in &topo_order {
            let d = depths[c.index()];
            debug_assert_ne!(d, u32::MAX, "topo order visits reachable nodes only");
            let lo = child_offsets[c.index()] as usize;
            let hi = child_offsets[c.index() + 1] as usize;
            for &child in &child_targets[lo..hi] {
                depths[child.index()] = depths[child.index()].min(d + 1);
            }
        }

        let ontology = Ontology {
            labels: self.labels,
            child_offsets,
            child_targets,
            parent_offsets,
            parent_targets,
            parent_ordinals,
            depths,
            topo_order,
            root,
            label_index: OnceLock::new(),
            path_table: OnceLock::new(),
        };
        #[cfg(debug_assertions)]
        {
            let checked = ontology.validate();
            debug_assert!(checked.is_ok(), "ontology structural invariant violated: {checked:?}");
        }
        Ok(ontology)
    }
}

fn prefix_sum(counts: &[u32]) -> Vec<u32> {
    let mut offsets = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0u32;
    offsets.push(0);
    for &c in counts {
        acc += c;
        offsets.push(acc);
    }
    offsets
}

fn topo_done(order: &[ConceptId], idx: usize) -> bool {
    order.iter().any(|c| c.index() == idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Ontology {
        // root -> a, b; a -> leaf; b -> leaf (classic DAG diamond).
        let mut b = OntologyBuilder::new();
        let root = b.add_concept("root");
        let a = b.add_concept("a");
        let bb = b.add_concept("b");
        let leaf = b.add_concept("leaf");
        b.add_edge(root, a).unwrap();
        b.add_edge(root, bb).unwrap();
        b.add_edge(a, leaf).unwrap();
        b.add_edge(bb, leaf).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_diamond() {
        let ont = diamond();
        assert_eq!(ont.len(), 4);
        assert_eq!(ont.num_edges(), 4);
        assert_eq!(ont.root(), ConceptId(0));
        assert_eq!(ont.children(ConceptId(0)), &[ConceptId(1), ConceptId(2)]);
        assert_eq!(ont.parents(ConceptId(3)), &[ConceptId(1), ConceptId(2)]);
        assert!(ont.is_leaf(ConceptId(3)));
        assert!(!ont.is_leaf(ConceptId(0)));
    }

    #[test]
    fn depths_are_minimal() {
        let ont = diamond();
        assert_eq!(ont.depth(ConceptId(0)), 0);
        assert_eq!(ont.depth(ConceptId(1)), 1);
        assert_eq!(ont.depth(ConceptId(3)), 2);
    }

    #[test]
    fn child_ordinals_are_one_based_insertion_order() {
        let ont = diamond();
        assert_eq!(ont.child_ordinal(ConceptId(0), ConceptId(1)), Some(1));
        assert_eq!(ont.child_ordinal(ConceptId(0), ConceptId(2)), Some(2));
        assert_eq!(ont.child_ordinal(ConceptId(0), ConceptId(3)), None);
        assert_eq!(ont.child_at(ConceptId(0), 2), Some(ConceptId(2)));
        assert_eq!(ont.child_at(ConceptId(0), 0), None);
        assert_eq!(ont.child_at(ConceptId(0), 3), None);
    }

    #[test]
    fn parent_ordinals_mirror_child_positions() {
        let ont = diamond();
        // leaf is child #1 of both a and b.
        let got: Vec<(ConceptId, u32)> = ont.parents_with_ordinals(ConceptId(3)).collect();
        assert_eq!(got, vec![(ConceptId(1), 1), (ConceptId(2), 1)]);
        // Exhaustive cross-check against the child lists.
        for c in ont.concepts() {
            for (p, o) in ont.parents_with_ordinals(c) {
                assert_eq!(ont.child_at(p, o), Some(c), "ordinal of {c:?} under {p:?}");
            }
            assert_eq!(ont.parents_with_ordinals(c).count(), ont.parents(c).len());
        }
    }

    #[test]
    fn id_bound_covers_every_concept() {
        let ont = diamond();
        assert_eq!(ont.id_bound(), ont.len());
        assert!(ont.concepts().all(|c| c.index() < ont.id_bound()));
    }

    #[test]
    fn resolves_dewey_addresses() {
        let ont = diamond();
        assert_eq!(ont.resolve_dewey(&[]).unwrap(), ConceptId(0));
        assert_eq!(ont.resolve_dewey(&[1, 1]).unwrap(), ConceptId(3));
        assert_eq!(ont.resolve_dewey(&[2, 1]).unwrap(), ConceptId(3));
        assert!(ont.resolve_dewey(&[9]).is_err());
    }

    #[test]
    fn path_counts_multiply_through_diamond() {
        let ont = diamond();
        assert_eq!(ont.path_counts(), vec![1, 1, 1, 2]);
    }

    #[test]
    fn label_lookup_works() {
        let ont = diamond();
        assert_eq!(ont.concept_by_label("leaf"), Some(ConceptId(3)));
        assert_eq!(ont.concept_by_label("nope"), None);
        assert_eq!(ont.label(ConceptId(1)), "a");
    }

    #[test]
    fn rejects_cycle() {
        let mut b = OntologyBuilder::new();
        let root = b.add_concept("root");
        let x = b.add_concept("x");
        let y = b.add_concept("y");
        b.add_edge(root, x).unwrap();
        b.add_edge(x, y).unwrap();
        b.add_edge(y, x).unwrap();
        // x and y form a cycle; both have parents so root is unique.
        assert!(matches!(
            b.build(),
            Err(OntologyError::CycleDetected) | Err(OntologyError::Disconnected { .. })
        ));
    }

    #[test]
    fn rejects_multiple_roots() {
        let mut b = OntologyBuilder::new();
        let r1 = b.add_concept("r1");
        let r2 = b.add_concept("r2");
        let c = b.add_concept("c");
        b.add_edge(r1, c).unwrap();
        let _ = r2;
        assert!(matches!(b.build(), Err(OntologyError::MultipleRoots(_))));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut b = OntologyBuilder::new();
        let r = b.add_concept("r");
        let c = b.add_concept("c");
        b.add_edge(r, c).unwrap();
        b.add_edge(r, c).unwrap();
        assert_eq!(b.build().unwrap_err(), OntologyError::DuplicateEdge(r, c));
    }

    #[test]
    fn rejects_empty_and_unknown() {
        assert_eq!(OntologyBuilder::new().build().unwrap_err(), OntologyError::Empty);
        let mut b = OntologyBuilder::new();
        let r = b.add_concept("r");
        assert!(b.add_edge(r, ConceptId(5)).is_err());
        assert!(b.add_edge(ConceptId(5), r).is_err());
    }

    #[test]
    fn topological_order_respects_edges() {
        let ont = diamond();
        let pos: Vec<usize> = (0..4)
            .map(|i| ont.topological_order().iter().position(|c| c.index() == i).unwrap())
            .collect();
        assert!(pos[0] < pos[1]);
        assert!(pos[0] < pos[2]);
        assert!(pos[1] < pos[3]);
        assert!(pos[2] < pos[3]);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_roundtrip_preserves_structure() {
        let ont = diamond();
        let json = serde_json_roundtrip(&ont);
        assert_eq!(json.len(), ont.len());
        assert_eq!(json.root(), ont.root());
        assert_eq!(json.children(ont.root()), ont.children(ont.root()));
        // Skipped caches rebuild lazily.
        assert_eq!(json.concept_by_label("leaf"), Some(ConceptId(3)));
    }

    #[cfg(feature = "serde")]
    fn serde_json_roundtrip(ont: &Ontology) -> Ontology {
        // Round-trip through the crate's own binary codec (`crate::ser`),
        // the same codec used by the snapshot files in `cbr-index`.
        let bytes = crate::ser::to_tokens(ont).expect("serialize");
        crate::ser::from_tokens(&bytes).expect("deserialize")
    }
}
