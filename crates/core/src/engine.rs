//! The high-level query engine: the mutable writer half of the
//! snapshot/session split (the read half is
//! [`EngineSnapshot`](crate::snapshot::EngineSnapshot)).

use crate::snapshot::EngineSnapshot;
use cbr_corpus::{ConceptFilter, Corpus, DocId, FilterConfig};
use cbr_index::{CompactionPolicy, SegmentedSource};
use cbr_knds::{KndsConfig, KndsWorkspace, QueryResult};
use cbr_ontology::{ConceptId, Ontology};
use sched::sync::Arc;
use std::fmt;

/// Errors surfaced by the [`Engine`]'s checked API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A label did not resolve to any ontology concept.
    UnknownLabel(String),
    /// A document id outside the collection.
    UnknownDocument(DocId),
    /// The query became empty (input empty, or every concept was removed by
    /// the eligibility filter).
    EmptyQuery,
    /// The referenced document has no eligible concepts to compare with.
    EmptyDocument(DocId),
    /// A batch worker panicked while evaluating this query; the payload is
    /// the panic message when one could be extracted.
    WorkerPanicked(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownLabel(l) => write!(f, "no concept labeled {l:?}"),
            EngineError::UnknownDocument(d) => write!(f, "document {d} is not in the collection"),
            EngineError::EmptyQuery => {
                write!(f, "query is empty after concept-eligibility filtering")
            }
            EngineError::EmptyDocument(d) => write!(f, "document {d} has no eligible concepts"),
            EngineError::WorkerPanicked(m) => write!(f, "batch worker panicked: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Builder for [`Engine`].
#[derive(Debug, Clone, Default)]
pub struct EngineBuilder {
    knds: KndsConfig,
    filter: Option<FilterConfig>,
}

impl EngineBuilder {
    /// Starts a builder with default kNDS settings and **no** concept
    /// filtering.
    pub fn new() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Sets the kNDS configuration (error threshold, queue watermark, …).
    pub fn knds_config(mut self, config: KndsConfig) -> Self {
        self.knds = config;
        self
    }

    /// Enables the Section 6.1 concept-eligibility filter (depth and
    /// collection-frequency thresholds) with the given configuration.
    pub fn filter(mut self, config: FilterConfig) -> Self {
        self.filter = Some(config);
        self
    }

    /// Builds the engine: applies the filter to the corpus, wraps the
    /// result as the base segment of a [`SegmentedSource`], and derives
    /// the first published [`EngineSnapshot`].
    pub fn build(self, ontology: Ontology, corpus: Corpus) -> Engine {
        let filter = match self.filter {
            Some(cfg) => ConceptFilter::build(&ontology, &corpus, cfg),
            None => ConceptFilter::accept_all(&ontology),
        };
        let filtered = filter.apply(&corpus);
        let mut writer = SegmentedSource::from_corpus(&filtered, CompactionPolicy::default());
        let snapshot = EngineSnapshot::assemble(
            Arc::new(ontology),
            Arc::new(filtered),
            Arc::new(filter),
            writer.view(),
            self.knds,
        );
        Engine { writer, snapshot }
    }
}

/// The mutable half of the engine: owns the segmented index writer
/// (memtable, tombstones, compaction) and a cached [`EngineSnapshot`]
/// re-derived after every mutation.
///
/// Every read — here or through a clone of the snapshot — runs against an
/// immutable snapshot and never holds any lock; appends and deletes take
/// `&mut self` and refresh the cached snapshot in `O(memtable)` at most.
/// [`SharedEngine`](crate::SharedEngine) wraps this split for concurrent
/// serving: one writer behind a mutex, snapshots epoch-published to any
/// number of lock-free readers.
#[derive(Debug)]
pub struct Engine {
    writer: SegmentedSource,
    snapshot: EngineSnapshot,
}

impl Engine {
    /// Starts building an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// The current snapshot: clone it to pin this epoch for lock-free
    /// querying while the engine keeps mutating (cloning costs a few
    /// `Arc` bumps).
    pub fn snapshot(&self) -> &EngineSnapshot {
        &self.snapshot
    }

    /// Re-derives the cached snapshot after a mutation.
    fn refresh(&mut self) {
        self.snapshot.set_source(self.writer.view());
    }

    /// The ontology.
    pub fn ontology(&self) -> &Ontology {
        self.snapshot.ontology()
    }

    /// The (filtered) bulk-loaded corpus. Appended documents are not part
    /// of this view; read them with [`Engine::document_concepts`].
    pub fn corpus(&self) -> &Corpus {
        self.snapshot.corpus()
    }

    /// The active kNDS configuration.
    pub fn config(&self) -> &KndsConfig {
        self.snapshot.config()
    }

    /// Replaces the kNDS configuration (e.g. to tune `εθ` per collection).
    pub fn set_config(&mut self, config: KndsConfig) {
        self.snapshot.set_config(config);
    }

    /// Whether concept `c` survives the eligibility filter.
    pub fn eligible(&self, c: ConceptId) -> bool {
        self.snapshot.eligible(c)
    }

    /// Total documents (bulk + appended).
    pub fn num_docs(&self) -> usize {
        self.snapshot.num_docs()
    }

    /// Sizing hint for [`KndsWorkspace::reserve`]; see
    /// [`EngineSnapshot::workspace_hint`].
    pub fn workspace_hint(&self) -> (usize, usize) {
        self.snapshot.workspace_hint()
    }

    /// The concept set of any document, including appended ones.
    pub fn document_concepts(&self, doc: DocId) -> Result<Vec<ConceptId>, EngineError> {
        self.snapshot.document_concepts(doc)
    }

    /// Appends a document on the fly (the Section 1 "new patient at the
    /// point-of-care" scenario): its concepts are filtered for
    /// eligibility, normalized, and appended to the segmented memtable —
    /// visible to the next snapshot immediately, with no rebuild.
    pub fn add_document(&mut self, concepts: Vec<ConceptId>) -> DocId {
        let kept = concepts.into_iter().filter(|&c| self.snapshot.eligible(c)).collect();
        let id = self.writer.append(kept);
        self.refresh();
        id
    }

    /// Deletes a document (tombstone): ids stay stable, but the document
    /// disappears from postings and query results immediately. Compaction
    /// later drops the payload physically; the id stays dead.
    pub fn remove_document(&mut self, doc: DocId) -> Result<(), EngineError> {
        if self.writer.delete(doc) {
            self.refresh();
            Ok(())
        } else {
            Err(EngineError::UnknownDocument(doc))
        }
    }

    /// Seals the memtable and merges every segment into one, physically
    /// dropping tombstoned documents (their ids stay allocated and dead).
    /// Returns whether a merge ran. Queries racing this see either the
    /// old or the new snapshot, never a mixture.
    pub fn compact(&mut self) -> bool {
        self.writer.seal();
        let merged = self.writer.compact_all();
        self.refresh();
        merged
    }

    /// Runs the segment compaction policy once (seal nothing, merge a
    /// trailing run of small segments if one is due). Returns whether a
    /// merge ran.
    pub fn maybe_compact(&mut self) -> bool {
        let merged = self.writer.maybe_compact();
        if merged {
            self.refresh();
        }
        merged
    }

    /// Segments behind the current snapshot (diagnostics for benches and
    /// the compaction harnesses).
    pub fn num_segments(&self) -> usize {
        self.snapshot.source().num_segments()
    }

    /// Whether `doc` is live (exists and was not deleted).
    pub fn is_live(&self, doc: DocId) -> bool {
        self.snapshot.is_live(doc)
    }

    /// Resolves labels to concepts, failing on the first unknown label.
    pub fn concepts_by_labels(&self, labels: &[&str]) -> Result<Vec<ConceptId>, EngineError> {
        self.snapshot.concepts_by_labels(labels)
    }

    /// RDS (Definition 1); see [`EngineSnapshot::rds`].
    pub fn rds(&self, query: &[ConceptId], k: usize) -> Result<QueryResult, EngineError> {
        self.snapshot.rds(query, k)
    }

    /// RDS over a caller-owned workspace; see [`EngineSnapshot::rds_with`].
    pub fn rds_with(
        &self,
        ws: &mut KndsWorkspace,
        query: &[ConceptId],
        k: usize,
    ) -> Result<QueryResult, EngineError> {
        self.snapshot.rds_with(ws, query, k)
    }

    /// RDS with label-based input.
    pub fn rds_by_labels(&self, labels: &[&str], k: usize) -> Result<QueryResult, EngineError> {
        self.snapshot.rds_by_labels(labels, k)
    }

    /// SDS (Definition 2); see [`EngineSnapshot::sds`].
    pub fn sds(&self, query_doc: &[ConceptId], k: usize) -> Result<QueryResult, EngineError> {
        self.snapshot.sds(query_doc, k)
    }

    /// SDS over a caller-owned workspace; see [`EngineSnapshot::sds_with`].
    pub fn sds_with(
        &self,
        ws: &mut KndsWorkspace,
        query_doc: &[ConceptId],
        k: usize,
    ) -> Result<QueryResult, EngineError> {
        self.snapshot.sds_with(ws, query_doc, k)
    }

    /// SDS with a collection document as the query (patient-similarity).
    pub fn sds_by_doc(&self, doc: DocId, k: usize) -> Result<QueryResult, EngineError> {
        self.snapshot.sds_by_doc(doc, k)
    }

    /// [`Engine::sds_by_doc`] over a caller-owned workspace.
    pub fn sds_by_doc_with(
        &self,
        ws: &mut KndsWorkspace,
        doc: DocId,
        k: usize,
    ) -> Result<QueryResult, EngineError> {
        self.snapshot.sds_by_doc_with(ws, doc, k)
    }

    /// Exact `Ddq` between one document and a query (Equation 2).
    pub fn query_distance(&self, doc: DocId, query: &[ConceptId]) -> Result<f64, EngineError> {
        self.snapshot.query_distance(doc, query)
    }

    /// Exact symmetric `Ddd` between two documents (Equation 3).
    pub fn document_distance(&self, a: DocId, b: DocId) -> Result<f64, EngineError> {
        self.snapshot.document_distance(a, b)
    }

    /// Auto-tunes the error threshold `εθ` for this collection by timing a
    /// sample workload at each candidate (the Figure 7 procedure,
    /// automated). Updates the engine's configuration and returns the
    /// chosen threshold. Results are exact under any threshold, so tuning
    /// is safe at any time.
    pub fn auto_tune(
        &mut self,
        kind: cbr_knds::TuneFor,
        sample: &[Vec<ConceptId>],
        k: usize,
    ) -> Result<f64, EngineError> {
        let filtered: Vec<Vec<ConceptId>> =
            sample.iter().map(|q| self.snapshot.eligible_query(q)).collect::<Result<_, _>>()?;
        let (best, _) = cbr_knds::tune_error_threshold(
            self.snapshot.ontology(),
            self.snapshot.source(),
            kind,
            &filtered,
            k,
            cbr_knds::tuner::DEFAULT_CANDIDATES,
            self.snapshot.config(),
        );
        let mut config = self.snapshot.config().clone();
        config.error_threshold = best;
        self.snapshot.set_config(config);
        Ok(best)
    }

    /// Exhaustive (no-pruning) RDS — exposed for benchmarking and
    /// verification against [`Engine::rds`].
    pub fn rds_full_scan(&self, query: &[ConceptId], k: usize) -> Result<QueryResult, EngineError> {
        self.snapshot.rds_full_scan(query, k)
    }

    /// Exhaustive (no-pruning) SDS.
    pub fn sds_full_scan(
        &self,
        query_doc: &[ConceptId],
        k: usize,
    ) -> Result<QueryResult, EngineError> {
        self.snapshot.sds_full_scan(query_doc, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbr_corpus::{CorpusGenerator, CorpusProfile};
    use cbr_ontology::{GeneratorConfig, OntologyGenerator};

    fn engine() -> Engine {
        let ont = OntologyGenerator::new(GeneratorConfig::small(1_000)).generate();
        let corpus = CorpusGenerator::new(
            &ont,
            CorpusProfile::radio_like().with_num_docs(40).with_mean_concepts(10.0),
        )
        .generate();
        EngineBuilder::new().filter(FilterConfig::default()).build(ont, corpus)
    }

    fn some_query(e: &Engine, n: usize) -> Vec<ConceptId> {
        e.corpus()
            .documents()
            .flat_map(|d| d.concepts().iter().copied())
            .filter(|&c| e.eligible(c))
            .take(n)
            .collect()
    }

    #[test]
    fn rds_and_full_scan_agree() {
        let e = engine();
        let q = some_query(&e, 3);
        let fast = e.rds(&q, 5).unwrap();
        let slow = e.rds_full_scan(&q, 5).unwrap();
        for (a, b) in fast.results.iter().zip(slow.results.iter()) {
            assert_eq!(a.distance, b.distance);
        }
    }

    #[test]
    fn sds_and_full_scan_agree() {
        let e = engine();
        let q = some_query(&e, 3);
        let fast = e.sds(&q, 5).unwrap();
        let slow = e.sds_full_scan(&q, 5).unwrap();
        for (a, b) in fast.results.iter().zip(slow.results.iter()) {
            assert_eq!(a.distance, b.distance);
        }
    }

    #[test]
    fn workspace_queries_match_and_report_reuse() {
        let e = engine();
        let q = some_query(&e, 3);
        let mut ws = KndsWorkspace::new();
        let cold = e.rds_with(&mut ws, &q, 5).unwrap();
        assert_eq!(cold.metrics.workspace_reused, 0, "first borrow is cold");
        let warm = e.rds_with(&mut ws, &q, 5).unwrap();
        assert_eq!(warm.metrics.workspace_reused, 1, "second borrow is warm");
        assert_eq!(cold.results, warm.results);
        assert_eq!(e.rds(&q, 5).unwrap().results, warm.results);
        // SDS interleaves on the same workspace.
        let a = e.sds_with(&mut ws, &q, 4).unwrap();
        let b = e.sds(&q, 4).unwrap();
        assert_eq!(a.results, b.results);
    }

    #[test]
    fn sds_by_doc_returns_self_first() {
        let e = engine();
        let doc = e
            .corpus()
            .documents()
            .find(|d| d.num_concepts() > 0)
            .map(|d| d.id())
            .expect("non-empty doc exists");
        let r = e.sds_by_doc(doc, 3).unwrap();
        assert_eq!(r.results[0].doc, doc);
        assert_eq!(r.results[0].distance, 0.0);
    }

    #[test]
    fn filters_are_applied_to_queries() {
        let e = engine();
        let root = e.ontology().root();
        assert!(!e.eligible(root), "root is filtered by depth");
        assert_eq!(e.rds(&[root], 3).unwrap_err(), EngineError::EmptyQuery);
        // Mixed query: ineligible concepts are dropped, not fatal.
        let mut q = some_query(&e, 2);
        q.push(root);
        assert!(e.rds(&q, 3).is_ok());
    }

    #[test]
    fn add_document_is_immediately_searchable() {
        let mut e = engine();
        // Pick a concept pair that co-occurs in no existing document, so
        // the appended document is the unique exact match.
        let eligible: Vec<ConceptId> = e
            .corpus()
            .documents()
            .flat_map(|d| d.concepts().iter().copied())
            .filter(|&c| e.eligible(c))
            .collect();
        let q = 'outer: {
            for (i, &a) in eligible.iter().enumerate() {
                for &b in &eligible[i + 1..] {
                    if a != b && !e.corpus().documents().any(|d| d.contains(a) && d.contains(b)) {
                        break 'outer vec![a, b];
                    }
                }
            }
            panic!("fixture needs a non-co-occurring pair");
        };
        let before = e.num_docs();
        let id = e.add_document(q.clone());
        assert_eq!(id.index(), before);
        // The appended doc contains the query concepts exactly -> distance 0,
        // and no other document can reach 0.
        let r = e.rds(&q, 1).unwrap();
        assert_eq!(r.results[0].doc, id);
        assert_eq!(r.results[0].distance, 0.0);
        // And it participates in SDS (it may tie with a superset document,
        // but only at distance zero).
        let r = e.sds_by_doc(id, 1).unwrap();
        assert_eq!(r.results[0].distance, 0.0);
    }

    #[test]
    fn auto_tune_picks_a_grid_threshold_and_updates_config() {
        let mut e = engine();
        let sample: Vec<Vec<ConceptId>> = (0..3).map(|_| some_query(&e, 2)).collect();
        let best = e.auto_tune(cbr_knds::TuneFor::Rds, &sample, 5).unwrap();
        assert!(cbr_knds::tuner::DEFAULT_CANDIDATES.contains(&best));
        assert_eq!(e.config().error_threshold, best);
        // Queries still work and stay exact.
        let q = some_query(&e, 2);
        let a = e.rds(&q, 4).unwrap();
        let b = e.rds_full_scan(&q, 4).unwrap();
        for (x, y) in a.results.iter().zip(b.results.iter()) {
            assert_eq!(x.distance, y.distance);
        }
    }

    #[test]
    fn removed_documents_leave_results() {
        let mut e = engine();
        let q = some_query(&e, 2);
        let before = e.rds(&q, 3).unwrap();
        let victim = before.results[0].doc;
        assert!(e.is_live(victim));
        e.remove_document(victim).unwrap();
        assert!(!e.is_live(victim));
        // Double delete errors.
        assert!(matches!(e.remove_document(victim), Err(EngineError::UnknownDocument(_))));
        let after = e.rds(&q, 3).unwrap();
        assert!(after.results.iter().all(|r| r.doc != victim), "deleted document must not rank");
        // And the full scan agrees.
        let scan = e.rds_full_scan(&q, 3).unwrap();
        for (a, b) in after.results.iter().zip(scan.results.iter()) {
            assert_eq!(a.distance, b.distance);
        }
    }

    #[test]
    fn errors_are_reported() {
        let e = engine();
        assert!(matches!(
            e.rds_by_labels(&["not a real label"], 1),
            Err(EngineError::UnknownLabel(_))
        ));
        assert!(matches!(e.sds_by_doc(DocId(9_999), 1), Err(EngineError::UnknownDocument(_))));
        assert_eq!(e.rds(&[], 1).unwrap_err(), EngineError::EmptyQuery);
    }

    #[test]
    fn pairwise_distances_are_consistent_with_search() {
        let e = engine();
        let q = some_query(&e, 3);
        let r = e.rds(&q, 3).unwrap();
        for hit in &r.results {
            let d = e.query_distance(hit.doc, &q).unwrap();
            assert_eq!(d, hit.distance);
        }
    }

    #[test]
    fn document_distance_is_symmetric() {
        let e = engine();
        let docs: Vec<DocId> = e
            .corpus()
            .documents()
            .filter(|d| d.num_concepts() > 0)
            .map(|d| d.id())
            .take(2)
            .collect();
        let ab = e.document_distance(docs[0], docs[1]).unwrap();
        let ba = e.document_distance(docs[1], docs[0]).unwrap();
        assert!((ab - ba).abs() < 1e-12);
    }
}
