//! Structured search traces — the paper's Table 2, as a feature.
//!
//! Table 2 of the paper walks through kNDS state (the queue `Ec`, the
//! candidate list `Ld`, the heap `Hk`, the bounds `D⁻`/`D⁺ₖ`) iteration by
//! iteration. [`TraceEvent`] streams the same information from a live
//! search, for debugging, teaching, and the `algorithm_trace` example.

use cbr_corpus::DocId;

/// One step of a kNDS search. Events arrive in execution order.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A breadth-first level (or Dijkstra bucket) begins.
    LevelStart {
        /// Distance of the states about to be processed.
        level: u32,
        /// Number of states in the frontier.
        frontier: usize,
    },
    /// A document's candidate entry was updated by coverage
    /// (the `Md`/`M'd` bookkeeping of Equations 5/7). Emitted at most once
    /// per document per level to bound volume.
    Candidate {
        /// The document.
        doc: DocId,
        /// Query concepts covered so far.
        covered: u32,
        /// Current partial distance (Equation 5/7 numerator state).
        partial: u64,
    },
    /// A document was examined: its exact distance was determined.
    Examined {
        /// The document.
        doc: DocId,
        /// Its lower bound at examination time (Equation 6/8).
        lower_bound: f64,
        /// Its error estimate (Equation 9).
        error: f64,
        /// The exact distance.
        exact: f64,
        /// Whether a DRC probe was needed (`false` = finalized from
        /// complete partial information, Section 5.3 optimization 3).
        via_drc: bool,
    },
    /// The examination loop stopped for this level.
    ExamineBreak {
        /// Smallest lower bound left unexamined (`D⁻` candidate part).
        min_unexamined: f64,
        /// Current k-th distance (`D⁺ₖ`).
        threshold: f64,
    },
    /// The search terminated early: `D⁻ ≥ D⁺ₖ`.
    Terminated {
        /// Level at which termination fired.
        level: u32,
        /// The final `D⁻`.
        d_minus: f64,
        /// The final `D⁺ₖ`.
        threshold: f64,
    },
    /// The expansion exhausted the reachable ontology; remaining candidates
    /// were finalized from their (now exact) partial distances.
    Exhausted {
        /// Number of candidates finalized in the drain.
        finalized: usize,
    },
}

/// A sink receiving [`TraceEvent`]s.
pub type TraceSink<'a> = Box<dyn FnMut(TraceEvent) + 'a>;
