//! kNDS tuning knobs.

/// Configuration of the kNDS engine.
#[derive(Debug, Clone, PartialEq)]
pub struct KndsConfig {
    /// The distance error threshold `εθ` of Equation 9, in `[0, 1]`.
    ///
    /// `0` makes the engine wait until a document's partial distance equals
    /// its lower bound (typically: all query nodes covered) before probing
    /// DRC; `1` probes DRC the first time any concept of the document is
    /// reached. The paper's sensitivity analysis (Figure 7) finds `0`
    /// optimal for the dense PATIENT collection and `≈0.9` for the sparse
    /// RADIO collection. **Any value returns exact top-k results** — the
    /// threshold only trades graph traversal against distance-calculation
    /// work.
    pub error_threshold: f64,

    /// Frontier-size watermark (the paper's 50,000-element queue limit,
    /// Section 6.1). When the breadth-first frontier exceeds it, the engine
    /// runs a *forced* examination round — computing exact distances for
    /// collected candidates regardless of `εθ` — to try to terminate early.
    ///
    /// Unlike the paper's prototype the frontier is never truncated, so
    /// results stay exact; the watermark only forces work forward.
    pub queue_cap: usize,

    /// Deduplicate BFS states `(origin concept, node, direction)`.
    ///
    /// The paper's prototype skips this ("labeling a visited node is more
    /// expensive"), accepting re-visits; state deduplication never changes
    /// first-touch levels, so it is a pure optimization. Default **on**;
    /// the ablation bench measures the paper's choice.
    pub dedup_visits: bool,

    /// Emit results progressively (Section 5.3, optimization 4): a document
    /// in the top-k heap whose distance is at or below the best remaining
    /// lower bound is final and counted in
    /// [`QueryMetrics::progressive_results`](crate::QueryMetrics).
    pub progressive: bool,
}

impl Default for KndsConfig {
    fn default() -> Self {
        KndsConfig {
            error_threshold: 0.5,
            queue_cap: 50_000,
            dedup_visits: true,
            progressive: true,
        }
    }
}

impl KndsConfig {
    /// Returns a copy with a different error threshold.
    pub fn with_error_threshold(mut self, eps: f64) -> Self {
        assert!((0.0..=1.0).contains(&eps), "error threshold must be in [0, 1]");
        self.error_threshold = eps;
        self
    }

    /// Returns a copy with a different queue watermark.
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        assert!(cap > 0, "queue cap must be positive");
        self.queue_cap = cap;
        self
    }

    /// Returns a copy with visit deduplication toggled.
    pub fn with_dedup_visits(mut self, dedup: bool) -> Self {
        self.dedup_visits = dedup;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = KndsConfig::default();
        assert_eq!(c.queue_cap, 50_000);
        assert_eq!(c.error_threshold, 0.5);
        assert!(c.dedup_visits);
    }

    #[test]
    fn builders_apply() {
        let c = KndsConfig::default()
            .with_error_threshold(0.9)
            .with_queue_cap(10)
            .with_dedup_visits(false);
        assert_eq!(c.error_threshold, 0.9);
        assert_eq!(c.queue_cap, 10);
        assert!(!c.dedup_visits);
    }

    #[test]
    #[should_panic(expected = "error threshold")]
    fn rejects_out_of_range_threshold() {
        KndsConfig::default().with_error_threshold(1.5);
    }

    #[test]
    #[should_panic(expected = "queue cap")]
    fn rejects_zero_cap() {
        KndsConfig::default().with_queue_cap(0);
    }
}
