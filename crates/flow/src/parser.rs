//! Item-level parser: lifts the lexical [`crate::scanner`] into `fn`
//! items, `impl`/`trait` blocks, per-crate module paths, and call sites.
//!
//! This is still not a real Rust parser — it is a token-stream walker
//! over the comment/string-blanked `code` view that extracts exactly
//! what the call-graph rules need:
//!
//! * every `fn` item with a body: name, visibility, enclosing
//!   `impl`/`trait` self type, module path derived from the file path,
//!   whether its signature returns `Result`, and whether a
//!   `// flow: workspace-fed` directive marks its allocations as
//!   growing caller-owned scratch;
//! * every call site inside a body: plain calls (`helper(..)`),
//!   path-qualified calls (`crate::util::f(..)`, `Type::method(..)`),
//!   and method calls (`recv.method(..)`) with their receiver chain,
//!   plus how the call's value is consumed (used, `let _ =`, or a bare
//!   statement) for the discarded-`Result` rule.
//!
//! Known approximations (see DESIGN.md §10): inline `mod` names are not
//! appended to module paths, macro bodies are opaque, and generic
//! bounds are skipped rather than understood.

use crate::scanner::{is_ident_byte, match_bracket, SourceFile};

/// Keywords that can precede `(` without being calls, or start
/// expressions the call scanner must not treat as callee names.
const KEYWORDS: [&str; 32] = [
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "in", "as", "fn",
    "let", "mut", "ref", "move", "where", "impl", "dyn", "pub", "use", "mod", "struct", "enum",
    "trait", "type", "const", "static", "unsafe", "async", "await", "crate",
];

/// Enum-constructor idents that look like calls but never are.
const CTOR_IDENTS: [&str; 4] = ["Some", "Ok", "Err", "None"];

/// The directive comment marking a function whose allocations only grow
/// caller-owned (workspace) storage, exempting it from F01.
pub const WORKSPACE_FED: &str = "flow: workspace-fed";

/// How a call's return value is consumed, for F03.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discard {
    /// Bound, chained, propagated (`?`), or otherwise consumed.
    Used,
    /// `let _ = call(..);` — explicitly thrown away.
    LetUnderscore,
    /// `call(..);` as a bare statement — implicitly thrown away.
    BareStmt,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Byte offset of the callee name token in the file.
    pub at: usize,
    /// Callee name (last path segment / method name).
    pub name: String,
    /// Qualifier segments before the name (`["crate", "util"]`,
    /// `["Vec"]`); empty for plain and method calls.
    pub path: Vec<String>,
    /// Whether this is a `.name(..)` method call.
    pub method: bool,
    /// Whether the method receiver is exactly `self`.
    pub recv_self: bool,
    /// Whitespace-stripped receiver chain for method calls
    /// (`self.pool`, `ws.scratch`); empty otherwise.
    pub receiver: String,
    /// Byte offset of the call's closing parenthesis.
    pub close: usize,
    /// How the call's value is consumed.
    pub discard: Discard,
}

/// An `impl` block (or `trait` block, which resolves method calls the
/// same way) with its self-type name and brace span.
#[derive(Debug, Clone)]
pub struct ImplBlock {
    /// Last path segment of the self type (`Knds`, `SegQueue`), or the
    /// trait name for `trait` blocks.
    pub self_ty: String,
    /// `impl Trait for Type` or a `trait` block (conservative dispatch
    /// targets rather than inherent methods).
    pub trait_impl: bool,
    /// Byte span of the braces, inclusive.
    pub span: (usize, usize),
}

/// One `fn` item with a body.
#[derive(Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Module path of the containing file (`knds::engine`).
    pub module: String,
    /// Enclosing `impl`/`trait` self type, if any.
    pub self_ty: Option<String>,
    /// Whether the enclosing block was `impl Trait for ..` or `trait`.
    pub trait_impl: bool,
    /// Declared `pub` (including `pub(crate)` and friends).
    pub is_pub: bool,
    /// Inside `#[cfg(test)]` or a `tests/` file.
    pub is_test: bool,
    /// Signature's return type mentions `Result`.
    pub returns_result: bool,
    /// Carries the `// flow: workspace-fed` directive.
    pub workspace_fed: bool,
    /// Index of the containing file in [`Workspace::files`].
    pub file: usize,
    /// Byte offset of the `fn` keyword.
    pub decl: usize,
    /// Byte offset of the name token (for F05's self-reference check).
    pub name_at: usize,
    /// 1-based line of the declaration.
    pub line: usize,
    /// Byte span of the body braces, inclusive.
    pub body: (usize, usize),
    /// Call sites attributed to this function (innermost-fn ownership).
    pub calls: Vec<CallSite>,
}

/// The parsed workspace: scanned files plus the function index.
#[derive(Debug)]
pub struct Workspace {
    /// Scanned sources, in collection order.
    pub files: Vec<SourceFile>,
    /// Module path per file, aligned with `files`.
    pub modules: Vec<String>,
    /// Every `fn` item with a body, across all files.
    pub fns: Vec<FnItem>,
}

impl Workspace {
    /// Parses all `files` into the item index.
    pub fn parse(files: Vec<SourceFile>) -> Workspace {
        let modules: Vec<String> = files.iter().map(|f| module_path(&f.rel)).collect();
        let mut fns = Vec::new();
        for (idx, file) in files.iter().enumerate() {
            let impls = find_impls(&file.code);
            let mut items = find_fns(file, idx, &modules[idx], &impls);
            attribute_calls(file, &mut items);
            fns.append(&mut items);
        }
        Workspace { files, modules, fns }
    }

    /// Human-readable qualified name (`knds::engine::Knds::rds_with`).
    pub fn display(&self, id: usize) -> String {
        let f = &self.fns[id];
        match &f.self_ty {
            Some(ty) => format!("{}::{}::{}", f.module, ty, f.name),
            None => format!("{}::{}", f.module, f.name),
        }
    }

    /// First path segment of the function's module (its crate).
    pub fn crate_of(&self, id: usize) -> &str {
        let m = &self.fns[id].module;
        m.split("::").next().unwrap_or(m)
    }
}

/// Maps a workspace-relative path to a module path. Crate directories
/// name the crate (`crates/knds/src/engine.rs` → `knds::engine`); the
/// root package is `repro`; test/bench/example trees keep their kind as
/// a segment so rules can recognize them.
pub fn module_path(rel: &str) -> String {
    let stem = rel.strip_suffix(".rs").unwrap_or(rel);
    let parts: Vec<&str> = stem.split('/').collect();
    let join = |krate: &str, rest: &[&str]| -> String {
        let mut segs = vec![krate.to_string()];
        for (i, p) in rest.iter().enumerate() {
            let last = i + 1 == rest.len();
            if last && (*p == "lib" || *p == "main" || *p == "mod") {
                continue;
            }
            segs.push((*p).to_string());
        }
        segs.join("::")
    };
    match parts.as_slice() {
        ["crates", krate, "src", rest @ ..] => join(krate, rest),
        ["crates", krate, kind, rest @ ..] => {
            let mut segs = vec![(*krate).to_string(), (*kind).to_string()];
            segs.extend(rest.iter().map(|p| (*p).to_string()));
            segs.join("::")
        }
        ["src", rest @ ..] => join("repro", rest),
        [kind, rest @ ..] if *kind == "tests" || *kind == "examples" || *kind == "benches" => {
            let mut segs = vec!["repro".to_string(), (*kind).to_string()];
            segs.extend(rest.iter().map(|p| (*p).to_string()));
            segs.join("::")
        }
        _ => stem.replace('/', "::"),
    }
}

/// Normalizes a path qualifier that names a crate (`cbr_knds` → `knds`,
/// `concept_rank` → `core`) so qualified calls match module paths.
pub fn normalize_crate_ident(seg: &str) -> String {
    match seg {
        "concept_rank" => "core".to_string(),
        "concept_rank_repro" => "repro".to_string(),
        "cbr_sched_model" => "sched".to_string(),
        _ => seg.strip_prefix("cbr_").unwrap_or(seg).to_string(),
    }
}

/// Skips a balanced `<...>` group starting at `at` (which must point at
/// `<`), tolerating `->` arrows inside `Fn(..) -> T` bounds. Returns the
/// offset just past the closing `>`.
fn skip_angles(bytes: &[u8], at: usize) -> usize {
    let mut depth = 0i32;
    let mut j = at;
    while j < bytes.len() {
        match bytes[j] {
            b'<' => depth += 1,
            b'>' if j > 0 && bytes[j - 1] == b'-' => {}
            b'>' => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    bytes.len()
}

/// Whether the `len`-byte word at `at` is a standalone token.
fn word_at(bytes: &[u8], at: usize, len: usize) -> bool {
    (at == 0 || !is_ident_byte(bytes[at - 1]))
        && bytes.get(at + len).is_none_or(|&b| !is_ident_byte(b))
}

/// Finds `impl` and `trait` blocks with their self-type names.
fn find_impls(code: &str) -> Vec<ImplBlock> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for (kw, is_trait) in [("impl", false), ("trait", true)] {
        let mut i = 0;
        while let Some(rel) = code[i..].find(kw) {
            let o = i + rel;
            i = o + kw.len();
            if !word_at(bytes, o, kw.len()) {
                continue;
            }
            if !is_trait && !impl_item_position(bytes, o) {
                continue; // `-> impl Trait`, `&impl Fn(..)`, ...
            }
            let mut j = o + kw.len();
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if bytes.get(j) == Some(&b'<') {
                j = skip_angles(bytes, j);
            }
            let hdr_start = j;
            let mut nest = 0i32;
            let mut found = false;
            while j < bytes.len() {
                match bytes[j] {
                    b'(' | b'[' => nest += 1,
                    b')' | b']' => nest -= 1,
                    b'<' => j = skip_angles(bytes, j) - 1,
                    b'{' if nest == 0 => {
                        found = true;
                        break;
                    }
                    b';' if nest == 0 => break, // assoc type / trait alias
                    _ => {}
                }
                j += 1;
            }
            if !found {
                continue;
            }
            let Some(close) = match_bracket(bytes, j, b'{', b'}') else {
                continue;
            };
            let header = &code[hdr_start..j];
            let (trait_impl, ty_text) = match header.find(" for ") {
                Some(p) if !is_trait => (true, &header[p + 5..]),
                _ => (is_trait, header),
            };
            if let Some(name) = type_name(ty_text) {
                out.push(ImplBlock { self_ty: name, trait_impl, span: (j, close) });
            }
        }
    }
    out
}

/// Whether an `impl` keyword at `o` is in item position (start of file,
/// after `;`, `}`, `{`, or a closing attribute `]`), as opposed to an
/// `impl Trait` type position.
fn impl_item_position(bytes: &[u8], o: usize) -> bool {
    let mut p = o;
    while p > 0 {
        p -= 1;
        if !bytes[p].is_ascii_whitespace() {
            return matches!(bytes[p], b';' | b'}' | b'{' | b']');
        }
    }
    true
}

/// Extracts the last path segment of a type header (`Knds<'a, S>` →
/// `Knds`, `sched::sync::SegQueue<T>` → `SegQueue`).
fn type_name(text: &str) -> Option<String> {
    let text = text.split(" where ").next().unwrap_or(text).trim();
    let text = text.trim_start_matches('&').trim_start_matches("mut ").trim();
    let text = text.strip_prefix("dyn ").unwrap_or(text);
    let head = text.split('<').next().unwrap_or(text).trim();
    let last = head.rsplit("::").next().unwrap_or(head).trim();
    let name: String = last.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Whether the declaration at `fn_at` is `pub` (scanning back over
/// `const`/`async`/`unsafe`/`extern` qualifiers and `pub(..)` groups).
fn decl_is_pub(code: &str, fn_at: usize) -> bool {
    let bytes = code.as_bytes();
    let mut p = fn_at;
    loop {
        while p > 0 && bytes[p - 1].is_ascii_whitespace() {
            p -= 1;
        }
        if p == 0 {
            return false;
        }
        if bytes[p - 1] == b')' {
            let mut depth = 0i32;
            let mut q = p - 1;
            loop {
                match bytes[q] {
                    b')' => depth += 1,
                    b'(' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if q == 0 {
                    return false;
                }
                q -= 1;
            }
            let mut e = q;
            while e > 0 && bytes[e - 1].is_ascii_whitespace() {
                e -= 1;
            }
            let mut s = e;
            while s > 0 && is_ident_byte(bytes[s - 1]) {
                s -= 1;
            }
            return &code[s..e] == "pub";
        }
        let e = p;
        let mut s = e;
        while s > 0 && is_ident_byte(bytes[s - 1]) {
            s -= 1;
        }
        if s == e {
            return false;
        }
        match &code[s..e] {
            "const" | "async" | "unsafe" | "extern" => p = s,
            "pub" => return true,
            _ => return false,
        }
    }
}

/// Whether the first `->` return type at paren depth 0 mentions
/// `Result` (stopping at a `where` clause).
fn sig_returns_result(sig: &str) -> bool {
    let bytes = sig.as_bytes();
    let mut nest = 0i32;
    let mut i = 0;
    while i + 1 < bytes.len() {
        match bytes[i] {
            b'(' | b'[' => nest += 1,
            b')' | b']' => nest -= 1,
            b'-' if nest == 0 && bytes[i + 1] == b'>' => {
                let rest = &sig[i + 2..];
                let rest = rest.split(" where ").next().unwrap_or(rest);
                return rest.contains("Result");
            }
            _ => {}
        }
        i += 1;
    }
    false
}

/// Whether the comment/attribute block directly above the declaration
/// line carries `directive`. Public so downstream analyses (`cbr-race`'s
/// facade-annotation channel) can read their own directive vocabulary
/// off the same parsed items.
pub fn has_directive(text: &str, decl: usize, directive: &str) -> bool {
    let line_start = text[..decl].rfind('\n').map_or(0, |p| p + 1);
    for line in text[..line_start].lines().rev() {
        let t = line.trim();
        if t.is_empty() {
            return false;
        }
        if t.starts_with("//") || t.starts_with('#') {
            if t.contains(directive) {
                return true;
            }
        } else {
            return false;
        }
    }
    false
}

/// Finds every `fn` item with a body in `file`.
fn find_fns(file: &SourceFile, file_idx: usize, module: &str, impls: &[ImplBlock]) -> Vec<FnItem> {
    let code = &file.code;
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(rel) = code[i..].find("fn") {
        let o = i + rel;
        i = o + 2;
        if !word_at(bytes, o, 2) {
            continue;
        }
        let mut j = o + 2;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        let ns = j;
        while j < bytes.len() && is_ident_byte(bytes[j]) {
            j += 1;
        }
        if j == ns {
            continue; // `fn(..)` pointer type
        }
        let name = code[ns..j].to_string();
        if bytes.get(j) == Some(&b'<') {
            j = skip_angles(bytes, j);
        }
        let sig_start = j;
        let mut nest = 0i32;
        let mut body_open = None;
        while j < bytes.len() {
            match bytes[j] {
                b'(' | b'[' => nest += 1,
                b')' | b']' => nest -= 1,
                b';' if nest == 0 => break, // bodiless (trait signature)
                b'{' if nest == 0 => {
                    body_open = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body_open else {
            continue;
        };
        let Some(close) = match_bracket(bytes, open, b'{', b'}') else {
            continue;
        };
        let sig = &code[sig_start..open];
        let enclosing = impls
            .iter()
            .filter(|b| b.span.0 < o && o < b.span.1)
            .min_by_key(|b| b.span.1 - b.span.0);
        out.push(FnItem {
            name,
            module: module.to_string(),
            self_ty: enclosing.map(|b| b.self_ty.clone()),
            trait_impl: enclosing.is_some_and(|b| b.trait_impl),
            is_pub: decl_is_pub(code, o),
            is_test: file.is_test(o),
            returns_result: sig_returns_result(sig),
            workspace_fed: has_directive(&file.text, o, WORKSPACE_FED),
            file: file_idx,
            decl: o,
            name_at: ns,
            line: file.line_of(o),
            body: (open, close),
            calls: Vec::new(),
        });
        i = open + 1; // keep scanning inside the body for nested fns
    }
    out
}

/// Walks a method receiver chain backwards from the `.` at `dot`,
/// accepting idents, `.`/`?`, bracket groups, and whitespace that
/// precedes a `.` (rustfmt chain style). Returns the chain start and
/// the whitespace-stripped chain text.
fn receiver_chain(code: &str, dot: usize) -> (usize, String) {
    let bytes = code.as_bytes();
    let mut p = dot;
    loop {
        if p == 0 {
            break;
        }
        let c = bytes[p - 1];
        if is_ident_byte(c) || c == b'.' || c == b'?' {
            p -= 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            if bytes.get(p) != Some(&b'.') {
                break;
            }
            let mut q = p - 1;
            while q > 0 && bytes[q - 1].is_ascii_whitespace() {
                q -= 1;
            }
            if q > 0
                && (is_ident_byte(bytes[q - 1]) || bytes[q - 1] == b')' || bytes[q - 1] == b']')
            {
                p = q;
                continue;
            }
            break;
        }
        if c == b')' || c == b']' {
            let open = if c == b')' { b'(' } else { b'[' };
            let mut depth = 0i32;
            let mut q = p - 1;
            loop {
                if bytes[q] == c {
                    depth += 1;
                } else if bytes[q] == open {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if q == 0 {
                    break;
                }
                q -= 1;
            }
            p = q;
            continue;
        }
        break;
    }
    let chain: String = code[p..dot].chars().filter(|c| !c.is_whitespace()).collect();
    (p, chain)
}

/// Classifies how a call ending at `close` is consumed, given the start
/// of its whole expression.
fn classify_discard(code: &str, close: usize, expr_start: usize) -> Discard {
    let bytes = code.as_bytes();
    let mut k = close + 1;
    while k < bytes.len() && bytes[k].is_ascii_whitespace() {
        k += 1;
    }
    if bytes.get(k) != Some(&b';') {
        return Discard::Used; // chained, `?`, argument, tail expression...
    }
    let mut b = expr_start;
    while b > 0 && bytes[b - 1].is_ascii_whitespace() {
        b -= 1;
    }
    if b == 0 {
        return Discard::BareStmt;
    }
    match bytes[b - 1] {
        b';' | b'{' | b'}' => Discard::BareStmt,
        b'=' if b >= 2 && bytes[b - 2] != b'=' && bytes[b - 2] != b'!' => {
            // `let _ = expr;` exactly (named `_x` bindings count as used).
            let mut q = b - 1;
            while q > 0 && bytes[q - 1].is_ascii_whitespace() {
                q -= 1;
            }
            if q >= 1 && bytes[q - 1] == b'_' && (q < 2 || !is_ident_byte(bytes[q - 2])) {
                let mut r = q - 1;
                while r > 0 && bytes[r - 1].is_ascii_whitespace() {
                    r -= 1;
                }
                if r >= 3 && &code[r - 3..r] == "let" && (r < 4 || !is_ident_byte(bytes[r - 4])) {
                    return Discard::LetUnderscore;
                }
            }
            Discard::Used
        }
        _ => Discard::Used,
    }
}

/// Extracts every call site in `file` and attributes each to the
/// innermost containing function in `items`.
fn attribute_calls(file: &SourceFile, items: &mut [FnItem]) {
    let code = &file.code;
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if !is_ident_byte(bytes[i]) || (i > 0 && is_ident_byte(bytes[i - 1])) {
            i += 1;
            continue;
        }
        let s = i;
        let mut e = i;
        while e < bytes.len() && is_ident_byte(bytes[e]) {
            e += 1;
        }
        i = e;
        let name = &code[s..e];
        if name.as_bytes()[0].is_ascii_digit()
            || KEYWORDS.contains(&name)
            || CTOR_IDENTS.contains(&name)
        {
            continue;
        }
        let mut j = e;
        if bytes.get(j) == Some(&b'!') {
            continue; // macro invocation
        }
        if code[j..].starts_with("::<") {
            j = skip_angles(bytes, j + 2);
        }
        if bytes.get(j) != Some(&b'(') {
            continue;
        }
        // Skip definitions: `fn name(`.
        {
            let mut p = s;
            while p > 0 && bytes[p - 1].is_ascii_whitespace() {
                p -= 1;
            }
            if p >= 2 && &code[p - 2..p] == "fn" && (p < 3 || !is_ident_byte(bytes[p - 3])) {
                continue;
            }
        }
        let Some(close) = match_bracket(bytes, j, b'(', b')') else {
            continue;
        };
        let mut path = Vec::new();
        let mut method = false;
        let mut recv_self = false;
        let mut receiver = String::new();
        let mut expr_start = s;
        if s >= 1 && bytes[s - 1] == b'.' {
            method = true;
            let (start, chain) = receiver_chain(code, s - 1);
            recv_self = chain == "self";
            receiver = chain;
            expr_start = start;
        } else if s >= 2 && bytes[s - 1] == b':' && bytes[s - 2] == b':' {
            let mut p = s - 2;
            loop {
                let mut q = p;
                while q > 0 && is_ident_byte(bytes[q - 1]) {
                    q -= 1;
                }
                if q == p {
                    break; // `<T as Trait>::f(..)` and friends
                }
                path.insert(0, code[q..p].to_string());
                expr_start = q;
                if q >= 2 && bytes[q - 1] == b':' && bytes[q - 2] == b':' {
                    p = q - 2;
                } else {
                    break;
                }
            }
        }
        let discard = classify_discard(code, close, expr_start);
        let site = CallSite {
            at: s,
            name: name.to_string(),
            path,
            method,
            recv_self,
            receiver,
            close,
            discard,
        };
        // Innermost containing fn owns the call.
        let owner = items
            .iter_mut()
            .filter(|f| f.body.0 < s && s < f.body.1)
            .min_by_key(|f| f.body.1 - f.body.0);
        if let Some(f) = owner {
            f.calls.push(site);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(rel: &str, text: &str) -> Workspace {
        Workspace::parse(vec![SourceFile::parse(rel, text)])
    }

    #[test]
    fn module_paths_cover_the_layouts() {
        assert_eq!(module_path("crates/knds/src/engine.rs"), "knds::engine");
        assert_eq!(module_path("crates/knds/src/lib.rs"), "knds");
        assert_eq!(module_path("crates/dradix/src/dag/mod.rs"), "dradix::dag");
        assert_eq!(module_path("crates/core/tests/service.rs"), "core::tests::service");
        assert_eq!(module_path("crates/bench/benches/drc_phases.rs"), "bench::benches::drc_phases");
        assert_eq!(module_path("src/lib.rs"), "repro");
        assert_eq!(module_path("tests/paper.rs"), "repro::tests::paper");
        assert_eq!(module_path("examples/quickstart.rs"), "repro::examples::quickstart");
    }

    #[test]
    fn fn_items_carry_impl_types_and_visibility() {
        let ws = parse_one(
            "crates/knds/src/engine.rs",
            "pub struct Knds;\n\
             impl Knds {\n    pub fn rds_with(&self) -> u32 { helper() }\n}\n\
             impl std::fmt::Display for Knds {\n    fn fmt(&self) -> u32 { 0 }\n}\n\
             pub(crate) fn helper() -> u32 { 1 }\n\
             fn private() {}\n",
        );
        let names: Vec<&str> = ws.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["rds_with", "fmt", "helper", "private"]);
        let rds = &ws.fns[0];
        assert_eq!(rds.self_ty.as_deref(), Some("Knds"));
        assert!(rds.is_pub && !rds.trait_impl);
        assert!(ws.fns[1].trait_impl);
        assert!(ws.fns[2].is_pub, "pub(crate) counts as pub");
        assert!(!ws.fns[3].is_pub);
        assert_eq!(ws.display(0), "knds::engine::Knds::rds_with");
    }

    #[test]
    fn return_position_impl_trait_is_not_an_impl_block() {
        let ws = parse_one(
            "crates/index/src/lib.rs",
            "pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {\n    helper()\n}\n\
             fn takes(f: &impl Fn(u32) -> bool) -> bool { f(1) }\n",
        );
        assert!(ws.fns.iter().all(|f| f.self_ty.is_none()), "{:?}", ws.fns);
    }

    #[test]
    fn nested_fns_and_closures_attribute_calls_to_the_innermost() {
        let ws = parse_one(
            "crates/core/src/x.rs",
            "fn outer() {\n    outer_call();\n    fn inner() { inner_call(); }\n    \
             let f = |x: u32| closure_call(x);\n    f(2);\n}\n",
        );
        let outer = ws.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = ws.fns.iter().find(|f| f.name == "inner").unwrap();
        let outer_names: Vec<&str> = outer.calls.iter().map(|c| c.name.as_str()).collect();
        assert!(outer_names.contains(&"outer_call"));
        assert!(outer_names.contains(&"closure_call"), "closures belong to the enclosing fn");
        assert!(outer_names.contains(&"f"), "calling a closure variable is a (plain) call site");
        assert!(!outer_names.contains(&"inner_call"));
        assert_eq!(inner.calls.len(), 1);
        assert_eq!(inner.calls[0].name, "inner_call");
    }

    #[test]
    fn macros_ctors_and_keywords_are_not_calls() {
        let ws = parse_one(
            "crates/core/src/x.rs",
            "fn f() -> Option<u32> {\n    vec![1, 2];\n    println!(\"hi\");\n    \
             if check(1) { return Some(3); }\n    Ok::<u32, ()>(4).ok()\n}\n",
        );
        let names: Vec<&str> = ws.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["check", "ok"], "{names:?}");
    }

    #[test]
    fn qualified_paths_and_turbofish_are_parsed() {
        let ws = parse_one(
            "crates/knds/src/x.rs",
            "fn f() {\n    crate::util::normalize(1);\n    Vec::with_capacity(3);\n    \
             collect_ids::<u32>(9);\n}\n",
        );
        let calls = &ws.fns[0].calls;
        assert_eq!(calls[0].name, "normalize");
        assert_eq!(calls[0].path, ["crate", "util"]);
        assert_eq!(calls[1].name, "with_capacity");
        assert_eq!(calls[1].path, ["Vec"]);
        assert_eq!(calls[2].name, "collect_ids");
        assert!(calls[2].path.is_empty());
    }

    #[test]
    fn method_receiver_chains_survive_rustfmt_wrapping() {
        let ws = parse_one(
            "crates/core/src/x.rs",
            "fn f(&self) {\n    self.pool.pop();\n    self\n        .engine\n        .rds(1);\n    \
             self.run(2);\n}\n",
        );
        let calls = &ws.fns[0].calls;
        assert_eq!(calls[0].receiver, "self.pool");
        assert!(!calls[0].recv_self);
        assert_eq!(calls[1].receiver, "self.engine");
        assert!(calls[2].recv_self);
    }

    #[test]
    fn discard_classification() {
        let ws = parse_one(
            "crates/core/src/x.rs",
            "fn f() {\n    let _ = fallible();\n    fallible();\n    let _r = fallible();\n    \
             let x = fallible();\n    fallible()?;\n    use_it(fallible());\n    x == 1\n}\n",
        );
        let d: Vec<Discard> =
            ws.fns[0].calls.iter().filter(|c| c.name == "fallible").map(|c| c.discard).collect();
        assert_eq!(
            d,
            [
                Discard::LetUnderscore,
                Discard::BareStmt,
                Discard::Used,
                Discard::Used,
                Discard::Used,
                Discard::Used,
            ]
        );
    }

    #[test]
    fn cfg_test_fns_are_flagged_and_result_signatures_detected() {
        let ws = parse_one(
            "crates/core/src/x.rs",
            "pub fn save(&self) -> Result<(), Error> { Ok(()) }\n\
             pub fn count(&self) -> usize { 0 }\n\
             fn map(f: impl Fn(u32) -> Result<u32, ()>) -> usize { 0 }\n\
             #[cfg(test)]\nmod tests {\n    fn t() { helper(); }\n}\n",
        );
        let save = ws.fns.iter().find(|f| f.name == "save").unwrap();
        assert!(save.returns_result && !save.is_test);
        let count = ws.fns.iter().find(|f| f.name == "count").unwrap();
        assert!(!count.returns_result);
        let map = ws.fns.iter().find(|f| f.name == "map").unwrap();
        assert!(!map.returns_result, "Result inside a param bound is not a Result return");
        let t = ws.fns.iter().find(|f| f.name == "t").unwrap();
        assert!(t.is_test);
    }

    #[test]
    fn workspace_fed_directive_is_read_from_comments() {
        let ws = parse_one(
            "crates/knds/src/x.rs",
            "// flow: workspace-fed — grows the caller-owned arena only.\n\
             fn slot_for(&mut self) -> usize { self.nodes.push(0); 0 }\n\n\
             fn plain() {}\n",
        );
        assert!(ws.fns[0].workspace_fed);
        assert!(!ws.fns[1].workspace_fed);
    }
}
