//! Criterion bench for Figure 7: kNDS query time as a function of the
//! error threshold εθ, RDS and SDS, on both collection shapes.

use cbr_bench::{Scale, Workbench};
use cbr_knds::{Knds, KndsConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_fig7(c: &mut Criterion) {
    let wb = Workbench::build(Scale::micro());
    for coll in &wb.collections {
        let rds_query = coll.rds_queries(1, 5, 7).remove(0);
        let sds_query = coll.sds_queries(1, 8).remove(0);
        let mut group = c.benchmark_group(format!("fig7/{}", coll.name));
        group.sample_size(10).measurement_time(Duration::from_secs(2));
        for eps in [0.0, 0.5, 1.0] {
            let cfg = KndsConfig::default().with_error_threshold(eps);
            let engine = Knds::new(&wb.ontology, &coll.source, cfg);
            group.bench_with_input(BenchmarkId::new("RDS", eps), &rds_query, |b, q| {
                b.iter(|| black_box(engine.rds(black_box(q), 10).results.len()))
            });
            group.bench_with_input(BenchmarkId::new("SDS", eps), &sds_query, |b, q| {
                b.iter(|| black_box(engine.sds(black_box(q), 10).results.len()))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
