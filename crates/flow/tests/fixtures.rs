//! The seeded-violation fixture tree proves the rules are not vacuous:
//! every rule F01–F05 must fire, with exact counts, and every finding
//! must replay to a line carrying a `// seeded: <rule>` marker.

use cbr_flow::{run_fixtures, workspace_root};

#[test]
fn fixtures_seed_every_rule_with_exact_counts() {
    let fr = run_fixtures(&workspace_root());
    let count = |r: &str| fr.report.findings.iter().filter(|f| f.rule == r).count();
    assert_eq!(count("F01"), 3, "F01: {:#?}", fr.report.findings);
    assert_eq!(count("F02"), 2, "F02: {:#?}", fr.report.findings);
    assert_eq!(count("F03"), 2, "F03: {:#?}", fr.report.findings);
    assert_eq!(count("F04"), 4, "F04: {:#?}", fr.report.findings);
    assert_eq!(count("F05"), 1, "F05: {:#?}", fr.report.findings);
    assert_eq!(count("FLOW"), 0, "every hot-path root spec matched a fixture fn");
    assert_eq!(fr.report.findings.len(), 12);
}

#[test]
fn every_fixture_finding_replays_to_a_seeded_marker() {
    let root = workspace_root();
    let fixture_root = root.join("crates/flow/fixtures");
    let fr = run_fixtures(&root);
    assert!(!fr.report.findings.is_empty(), "fixtures produced no findings");
    for f in &fr.report.findings {
        let text = std::fs::read_to_string(fixture_root.join(&f.file))
            .unwrap_or_else(|e| panic!("reading fixture {}: {e}", f.file));
        let line = text
            .lines()
            .nth(f.line - 1)
            .unwrap_or_else(|| panic!("{}:{} out of range", f.file, f.line));
        assert!(
            line.contains(&format!("seeded: {}", f.rule)),
            "{}:{} reported for {} but the line has no marker: `{line}`",
            f.file,
            f.line,
            f.rule
        );
    }
}

#[test]
fn exemptions_hold_inside_the_fixture_tree() {
    let fr = run_fixtures(&workspace_root());
    // The workspace-fed helper in the weighted fixture allocates, and
    // must not be reported.
    assert!(
        !fr.report
            .findings
            .iter()
            .any(|f| f.rule == "F01" && f.file.ends_with("knds/src/weighted.rs")),
        "workspace-fed callee was reported: {:#?}",
        fr.report.findings
    );
    // The drop-guard variant pops without pushing back and must stay
    // quiet; both F02 findings blame `query` itself.
    assert!(
        fr.report
            .findings
            .iter()
            .filter(|f| f.rule == "F02")
            .all(|f| f.message.contains("`query`") && !f.message.contains("query_guarded")),
        "F02 leaked into the guarded variant: {:#?}",
        fr.report.findings
    );
}
