//! The honest harnesses must run clean under a quick exploration, and
//! the seeded-bug harnesses (when compiled in) must be caught with
//! schedule IDs that reproduce on replay.

use sched::explore::Options;
use schedrun::harness::registry;

fn quick() -> Options {
    Options { budget: 60, max_steps: 5_000, seed: 3, dfs_quarters: 3 }
}

#[test]
fn honest_harnesses_run_clean() {
    for h in registry().iter().filter(|h| !h.name.starts_with("seeded-")) {
        let ex = h.explore(&quick());
        assert!(ex.findings.is_empty(), "harness {} reported findings: {:?}", h.name, ex.findings);
        assert!(ex.schedules >= 1, "harness {} explored nothing", h.name);
    }
}

#[cfg(feature = "seeded-races")]
mod seeded {
    use super::*;
    use sched::rt::FindingKind;

    #[test]
    fn unlock_race_is_caught_and_replays() {
        let harnesses = registry();
        let h = harnesses.iter().find(|h| h.name == "seeded-unlock-race").expect("registered");
        let ex = h.explore(&quick());
        let bug = ex
            .findings
            .iter()
            .find(|f| f.kind == FindingKind::Invariant)
            .expect("the seeded lost update must be found");
        assert_ne!(bug.schedule, "-", "the finding must carry a replayable schedule");
        let rerun = h.replay(&quick(), &bug.schedule).expect("valid id");
        assert!(
            rerun.findings.iter().any(|f| f.kind == FindingKind::Invariant),
            "replay of {} found {:?}",
            bug.schedule,
            rerun.findings
        );
    }

    #[test]
    fn lock_inversion_is_caught_and_replays() {
        let harnesses = registry();
        let h = harnesses.iter().find(|h| h.name == "seeded-lock-inversion").expect("registered");
        let ex = h.explore(&quick());
        assert!(
            ex.findings.iter().any(|f| f.kind == FindingKind::LockOrderCycle),
            "the union lock-order graph must report the inversion: {:?}",
            ex.findings
        );
        let deadlock = ex
            .findings
            .iter()
            .find(|f| f.kind == FindingKind::Deadlock)
            .expect("some schedule must deadlock outright");
        let rerun = h.replay(&quick(), &deadlock.schedule).expect("valid id");
        assert!(
            rerun.findings.iter().any(|f| f.kind == FindingKind::Deadlock),
            "replay of {} found {:?}",
            deadlock.schedule,
            rerun.findings
        );
    }
}
