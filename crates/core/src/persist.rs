//! Whole-engine persistence.
//!
//! Rebuilding the path table, filters, and indexes from generators is fast
//! but not free; a deployed service wants to reopen yesterday's engine.
//! [`Engine::save`] snapshots the ontology, the *unfiltered* corpus view it
//! was built from (the filtered corpus plus any live appended documents),
//! and the configuration; [`Engine::load`] restores an equivalent engine.
//!
//! Appended documents are folded into the bulk corpus on save (their ids
//! shift down over deleted ones), so a saved+loaded engine answers queries
//! identically but with a compacted id space — the usual semantics of a
//! checkpoint+restart.

use crate::engine::{Engine, EngineBuilder, EngineError};
use cbr_corpus::{Corpus, FilterConfig};
use cbr_index::SnapshotStore;
use cbr_knds::KndsConfig;
use cbr_ontology::Ontology;
use std::io;
use std::path::Path;

/// Serializable engine configuration.
#[derive(serde::Serialize, serde::Deserialize)]
struct PersistedConfig {
    error_threshold: f64,
    queue_cap: u64,
    dedup_visits: bool,
    progressive: bool,
    min_depth: u32,
    cf_sigma: f64,
    filter_enabled: bool,
}

impl Engine {
    /// Saves the engine into a snapshot directory. Live documents
    /// (bulk + appended, minus deleted) are compacted into one corpus.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        let store = SnapshotStore::open(dir)?;
        store.save("ontology", self.ontology())?;

        // Compact: every live document's concepts, in id order.
        let mut sets = Vec::new();
        for i in 0..self.num_docs() {
            let doc = cbr_corpus::DocId::from_index(i);
            if !self.is_live(doc) {
                continue;
            }
            let concepts = self
                .document_concepts(doc)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            let tokens =
                if i < self.corpus().len() { self.corpus().get(doc).token_count() } else { 0 };
            sets.push((concepts, tokens));
        }
        store.save("corpus", &Corpus::from_concept_sets(sets))?;

        let cfg = self.config();
        store.save(
            "config",
            &PersistedConfig {
                error_threshold: cfg.error_threshold,
                queue_cap: cfg.queue_cap as u64,
                dedup_visits: cfg.dedup_visits,
                progressive: cfg.progressive,
                // The filter itself is corpus-derived; persist whether one
                // was active is not recoverable from the Engine today, so
                // the loaded engine re-applies no filter (the saved corpus
                // is already filtered). Fields kept for format stability.
                min_depth: 0,
                cf_sigma: f64::INFINITY,
                filter_enabled: false,
            },
        )
    }

    /// Restores an engine saved with [`Engine::save`].
    ///
    /// The saved corpus is already filtered, so no filter is re-applied;
    /// pass `refilter` to apply a fresh one (e.g. after editing the data).
    pub fn load(dir: &Path, refilter: Option<FilterConfig>) -> io::Result<Engine> {
        let store = SnapshotStore::open(dir)?;
        let ontology: Ontology = store.load("ontology")?;
        let corpus: Corpus = store.load("corpus")?;
        let cfg: PersistedConfig = store.load("config")?;
        let knds = KndsConfig {
            error_threshold: cfg.error_threshold,
            queue_cap: cfg.queue_cap as usize,
            dedup_visits: cfg.dedup_visits,
            progressive: cfg.progressive,
        };
        let mut builder = EngineBuilder::new().knds_config(knds);
        if let Some(f) = refilter {
            builder = builder.filter(f);
        }
        Ok(builder.build(ontology, corpus))
    }
}

/// Convenience: error conversion for callers mixing the two error types.
impl From<EngineError> for io::Error {
    fn from(e: EngineError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbr_corpus::{CorpusGenerator, CorpusProfile};
    use cbr_ontology::{ConceptId, GeneratorConfig, OntologyGenerator};

    fn tmp(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cbr-persist-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn engine() -> Engine {
        let ont = OntologyGenerator::new(GeneratorConfig::small(800)).generate();
        let corpus = CorpusGenerator::new(
            &ont,
            CorpusProfile::radio_like().with_num_docs(50).with_mean_concepts(8.0),
        )
        .generate();
        EngineBuilder::new()
            .knds_config(KndsConfig::default().with_error_threshold(0.75))
            .filter(FilterConfig::default())
            .build(ont, corpus)
    }

    #[test]
    fn save_load_roundtrips_queries_and_config() {
        let e = engine();
        let q: Vec<ConceptId> = e
            .corpus()
            .documents()
            .find(|d| d.num_concepts() >= 2)
            .map(|d| d.concepts()[..2].to_vec())
            .unwrap();
        let before = e.rds(&q, 5).unwrap();

        let dir = tmp("rt");
        e.save(&dir).unwrap();
        let loaded = Engine::load(&dir, None).unwrap();
        assert_eq!(loaded.config().error_threshold, 0.75);
        assert_eq!(loaded.num_docs(), e.num_docs());
        let after = loaded.rds(&q, 5).unwrap();
        for (a, b) in before.results.iter().zip(after.results.iter()) {
            assert_eq!(a.doc, b.doc);
            assert_eq!(a.distance, b.distance);
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn appends_and_deletes_are_compacted() {
        let mut e = engine();
        let q: Vec<ConceptId> = e
            .corpus()
            .documents()
            .find(|d| d.num_concepts() >= 2)
            .map(|d| d.concepts()[..2].to_vec())
            .unwrap();
        let added = e.add_document(q.clone());
        let victim = cbr_corpus::DocId(0);
        e.remove_document(victim).unwrap();

        let dir = tmp("compact");
        e.save(&dir).unwrap();
        let loaded = Engine::load(&dir, None).unwrap();
        // One fewer than before (delete), including the appended one.
        assert_eq!(loaded.num_docs(), e.num_docs() - 1);
        let _ = added;
        // The appended exact match is still findable at distance 0.
        let r = loaded.rds(&q, 1).unwrap();
        assert_eq!(r.results[0].distance, 0.0);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn load_missing_dir_fails() {
        let dir = tmp("missing");
        assert!(Engine::load(&dir, None).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }
}
