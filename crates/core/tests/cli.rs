//! End-to-end tests of the `crank` CLI binary: demo → build → stats →
//! rds/sds → tune → dot, each via a real child process.

use std::path::PathBuf;
use std::process::Command;

fn crank() -> Command {
    Command::new(env!("CARGO_BIN_EXE_crank"))
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cbr-cli-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("spawn crank");
    assert!(
        out.status.success(),
        "crank failed: {}\nstdout: {}\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

/// Builds a demo index, returning (dir, a query of two labels from doc 0).
fn demo_index(tag: &str) -> (PathBuf, String) {
    let dir = workdir(tag);
    run_ok(
        crank()
            .arg("demo")
            .args(["--out", dir.to_str().unwrap()])
            .args(["--concepts", "400"])
            .args(["--docs", "60"]),
    );
    let index = dir.join("index");
    run_ok(
        crank()
            .arg("build")
            .args(["--ontology", dir.join("ontology.tsv").to_str().unwrap()])
            .args(["--docs", dir.join("documents.tsv").to_str().unwrap()])
            .args(["--out", index.to_str().unwrap()]),
    );
    // Pull two labels from the first non-empty document line.
    let docs = std::fs::read_to_string(dir.join("documents.tsv")).unwrap();
    let line = docs.lines().find(|l| !l.starts_with('#') && l.contains('\t')).unwrap();
    let labels: Vec<&str> = line.split('\t').nth(1).unwrap().split('|').take(2).collect();
    (dir, labels.join("|"))
}

#[test]
fn full_cli_pipeline() {
    let (dir, query) = demo_index("pipeline");
    let index = dir.join("index");
    let index = index.to_str().unwrap();

    let stats = run_ok(crank().arg("stats").args(["--index", index]));
    assert!(stats.contains("concepts:"), "{stats}");
    assert!(stats.contains("total documents:"), "{stats}");

    let rds = run_ok(
        crank().arg("rds").args(["--index", index]).args(["--query", &query]).args(["-k", "5"]),
    );
    assert!(rds.contains("note-0000"), "doc 0 contains the query: {rds}");
    assert!(rds.lines().count() >= 6, "header + 5 results: {rds}");

    let sds = run_ok(
        crank().arg("sds").args(["--index", index]).args(["--doc", "note-0000"]).args(["-k", "3"]),
    );
    assert!(sds.contains("(query document)"), "{sds}");

    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn expansion_tune_and_dot() {
    let (dir, query) = demo_index("extras");
    let index = dir.join("index");
    let index = index.to_str().unwrap();

    let expanded = run_ok(
        crank()
            .arg("rds")
            .args(["--index", index])
            .args(["--query", &query])
            .args(["--expand", "2"]),
    );
    assert!(expanded.contains("query variants"), "{expanded}");

    let tuned = run_ok(crank().arg("tune").args(["--index", index, "-k", "5"]));
    assert!(tuned.contains("--eps"), "{tuned}");

    let dot_file = dir.join("graph.dot");
    run_ok(
        crank()
            .arg("dot")
            .args(["--index", index])
            .args(["--query", &query])
            .args(["--radius", "1"])
            .args(["--out", dot_file.to_str().unwrap()]),
    );
    let dot = std::fs::read_to_string(&dot_file).unwrap();
    assert!(dot.starts_with("digraph"), "{dot}");
    assert!(dot.contains("triangle"), "query nodes are triangles: {dot}");

    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn builds_from_raw_text_notes() {
    let (dir, _query) = demo_index("text");
    // Author two raw notes mentioning labels from the demo ontology.
    let ont_text = std::fs::read_to_string(dir.join("ontology.tsv")).unwrap();
    let label = ont_text
        .lines()
        .filter(|l| !l.starts_with('#'))
        .filter_map(|l| l.split('\t').nth(1))
        .nth(20)
        .unwrap()
        .to_string();
    let notes = format!(
        "note-x\tpatient presents with {label} on exam.\n\
         note-y\tstable course, no {label} today.\n"
    );
    let notes_path = dir.join("notes.tsv");
    std::fs::write(&notes_path, notes).unwrap();
    let text_index = dir.join("text-index");
    run_ok(
        crank()
            .arg("build")
            .args(["--ontology", dir.join("ontology.tsv").to_str().unwrap()])
            .args(["--text-docs", notes_path.to_str().unwrap()])
            .args(["--out", text_index.to_str().unwrap()]),
    );
    // note-x asserts the concept; note-y negates it — RDS must rank note-x
    // strictly first.
    let out = run_ok(
        crank()
            .arg("rds")
            .args(["--index", text_index.to_str().unwrap()])
            .args(["--query", &label])
            .args(["-k", "2"]),
    );
    let first_result = out.lines().nth(1).unwrap();
    assert!(first_result.contains("note-x"), "{out}");
    assert!(first_result.trim().ends_with("0.000"), "{out}");
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn errors_exit_nonzero_with_message() {
    // Unknown command.
    let out = crank().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing index.
    let out = crank().arg("stats").args(["--index", "/nonexistent/cbr-index"]).output().unwrap();
    assert!(!out.status.success());

    // Unknown label.
    let (dir, _q) = demo_index("err");
    let out = crank()
        .arg("rds")
        .args(["--index", dir.join("index").to_str().unwrap()])
        .args(["--query", "definitely not a concept"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no concept labeled"));
    std::fs::remove_dir_all(dir).unwrap();
}
