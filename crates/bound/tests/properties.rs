//! Property: the bound analysis is independent of file collection order.
//!
//! Numeric-site extraction, the shared type environment, reachability,
//! and the SCC check must produce byte-identical findings and proof
//! statistics however the source walker happens to order the files —
//! the allowlist ratchet depends on exact counts, so any order
//! sensitivity would make the gate flaky.

use cbr_flow::graph::CrateDeps;
use cbr_flow::scanner::SourceFile;
use proptest::prelude::*;

const SNAP: &str = include_str!("../fixtures/crates/core/src/snapshot.rs");
const ENGINE: &str = include_str!("../fixtures/crates/knds/src/engine.rs");
const DAG: &str = include_str!("../fixtures/crates/dradix/src/dag.rs");

type Keyed = (Vec<(String, String, usize, String)>, usize, usize);

fn run_in_order(order: &[usize; 3]) -> Keyed {
    let files = [
        ("crates/core/src/snapshot.rs", SNAP),
        ("crates/knds/src/engine.rs", ENGINE),
        ("crates/dradix/src/dag.rs", DAG),
    ];
    let sources: Vec<SourceFile> =
        order.iter().map(|&i| SourceFile::parse(files[i].0, files[i].1)).collect();
    let br = cbr_bound::analyze(sources, "", "bound.allow", &CrateDeps::default());
    let mut keyed: Vec<_> = br
        .report
        .findings
        .iter()
        .map(|f| (f.rule.clone(), f.file.clone(), f.line, f.message.clone()))
        .collect();
    keyed.sort();
    (keyed, br.stats.b04.b04_reachable_fns, br.stats.b04.b04_cyclic_fns)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn analysis_is_permutation_stable(k in 0usize..6) {
        let perms: [[usize; 3]; 6] =
            [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        let baseline = run_in_order(&perms[0]);
        prop_assert!(!baseline.0.is_empty(), "fixture findings must be non-empty");
        prop_assert_eq!(baseline, run_in_order(&perms[k]));
    }
}
