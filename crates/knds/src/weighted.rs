//! Weighted-edge kNDS — the Section 7 future-work variant.
//!
//! The paper closes by asking "how non is-a ontological edges can be
//! incorporated into the similarity function and how this would affect the
//! algorithms' performance". With per-edge integer weights
//! ([`cbr_ontology::EdgeWeights`]) the level-synchronized BFS of the
//! unit-weight engine becomes a **bucketed Dijkstra**: states pop in
//! non-decreasing accumulated weight, one bucket per integer distance.
//! All the Algorithm 2 machinery carries over —
//!
//! * coverage at first (minimal-distance) pop gives exact `Md`/`M'd`
//!   entries, because pops are globally distance-ordered;
//! * after finishing bucket `d`, every uncovered term has distance at
//!   least `d + 1` (weights are ≥ 1), so the Equation 6/8 lower bounds and
//!   the Equation 9 error estimate apply verbatim;
//! * termination is still `D⁻ ≥ D⁺ₖ`, so results are exact for any `εθ`.
//!
//! Push-time state deduplication (safe with unit steps) is replaced by the
//! classic lazy-deletion rule: a state re-pushed with a smaller tentative
//! distance supersedes the old entry, and stale pops are skipped.

use crate::config::KndsConfig;
use crate::engine::{pack_pair, pack_state, Candidate, Kind, QueryResult, RankedDoc, State};
use crate::metrics::QueryMetrics;
use crate::util::TopK;
use cbr_corpus::DocId;
use cbr_dradix::Drc;
use cbr_index::IndexSource;
use cbr_ontology::{ConceptId, EdgeWeights, FxHashMap, FxHashSet, Ontology};
use std::time::Instant;

/// Top-k search under weighted valid-path distances.
#[derive(Debug)]
pub struct WeightedKnds<'a, S: IndexSource> {
    ontology: &'a Ontology,
    weights: &'a EdgeWeights,
    source: &'a S,
    config: KndsConfig,
}

impl<'a, S: IndexSource> WeightedKnds<'a, S> {
    /// Creates the weighted engine.
    pub fn new(
        ontology: &'a Ontology,
        weights: &'a EdgeWeights,
        source: &'a S,
        config: KndsConfig,
    ) -> Self {
        WeightedKnds { ontology, weights, source, config }
    }

    /// Weighted RDS: top-k under `Ddq` with weighted concept distances.
    pub fn rds(&self, query: &[ConceptId], k: usize) -> QueryResult {
        self.run(Kind::Rds, query, k)
    }

    /// Weighted SDS: top-k under the symmetric `Ddd` with weighted
    /// concept distances.
    pub fn sds(&self, query_doc: &[ConceptId], k: usize) -> QueryResult {
        self.run(Kind::Sds, query_doc, k)
    }

    fn run(&self, kind: Kind, query: &[ConceptId], k: usize) -> QueryResult {
        assert!(k > 0, "k must be positive");
        let mut q: Vec<ConceptId> = query.to_vec();
        q.sort_unstable();
        q.dedup();
        assert!(!q.is_empty(), "query must contain at least one concept");

        WeightedSearch {
            ont: self.ontology,
            weights: self.weights,
            source: self.source,
            drc: Drc::with_weights(self.ontology, self.weights),
            config: &self.config,
            kind,
            nq: q.len(),
            query: q,
            candidates: FxHashMap::default(),
            first_touch: FxHashSet::default(),
            covered_pairs: FxHashSet::default(),
            best_dist: FxHashMap::default(),
            heap: TopK::new(k),
            metrics: QueryMetrics::default(),
            postings_buf: Vec::new(),
            concepts_buf: Vec::new(),
        }
        .run()
    }
}

struct WeightedSearch<'a, S: IndexSource> {
    ont: &'a Ontology,
    weights: &'a EdgeWeights,
    source: &'a S,
    drc: Drc<'a>,
    config: &'a KndsConfig,
    kind: Kind,
    query: Vec<ConceptId>,
    nq: usize,
    candidates: FxHashMap<DocId, Candidate>,
    /// Nodes already coverage-applied for the reverse direction.
    first_touch: FxHashSet<ConceptId>,
    /// `(origin, node)` pairs already coverage-applied (forward).
    covered_pairs: FxHashSet<u64>,
    /// Best tentative distance per state (Dijkstra lazy deletion).
    best_dist: FxHashMap<u64, u32>,
    heap: TopK,
    metrics: QueryMetrics,
    postings_buf: Vec<DocId>,
    concepts_buf: Vec<ConceptId>,
}

impl<S: IndexSource> WeightedSearch<'_, S> {
    fn run(mut self) -> QueryResult {
        // Distance-indexed buckets of states. Buckets grow on demand; the
        // maximum useful distance is bounded by termination.
        let mut buckets: Vec<Vec<State>> = vec![Vec::new()];
        for (i, &c) in self.query.clone().iter().enumerate() {
            let s: State = (i as u32, c, false);
            self.best_dist.insert(pack_state(s), 0);
            buckets[0].push(s);
        }

        let mut d: u32 = 0;
        loop {
            // --- process bucket `d` (traversal bucket) ----------------------
            let t0 = Instant::now();
            let mut forced = false;
            let current = std::mem::take(&mut buckets[d as usize]);
            for &state in &current {
                let (origin, node, descending) = state;
                // Lazy deletion: skip stale entries.
                if self
                    .best_dist
                    .get(&pack_state(state))
                    .is_some_and(|&best| best < d)
                {
                    continue;
                }
                self.metrics.nodes_visited += 1;
                self.apply_coverage(origin, node, d);
                self.expand(state, d, descending, &mut buckets);
            }
            let frontier_size: usize = buckets.iter().map(|b| b.len()).sum();
            if frontier_size > self.config.queue_cap {
                forced = true;
                self.metrics.forced_rounds += 1;
            }
            self.metrics.traversal += t0.elapsed();
            self.metrics.levels += 1;

            // --- examination -------------------------------------------------
            let min_unexamined = self.examine(d, forced);

            // --- termination -------------------------------------------------
            let d_minus = min_unexamined.min(self.unseen_bound(d));
            if self.config.progressive {
                let final_now = self.heap.iter().filter(|&(_, dd)| dd <= d_minus).count();
                self.metrics.progressive_results =
                    self.metrics.progressive_results.max(final_now);
            }
            if self.heap.is_full() && d_minus >= self.heap.threshold() {
                break;
            }
            // Advance to the next non-empty bucket.
            let next = (d as usize + 1..buckets.len()).find(|&i| !buckets[i].is_empty());
            match next {
                Some(i) => d = i as u32,
                None => {
                    self.finalize_exhausted();
                    break;
                }
            }
        }

        self.metrics.candidates_seen = self.candidates.len();
        let results = std::mem::replace(&mut self.heap, TopK::new(1))
            .into_sorted()
            .into_iter()
            .map(|(doc, distance)| RankedDoc { doc, distance })
            .collect();
        QueryResult { results, metrics: self.metrics }
    }

    fn apply_coverage(&mut self, origin: u32, node: ConceptId, dist: u32) {
        let fwd_new = self.covered_pairs.insert(pack_pair(origin, node));
        let rev_new = self.kind == Kind::Sds && self.first_touch.insert(node);
        if !fwd_new && !rev_new {
            return;
        }
        let t = Instant::now();
        self.postings_buf.clear();
        self.source.postings(node, &mut self.postings_buf);
        self.metrics.io += t.elapsed();

        for i in 0..self.postings_buf.len() {
            let doc = self.postings_buf[i];
            let cand = match self.candidates.entry(doc) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let len = if self.kind == Kind::Sds {
                        self.source.doc_len(doc) as u32
                    } else {
                        0
                    };
                    e.insert(Candidate::new(self.nq, len))
                }
            };
            if cand.examined {
                continue;
            }
            if fwd_new {
                cand.cover(origin, dist);
            }
            if rev_new {
                cand.rev_covered += 1;
                cand.rev_sum += dist as u64;
            }
        }
    }

    fn expand(&mut self, state: State, d: u32, descending: bool, buckets: &mut Vec<Vec<State>>) {
        let (origin, node, _) = state;
        if !descending {
            for &p in self.ont.parents(node) {
                let w = self
                    .weights
                    .weight(self.ont, p, node)
                    .expect("parent adjacency is symmetric");
                self.push(buckets, (origin, p, false), d + w);
            }
        }
        for (pos, &child) in self.ont.children(node).iter().enumerate() {
            let w = self.weights.weight_at(node, pos);
            self.push(buckets, (origin, child, true), d + w);
        }
    }

    fn push(&mut self, buckets: &mut Vec<Vec<State>>, state: State, dist: u32) {
        if self.config.dedup_visits {
            // Dijkstra relaxation: only keep strictly improving pushes.
            match self.best_dist.entry(pack_state(state)) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    if *e.get() <= dist {
                        return;
                    }
                    e.insert(dist);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(dist);
                }
            }
        }
        if buckets.len() <= dist as usize {
            buckets.resize(dist as usize + 1, Vec::new());
        }
        buckets[dist as usize].push(state);
    }

    fn examine(&mut self, d: u32, forced: bool) -> f64 {
        let t0 = Instant::now();
        let mut order: Vec<(f64, DocId)> = self
            .candidates
            .iter()
            .filter(|(_, c)| !c.examined)
            .map(|(&doc, c)| (self.lower_bound(c, d), doc))
            .collect();
        order.sort_unstable_by(|a, b| {
            a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal).then(a.1.cmp(&b.1))
        });
        self.metrics.traversal += t0.elapsed();

        let mut min_unexamined = f64::INFINITY;
        for &(lb, doc) in &order {
            if self.heap.is_full() && lb >= self.heap.threshold() {
                min_unexamined = lb;
                break;
            }
            let eps = self.error_estimate(doc, lb);
            if !forced && eps > self.config.error_threshold {
                min_unexamined = lb;
                break;
            }
            let exact = self.exact_distance(doc);
            let cand = self.candidates.get_mut(&doc).expect("candidate exists");
            cand.examined = true;
            self.metrics.docs_examined += 1;
            self.heap.offer(doc, exact);
        }
        min_unexamined
    }

    fn lower_bound(&self, c: &Candidate, d: u32) -> f64 {
        let next = (d + 1) as u64;
        let fwd = c.partial + (self.nq as u64 - c.covered as u64) * next;
        match self.kind {
            Kind::Rds => fwd as f64,
            Kind::Sds => {
                let rev = c.rev_sum + (c.doc_len as u64 - c.rev_covered as u64) * next;
                fwd as f64 / self.nq as f64 + rev as f64 / c.doc_len.max(1) as f64
            }
        }
    }

    fn partial_distance(&self, c: &Candidate) -> f64 {
        match self.kind {
            Kind::Rds => c.partial as f64,
            Kind::Sds => {
                c.partial as f64 / self.nq as f64 + c.rev_sum as f64 / c.doc_len.max(1) as f64
            }
        }
    }

    fn error_estimate(&self, doc: DocId, lb: f64) -> f64 {
        let c = &self.candidates[&doc];
        if lb <= 0.0 {
            return 0.0;
        }
        1.0 - self.partial_distance(c) / lb
    }

    fn unseen_bound(&self, d: u32) -> f64 {
        let next = (d + 1) as f64;
        match self.kind {
            Kind::Rds => self.nq as f64 * next,
            Kind::Sds => 2.0 * next,
        }
    }

    fn exact_distance(&mut self, doc: DocId) -> f64 {
        let c = &self.candidates[&doc];
        let complete = match self.kind {
            Kind::Rds => c.covered as usize == self.nq,
            Kind::Sds => c.covered as usize == self.nq && c.rev_covered == c.doc_len,
        };
        if complete {
            self.metrics.exact_from_partial += 1;
            return self.partial_distance(c);
        }
        let t = Instant::now();
        self.concepts_buf.clear();
        self.source.doc_concepts(doc, &mut self.concepts_buf);
        self.metrics.io += t.elapsed();

        let t = Instant::now();
        let exact = match self.kind {
            Kind::Rds => {
                let dd = self.drc.document_query_distance(&self.concepts_buf, &self.query);
                if dd == cbr_dradix::INFINITE {
                    f64::INFINITY
                } else {
                    dd as f64
                }
            }
            Kind::Sds => self.drc.document_document_distance(&self.concepts_buf, &self.query),
        };
        self.metrics.distance_calc += t.elapsed();
        self.metrics.drc_calls += 1;
        exact
    }

    fn finalize_exhausted(&mut self) {
        let t0 = Instant::now();
        let docs: Vec<DocId> = self
            .candidates
            .iter()
            .filter(|(_, c)| !c.examined)
            .map(|(&doc, _)| doc)
            .collect();
        for doc in docs {
            let c = &self.candidates[&doc];
            debug_assert_eq!(c.covered as usize, self.nq, "exhaustion implies full coverage");
            let exact = self.partial_distance(c);
            self.metrics.exact_from_partial += 1;
            self.metrics.docs_examined += 1;
            self.candidates.get_mut(&doc).expect("exists").examined = true;
            self.heap.offer(doc, exact);
        }
        if !self.heap.is_full() {
            for i in 0..self.source.num_docs() {
                let doc = DocId::from_index(i);
                if !self.candidates.contains_key(&doc) && self.source.is_live(doc) {
                    self.heap.offer(doc, f64::INFINITY);
                }
            }
        }
        self.metrics.distance_calc += t0.elapsed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbr_corpus::{Corpus, CorpusGenerator, CorpusProfile};
    use cbr_index::MemorySource;
    use cbr_ontology::{fixture, weighted, GeneratorConfig, OntologyGenerator};

    /// Exhaustive weighted baseline for verification.
    fn weighted_scan_rds(
        ont: &Ontology,
        w: &EdgeWeights,
        source: &MemorySource,
        q: &[ConceptId],
        k: usize,
    ) -> Vec<f64> {
        let mut dists: Vec<f64> = (0..source.num_docs())
            .map(|i| {
                let mut buf = Vec::new();
                source.doc_concepts(DocId::from_index(i), &mut buf);
                let d = weighted::document_query_distance(ont, w, &buf, q);
                if d == u64::MAX {
                    f64::INFINITY
                } else {
                    d as f64
                }
            })
            .collect();
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        dists.truncate(k);
        dists
    }

    fn weighted_scan_sds(
        ont: &Ontology,
        w: &EdgeWeights,
        source: &MemorySource,
        q: &[ConceptId],
        k: usize,
    ) -> Vec<f64> {
        let mut dists: Vec<f64> = (0..source.num_docs())
            .map(|i| {
                let mut buf = Vec::new();
                source.doc_concepts(DocId::from_index(i), &mut buf);
                weighted::document_document_distance(ont, w, &buf, q)
            })
            .collect();
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        dists.truncate(k);
        dists
    }

    #[test]
    fn unit_weights_match_the_unweighted_engine() {
        let fig = fixture::figure3();
        let c = |n: &str| fig.concept(n);
        let corpus = Corpus::from_concept_sets(vec![
            (vec![c("F"), c("R"), c("T"), c("V")], 0),
            (vec![c("I"), c("L"), c("U")], 0),
            (vec![c("M"), c("N")], 0),
        ]);
        let source = MemorySource::build(&corpus, fig.ontology.len());
        let w = EdgeWeights::uniform(&fig.ontology);
        let weighted_engine =
            WeightedKnds::new(&fig.ontology, &w, &source, KndsConfig::default());
        let plain = crate::Knds::new(&fig.ontology, &source, KndsConfig::default());
        let q = fig.example_query();
        let a = weighted_engine.rds(&q, 3);
        let b = plain.rds(&q, 3);
        for (x, y) in a.results.iter().zip(b.results.iter()) {
            assert_eq!(x.doc, y.doc);
            assert_eq!(x.distance, y.distance);
        }
    }

    #[test]
    fn weighted_rds_matches_exhaustive_scan() {
        let ont = OntologyGenerator::new(GeneratorConfig::small(400).with_seed(9)).generate();
        let corpus = CorpusGenerator::new(
            &ont,
            CorpusProfile::radio_like().with_num_docs(50).with_mean_concepts(8.0),
        )
        .generate();
        let source = MemorySource::build(&corpus, ont.len());
        let w = EdgeWeights::from_fn(&ont, |p, c| 1 + (p.0.wrapping_add(c.0) % 3));
        let engine = WeightedKnds::new(&ont, &w, &source, KndsConfig::default());
        let queries: Vec<Vec<ConceptId>> = corpus
            .documents()
            .filter(|d| d.num_concepts() >= 2)
            .take(5)
            .map(|d| d.concepts()[..2].to_vec())
            .collect();
        for (i, q) in queries.iter().enumerate() {
            for eps in [0.0, 0.5, 1.0] {
                let cfg = KndsConfig::default().with_error_threshold(eps);
                let engine = WeightedKnds::new(&ont, &w, &source, cfg);
                let got: Vec<f64> = engine.rds(q, 5).results.iter().map(|r| r.distance).collect();
                let expect = weighted_scan_rds(&ont, &w, &source, q, 5);
                assert_eq!(got.len(), expect.len());
                for (a, b) in got.iter().zip(expect.iter()) {
                    assert!(
                        (a - b).abs() < 1e-9 || (a.is_infinite() && b.is_infinite()),
                        "query {i} eps {eps}: {a} vs {b}"
                    );
                }
            }
            let _ = engine;
        }
    }

    #[test]
    fn weighted_sds_matches_exhaustive_scan() {
        let ont = OntologyGenerator::new(GeneratorConfig::small(300).with_seed(10)).generate();
        let corpus = CorpusGenerator::new(
            &ont,
            CorpusProfile::radio_like().with_num_docs(40).with_mean_concepts(6.0),
        )
        .generate();
        let source = MemorySource::build(&corpus, ont.len());
        let w = EdgeWeights::from_fn(&ont, |p, _| 1 + (p.0 % 2));
        let q = corpus
            .documents()
            .find(|d| d.num_concepts() >= 3)
            .unwrap()
            .concepts()
            .to_vec();
        let engine = WeightedKnds::new(&ont, &w, &source, KndsConfig::default());
        let got: Vec<f64> = engine.sds(&q, 5).results.iter().map(|r| r.distance).collect();
        let expect = weighted_scan_sds(&ont, &w, &source, &q, 5);
        for (a, b) in got.iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn heavier_weights_change_the_ranking() {
        // Sanity: the weighting actually matters — a query whose unit-weight
        // winner is reached through a penalized region must change distance.
        let fig = fixture::figure3();
        let c = |n: &str| fig.concept(n);
        let corpus = Corpus::from_concept_sets(vec![
            (vec![c("M")], 0), // near I through G
            (vec![c("T")], 0), // far from I
        ]);
        let source = MemorySource::build(&corpus, fig.ontology.len());
        let q = vec![c("I")];

        let unit = EdgeWeights::uniform(&fig.ontology);
        let a = WeightedKnds::new(&fig.ontology, &unit, &source, KndsConfig::default())
            .rds(&q, 2);
        assert_eq!(a.results[0].doc, DocId(0));

        // Penalize I's own edges heavily: both documents get farther, and
        // the distances reflect the weights.
        let i = c("I");
        let g = c("G");
        let heavy = EdgeWeights::from_fn(&fig.ontology, |p, ch| {
            if p == i || (p == g && ch == i) {
                50
            } else {
                1
            }
        });
        let b = WeightedKnds::new(&fig.ontology, &heavy, &source, KndsConfig::default())
            .rds(&q, 2);
        assert!(b.results[0].distance > a.results[0].distance);
    }
}
