//! Seeded-violation fixture: engine scoring with a sign-changing cast
//! and an unguarded, precision-losing ranking division.

/// Query engine over a fixed query geometry.
pub struct Engine {
    nq: usize,
}

impl Engine {
    /// RDS entry point; seeded B01: i64 -> u64 flips the sign.
    pub fn rds_with(&self, delta: i64) -> f64 {
        let shifted = delta as u64;
        score(shifted, self.nq)
    }

    /// SDS entry point; the clean twin converts and guards properly.
    pub fn sds_with(&self, delta: i64) -> f64 {
        let shifted = delta.unsigned_abs();
        score_guarded(shifted, self.nq)
    }
}

/// Seeded B05 (x3): two lossy 64-bit -> f64 casts and a division whose
/// divisor has no zero guard.
fn score(total: u64, nq: usize) -> f64 {
    let t = total as f64;
    t / nq as f64
}

/// Clean twin: exact f64 conversion and a clamped divisor.
fn score_guarded(mag: u64, nq: usize) -> f64 {
    let t = f64::from(u32::try_from(mag).unwrap_or(u32::MAX));
    t / nq.max(1) as f64
}
