//! Dewey path addresses (Section 3.1).
//!
//! Every root-to-concept path is encoded with the Dewey Decimal scheme: if a
//! node `cj` is the `j`-th child of `ci` and `l{ci}` labels a path from the
//! root to `ci`, then `l{ci}.j` labels the extended path to `cj`. The root's
//! own address is the empty sequence `ε`. Because the ontology is a DAG, a
//! concept owns one address per distinct root path; [`PathTable`]
//! materializes all of them in an arena, sorted lexicographically per
//! concept (the order the DRC construction phase consumes them in,
//! Algorithm 1 line 3).

use crate::graph::Ontology;
use crate::id::ConceptId;
use std::cmp::Ordering;
use std::fmt;

/// An owned Dewey address: the sequence of 1-based child ordinals along one
/// root-to-concept path. Displayed in the paper's dotted form (`1.1.1.2`).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct DeweyAddress(Vec<u32>);

impl DeweyAddress {
    /// Creates an address from raw components.
    pub fn new(components: Vec<u32>) -> Self {
        DeweyAddress(components)
    }

    /// The components of the address.
    #[inline]
    pub fn components(&self) -> &[u32] {
        &self.0
    }

    /// Number of components — equal to the depth of the path's endpoint.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether this is the root's empty address.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Parses the dotted notation used throughout the paper (`"1.1.1.2"`).
    /// An empty string parses to the root address.
    pub fn parse(s: &str) -> Option<Self> {
        if s.is_empty() {
            return Some(DeweyAddress(Vec::new()));
        }
        s.split('.')
            .map(|part| part.parse::<u32>().ok().filter(|&c| c > 0))
            .collect::<Option<Vec<u32>>>()
            .map(DeweyAddress)
    }
}

impl fmt::Display for DeweyAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in &self.0 {
            if !first {
                write!(f, ".")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        Ok(())
    }
}

impl fmt::Debug for DeweyAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Compares two component slices lexicographically, shorter-prefix-first —
/// the order `Pd`/`Pq` are consumed in by Algorithm 1.
#[inline]
pub fn compare_components(a: &[u32], b: &[u32]) -> Ordering {
    a.cmp(b)
}

/// Length of the longest common prefix of two component slices.
#[inline]
pub fn longest_common_prefix(a: &[u32], b: &[u32]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// All Dewey addresses of every concept, stored in a shared arena.
///
/// Addresses of one concept are contiguous and sorted lexicographically.
/// Build cost is `O(Σ_c paths(c) · depth(c))`; the generator bounds
/// `paths(c)` (Section 2 of DESIGN.md) so this stays linear in practice.
#[derive(Debug)]
pub struct PathTable {
    /// Arena of address components.
    arena: Vec<u32>,
    /// Per-address `(arena offset, length)`; addresses of concept `c` occupy
    /// `addr_ranges[concept_offsets[c] .. concept_offsets[c+1]]`.
    addr_ranges: Vec<(u32, u16)>,
    concept_offsets: Vec<u32>,
    /// Global lexicographic rank of each address (parallel to
    /// `addr_ranges`): `ranks[i] < ranks[j]` iff address `i`'s component
    /// sequence sorts before address `j`'s. An address names a unique root
    /// path, so ranks are distinct and consumers can order any address
    /// subset with single-integer comparisons instead of slice compares.
    ranks: Vec<u32>,
}

impl PathTable {
    /// Enumerates every root path of every concept of `ont`.
    pub fn build(ont: &Ontology) -> PathTable {
        Self::build_impl(ont, None).expect("uncapped build cannot fail")
    }

    /// Like [`PathTable::build`] but fails with
    /// [`OntologyError::TooManyPaths`](crate::OntologyError::TooManyPaths)
    /// if any concept exceeds `cap` addresses. SNOMED-CT's maximum is 29
    /// paths per concept; a cap around 32–64 guards against pathological
    /// inputs without affecting realistic ontologies.
    pub fn build_capped(ont: &Ontology, cap: usize) -> crate::Result<PathTable> {
        Self::build_impl(ont, Some(cap))
    }

    fn build_impl(ont: &Ontology, cap: Option<usize>) -> crate::Result<PathTable> {
        let n = ont.len();
        // Addresses per concept, filled in topological order so every
        // parent's addresses are complete before its children extend them.
        let mut per_concept: Vec<Vec<Vec<u32>>> = vec![Vec::new(); n];
        per_concept[ont.root().index()].push(Vec::new());

        for &c in ont.topological_order() {
            if c != ont.root() {
                let mut addrs = Vec::new();
                // Ordinals ride on the reverse edges (precomputed at build),
                // so extending a parent's addresses never rescans its child
                // list.
                for (p, ordinal) in ont.parents_with_ordinals(c) {
                    for base in &per_concept[p.index()] {
                        let mut addr = Vec::with_capacity(base.len() + 1);
                        addr.extend_from_slice(base);
                        addr.push(ordinal);
                        addrs.push(addr);
                    }
                }
                if let Some(cap) = cap {
                    if addrs.len() > cap {
                        return Err(crate::OntologyError::TooManyPaths { concept: c, cap });
                    }
                }
                addrs.sort_unstable();
                per_concept[c.index()] = addrs;
            }
        }

        // Flatten into the arena.
        let mut arena = Vec::new();
        let mut addr_ranges = Vec::new();
        let mut concept_offsets = Vec::with_capacity(n + 1);
        concept_offsets.push(0u32);
        for addrs in &per_concept {
            for addr in addrs {
                debug_assert!(addr.len() <= u16::MAX as usize, "path deeper than 65535");
                addr_ranges.push((arena.len() as u32, addr.len() as u16));
                arena.extend_from_slice(addr);
            }
            concept_offsets.push(addr_ranges.len() as u32);
        }

        // Rank every address by content, once. D-Radix probes re-sort the
        // staged address multiset of d ∪ q on every build; with global
        // ranks that sort degenerates to integer comparisons.
        let mut order: Vec<u32> = (0..addr_ranges.len() as u32).collect();
        let slice_of = |i: u32| -> &[u32] {
            let (off, len) = addr_ranges[i as usize];
            &arena[off as usize..off as usize + len as usize]
        };
        order.sort_unstable_by(|&a, &b| slice_of(a).cmp(slice_of(b)));
        let mut ranks = vec![0u32; addr_ranges.len()];
        for (rank, &i) in order.iter().enumerate() {
            ranks[i as usize] = rank as u32;
        }

        Ok(PathTable { arena, addr_ranges, concept_offsets, ranks })
    }

    /// The Dewey addresses of `c` as component slices, lexicographically
    /// sorted.
    pub fn addresses(&self, c: ConceptId) -> impl ExactSizeIterator<Item = &[u32]> + Clone + '_ {
        let lo = self.concept_offsets[c.index()] as usize;
        let hi = self.concept_offsets[c.index() + 1] as usize;
        self.addr_ranges[lo..hi]
            .iter()
            .map(move |&(off, len)| &self.arena[off as usize..off as usize + len as usize])
    }

    /// [`addresses`](Self::addresses) paired with each address's global
    /// lexicographic rank: ordering a set of addresses from any mix of
    /// concepts by rank is exactly the content order, at one integer
    /// compare per decision.
    pub fn addresses_ranked(
        &self,
        c: ConceptId,
    ) -> impl ExactSizeIterator<Item = (u32, &[u32])> + Clone + '_ {
        let lo = self.concept_offsets[c.index()] as usize;
        let hi = self.concept_offsets[c.index() + 1] as usize;
        self.addr_ranges[lo..hi].iter().zip(&self.ranks[lo..hi]).map(move |(&(off, len), &rank)| {
            (rank, &self.arena[off as usize..off as usize + len as usize])
        })
    }

    /// Number of addresses (root paths) of concept `c`.
    #[inline]
    pub fn path_count(&self, c: ConceptId) -> usize {
        (self.concept_offsets[c.index() + 1] - self.concept_offsets[c.index()]) as usize
    }

    /// Total number of addresses across all concepts.
    pub fn total_addresses(&self) -> usize {
        self.addr_ranges.len()
    }

    /// Number of concepts covered.
    pub fn num_concepts(&self) -> usize {
        self.concept_offsets.len() - 1
    }

    /// Mean addresses per concept (the paper reports 9.78 for SNOMED-CT).
    pub fn avg_paths_per_concept(&self) -> f64 {
        self.total_addresses() as f64 / self.num_concepts() as f64
    }

    /// Mean address length (the paper reports 14.1 for SNOMED-CT).
    pub fn avg_path_length(&self) -> f64 {
        if self.addr_ranges.is_empty() {
            return 0.0;
        }
        let total: u64 = self.addr_ranges.iter().map(|&(_, len)| len as u64).sum();
        total as f64 / self.addr_ranges.len() as f64
    }

    /// Collects the lexicographically sorted address list for a set of
    /// concepts — the `Pd` / `Pq` inputs of Algorithm 1. Each entry pairs an
    /// address with the concept it leads to.
    pub fn sorted_address_list(&self, concepts: &[ConceptId]) -> Vec<(&[u32], ConceptId)> {
        let mut out: Vec<(&[u32], ConceptId)> = Vec::new();
        for &c in concepts {
            for addr in self.addresses(c) {
                out.push((addr, c));
            }
        }
        out.sort_unstable_by(|a, b| a.0.cmp(b.0).then_with(|| a.1.cmp(&b.1)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::OntologyBuilder;

    fn diamond() -> Ontology {
        let mut b = OntologyBuilder::new();
        let root = b.add_concept("root");
        let a = b.add_concept("a");
        let bb = b.add_concept("b");
        let leaf = b.add_concept("leaf");
        b.add_edge(root, a).unwrap();
        b.add_edge(root, bb).unwrap();
        b.add_edge(a, leaf).unwrap();
        b.add_edge(bb, leaf).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dewey_display_and_parse() {
        let a = DeweyAddress::parse("1.1.1.2").unwrap();
        assert_eq!(a.components(), &[1, 1, 1, 2]);
        assert_eq!(a.to_string(), "1.1.1.2");
        assert_eq!(a.len(), 4);
        assert!(DeweyAddress::parse("").unwrap().is_empty());
        assert!(DeweyAddress::parse("1..2").is_none());
        assert!(DeweyAddress::parse("0.1").is_none(), "components are 1-based");
        assert!(DeweyAddress::parse("a.b").is_none());
    }

    #[test]
    fn lcp_and_ordering() {
        assert_eq!(longest_common_prefix(&[1, 1, 2], &[1, 1, 3]), 2);
        assert_eq!(longest_common_prefix(&[1], &[2]), 0);
        assert_eq!(longest_common_prefix(&[1, 2], &[1, 2]), 2);
        assert_eq!(compare_components(&[1, 1], &[1, 1, 1]), Ordering::Less);
        assert_eq!(compare_components(&[1, 2], &[1, 1, 9]), Ordering::Greater);
    }

    #[test]
    fn diamond_path_table() {
        let ont = diamond();
        let pt = ont.path_table();
        assert_eq!(pt.path_count(ConceptId(0)), 1); // root: ε
        assert_eq!(pt.addresses(ConceptId(0)).next().unwrap(), &[] as &[u32]);
        assert_eq!(pt.path_count(ConceptId(3)), 2);
        let leaf_addrs: Vec<&[u32]> = pt.addresses(ConceptId(3)).collect();
        assert_eq!(leaf_addrs, vec![&[1u32, 1][..], &[2u32, 1][..]]);
        assert_eq!(pt.total_addresses(), 5);
        assert_eq!(pt.num_concepts(), 4);
    }

    #[test]
    fn addresses_are_sorted_per_concept() {
        // root with children x(1), y(2); both parents of z — z's addresses
        // [1,*] and [2,*] must come out sorted.
        let mut b = OntologyBuilder::new();
        let root = b.add_concept("root");
        let x = b.add_concept("x");
        let y = b.add_concept("y");
        let z = b.add_concept("z");
        b.add_edge(root, x).unwrap();
        b.add_edge(root, y).unwrap();
        b.add_edge(y, z).unwrap(); // declare the deeper edge first
        b.add_edge(x, z).unwrap();
        let ont = b.build().unwrap();
        let pt = ont.path_table();
        let addrs: Vec<&[u32]> = pt.addresses(z).collect();
        assert_eq!(addrs, vec![&[1u32, 1][..], &[2u32, 1][..]]);
    }

    #[test]
    fn capped_build_rejects_explosion() {
        // A chain of diamonds doubles the path count at every level.
        let mut b = OntologyBuilder::new();
        let mut top = b.add_concept("root");
        for i in 0..6 {
            let l = b.add_concept(format!("l{i}"));
            let r = b.add_concept(format!("r{i}"));
            let bottom = b.add_concept(format!("m{i}"));
            b.add_edge(top, l).unwrap();
            b.add_edge(top, r).unwrap();
            b.add_edge(l, bottom).unwrap();
            b.add_edge(r, bottom).unwrap();
            top = bottom;
        }
        let ont = b.build().unwrap();
        assert!(PathTable::build_capped(&ont, 16).is_err());
        let pt = PathTable::build_capped(&ont, 64).unwrap();
        assert_eq!(pt.path_count(top), 64);
    }

    #[test]
    fn sorted_address_list_merges_concept_sets() {
        let ont = diamond();
        let pt = ont.path_table();
        let list = pt.sorted_address_list(&[ConceptId(3), ConceptId(1)]);
        let addrs: Vec<&[u32]> = list.iter().map(|&(a, _)| a).collect();
        assert_eq!(addrs, vec![&[1u32][..], &[1u32, 1][..], &[2u32, 1][..]]);
        assert_eq!(list[0].1, ConceptId(1));
        assert_eq!(list[1].1, ConceptId(3));
    }

    #[test]
    fn stats_match_structure() {
        let ont = diamond();
        let pt = ont.path_table();
        assert!((pt.avg_paths_per_concept() - 1.25).abs() < 1e-9);
        // lengths: 0 (root), 1, 1, 2, 2 -> 6/5
        assert!((pt.avg_path_length() - 1.2).abs() < 1e-9);
    }
}
