//! Shape statistics of an ontology.
//!
//! Section 6.1 of the paper characterizes SNOMED-CT by exactly these
//! numbers (296,433 concepts; 4.53 average children; 9.78 Dewey paths per
//! concept of average length 14.1). The synthetic generator is calibrated
//! against this report, and the reproduction harness prints it next to the
//! paper's figures.

use crate::graph::Ontology;
use std::fmt;

/// Aggregate shape statistics of an [`Ontology`].
#[derive(Debug, Clone, PartialEq)]
pub struct OntologyStats {
    /// Total concepts.
    pub num_concepts: usize,
    /// Total `is-a` edges.
    pub num_edges: usize,
    /// Concepts without children.
    pub num_leaves: usize,
    /// Mean children over *internal* (non-leaf) concepts — the "average of
    /// 4.53 children" figure the paper quotes for SNOMED-CT.
    pub avg_children_internal: f64,
    /// Mean children over all concepts (= edges / concepts).
    pub avg_children_all: f64,
    /// Mean parents over non-root concepts.
    pub avg_parents: f64,
    /// Maximum minimum-depth.
    pub max_depth: u32,
    /// Mean minimum-depth over all concepts.
    pub avg_depth: f64,
    /// Mean Dewey addresses per concept (paper: 9.78).
    pub avg_paths_per_concept: f64,
    /// Maximum Dewey addresses of any concept (paper: up to 29).
    pub max_paths_per_concept: usize,
    /// Mean Dewey address length (paper: 14.1).
    pub avg_path_length: f64,
}

impl OntologyStats {
    /// Computes statistics for `ont`, materializing its path table if
    /// needed.
    pub fn compute(ont: &Ontology) -> OntologyStats {
        let n = ont.len();
        let mut num_leaves = 0usize;
        let mut max_depth = 0u32;
        let mut depth_sum = 0u64;
        for c in ont.concepts() {
            if ont.is_leaf(c) {
                num_leaves += 1;
            }
            let d = ont.depth(c);
            max_depth = max_depth.max(d);
            depth_sum += d as u64;
        }
        let internal = n - num_leaves;
        let pt = ont.path_table();
        let max_paths = ont.concepts().map(|c| pt.path_count(c)).max().unwrap_or(0);
        OntologyStats {
            num_concepts: n,
            num_edges: ont.num_edges(),
            num_leaves,
            avg_children_internal: if internal == 0 {
                0.0
            } else {
                ont.num_edges() as f64 / internal as f64
            },
            avg_children_all: ont.num_edges() as f64 / n as f64,
            avg_parents: if n <= 1 { 0.0 } else { ont.num_edges() as f64 / (n - 1) as f64 },
            max_depth,
            avg_depth: depth_sum as f64 / n as f64,
            avg_paths_per_concept: pt.avg_paths_per_concept(),
            max_paths_per_concept: max_paths,
            avg_path_length: pt.avg_path_length(),
        }
    }
}

impl fmt::Display for OntologyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "concepts:              {}", self.num_concepts)?;
        writeln!(f, "edges:                 {}", self.num_edges)?;
        writeln!(f, "leaves:                {}", self.num_leaves)?;
        writeln!(f, "avg children (int.):   {:.2}", self.avg_children_internal)?;
        writeln!(f, "avg parents:           {:.2}", self.avg_parents)?;
        writeln!(f, "max / avg depth:       {} / {:.1}", self.max_depth, self.avg_depth)?;
        writeln!(
            f,
            "paths per concept:     {:.2} avg, {} max",
            self.avg_paths_per_concept, self.max_paths_per_concept
        )?;
        write!(f, "avg path length:       {:.1}", self.avg_path_length)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture;

    #[test]
    fn figure3_stats() {
        let fig = fixture::figure3();
        let s = OntologyStats::compute(&fig.ontology);
        assert_eq!(s.num_concepts, 22);
        assert_eq!(s.num_edges, 22);
        // Leaves: C, M, N, L, T, U, V.
        assert_eq!(s.num_leaves, 7);
        assert_eq!(s.max_depth, 6); // U and V sit 6 below A via D.F...
        assert!(s.avg_paths_per_concept > 1.0);
        assert_eq!(s.max_paths_per_concept, 2);
        let rendered = s.to_string();
        assert!(rendered.contains("concepts:"));
        assert!(rendered.contains("22"));
    }

    #[test]
    fn avg_children_internal_exceeds_all() {
        let fig = fixture::figure3();
        let s = OntologyStats::compute(&fig.ontology);
        assert!(s.avg_children_internal >= s.avg_children_all);
    }
}
