//! Seeded lock-discipline violations for the race-rule fixture run.
//!
//! Every function here either plants a bug a specific rule must catch
//! (exact counts asserted in `cbr-race`'s tests and enforced by
//! `--expect-findings`) or is a deliberately clean twin proving the
//! rule does not overfire. This tree is analyzed only by
//! `cbr-race --fixtures`; the workspace walkers skip `fixtures/`.

/// Interprocedural lock-order inversion: `ab` takes `a` then `b` (via
/// `lock_b`), `ba` takes `b` then `a` — one R01 cycle, plus R02 for
/// each nested acquisition made while a guard is held.
pub struct Svc {
    a: Mutex<u32>,
    b: Mutex<u32>,
    writer: Mutex<u32>,
    cell: Published<u32>,
}

impl Svc {
    /// Takes `a`, then `b` through a helper. R01 edge `a -> b`.
    pub fn ab(&self) {
        let _g = self.a.lock();
        self.lock_b();
    }

    fn lock_b(&self) {
        let _g = self.b.lock();
    }

    /// Takes `b`, then `a` through a helper. R01 edge `b -> a` — cycle.
    pub fn ba(&self) {
        let _g = self.b.lock();
        self.lock_a();
    }

    fn lock_a(&self) {
        let _g = self.a.lock();
    }

    /// Classic lost update: the value is read under one critical
    /// section and written back under a later one. R01 (split).
    pub fn read_modify_write(&self) {
        let v = *self.a.lock();
        *self.a.lock() = v + 1;
    }

    /// Publishes with no writer guard anywhere. R03.
    pub fn bad_publish(&self) {
        self.cell.publish(1);
    }

    /// Publishes under the writer lock — the disciplined shape.
    pub fn good_publish(&self) {
        let _g = self.writer.lock();
        self.cell.publish(2);
    }

    /// Publish helper with no local guard; its only caller holds one.
    fn publish_inner(&self) {
        self.cell.publish(3);
    }

    /// Caller-side writer critical section satisfies R03 for
    /// `publish_inner`.
    pub fn outer(&self) {
        let _g = self.writer.lock();
        self.publish_inner();
    }
}

/// Lock inversion across spawned closures, with the locks reaching the
/// threads through tuple-destructured clones: the alias map must fold
/// `a1`/`a2` back to `a` for the cycle to appear. One R01 cycle plus
/// R02 for each closure's nested acquisition.
pub fn clone_inversion(a: Arc<Mutex<u32>>, b: Arc<Mutex<u32>>) {
    let (a1, b1) = (a.clone(), b.clone());
    spawn(move || {
        let _ga = a1.lock();
        let _gb = b1.lock();
    });
    let (a2, b2) = (a.clone(), b.clone());
    spawn(move || {
        let _gb = b2.lock();
        let _ga = a2.lock();
    });
}

/// A slot popped inside the spawned closure is never pushed back. R05.
pub fn leaky_spawn(pool: &SlotPool) {
    spawn(|| {
        let _w = pool.pop();
    });
}

/// A slot popped on the spawning thread is returned from inside the
/// closure — it crosses the thread boundary. R05.
pub fn cross_thread_push(pool: &SlotPool) {
    let w = pool.pop();
    spawn(move || {
        pool.push(w);
    });
}

/// Pop and push balance inside the same closure — clean.
pub fn balanced(pool: &SlotPool) {
    spawn(|| {
        let w = pool.pop();
        pool.push(w);
    });
}

/// Guard explicitly dropped before the blocking join — clean under R02.
pub fn drops_before_join(m: &Mutex<u32>, h: JoinHandle) {
    let g = m.lock();
    drop(g);
    h.join();
}
