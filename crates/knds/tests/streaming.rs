//! Progressive-emission invariants (Section 5.3, optimization 4):
//! each result is emitted exactly once, in non-decreasing distance order,
//! and the emitted set equals the final top-k.

use cbr_corpus::{CorpusGenerator, CorpusProfile};
use cbr_index::MemorySource;
use cbr_knds::{Knds, KndsConfig, RankedDoc};
use cbr_ontology::{ConceptId, GeneratorConfig, OntologyGenerator};

fn setup() -> (cbr_ontology::Ontology, MemorySource, Vec<Vec<ConceptId>>) {
    let ont = OntologyGenerator::new(GeneratorConfig::small(600)).generate();
    let corpus = CorpusGenerator::new(
        &ont,
        CorpusProfile::radio_like().with_num_docs(70).with_mean_concepts(10.0),
    )
    .generate();
    let queries: Vec<Vec<ConceptId>> = corpus
        .documents()
        .filter(|d| d.num_concepts() >= 3)
        .take(6)
        .map(|d| d.concepts()[..3].to_vec())
        .collect();
    let source = MemorySource::build(&corpus, ont.len());
    (ont, source, queries)
}

fn check_stream(emitted: &[RankedDoc], result: &[RankedDoc], ctx: &str) {
    assert_eq!(emitted.len(), result.len(), "{ctx}: every result emitted exactly once");
    // Emission is sorted by distance.
    for w in emitted.windows(2) {
        assert!(w[0].distance <= w[1].distance, "{ctx}: stream out of order");
    }
    // Emitted set equals result set.
    let mut a: Vec<_> = emitted.iter().map(|r| (r.doc, r.distance.to_bits())).collect();
    let mut b: Vec<_> = result.iter().map(|r| (r.doc, r.distance.to_bits())).collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "{ctx}: emitted set mismatch");
}

#[test]
fn rds_stream_matches_results_for_all_thresholds() {
    let (ont, source, queries) = setup();
    for eps in [0.0, 0.5, 1.0] {
        let knds = Knds::new(&ont, &source, KndsConfig::default().with_error_threshold(eps));
        for (i, q) in queries.iter().enumerate() {
            let mut emitted = Vec::new();
            let r = knds.rds_streaming(q, 5, |d| emitted.push(d));
            check_stream(&emitted, &r.results, &format!("eps {eps} query {i}"));
        }
    }
}

#[test]
fn sds_stream_matches_results() {
    let (ont, source, queries) = setup();
    let knds = Knds::new(&ont, &source, KndsConfig::default());
    for (i, q) in queries.iter().enumerate() {
        let mut emitted = Vec::new();
        let r = knds.sds_streaming(q, 4, |d| emitted.push(d));
        check_stream(&emitted, &r.results, &format!("sds query {i}"));
    }
}

#[test]
fn some_results_arrive_before_termination_on_selective_queries() {
    let (ont, source, queries) = setup();
    let knds = Knds::new(&ont, &source, KndsConfig::default());
    // Aggregate: across the workload, at least one query should emit one or
    // more results early (otherwise the optimization is dead code).
    let mut early = 0usize;
    for q in &queries {
        let r = knds.rds(q, 5);
        early += r.metrics.progressive_results;
    }
    assert!(early > 0, "progressive emission never fired across the workload");
}

#[test]
fn streaming_with_variants_reuse_a_caller_workspace() {
    let (ont, source, queries) = setup();
    let knds = Knds::new(&ont, &source, KndsConfig::default());
    let mut ws = cbr_knds::KndsWorkspace::new();
    for (i, q) in queries.iter().enumerate() {
        let mut emitted = Vec::new();
        let r = knds.rds_streaming_with(&mut ws, q, 5, |d| emitted.push(d));
        check_stream(&emitted, &r.results, &format!("rds_with query {i}"));
        assert_eq!(r.results, knds.rds(q, 5).results);

        let mut emitted = Vec::new();
        let r = knds.sds_streaming_with(&mut ws, q, 4, |d| emitted.push(d));
        check_stream(&emitted, &r.results, &format!("sds_with query {i}"));
        assert_eq!(r.results, knds.sds(q, 4).results);
    }
}

#[test]
fn streaming_with_progressive_disabled_still_flushes_everything() {
    let (ont, source, queries) = setup();
    let cfg = KndsConfig { progressive: false, ..KndsConfig::default() };
    let knds = Knds::new(&ont, &source, cfg);
    let mut emitted = Vec::new();
    let r = knds.rds_streaming(&queries[0], 5, |d| emitted.push(d));
    check_stream(&emitted, &r.results, "progressive off");
}
