//! Beyond the paper: the future-work features in action.
//!
//! Section 7 of the paper names three directions; this example runs all of
//! them on one corpus:
//!
//! 1. **other semantic distances** — re-ranking RDS results with the
//!    information-content family (Resnik, Lin, Jiang–Conrath, Wu–Palmer);
//! 2. **non-is-a / weighted edges** — the same query under unit weights
//!    and under a weighting that penalizes shallow (generic) edges, via
//!    the Dijkstra-frontier `WeightedKnds`;
//! 3. **combining with IR-style retrieval** — ontology-based query
//!    expansion with normalized score merging (footnote 3).
//!
//! ```sh
//! cargo run --release --example beyond_the_paper
//! ```

use cbr_corpus::{CorpusGenerator, CorpusProfile, FilterConfig};
use cbr_index::MemorySource;
use cbr_knds::{KndsConfig, WeightedKnds};
use cbr_ontology::EdgeWeights;
use concept_rank::prelude::*;
use concept_rank::{EngineBuilder, ExpansionConfig, Measure};

fn main() {
    let ontology = OntologyGenerator::new(GeneratorConfig::snomed_like(6_000)).generate();
    let corpus = CorpusGenerator::new(
        &ontology,
        CorpusProfile::radio_like().with_num_docs(400).with_mean_concepts(18.0),
    )
    .generate();

    // Keep copies for the weighted engine (the facade owns its inputs).
    let ont2 = OntologyGenerator::new(GeneratorConfig::snomed_like(6_000)).generate();
    let source = MemorySource::build(&corpus, ont2.len());

    let engine = EngineBuilder::new().filter(FilterConfig::default()).build(ontology, corpus);
    let query: Vec<ConceptId> = engine
        .corpus()
        .documents()
        .find(|d| d.num_concepts() >= 3)
        .map(|d| d.concepts()[..3].to_vec())
        .expect("non-trivial document");
    println!("query concepts:");
    for &c in &query {
        println!("  - {}", engine.ontology().label(c));
    }

    // 1. IC-based re-ranking.
    let hits = engine.rds(&query, 8).expect("query non-empty");
    println!("\nshortest-path ranking, then re-scored per measure:");
    println!("{:<8} {:>8} {:>9} {:>7} {:>7} {:>9}", "doc", "Ddq", "Resnik", "Lin", "WuP", "JC-sim");
    let sim = engine.semantic_similarity();
    for hit in &hits.results {
        let score = |m: Measure| {
            let doc = engine.document_concepts(hit.doc).unwrap();
            concept_rank::rerank::best_match_average(&sim, m, &doc, &query)
        };
        println!(
            "{:<8} {:>8} {:>9.2} {:>7.2} {:>7.2} {:>9.2}",
            hit.doc.to_string(),
            hit.distance,
            score(Measure::Resnik),
            score(Measure::Lin),
            score(Measure::WuPalmer),
            score(Measure::JiangConrath),
        );
    }
    let lin_order = engine.rerank(&hits.results, &query, Measure::Lin).unwrap();
    println!("top document under Lin: {} (score {:.3})", lin_order[0].doc, lin_order[0].score);

    // 2. Weighted edges: penalize edges leaving shallow, generic concepts.
    let unit = EdgeWeights::uniform(&ont2);
    let generic_penalty = EdgeWeights::from_fn(&ont2, |p, _| if ont2.depth(p) < 3 { 4 } else { 1 });
    let cfg = KndsConfig::default().with_error_threshold(0.9);
    let plain = WeightedKnds::new(&ont2, &unit, &source, cfg.clone()).rds(&query, 5);
    let weighted = WeightedKnds::new(&ont2, &generic_penalty, &source, cfg).rds(&query, 5);
    println!("\nweighted-edge search (penalty 4 on edges out of depth < 3):");
    println!("{:<8} {:>12} {:>14}", "rank", "unit Ddq", "weighted Ddq");
    for (i, (a, b)) in plain.results.iter().zip(weighted.results.iter()).enumerate() {
        println!("{:<8} {:>12} {:>14}", i + 1, a.distance, b.distance);
    }

    // 3. Query expansion.
    let cfg = ExpansionConfig { radius: 2, max_substitutes: 2, max_variants: 10 };
    let (expanded, nvars) = engine.rds_expanded(&query, 5, &cfg).unwrap();
    println!("\nexpanded retrieval ({nvars} variants, normalized distances):");
    for hit in &expanded {
        println!("  {}  {:.3}", hit.doc, hit.distance);
    }
}
