//! Cross-consistency validation for a forward/inverted index pair.
//!
//! Both indexes are CSR projections of the same corpus, so each one must
//! be derivable from the other: document `d` lists concept `c` in the
//! forward index **iff** `c`'s posting list contains `d`. This module
//! re-checks that equivalence (plus the per-list sorted/deduplicated
//! layout both query algorithms rely on for binary search and merge
//! joins), so the `cbr-audit` invariant runner and debug assertions can
//! catch a decoder bug or tampered snapshot after the fact.

use crate::{ForwardIndex, InvertedIndex};
use cbr_corpus::DocId;
use cbr_ontology::ConceptId;

/// A violated index invariant, reported by [`validate_pair`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexViolation {
    /// A CSR offset array that is not monotonically non-decreasing or
    /// does not end at the payload length.
    BadOffsets {
        /// Which index holds the bad offsets.
        forward: bool,
    },
    /// The two indexes disagree on the number of documents.
    DocCountMismatch {
        /// Documents according to the forward index.
        forward: usize,
        /// Documents according to the inverted index.
        inverted: usize,
    },
    /// A document whose forward concept set is unsorted or has duplicates.
    UnsortedConcepts {
        /// The offending document.
        doc: DocId,
    },
    /// A concept whose posting list is unsorted or has duplicates.
    UnsortedPostings {
        /// The offending concept.
        concept: ConceptId,
    },
    /// A forward entry `(doc, concept)` missing from the posting list.
    MissingPosting {
        /// The document listing the concept.
        doc: DocId,
        /// The concept whose postings lack the document.
        concept: ConceptId,
    },
    /// A posting `(concept, doc)` whose document does not list the concept
    /// in the forward index (or lies outside the corpus entirely).
    MissingForwardEntry {
        /// The document in the posting list.
        doc: DocId,
        /// The concept claiming to appear in the document.
        concept: ConceptId,
    },
}

fn strictly_sorted<T: Ord>(xs: &[T]) -> bool {
    xs.windows(2).all(|w| w[0] < w[1])
}

fn offsets_valid(offsets: &[u32], payload_len: usize) -> bool {
    !offsets.is_empty()
        && offsets.first() == Some(&0)
        && offsets.windows(2).all(|w| w[0] <= w[1])
        && offsets.last().copied() == Some(payload_len as u32)
}

/// Re-checks every invariant tying a forward/inverted pair together:
/// CSR offset sanity, sorted + deduplicated entries on both sides, equal
/// document counts, and the two-way membership equivalence.
pub fn validate_pair(
    forward: &ForwardIndex,
    inverted: &InvertedIndex,
) -> Result<(), Vec<IndexViolation>> {
    let mut v = Vec::new();

    let (f_offsets, _) = forward.parts();
    let (i_offsets, _) = inverted.parts();
    if !offsets_valid(f_offsets, forward.parts().1.len()) {
        v.push(IndexViolation::BadOffsets { forward: true });
    }
    if !offsets_valid(i_offsets, inverted.parts().1.len()) {
        v.push(IndexViolation::BadOffsets { forward: false });
    }
    if !v.is_empty() {
        // Offsets gate slice construction; bail before indexing with them.
        return Err(v);
    }

    if forward.num_docs() != inverted.num_docs() {
        v.push(IndexViolation::DocCountMismatch {
            forward: forward.num_docs(),
            inverted: inverted.num_docs(),
        });
    }

    let num_docs = forward.num_docs();
    let num_concepts = inverted.num_concepts();

    // Forward → inverted: every listed concept's postings contain the doc.
    for i in 0..num_docs {
        let doc = DocId::from_index(i);
        let concepts = forward.concepts(doc);
        if !strictly_sorted(concepts) {
            v.push(IndexViolation::UnsortedConcepts { doc });
        }
        for &c in concepts {
            if inverted.postings(c).binary_search(&doc).is_err() {
                v.push(IndexViolation::MissingPosting { doc, concept: c });
            }
        }
    }

    // Inverted → forward: every posting's document lists the concept.
    for ci in 0..num_concepts {
        let c = ConceptId::from_index(ci);
        let postings = inverted.postings(c);
        if !strictly_sorted(postings) {
            v.push(IndexViolation::UnsortedPostings { concept: c });
        }
        for &doc in postings {
            let listed = doc.index() < num_docs && forward.concepts(doc).binary_search(&c).is_ok();
            if !listed {
                v.push(IndexViolation::MissingForwardEntry { doc, concept: c });
            }
        }
    }

    if v.is_empty() {
        Ok(())
    } else {
        Err(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbr_corpus::Corpus;

    fn pair() -> (ForwardIndex, InvertedIndex) {
        let corpus = Corpus::from_concept_sets(vec![
            (vec![ConceptId(1), ConceptId(3)], 0),
            (vec![ConceptId(3)], 0),
            (vec![ConceptId(0), ConceptId(2), ConceptId(3)], 0),
        ]);
        (ForwardIndex::build(&corpus), InvertedIndex::build(&corpus, 5))
    }

    #[test]
    fn consistent_pair_passes() {
        let (fwd, inv) = pair();
        assert_eq!(validate_pair(&fwd, &inv), Ok(()));
    }

    #[test]
    fn unsorted_forward_entry_is_caught() {
        let (mut fwd, inv) = pair();
        fwd.corrupt_order_for_tests();
        let err = validate_pair(&fwd, &inv).unwrap_err();
        assert!(
            err.iter().any(|x| matches!(x, IndexViolation::UnsortedConcepts { .. })),
            "{err:?}"
        );
    }

    #[test]
    fn phantom_posting_is_caught() {
        let (fwd, mut inv) = pair();
        inv.corrupt_posting_for_tests(DocId(9));
        let err = validate_pair(&fwd, &inv).unwrap_err();
        assert!(
            err.iter()
                .any(|x| matches!(x, IndexViolation::MissingForwardEntry { doc: DocId(9), .. })),
            "{err:?}"
        );
    }

    #[test]
    fn doc_count_mismatch_is_caught() {
        let a = Corpus::from_concept_sets(vec![(vec![ConceptId(1)], 0)]);
        let b = Corpus::from_concept_sets(vec![(vec![ConceptId(1)], 0), (vec![], 0)]);
        let err =
            validate_pair(&ForwardIndex::build(&b), &InvertedIndex::build(&a, 2)).unwrap_err();
        assert!(
            err.iter().any(|x| matches!(x, IndexViolation::DocCountMismatch { .. })),
            "{err:?}"
        );
    }
}
