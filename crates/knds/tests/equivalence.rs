//! Cross-algorithm equivalence: kNDS must return exactly the same top-k
//! distance profile as the exhaustive baseline for every error threshold,
//! every k, both query types — the paper's correctness claim (Section 5.3)
//! under test on randomized workloads.

use cbr_corpus::{Corpus, CorpusGenerator, CorpusProfile};
use cbr_index::MemorySource;
use cbr_knds::{baseline, ta, Knds, KndsConfig};
use cbr_ontology::{ConceptId, GeneratorConfig, Ontology, OntologyGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Fixture {
    ont: Ontology,
    corpus: Corpus,
    source: MemorySource,
}

fn fixture(seed: u64) -> Fixture {
    let ont = OntologyGenerator::new(GeneratorConfig::small(400).with_seed(seed)).generate();
    let profile = CorpusProfile::radio_like()
        .with_num_docs(60)
        .with_mean_concepts(12.0)
        .with_seed(seed.wrapping_add(17));
    let corpus = CorpusGenerator::new(&ont, profile).generate();
    let source = MemorySource::build(&corpus, ont.len());
    Fixture { ont, corpus, source }
}

fn random_query(ont: &Ontology, rng: &mut StdRng, n: usize) -> Vec<ConceptId> {
    let deep: Vec<ConceptId> = ont.concepts().filter(|&c| ont.depth(c) >= 4).collect();
    let mut q: Vec<ConceptId> = (0..n).map(|_| deep[rng.random_range(0..deep.len())]).collect();
    q.sort_unstable();
    q.dedup();
    q
}

/// Distances must agree exactly; documents may differ only within ties.
fn assert_same_profile(a: &[cbr_knds::RankedDoc], b: &[cbr_knds::RankedDoc], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: result count");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        let same = (x.distance - y.distance).abs() < 1e-9
            || (x.distance.is_infinite() && y.distance.is_infinite());
        assert!(
            same,
            "{ctx}: rank {i} distance mismatch: {} vs {} ({:?} vs {:?})",
            x.distance, y.distance, x.doc, y.doc
        );
    }
}

#[test]
fn rds_matches_baseline_for_every_error_threshold() {
    let f = fixture(101);
    let mut rng = StdRng::seed_from_u64(7);
    for trial in 0..6 {
        let q = random_query(&f.ont, &mut rng, 1 + trial % 5);
        let expect = baseline::rds(&f.ont, &f.source, &q, 5);
        for eps in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let cfg = KndsConfig::default().with_error_threshold(eps);
            let got = Knds::new(&f.ont, &f.source, cfg).rds(&q, 5);
            assert_same_profile(
                &got.results,
                &expect.results,
                &format!("trial {trial}, eps {eps}, q {q:?}"),
            );
        }
    }
}

#[test]
fn sds_matches_baseline_for_every_error_threshold() {
    let f = fixture(202);
    let mut rng = StdRng::seed_from_u64(8);
    for trial in 0..4 {
        // Query documents drawn from the corpus, as in Section 6.2.
        let doc = f.corpus.get(cbr_corpus::DocId(rng.random_range(0..f.corpus.len() as u32)));
        if doc.num_concepts() == 0 {
            continue;
        }
        let q = doc.concepts().to_vec();
        let expect = baseline::sds(&f.ont, &f.source, &q, 5);
        for eps in [0.0, 0.5, 1.0] {
            let cfg = KndsConfig::default().with_error_threshold(eps);
            let got = Knds::new(&f.ont, &f.source, cfg).sds(&q, 5);
            assert_same_profile(
                &got.results,
                &expect.results,
                &format!("trial {trial}, eps {eps}"),
            );
        }
    }
}

#[test]
fn knds_is_exact_without_visit_dedup() {
    // The paper's prototype does not deduplicate BFS states; our dedup is
    // an optimization that must not change results.
    let f = fixture(303);
    let mut rng = StdRng::seed_from_u64(9);
    let q = random_query(&f.ont, &mut rng, 3);
    let expect = baseline::rds(&f.ont, &f.source, &q, 4);
    let cfg = KndsConfig::default().with_dedup_visits(false).with_queue_cap(500);
    let got = Knds::new(&f.ont, &f.source, cfg).rds(&q, 4);
    assert_same_profile(&got.results, &expect.results, "no-dedup");
}

#[test]
fn knds_is_exact_under_tiny_queue_cap() {
    // A 1-element watermark forces an examination round at every level;
    // results must stay exact (the cap never truncates).
    let f = fixture(404);
    let mut rng = StdRng::seed_from_u64(10);
    for kind in 0..2 {
        let q = random_query(&f.ont, &mut rng, 4);
        let cfg = KndsConfig::default().with_queue_cap(1);
        let knds = Knds::new(&f.ont, &f.source, cfg);
        if kind == 0 {
            let got = knds.rds(&q, 3);
            let expect = baseline::rds(&f.ont, &f.source, &q, 3);
            assert_same_profile(&got.results, &expect.results, "cap rds");
            assert!(got.metrics.forced_rounds > 0, "cap must trigger forced rounds");
        } else {
            let got = knds.sds(&q, 3);
            let expect = baseline::sds(&f.ont, &f.source, &q, 3);
            assert_same_profile(&got.results, &expect.results, "cap sds");
        }
    }
}

#[test]
fn knds_matches_across_k_values() {
    let f = fixture(505);
    let mut rng = StdRng::seed_from_u64(11);
    let q = random_query(&f.ont, &mut rng, 5);
    for k in [1, 3, 5, 10, 50, 100] {
        let expect = baseline::rds(&f.ont, &f.source, &q, k);
        let got = Knds::new(&f.ont, &f.source, KndsConfig::default()).rds(&q, k);
        assert_same_profile(&got.results, &expect.results, &format!("k {k}"));
    }
}

#[test]
fn ta_matches_baseline_on_random_workload() {
    let f = fixture(606);
    let mut rng = StdRng::seed_from_u64(12);
    for trial in 0..4 {
        let q = random_query(&f.ont, &mut rng, 1 + trial);
        let expect = baseline::rds(&f.ont, &f.source, &q, 5);
        let got = ta::rds(&f.ont, &f.source, &q, 5);
        assert_same_profile(&got.results, &expect.results, &format!("ta trial {trial}"));
    }
}

#[test]
fn empty_documents_rank_last() {
    // Documents that lose every concept to filtering must never displace
    // real matches and must surface only when k exceeds the matchable set.
    let ont = OntologyGenerator::new(GeneratorConfig::small(200).with_seed(77)).generate();
    let deep: Vec<ConceptId> = ont.concepts().filter(|&c| ont.depth(c) >= 4).collect();
    assert!(deep.len() >= 2);
    let corpus = Corpus::from_concept_sets(vec![
        (vec![deep[0]], 0),
        (vec![], 0), // empty document
        (vec![deep[1]], 0),
    ]);
    let source = MemorySource::build(&corpus, ont.len());
    let knds = Knds::new(&ont, &source, KndsConfig::default());
    let r = knds.rds(&[deep[0]], 3);
    assert_eq!(r.results.len(), 3);
    assert_eq!(r.results[0].doc, cbr_corpus::DocId(0));
    assert!(r.results[2].distance.is_infinite(), "empty doc ranks last at ∞");
}

#[test]
fn knds_prunes_compared_to_baseline() {
    // The point of the algorithm: strictly fewer exact distance
    // computations than the full scan on a selective query.
    let f = fixture(707);
    let mut rng = StdRng::seed_from_u64(13);
    let q = random_query(&f.ont, &mut rng, 3);
    let got = Knds::new(&f.ont, &f.source, KndsConfig::default()).rds(&q, 3);
    let base = baseline::rds(&f.ont, &f.source, &q, 3);
    assert!(
        got.metrics.docs_examined <= base.metrics.docs_examined,
        "kNDS examined {} docs, baseline {}",
        got.metrics.docs_examined,
        base.metrics.docs_examined
    );
}
