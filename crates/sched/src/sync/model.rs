//! Instrumented facade implementation (the `model` feature): every
//! visible operation is a sync point posted to the active execution's
//! scheduler. On threads with no active execution (no [`rt::session`])
//! every primitive passes straight through to the real one, so a
//! feature-unified build behaves normally outside [`crate::explore`].
//!
//! The real primitive underneath each wrapper is only ever touched by
//! the single granted thread, so it is always uncontended; blocking
//! semantics live in the runtime's modeled resource tables.

use crate::rt::{self, Op, ResKind, RidCell};
use std::num::NonZeroUsize;
use std::ops::{Deref, DerefMut};
use std::panic::AssertUnwindSafe;

pub use std::sync::atomic::Ordering;

fn touch(rid: &RidCell, kind: ResKind, op: impl FnOnce(u32) -> Op) {
    if let Some((exec, tid)) = rt::session() {
        let r = rid.rid(&exec, kind, 0);
        exec.post(tid, op(r));
    }
}

// --- Mutex ------------------------------------------------------------------

/// Modeled mutex: acquisition and release are scheduler sync points.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    rid: RidCell,
}

/// Guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    owner: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value), rid: RidCell::new() }
    }

    /// Acquires the lock (modeled contention, poison-free).
    // race: acquire
    pub fn lock(&self) -> MutexGuard<'_, T> {
        touch(&self.rid, ResKind::Lock, Op::Lock);
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
            owner: self,
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard not released")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard not released")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // `Condvar::wait` takes the inner guard out before reposting; a
        // guard whose inner is gone has already released the modeled lock.
        if self.inner.take().is_some() {
            touch(&self.owner.rid, ResKind::Lock, Op::Unlock);
        }
    }
}

// --- RwLock -----------------------------------------------------------------

/// Modeled reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
    rid: RidCell,
}

/// Guard returned by [`RwLock::read`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T> {
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    rid: &'a RidCell,
}

/// Guard returned by [`RwLock::write`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T> {
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    rid: &'a RidCell,
}

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value), rid: RidCell::new() }
    }

    /// Acquires a shared read guard (modeled contention).
    // race: acquire-shared
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        touch(&self.rid, ResKind::Lock, Op::Read);
        RwLockReadGuard {
            inner: Some(self.inner.read().unwrap_or_else(|e| e.into_inner())),
            rid: &self.rid,
        }
    }

    /// Acquires an exclusive write guard (modeled contention).
    // race: acquire
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        touch(&self.rid, ResKind::Lock, Op::Write);
        RwLockWriteGuard {
            inner: Some(self.inner.write().unwrap_or_else(|e| e.into_inner())),
            rid: &self.rid,
        }
    }
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard not released")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            touch(self.rid, ResKind::Lock, Op::UnlockRead);
        }
    }
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard not released")
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard not released")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            touch(self.rid, ResKind::Lock, Op::UnlockWrite);
        }
    }
}

// --- Condvar ----------------------------------------------------------------

/// Modeled condition variable (wakes lowest-tid waiter first).
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
    rid: RidCell,
}

impl Condvar {
    /// Creates a condvar.
    pub const fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new(), rid: RidCell::new() }
    }

    /// Atomically releases `guard` and sleeps until notified, then
    /// re-acquires the mutex.
    // race: blocking
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let owner = guard.owner;
        let real = guard.inner.take().expect("guard not released");
        if let Some((exec, tid)) = rt::session() {
            let cv = self.rid.rid(&exec, ResKind::Condvar, 0);
            let lock = owner.rid.rid(&exec, ResKind::Lock, 0);
            // Release the real lock; the modeled release + sleep + modeled
            // re-acquire all happen inside this one post. It returns only
            // once a notify woke us and the scheduler granted the lock.
            drop(real);
            exec.post(tid, Op::CondWait { cv, lock });
            MutexGuard { inner: Some(owner.inner.lock().unwrap_or_else(|e| e.into_inner())), owner }
        } else {
            let real = self.inner.wait(real).unwrap_or_else(|e| e.into_inner());
            MutexGuard { inner: Some(real), owner }
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        touch(&self.rid, ResKind::Condvar, Op::NotifyOne);
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        touch(&self.rid, ResKind::Condvar, Op::NotifyAll);
        self.inner.notify_all();
    }
}

// --- Atomics ----------------------------------------------------------------

macro_rules! modeled_atomic {
    ($(#[$doc:meta])* $name:ident, $std:ty, $prim:ty) => {
        $(#[$doc])*
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $std,
            rid: RidCell,
        }

        impl $name {
            /// Wraps `value`.
            pub const fn new(value: $prim) -> $name {
                $name { inner: <$std>::new(value), rid: RidCell::new() }
            }

            /// Atomic read (a pure-read sync point).
            pub fn load(&self, order: Ordering) -> $prim {
                touch(&self.rid, ResKind::Atomic, Op::AtomicLoad);
                self.inner.load(order)
            }

            /// Atomic write.
            pub fn store(&self, value: $prim, order: Ordering) {
                touch(&self.rid, ResKind::Atomic, Op::AtomicRmw);
                self.inner.store(value, order)
            }

            /// Atomic add, returning the previous value.
            pub fn fetch_add(&self, value: $prim, order: Ordering) -> $prim {
                touch(&self.rid, ResKind::Atomic, Op::AtomicRmw);
                self.inner.fetch_add(value, order)
            }

            /// Atomic subtract, returning the previous value.
            pub fn fetch_sub(&self, value: $prim, order: Ordering) -> $prim {
                touch(&self.rid, ResKind::Atomic, Op::AtomicRmw);
                self.inner.fetch_sub(value, order)
            }

            /// Atomic max, returning the previous value.
            pub fn fetch_max(&self, value: $prim, order: Ordering) -> $prim {
                touch(&self.rid, ResKind::Atomic, Op::AtomicRmw);
                self.inner.fetch_max(value, order)
            }

            /// Atomic compare-and-swap.
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                touch(&self.rid, ResKind::Atomic, Op::AtomicRmw);
                self.inner.compare_exchange(current, new, success, failure)
            }
        }
    };
}

modeled_atomic!(
    /// Modeled [`std::sync::atomic::AtomicUsize`].
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);
modeled_atomic!(
    /// Modeled [`std::sync::atomic::AtomicU64`].
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64
);

// --- SegQueue ---------------------------------------------------------------

/// Modeled unbounded MPMC queue.
#[derive(Debug, Default)]
pub struct SegQueue<T> {
    inner: crossbeam::queue::SegQueue<T>,
    rid: RidCell,
    pooled: bool,
}

impl<T> SegQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> SegQueue<T> {
        SegQueue { inner: crossbeam::queue::SegQueue::new(), rid: RidCell::new(), pooled: false }
    }

    /// Creates an empty queue used as a resource pool: the model's leak
    /// analysis verifies every item popped from it is pushed back (or the
    /// popping thread panicked).
    pub fn pooled() -> SegQueue<T> {
        SegQueue { pooled: true, ..SegQueue::new() }
    }

    fn touch(&self, op: impl FnOnce(u32) -> Op) {
        if let Some((exec, tid)) = rt::session() {
            let kind = if self.pooled { ResKind::PoolQueue } else { ResKind::Queue };
            let r = self.rid.rid(&exec, kind, self.inner.len());
            exec.post(tid, op(r));
        }
    }

    /// Pushes `value` onto the back of the queue.
    // race: pool-op
    pub fn push(&self, value: T) {
        self.touch(Op::QPush);
        self.inner.push(value);
    }

    /// Pops from the front, or `None` when empty.
    // race: pool-op
    pub fn pop(&self) -> Option<T> {
        self.touch(Op::QPop);
        self.inner.pop()
    }

    /// Number of elements currently queued (a pure-read sync point).
    pub fn len(&self) -> usize {
        self.touch(Op::QLen);
        self.inner.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// --- threads ----------------------------------------------------------------

fn wrap_modeled<F, T>(exec: std::sync::Arc<rt::Exec>, child: rt::Tid, f: F) -> impl FnOnce() -> T
where
    F: FnOnce() -> T,
{
    move || {
        rt::set_session(Some((exec.clone(), child)));
        let r = std::panic::catch_unwind(AssertUnwindSafe(f));
        let panic_msg = match &r {
            Err(p) if !p.is::<rt::SchedAbort>() => Some(
                p.downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| p.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "panic with non-string payload".to_string()),
            ),
            _ => None,
        };
        exec.post_finish(child, panic_msg, None);
        match r {
            Ok(v) => {
                rt::set_session(None);
                v
            }
            // Re-raise so `join()` sees the failure; `resume_unwind` does
            // not run the panic hook, so aborts stay silent.
            Err(p) => std::panic::resume_unwind(p),
        }
    }
}

/// Handle to a thread started with [`spawn`].
#[derive(Debug)]
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    child: Option<rt::Tid>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish (a modeled join sync point).
    // race: blocking
    pub fn join(self) -> std::thread::Result<T> {
        if let Some(child) = self.child {
            rt::sync_point(Op::Join(vec![child]));
        }
        self.inner.join()
    }
}

/// Spawns a thread; modeled when called from inside an execution.
// race: spawn
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::session() {
        None => JoinHandle { inner: std::thread::spawn(f), child: None },
        Some((exec, tid)) => {
            let child = exec.register_thread();
            let inner = std::thread::spawn(wrap_modeled(exec.clone(), child, f));
            exec.post(tid, Op::Spawn(child));
            JoinHandle { inner, child: Some(child) }
        }
    }
}

/// A scope handle mirroring [`std::thread::Scope`], tracking modeled
/// children so the scope's implicit join is a sync point.
#[derive(Debug)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    unjoined: std::sync::Arc<std::sync::Mutex<Vec<rt::Tid>>>,
}

/// Handle to a thread started with [`Scope::spawn`].
#[derive(Debug)]
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
    child: Option<rt::Tid>,
    unjoined: std::sync::Arc<std::sync::Mutex<Vec<rt::Tid>>>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish (a modeled join sync point).
    // race: blocking
    pub fn join(self) -> std::thread::Result<T> {
        if let Some(child) = self.child {
            let mut pending = self.unjoined.lock().unwrap_or_else(|e| e.into_inner());
            pending.retain(|&t| t != child);
            drop(pending);
            rt::sync_point(Op::Join(vec![child]));
        }
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; modeled when called inside an execution.
    // race: spawn
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        match rt::session() {
            None => ScopedJoinHandle {
                inner: self.inner.spawn(f),
                child: None,
                unjoined: self.unjoined.clone(),
            },
            Some((exec, tid)) => {
                let child = exec.register_thread();
                self.unjoined.lock().unwrap_or_else(|e| e.into_inner()).push(child);
                let inner = self.inner.spawn(wrap_modeled(exec.clone(), child, f));
                exec.post(tid, Op::Spawn(child));
                ScopedJoinHandle { inner, child: Some(child), unjoined: self.unjoined.clone() }
            }
        }
    }
}

/// Runs `f` with a scope in which borrowing threads can be spawned. The
/// implicit join of unjoined modeled children is a single sync point
/// before the real scope joins them.
// race: blocking
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    std::thread::scope(|s| {
        let wrapper = Scope { inner: s, unjoined: Default::default() };
        let out = f(&wrapper);
        let pending =
            std::mem::take(&mut *wrapper.unjoined.lock().unwrap_or_else(|e| e.into_inner()));
        if !pending.is_empty() {
            rt::sync_point(Op::Join(pending));
        }
        out
    })
}

/// A modeled scheduling point (no-op outside an execution).
pub fn yield_now() {
    if rt::session().is_some() {
        rt::sync_point(Op::Yield);
    } else {
        std::thread::yield_now();
    }
}

/// The parallelism available to the process. Inside a model execution
/// this is a fixed small constant so state spaces stay bounded and
/// explorations are machine-independent.
pub fn available_parallelism() -> usize {
    if rt::session().is_some() {
        2
    } else {
        std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// With no active execution every primitive passes through to the
    /// real implementation — plain multi-threaded code keeps working.
    #[test]
    fn passthrough_without_session_behaves_normally() {
        let m = Mutex::new(0usize);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);

        let rw = RwLock::new(5usize);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);

        let q = SegQueue::pooled();
        q.push(1u8);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);

        let n = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    n.fetch_add(1, Ordering::SeqCst);
                    yield_now();
                });
            }
        });
        assert_eq!(n.load(Ordering::SeqCst), 3);

        let h = spawn(|| "ok");
        assert_eq!(h.join().unwrap(), "ok");
        assert!(available_parallelism() >= 1);
    }
}
