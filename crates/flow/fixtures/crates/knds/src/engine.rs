//! Seeded-violation fixture for cbr-flow. Parsed, never compiled.
//!
//! `rds_with`/`sds_with` match the hot-path root specs, so the seeded
//! sites below must surface as findings — one F01 and one F04.

pub struct Knds;

pub struct Workspace {
    pub scratch: Vec<u32>,
}

impl Knds {
    pub fn rds_with(&self, ws: &mut Workspace, q: &[u32], k: usize) -> Vec<u32> {
        let mut out = Vec::new(); // seeded: F01
        ws.scratch.clear();
        out.push(self.score(q, k));
        out
    }

    pub fn sds_with(&self, ws: &mut Workspace, q: &[u32], k: usize) -> u32 {
        ws.scratch.clear();
        self.score(q, k)
    }

    fn score(&self, q: &[u32], k: usize) -> u32 {
        let first = q[0]; // seeded: F04
        first + k as u32
    }
}
