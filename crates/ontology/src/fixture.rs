//! The paper's Figure 3 ontology, reconstructed from published addresses.
//!
//! Figure 3 itself is an image, but Table 1 lists the complete Dewey address
//! sets of every concept used in the worked examples, and Sections 3–5 pin
//! down the remaining neighborhoods (`D(G,F) = 5`; the kNDS trace of
//! Table 2 names the neighbors of `F` and `I`). The DAG below reproduces
//! every one of those facts; the module tests assert each address from
//! Table 1 verbatim.
//!
//! Structure (parent: children in Dewey ordinal order):
//!
//! ```text
//! A: B(1) C(2) D(3)        F: J(1) H(2)        J: K(1) O(2)
//! B: E(1)                  G: I(1) J(2)        K: R(1)    R: U(1)
//! D: F(1)                  H: P(1) L(2)        O: S(1)    S: V(1)
//! E: G(1)                  I: M(1) N(2)        P: Q(1)    Q: T(1)
//! ```
//!
//! `J` is the shared child of `G` and `F` — the multi-parent node that makes
//! the example a DAG rather than a tree and produces the double addresses of
//! `R`, `U`, `V` in Table 1.

use crate::graph::{Ontology, OntologyBuilder};
use crate::hash::FxHashMap;
use crate::id::ConceptId;

/// The Figure 3 ontology plus label lookup helpers.
#[derive(Debug)]
pub struct Figure3 {
    /// The reconstructed ontology.
    pub ontology: Ontology,
    names: FxHashMap<&'static str, ConceptId>,
}

impl Figure3 {
    /// Resolves a single-letter concept name (`"A"` … `"V"`). Panics on an
    /// unknown name — the fixture is for tests and examples.
    pub fn concept(&self, name: &str) -> ConceptId {
        *self
            .names
            .get(name)
            .unwrap_or_else(|| panic!("no concept named {name:?} in the Figure 3 fixture"))
    }

    /// The running example's document `d = {F, R, T, V}` (Examples 1–2).
    pub fn example_document(&self) -> Vec<ConceptId> {
        ["F", "R", "T", "V"].iter().map(|l| self.concept(l)).collect()
    }

    /// The running example's query `q = {I, L, U}` (Examples 1–3).
    pub fn example_query(&self) -> Vec<ConceptId> {
        ["I", "L", "U"].iter().map(|l| self.concept(l)).collect()
    }
}

/// Builds the Figure 3 fixture.
pub fn figure3() -> Figure3 {
    let mut b = OntologyBuilder::new();
    let labels = [
        "A", "B", "C", "D", "E", "F", "G", "H", "I", "J", "K", "L", "M", "N", "O", "P", "Q", "R",
        "S", "T", "U", "V",
    ];
    let mut names = FxHashMap::default();
    let mut id = FxHashMap::default();
    for &l in &labels {
        let c = b.add_concept(l);
        names.insert(l, c);
        id.insert(l, c);
    }
    // Children in Dewey ordinal order (the insertion order defines the
    // ordinal, so the order of these calls is load-bearing).
    let edges: &[(&str, &str)] = &[
        ("A", "B"),
        ("A", "C"),
        ("A", "D"),
        ("B", "E"),
        ("D", "F"),
        ("E", "G"),
        ("F", "J"),
        ("F", "H"),
        ("G", "I"),
        ("G", "J"),
        ("H", "P"),
        ("H", "L"),
        ("I", "M"),
        ("I", "N"),
        ("J", "K"),
        ("J", "O"),
        ("K", "R"),
        ("O", "S"),
        ("P", "Q"),
        ("Q", "T"),
        ("R", "U"),
        ("S", "V"),
    ];
    for &(p, c) in edges {
        b.add_edge(id[p], id[c]).expect("fixture edges are valid");
    }
    let ontology = b.build().expect("Figure 3 fixture is a valid single-rooted DAG");
    Figure3 { ontology, names }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addresses_of(fig: &Figure3, name: &str) -> Vec<String> {
        let pt = fig.ontology.path_table();
        pt.addresses(fig.concept(name))
            .map(|a| a.iter().map(|c| c.to_string()).collect::<Vec<_>>().join("."))
            .collect()
    }

    #[test]
    fn table1_document_addresses() {
        let fig = figure3();
        // Pd for d = {F, R, T, V} — Table 1 of the paper.
        assert_eq!(addresses_of(&fig, "F"), vec!["3.1"]);
        assert_eq!(addresses_of(&fig, "R"), vec!["1.1.1.2.1.1", "3.1.1.1.1"]);
        assert_eq!(addresses_of(&fig, "V"), vec!["1.1.1.2.2.1.1", "3.1.1.2.1.1"]);
        assert_eq!(addresses_of(&fig, "T"), vec!["3.1.2.1.1.1"]);
    }

    #[test]
    fn table1_query_addresses() {
        let fig = figure3();
        // Pq for q = {I, L, U} — Table 1 of the paper.
        assert_eq!(addresses_of(&fig, "I"), vec!["1.1.1.1"]);
        assert_eq!(addresses_of(&fig, "U"), vec!["1.1.1.2.1.1.1", "3.1.1.1.1.1"]);
        assert_eq!(addresses_of(&fig, "L"), vec!["3.1.2.2"]);
    }

    #[test]
    fn intermediate_addresses_match_example2() {
        let fig = figure3();
        // Example 2 narrates node G at 1.1.1, J at 1.1.1.2 and 3.1.1,
        // H at 3.1.2.
        assert_eq!(addresses_of(&fig, "G"), vec!["1.1.1"]);
        assert_eq!(addresses_of(&fig, "J"), vec!["1.1.1.2", "3.1.1"]);
        assert_eq!(addresses_of(&fig, "H"), vec!["3.1.2"]);
    }

    #[test]
    fn root_and_reachability() {
        let fig = figure3();
        assert_eq!(fig.ontology.root(), fig.concept("A"));
        assert_eq!(fig.ontology.len(), 22);
        // J has two parents: G and F.
        let j = fig.concept("J");
        let parents: Vec<&str> =
            fig.ontology.parents(j).iter().map(|&p| fig.ontology.label(p)).collect();
        assert_eq!(parents, vec!["F", "G"]);
    }

    #[test]
    fn knds_example3_neighborhoods() {
        // Example 3: BFS from q = {I, L, U}; the depth-1 frontier is
        // {G, M, N, R, H}: G (parent of I), M/N (children of I),
        // R (parent of U), H (parent of L).
        let fig = figure3();
        let ont = &fig.ontology;
        let i = fig.concept("I");
        assert_eq!(ont.parents(i), &[fig.concept("G")]);
        assert_eq!(ont.children(i), &[fig.concept("M"), fig.concept("N")]);
        assert_eq!(ont.parents(fig.concept("U")), &[fig.concept("R")]);
        assert_eq!(ont.parents(fig.concept("L")), &[fig.concept("H")]);
        assert!(ont.children(fig.concept("U")).is_empty());
        assert!(ont.children(fig.concept("L")).is_empty());
    }

    #[test]
    fn knds_example4_neighborhoods_of_f() {
        // Table 2 iteration 0 pushes {D,F}, {H,F}, {J,F}: D is F's parent,
        // H and J its children.
        let fig = figure3();
        let ont = &fig.ontology;
        let f = fig.concept("F");
        assert_eq!(ont.parents(f), &[fig.concept("D")]);
        assert_eq!(ont.children(f), &[fig.concept("J"), fig.concept("H")]);
    }

    #[test]
    fn example_document_and_query_helpers() {
        let fig = figure3();
        assert_eq!(fig.example_document().len(), 4);
        assert_eq!(fig.example_query().len(), 3);
    }

    #[test]
    #[should_panic(expected = "no concept named")]
    fn unknown_name_panics() {
        figure3().concept("Z");
    }
}
