//! Re-ranking with alternative semantic measures.
//!
//! Section 7 names "exploring other semantic distances" as future work;
//! the related work (Section 2) surveys the information-content family.
//! This module lets the engine re-order an RDS candidate list under any of
//! those measures without giving up the kNDS/DRC machinery: the shortest
//! path distance retrieves a candidate set, an IC measure re-scores it.
//!
//! Document-query scores use the **best-match average** aggregation common
//! in the biomedical similarity literature (Pesquita et al.):
//! `score(d, q) = (1/|q|) Σ_{qi ∈ q} max_{c ∈ d} sim(c, qi)`.

use crate::engine::{Engine, EngineError};
use cbr_corpus::DocId;
use cbr_knds::RankedDoc;
use cbr_ontology::{ConceptId, InformationContent, SemanticSimilarity};

/// Alternative pairwise similarity measures (higher = more similar).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Measure {
    /// Resnik: `IC(MICA)`.
    Resnik,
    /// Lin: `2·IC(MICA) / (IC(a) + IC(b))`.
    Lin,
    /// Jiang–Conrath turned into a similarity: `1 / (1 + JC distance)`.
    JiangConrath,
    /// Wu–Palmer depth ratio.
    WuPalmer,
}

/// A document with a *similarity* score (higher is better — unlike
/// [`RankedDoc`], whose `distance` is lower-is-better).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredDoc {
    /// The document.
    pub doc: DocId,
    /// Best-match-average similarity to the query.
    pub score: f64,
}

impl Engine {
    /// Builds the IC-based similarity measures from this engine's corpus
    /// statistics (collection frequencies drive the information content).
    pub fn semantic_similarity(&self) -> SemanticSimilarity<'_> {
        let mut counts = vec![0u64; self.ontology().len()];
        for (c, n) in self.corpus().concept_frequencies() {
            counts[c.index()] = n as u64;
        }
        SemanticSimilarity::new(
            self.ontology(),
            InformationContent::from_counts(self.ontology(), &counts),
        )
    }

    /// Re-scores an RDS result list under `measure` and returns it sorted
    /// by descending similarity (ties by ascending id).
    pub fn rerank(
        &self,
        results: &[RankedDoc],
        query: &[ConceptId],
        measure: Measure,
    ) -> Result<Vec<ScoredDoc>, EngineError> {
        let q: Vec<ConceptId> = query.iter().copied().filter(|&c| self.eligible(c)).collect();
        if q.is_empty() {
            return Err(EngineError::EmptyQuery);
        }
        let sim = self.semantic_similarity();
        let mut scored = Vec::with_capacity(results.len());
        for r in results {
            let concepts = self.document_concepts(r.doc)?;
            scored.push(ScoredDoc {
                doc: r.doc,
                score: best_match_average(&sim, measure, &concepts, &q),
            });
        }
        scored.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.doc.cmp(&b.doc)));
        Ok(scored)
    }
}

/// `(1/|q|) Σ_{qi} max_{c ∈ d} sim(c, qi)`; empty documents score 0.
pub fn best_match_average(
    sim: &SemanticSimilarity<'_>,
    measure: Measure,
    doc: &[ConceptId],
    query: &[ConceptId],
) -> f64 {
    if doc.is_empty() || query.is_empty() {
        return 0.0;
    }
    let pair = |a: ConceptId, b: ConceptId| -> f64 {
        match measure {
            Measure::Resnik => sim.resnik(a, b),
            Measure::Lin => sim.lin(a, b),
            Measure::JiangConrath => 1.0 / (1.0 + sim.jiang_conrath(a, b)),
            Measure::WuPalmer => sim.wu_palmer(a, b),
        }
    };
    let mut total = 0.0;
    for &qi in query {
        let best = doc.iter().map(|&c| pair(c, qi)).fold(f64::NEG_INFINITY, f64::max);
        total += best;
    }
    total / query.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineBuilder;
    use cbr_corpus::Corpus;
    use cbr_ontology::fixture;

    fn engine() -> (Engine, Vec<ConceptId>) {
        let fig = fixture::figure3();
        let c = |n: &str| fig.concept(n);
        let corpus = Corpus::from_concept_sets(vec![
            (vec![c("I"), c("L"), c("U")], 0), // exact match for the query
            (vec![c("M"), c("N")], 0),         // near I
            (vec![c("C")], 0),                 // unrelated
        ]);
        let q = fig.example_query();
        (EngineBuilder::new().build(fig.ontology, corpus), q)
    }

    #[test]
    fn exact_match_wins_under_every_measure() {
        let (engine, q) = engine();
        let hits = engine.rds(&q, 3).unwrap();
        for m in [Measure::Resnik, Measure::Lin, Measure::JiangConrath, Measure::WuPalmer] {
            let reranked = engine.rerank(&hits.results, &q, m).unwrap();
            assert_eq!(reranked[0].doc, DocId(0), "measure {m:?}");
            assert!(reranked[0].score >= reranked[1].score);
            assert!(reranked[1].score >= reranked[2].score);
        }
    }

    #[test]
    fn lin_scores_are_normalized() {
        let (engine, q) = engine();
        let hits = engine.rds(&q, 3).unwrap();
        let reranked = engine.rerank(&hits.results, &q, Measure::Lin).unwrap();
        for s in &reranked {
            assert!((0.0..=1.0 + 1e-9).contains(&s.score), "score {}", s.score);
        }
        assert!((reranked[0].score - 1.0).abs() < 1e-9, "self-match averages to 1");
    }

    #[test]
    fn related_document_beats_unrelated() {
        let (engine, q) = engine();
        let hits = engine.rds(&q, 3).unwrap();
        let reranked = engine.rerank(&hits.results, &q, Measure::WuPalmer).unwrap();
        let pos = |d: DocId| reranked.iter().position(|s| s.doc == d).unwrap();
        assert!(pos(DocId(1)) < pos(DocId(2)), "{{M,N}} is nearer {{I,L,U}} than {{C}}");
    }

    #[test]
    fn empty_query_errors() {
        let (engine, _q) = engine();
        assert!(matches!(engine.rerank(&[], &[], Measure::Lin), Err(EngineError::EmptyQuery)));
    }
}
