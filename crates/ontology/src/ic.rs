//! Information-content-based semantic similarity measures.
//!
//! The paper adopts the structural shortest-path distance (Rada et al.)
//! after noting that "complicated distance metrics do not clearly improve
//! the retrieval effectiveness", and names exploring other semantic
//! distances as future work (Section 7). This module implements the
//! classic **information-content (IC)** family it cites — Resnik and
//! Lin, plus Jiang–Conrath and the structural Wu–Palmer measure
//! — so the reproduction can compare ranking families.
//!
//! Information content follows Resnik's corpus-based definition: the
//! probability of a concept is the probability of encountering it *or any
//! of its descendants*; `IC(c) = −ln p(c)`. Occurrence counts therefore
//! propagate to every ancestor (deduplicated — the DAG may reach an
//! ancestor over several paths). Concepts never observed get the maximum
//! observed IC plus one nat, keeping the measures total.

use crate::distance::{ascent_distances, D_INF};
use crate::graph::Ontology;
use crate::id::ConceptId;

/// Per-concept information content derived from occurrence counts.
#[derive(Debug, Clone)]
pub struct InformationContent {
    ic: Vec<f64>,
    max_ic: f64,
}

impl InformationContent {
    /// Computes IC from per-concept occurrence counts (e.g. collection
    /// frequencies). Counts propagate to all ancestors; the root's
    /// subsumed count is the total, giving it `IC = 0`.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != ont.len()`.
    pub fn from_counts(ont: &Ontology, counts: &[u64]) -> InformationContent {
        assert_eq!(counts.len(), ont.len(), "one count per concept required");
        let mut subsumed = vec![0u64; ont.len()];
        // Deduplicated ancestor propagation: one parent-BFS per occurring
        // concept. Σ over occurring concepts of their ancestor-set size.
        let mut stack = Vec::new();
        let mut seen = vec![u32::MAX; ont.len()];
        for c in ont.concepts() {
            let n = counts[c.index()];
            if n == 0 {
                continue;
            }
            stack.clear();
            stack.push(c);
            seen[c.index()] = c.0;
            while let Some(cur) = stack.pop() {
                subsumed[cur.index()] += n;
                for &p in ont.parents(cur) {
                    if seen[p.index()] != c.0 {
                        seen[p.index()] = c.0;
                        stack.push(p);
                    }
                }
            }
        }
        let total = subsumed[ont.root().index()].max(1) as f64;
        let mut max_ic = 0.0f64;
        let mut ic: Vec<f64> = subsumed
            .iter()
            .map(|&s| {
                if s == 0 {
                    f64::NAN // patched below
                } else {
                    let v = -(s as f64 / total).ln();
                    max_ic = max_ic.max(v);
                    v
                }
            })
            .collect();
        let unseen = max_ic + 1.0;
        for v in &mut ic {
            if v.is_nan() {
                *v = unseen;
            }
        }
        InformationContent { ic, max_ic: max_ic.max(unseen) }
    }

    /// Uniform IC: every concept's probability proportional to its subtree
    /// size is replaced by a constant-per-concept count of one. Useful when
    /// no corpus statistics exist.
    pub fn uniform(ont: &Ontology) -> InformationContent {
        Self::from_counts(ont, &vec![1; ont.len()])
    }

    /// The information content of `c` in nats.
    #[inline]
    pub fn ic(&self, c: ConceptId) -> f64 {
        self.ic[c.index()]
    }

    /// The largest IC assigned to any concept.
    pub fn max_ic(&self) -> f64 {
        self.max_ic
    }
}

/// IC- and structure-based pairwise similarity measures over one ontology.
#[derive(Debug)]
pub struct SemanticSimilarity<'a> {
    ont: &'a Ontology,
    ic: InformationContent,
}

impl<'a> SemanticSimilarity<'a> {
    /// Creates the measure set from precomputed information content.
    pub fn new(ont: &'a Ontology, ic: InformationContent) -> Self {
        assert_eq!(ic.ic.len(), ont.len(), "IC table does not match the ontology");
        SemanticSimilarity { ont, ic }
    }

    /// The information-content table in use.
    pub fn information_content(&self) -> &InformationContent {
        &self.ic
    }

    /// The **most informative common ancestor** of `a` and `b` (Resnik's
    /// MICA) and, as a tiebreaker-free byproduct, the **deepest** common
    /// ancestor (Wu–Palmer's LCS). Always defined: the root subsumes
    /// everything.
    pub fn mica(&self, a: ConceptId, b: ConceptId) -> ConceptId {
        self.common_ancestors(a, b)
            .into_iter()
            .max_by(|&x, &y| {
                self.ic
                    .ic(x)
                    .total_cmp(&self.ic.ic(y))
                    .then(self.ont.depth(x).cmp(&self.ont.depth(y)))
                    .then(y.cmp(&x))
            })
            .expect("root is always a common ancestor")
    }

    /// Deepest common ancestor (by minimum depth), the Wu–Palmer LCS.
    pub fn lcs(&self, a: ConceptId, b: ConceptId) -> ConceptId {
        self.common_ancestors(a, b)
            .into_iter()
            .max_by(|&x, &y| self.ont.depth(x).cmp(&self.ont.depth(y)).then(y.cmp(&x)))
            .expect("root is always a common ancestor")
    }

    /// Resnik similarity: `IC(MICA(a, b))`. Range `[0, max_ic]`.
    pub fn resnik(&self, a: ConceptId, b: ConceptId) -> f64 {
        self.ic.ic(self.mica(a, b))
    }

    /// Lin similarity: `2·IC(MICA) / (IC(a) + IC(b))`. Range `[0, 1]`,
    /// 1 exactly when `a == b` (for concepts with positive IC).
    pub fn lin(&self, a: ConceptId, b: ConceptId) -> f64 {
        let denom = self.ic.ic(a) + self.ic.ic(b);
        if denom == 0.0 {
            return if a == b { 1.0 } else { 0.0 };
        }
        2.0 * self.resnik(a, b) / denom
    }

    /// Jiang–Conrath **distance**: `IC(a) + IC(b) − 2·IC(MICA)`. Zero for
    /// identical concepts, growing with unrelatedness.
    pub fn jiang_conrath(&self, a: ConceptId, b: ConceptId) -> f64 {
        (self.ic.ic(a) + self.ic.ic(b) - 2.0 * self.resnik(a, b)).max(0.0)
    }

    /// Wu–Palmer similarity in its path-based DAG form:
    /// `2·N3 / (N1 + N2 + 2·N3)`, where `N3` is the depth of the LCS
    /// (counted from 1 at the root) and `N1`, `N2` are the edge distances
    /// from `a` and `b` up to that LCS. Range `(0, 1]`, exactly 1 for
    /// `a == b`.
    ///
    /// The naive `2·d(LCS)/(d(a)+d(b))` formulation overshoots 1 on DAGs,
    /// because a node's *minimum* depth can undercut its ancestor's when a
    /// second, shallower parent path exists.
    pub fn wu_palmer(&self, a: ConceptId, b: ConceptId) -> f64 {
        let up_a = ascent_distances(self.ont, a);
        let up_b = ascent_distances(self.ont, b);
        // Maximize over all common ancestors (the usual generalization on
        // DAGs): picking a single "deepest" ancestor is not even reflexive
        // here, because an ancestor's minimum depth can exceed the
        // concept's own.
        self.ont
            .concepts()
            .filter(|c| up_a[c.index()] != D_INF && up_b[c.index()] != D_INF)
            .map(|c| {
                let n1 = up_a[c.index()] as f64;
                let n2 = up_b[c.index()] as f64;
                let n3 = self.ont.depth(c) as f64 + 1.0;
                2.0 * n3 / (n1 + n2 + 2.0 * n3)
            })
            .fold(0.0, f64::max)
    }

    /// All common ancestors of `a` and `b` (including themselves when one
    /// subsumes the other).
    fn common_ancestors(&self, a: ConceptId, b: ConceptId) -> Vec<ConceptId> {
        let up_a = ascent_distances(self.ont, a);
        let up_b = ascent_distances(self.ont, b);
        self.ont
            .concepts()
            .filter(|c| up_a[c.index()] != D_INF && up_b[c.index()] != D_INF)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture;

    fn sim(fig: &fixture::Figure3) -> SemanticSimilarity<'_> {
        // Give every concept one occurrence — subtree sizes drive IC.
        SemanticSimilarity::new(&fig.ontology, InformationContent::uniform(&fig.ontology))
    }

    #[test]
    fn root_has_zero_ic_and_leaves_are_most_informative() {
        let fig = fixture::figure3();
        let ic = InformationContent::uniform(&fig.ontology);
        assert_eq!(ic.ic(fig.concept("A")), 0.0);
        assert!(ic.ic(fig.concept("M")) > ic.ic(fig.concept("I")));
        assert!(ic.ic(fig.concept("I")) > ic.ic(fig.concept("G")));
    }

    #[test]
    fn subsumed_counts_deduplicate_dag_paths() {
        // J is reachable from A via B and via D; its subtree must be counted
        // once. With uniform counts, p(A) = 1 exactly (total / total) — any
        // double counting would push the root's subsumed count past the
        // total and its IC negative.
        let fig = fixture::figure3();
        let ic = InformationContent::uniform(&fig.ontology);
        for c in fig.ontology.concepts() {
            assert!(ic.ic(c) >= 0.0, "negative IC for {c}");
        }
    }

    #[test]
    fn information_content_accessor_exposes_the_table_in_use() {
        let fig = fixture::figure3();
        let s = sim(&fig);
        let root = fig.concept("A");
        assert_eq!(s.information_content().ic(root), 0.0, "root IC is zero by definition");
    }

    #[test]
    fn mica_and_lcs_of_g_and_f_is_root() {
        // Same configuration as the paper's D(G,F) example: the only common
        // ancestor of G and F is A.
        let fig = fixture::figure3();
        let s = sim(&fig);
        assert_eq!(s.mica(fig.concept("G"), fig.concept("F")), fig.concept("A"));
        assert_eq!(s.lcs(fig.concept("G"), fig.concept("F")), fig.concept("A"));
        assert_eq!(s.resnik(fig.concept("G"), fig.concept("F")), 0.0);
    }

    #[test]
    fn mica_of_descendant_pair_is_the_ancestor() {
        let fig = fixture::figure3();
        let s = sim(&fig);
        // R and V share J (via K and O); J is deeper/more informative than A.
        let m = s.mica(fig.concept("R"), fig.concept("V"));
        assert_eq!(fig.ontology.label(m), "J");
        // U below R: the MICA of (R, U) is R itself.
        assert_eq!(s.mica(fig.concept("R"), fig.concept("U")), fig.concept("R"));
    }

    #[test]
    fn lin_is_normalized_and_reflexive() {
        let fig = fixture::figure3();
        let s = sim(&fig);
        for a in ["M", "R", "V", "L"] {
            let c = fig.concept(a);
            assert!((s.lin(c, c) - 1.0).abs() < 1e-12, "lin({a},{a}) = {}", s.lin(c, c));
        }
        let l = s.lin(fig.concept("M"), fig.concept("T"));
        assert!((0.0..=1.0).contains(&l));
    }

    #[test]
    fn jiang_conrath_is_a_distance() {
        let fig = fixture::figure3();
        let s = sim(&fig);
        assert_eq!(s.jiang_conrath(fig.concept("R"), fig.concept("R")), 0.0);
        let near = s.jiang_conrath(fig.concept("R"), fig.concept("U"));
        let far = s.jiang_conrath(fig.concept("M"), fig.concept("T"));
        assert!(near < far, "related pair ({near}) should beat unrelated ({far})");
    }

    #[test]
    fn wu_palmer_prefers_deep_lcs() {
        let fig = fixture::figure3();
        let s = sim(&fig);
        // R and U share R (deep); M and T share only A (shallow).
        let close = s.wu_palmer(fig.concept("R"), fig.concept("U"));
        let distant = s.wu_palmer(fig.concept("M"), fig.concept("T"));
        assert!(close > distant);
        assert!((0.0..=1.0).contains(&close));
        assert_eq!(s.wu_palmer(fig.concept("A"), fig.concept("A")), 1.0);
    }

    #[test]
    fn corpus_counts_shift_ic() {
        let fig = fixture::figure3();
        let mut counts = vec![0u64; fig.ontology.len()];
        counts[fig.concept("M").index()] = 100; // very common
        counts[fig.concept("T").index()] = 1; // rare
        let ic = InformationContent::from_counts(&fig.ontology, &counts);
        assert!(ic.ic(fig.concept("T")) > ic.ic(fig.concept("M")));
        // Never-observed concepts get max+1.
        assert!(ic.ic(fig.concept("L")) > ic.ic(fig.concept("T")));
    }

    #[test]
    #[should_panic(expected = "one count per concept")]
    fn count_arity_is_checked() {
        let fig = fixture::figure3();
        InformationContent::from_counts(&fig.ontology, &[1, 2, 3]);
    }
}
