//! Fixture test harness: keeps the service exports live so F05 only
//! reports the deliberately dead one.

#[test]
fn service_round_trip() {
    let mut svc = Service::default();
    let _ = svc.query(&[1, 2]);
    let _ = svc.query_guarded(&[1]);
    svc.refresh().ok();
    svc.tick();
}
