//! Offline placeholder for the `serde` crate.
//!
//! This workspace builds in a sandbox without registry access, so the real
//! `serde` cannot be downloaded. Every module that genuinely needs serde
//! (the `cbr_ontology::ser` codec, index snapshots, engine persistence) is
//! gated behind a `serde` cargo feature that is off by default; this empty
//! crate only exists so dependency resolution succeeds. Swap the
//! `[patch.crates-io]` entry out to build against the real crate.
