//! Seeded-violation fixture: engine entry points composing forbidden
//! pairwise products (C02) and a non-TA quadratic root (C03).

/// Root `knds::engine::rds_with`. Seeded C02 twice: a lexical `D·D`
/// nest, and a call to a concept-scanning helper inside an `O(D)` loop
/// composing the cross-function `C·D` product.
pub fn rds_with(docs: &[u32], entries: &[u32]) -> u32 {
    let mut acc = 0;
    for &d in docs {
        for &e in entries {
            acc += d * e;
        }
    }
    for &d in docs {
        acc += scan_concepts(d);
    }
    acc
}

/// Root `knds::engine::sds_with`. Seeded C03: the symmetric path
/// composes the pairwise `nq·D` product reserved for the TA baseline.
pub fn sds_with(query: &[u32], docs: &[u32]) -> u32 {
    let mut acc = 0;
    for &q1 in query {
        for &d in docs {
            acc += q1 ^ d;
        }
    }
    acc
}

/// Helper with an `O(C)` composed bound.
fn scan_concepts(d: u32) -> u32 {
    let concepts = [d; 4];
    let mut acc = 0;
    for &c in concepts.iter() {
        acc += c;
    }
    acc
}
