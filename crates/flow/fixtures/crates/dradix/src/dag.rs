//! Seeded-violation fixture for cbr-flow. Parsed, never compiled.
//!
//! `build_into` matches the `dradix::dag::build_into` root spec; it
//! seeds one F01 (vec! scratch) and one F04 (expect).

pub struct Node {
    pub concept: u32,
}

pub struct DRadixDag {
    pub nodes: Vec<Node>,
}

impl DRadixDag {
    pub fn build_into(&mut self, doc: &[u32], query: &[u32]) -> u32 {
        let scratch = vec![0u32; doc.len()]; // seeded: F01
        let root = self.nodes.first().expect("non-empty dag"); // seeded: F04
        root.concept + scratch.len() as u32 + query.len() as u32
    }
}
