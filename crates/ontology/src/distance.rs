//! Valid-path semantic distances (Section 3.2).
//!
//! The concept-concept distance `D(ci, cj)` is the shortest-path distance of
//! Rada et al. restricted to **valid paths**: a path counts only if it
//! passes through a common ancestor of the two concepts, i.e. it ascends
//! from one concept to an ancestor and then descends to the other
//! (∧-shaped). The paper's example: in Figure 3, `D(G, F)` is 5 rather than
//! 2 because the 2-edge path through their shared *descendant* `J` is not
//! valid.
//!
//! Two equivalent formulations are implemented:
//!
//! * [`concept_distance`] — the Dewey form: minimize
//!   `(|p| − lcp) + (|q| − lcp)` over all address pairs `(p, q)` of the two
//!   concepts. Every common ancestor plus a pair of descending paths is
//!   realized by some root-address pair, so this equals the ∧-path minimum.
//! * [`concept_distance_graph`] — the graph form: breadth-first search over
//!   parent edges from both concepts and minimize the summed ascent depths
//!   over every common ancestor. Used as the reference implementation in
//!   tests and by callers that have no [`PathTable`] at hand.

use crate::dewey::{longest_common_prefix, PathTable};
use crate::graph::Ontology;
use crate::id::ConceptId;

/// Distance value used for "not reachable / not yet known" intermediate
/// states. Never returned from the public distance functions on a
/// single-rooted ontology (the root is a universal common ancestor).
pub const D_INF: u32 = u32::MAX;

/// Concept-concept valid-path distance via Dewey addresses.
///
/// Cost is `O(|P(a)| · |P(b)| · depth)` — the quadratic per-pair cost that
/// the DRC algorithm of Section 4 exists to avoid at document scale.
pub fn concept_distance(paths: &PathTable, a: ConceptId, b: ConceptId) -> u32 {
    if a == b {
        return 0;
    }
    let mut best = D_INF;
    for pa in paths.addresses(a) {
        for pb in paths.addresses(b) {
            let lcp = longest_common_prefix(pa, pb);
            let d = (pa.len() - lcp) as u32 + (pb.len() - lcp) as u32;
            best = best.min(d);
        }
    }
    best
}

/// Concept-concept valid-path distance via graph traversal (reference
/// implementation).
///
/// Computes the minimum ascent distance from each concept to every ancestor
/// with a BFS over parent edges, then minimizes the sum over common
/// ancestors. `O(V + E)` per call.
pub fn concept_distance_graph(ont: &Ontology, a: ConceptId, b: ConceptId) -> u32 {
    if a == b {
        return 0;
    }
    let up_a = ascent_distances(ont, a);
    let up_b = ascent_distances(ont, b);
    let mut best = D_INF;
    for i in 0..ont.len() {
        let (da, db) = (up_a[i], up_b[i]);
        if da != D_INF && db != D_INF {
            best = best.min(da + db);
        }
    }
    best
}

/// Minimum number of parent edges from `c` to every ancestor (including `c`
/// itself at distance 0); `D_INF` for non-ancestors.
pub fn ascent_distances(ont: &Ontology, c: ConceptId) -> Vec<u32> {
    let mut dist = vec![D_INF; ont.len()];
    dist[c.index()] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(c);
    while let Some(cur) = queue.pop_front() {
        let d = dist[cur.index()];
        for &p in ont.parents(cur) {
            if dist[p.index()] == D_INF {
                dist[p.index()] = d + 1;
                queue.push_back(p);
            }
        }
    }
    dist
}

/// Document-concept distance `Ddc(d, c)` (Equation 1): the distance from `c`
/// to the nearest concept associated with the document.
///
/// This is the naive per-pair form used by the BL baseline of Section 6.2;
/// `cbr-dradix` provides the `O(n log n)` batch alternative.
pub fn document_concept_distance(
    paths: &PathTable,
    doc_concepts: &[ConceptId],
    c: ConceptId,
) -> u32 {
    doc_concepts.iter().map(|&dc| concept_distance(paths, dc, c)).min().unwrap_or(D_INF)
}

/// All valid-path distances from a *set* of source concepts to every concept
/// of the ontology, i.e. `min_{s ∈ sources} D(s, c)` for every `c`.
///
/// Implemented as a two-phase relaxation that mirrors the ∧-path structure:
/// first propagate minimum ascent distances upward (reverse topological
/// order), then propagate downward (topological order), which also lets
/// descents branch off any ancestor reached during ascent. `O(V + E)`.
///
/// This is the oracle used to validate the kNDS breadth-first expansion and
/// to materialize distance-sorted postings for the TA comparator.
pub fn multi_source_distances(ont: &Ontology, sources: &[ConceptId]) -> Vec<u32> {
    let mut up = vec![D_INF; ont.len()];
    for &s in sources {
        up[s.index()] = 0;
    }
    // Ascend: min over children of (their ascent distance + 1). Reverse
    // topological order visits children before parents.
    for &c in ont.topological_order().iter().rev() {
        let d = up[c.index()];
        if d == D_INF {
            continue;
        }
        for &p in ont.parents(c) {
            let cand = d + 1;
            if cand < up[p.index()] {
                up[p.index()] = cand;
            }
        }
    }
    // Descend: a valid path may stop ascending at any point and descend.
    let mut dist = up;
    for &c in ont.topological_order() {
        let d = dist[c.index()];
        if d == D_INF {
            continue;
        }
        for &child in ont.children(c) {
            let cand = d + 1;
            if cand < dist[child.index()] {
                dist[child.index()] = cand;
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture;
    use crate::graph::OntologyBuilder;

    fn chain() -> Ontology {
        // root -> a -> b -> c
        let mut b = OntologyBuilder::new();
        let mut prev = b.add_concept("root");
        for name in ["a", "b", "c"] {
            let n = b.add_concept(name);
            b.add_edge(prev, n).unwrap();
            prev = n;
        }
        b.build().unwrap()
    }

    #[test]
    fn chain_distances_are_path_lengths() {
        let ont = chain();
        let pt = ont.path_table();
        let ids: Vec<ConceptId> = ont.concepts().collect();
        assert_eq!(concept_distance(pt, ids[0], ids[3]), 3);
        assert_eq!(concept_distance(pt, ids[1], ids[2]), 1);
        assert_eq!(concept_distance(pt, ids[2], ids[2]), 0);
    }

    #[test]
    fn siblings_meet_at_parent() {
        let mut b = OntologyBuilder::new();
        let root = b.add_concept("root");
        let x = b.add_concept("x");
        let y = b.add_concept("y");
        b.add_edge(root, x).unwrap();
        b.add_edge(root, y).unwrap();
        let ont = b.build().unwrap();
        assert_eq!(concept_distance(ont.path_table(), x, y), 2);
        assert_eq!(concept_distance_graph(&ont, x, y), 2);
    }

    #[test]
    fn paper_example_d_g_f_is_five_not_two() {
        // Section 3.2: G and F share the descendant J (2 edges apart through
        // it) but their only common ancestor is the root A, so D(G, F) = 5.
        let fig3 = fixture::figure3();
        let g = fig3.concept("G");
        let f = fig3.concept("F");
        let pt = fig3.ontology.path_table();
        assert_eq!(concept_distance(pt, g, f), 5);
        assert_eq!(concept_distance_graph(&fig3.ontology, g, f), 5);
    }

    #[test]
    fn dewey_and_graph_forms_agree_on_figure3() {
        let fig3 = fixture::figure3();
        let ont = &fig3.ontology;
        let pt = ont.path_table();
        for a in ont.concepts() {
            for b in ont.concepts() {
                assert_eq!(
                    concept_distance(pt, a, b),
                    concept_distance_graph(ont, a, b),
                    "mismatch for {} vs {}",
                    ont.label(a),
                    ont.label(b)
                );
            }
        }
    }

    #[test]
    fn distance_is_symmetric_on_figure3() {
        let fig3 = fixture::figure3();
        let pt = fig3.ontology.path_table();
        for a in fig3.ontology.concepts() {
            for b in fig3.ontology.concepts() {
                assert_eq!(concept_distance(pt, a, b), concept_distance(pt, b, a));
            }
        }
    }

    #[test]
    fn document_concept_distance_takes_minimum() {
        // Example 1 of the paper: d = {F, R, T, V}, q = {I, L, U} gives
        // Ddc(d, I) = 4, Ddc(d, L) = 2, Ddc(d, U) = 1.
        let fig3 = fixture::figure3();
        let pt = fig3.ontology.path_table();
        let d: Vec<ConceptId> = ["F", "R", "T", "V"].iter().map(|l| fig3.concept(l)).collect();
        assert_eq!(document_concept_distance(pt, &d, fig3.concept("I")), 4);
        assert_eq!(document_concept_distance(pt, &d, fig3.concept("L")), 2);
        assert_eq!(document_concept_distance(pt, &d, fig3.concept("U")), 1);
    }

    #[test]
    fn multi_source_matches_pairwise_minimum() {
        let fig3 = fixture::figure3();
        let ont = &fig3.ontology;
        let pt = ont.path_table();
        let sources = vec![fig3.concept("I"), fig3.concept("L"), fig3.concept("U")];
        let dist = multi_source_distances(ont, &sources);
        for c in ont.concepts() {
            let expected = sources.iter().map(|&s| concept_distance(pt, s, c)).min().unwrap();
            assert_eq!(dist[c.index()], expected, "concept {}", ont.label(c));
        }
    }

    #[test]
    fn multi_source_of_single_source_matches_pairwise() {
        let ont = chain();
        let ids: Vec<ConceptId> = ont.concepts().collect();
        let dist = multi_source_distances(&ont, &[ids[3]]);
        assert_eq!(dist, vec![3, 2, 1, 0]);
    }
}
