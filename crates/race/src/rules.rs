//! The race rules R01–R05, run over per-function effect summaries and
//! the whole-program call graph.
//!
//! * **R01** — the static lock-order graph must be acyclic, and no
//!   protected value may be read under one critical section and written
//!   back under a later one (split critical section).
//! * **R02** — no blocking operation (lock acquisition, condvar wait,
//!   join, scope join-all) may be transitively reachable while a lock
//!   is held.
//! * **R03** — epoch publication (`Published::publish`) must happen
//!   inside a writer critical section: under a local exclusive guard,
//!   or with every caller holding one.
//! * **R04** — the snapshot query roots must be lock-free: zero lock
//!   acquisitions transitively reachable from [`ROOT_SPECS`].
//! * **R05** — pool pops and pushes must balance across spawn
//!   boundaries: a slot popped inside a spawned closure is returned in
//!   that closure; a slot popped on the spawning thread is not pushed
//!   back from inside one.
//!
//! A meta-rule (`RACE`) guards against vacuity: every entry of
//! [`ROOT_SPECS`] must match a function, otherwise R04 would "pass" by
//! proving nothing.

use crate::summary::Effects;
use cbr_flow::graph::{propagate, Graph};
use cbr_flow::parser::Workspace;
use cbr_flow::report::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// The snapshot query roots whose lock-freedom R04 proves, as
/// `(module, fn)` pairs. These are the paper's RDS/SDS entry points on
/// the immutable [`EngineSnapshot`] — the reader side of the
/// epoch-publication design, which must never contend with the writer.
pub const ROOT_SPECS: [(&str, &str); 2] =
    [("core::snapshot", "rds_with"), ("core::snapshot", "sds_with")];

/// R04 proof statistics, reported even when everything passes: a clean
/// run must show *what* was proven (roots matched, functions covered),
/// not just the absence of findings.
#[derive(Debug, Default, Clone, Copy)]
pub struct RuleStats {
    /// Root functions matched by [`ROOT_SPECS`].
    pub r04_roots: usize,
    /// Non-test functions transitively reachable from the roots.
    pub r04_reachable_fns: usize,
    /// Lock acquisitions found among those functions (findings).
    pub r04_lock_acquisitions: usize,
}

/// Runs all race rules; returns findings plus the R04 proof statistics.
pub fn run(ws: &Workspace, graph: &Graph, fx: &Effects) -> (Vec<Finding>, RuleStats) {
    let edges = race_edges(ws, graph, fx);
    let trans = trans_acquires(&edges, fx);
    let blocks = blocking_reach(&edges, fx);

    let mut findings = Vec::new();
    r01_lock_order(ws, graph, fx, &trans, &mut findings);
    r01_split_sections(ws, fx, &mut findings);
    r02_blocking_under_lock(ws, graph, fx, &blocks, &mut findings);
    r03_publish_discipline(ws, graph, fx, &mut findings);
    let stats = r04_lock_free_reads(ws, fx, &edges, &mut findings);
    r05_pool_balance(ws, fx, &mut findings);
    findings.sort_by(|a, b| (&a.rule, &a.file, a.line).cmp(&(&b.rule, &b.file, b.line)));
    (findings, stats)
}

/// Call edges the race rules propagate over: the resolved graph minus
/// suppressed sites (atomic-field dispatch), test-region and
/// debug-gated sites, and test functions on either end.
fn race_edges(ws: &Workspace, graph: &Graph, fx: &Effects) -> Vec<Vec<usize>> {
    ws.fns
        .iter()
        .enumerate()
        .map(|(id, f)| {
            if f.is_test {
                return Vec::new();
            }
            let file = &ws.files[f.file];
            let mut out = BTreeSet::new();
            for (ci, call) in f.calls.iter().enumerate() {
                if fx.suppressed[id][ci] || file.is_test(call.at) || file.is_debug_gated(call.at) {
                    continue;
                }
                for &t in &graph.targets[id][ci] {
                    if !ws.fns[t].is_test {
                        out.insert(t);
                    }
                }
            }
            out.into_iter().collect()
        })
        .collect()
}

/// Fixpoint: the set of lock identities each function may acquire,
/// directly or through any callee.
fn trans_acquires(edges: &[Vec<usize>], fx: &Effects) -> Vec<BTreeSet<String>> {
    let mut out: Vec<BTreeSet<String>> =
        fx.fns.iter().map(|f| f.acquires.iter().map(|a| a.lock.clone()).collect()).collect();
    loop {
        let mut changed = false;
        for id in 0..edges.len() {
            for &t in &edges[id] {
                if t == id {
                    continue;
                }
                let extra: Vec<String> =
                    out[t].iter().filter(|l| !out[id].contains(*l)).cloned().collect();
                if !extra.is_empty() {
                    out[id].extend(extra);
                    changed = true;
                }
            }
        }
        if !changed {
            return out;
        }
    }
}

/// Why a function may block: a local operation, or a call into a
/// blocking callee (followed transitively when rendering the chain).
#[derive(Debug, Clone)]
struct Blk {
    /// Description of the local blocking operation at the chain's end.
    leaf: String,
    /// Callee to follow (`None` at the leaf).
    via: Option<usize>,
}

/// Fixpoint: whether each function may block, with a witness chain.
fn blocking_reach(edges: &[Vec<usize>], fx: &Effects) -> Vec<Option<Blk>> {
    let mut out: Vec<Option<Blk>> = fx
        .fns
        .iter()
        .map(|f| f.blocking.first().map(|(_, d)| Blk { leaf: d.clone(), via: None }))
        .collect();
    loop {
        let mut changed = false;
        for id in 0..edges.len() {
            if out[id].is_some() {
                continue;
            }
            if let Some(&t) = edges[id].iter().find(|&&t| t != id && out[t].is_some()) {
                out[id] = Some(Blk { leaf: String::new(), via: Some(t) });
                changed = true;
            }
        }
        if !changed {
            return out;
        }
    }
}

/// Renders a `caller -> .. -> leaf op` witness chain for a blocking fn.
fn blocking_chain(ws: &Workspace, blocks: &[Option<Blk>], mut id: usize) -> String {
    let mut parts = Vec::new();
    for _ in 0..32 {
        let Some(b) = &blocks[id] else { break };
        match b.via {
            Some(t) => {
                parts.push(format!("`{}`", ws.display(id)));
                id = t;
            }
            None => {
                parts.push(format!("`{}` ({})", ws.display(id), b.leaf));
                break;
            }
        }
    }
    parts.join(" -> ")
}

/// R01: build the lock-order graph (lock A held while lock B is
/// acquired, locally or through a call chain) and report every cycle.
fn r01_lock_order(
    ws: &Workspace,
    graph: &Graph,
    fx: &Effects,
    trans: &[BTreeSet<String>],
    findings: &mut Vec<Finding>,
) {
    // Edge (A, B) → witness (file index, byte offset of the acquisition
    // or call that takes B under A). First witness wins; iteration order
    // is deterministic (fn order, then site order).
    let mut order: BTreeMap<(String, String), (usize, usize)> = BTreeMap::new();
    for (id, f) in ws.fns.iter().enumerate() {
        let fxf = &fx.fns[id];
        if f.is_test || !fxf.in_scope {
            continue;
        }
        let file = &ws.files[f.file];
        for a in &fxf.acquires {
            for b in &fxf.acquires {
                if b.at > a.span.0 && b.at <= a.span.1 && b.lock != a.lock {
                    order.entry((a.lock.clone(), b.lock.clone())).or_insert((f.file, b.at));
                }
            }
            for (ci, call) in f.calls.iter().enumerate() {
                if call.at <= a.span.0
                    || call.at > a.span.1
                    || fx.suppressed[id][ci]
                    || file.is_test(call.at)
                {
                    continue;
                }
                for &t in &graph.targets[id][ci] {
                    for lock in &trans[t] {
                        if *lock != a.lock {
                            order
                                .entry((a.lock.clone(), lock.clone()))
                                .or_insert((f.file, call.at));
                        }
                    }
                }
            }
        }
    }

    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (u, v) in order.keys() {
        adj.entry(u).or_default().insert(v);
    }
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    for ((u, v), &(file_idx, at)) in &order {
        let Some(path) = bfs_path(&adj, v, u) else {
            continue;
        };
        // Cycle: u -> v -> .. -> u (the path from v back to u already
        // ends at u). Canonicalize by the sorted node set so each cycle
        // reports once, anchored at its smallest edge.
        let nodes: Vec<String> = path.iter().map(|s| s.to_string()).collect();
        let mut canon = nodes.clone();
        canon.sort();
        canon.dedup();
        if !seen.insert(canon) {
            continue;
        }
        let file = &ws.files[file_idx];
        let rendered: Vec<String> =
            std::iter::once(u.clone()).chain(nodes).map(|n| format!("`{n}`")).collect();
        findings.push(Finding::new(
            "R01",
            &file.rel,
            file.line_of(at),
            format!("lock-order cycle: {}", rendered.join(" -> ")),
        ));
    }
}

/// Shortest path from `from` to `to` in the lock-order graph, inclusive.
fn bfs_path<'a>(
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    from: &'a str,
    to: &str,
) -> Option<Vec<&'a str>> {
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([from]);
    let mut seen = BTreeSet::from([from]);
    while let Some(n) = queue.pop_front() {
        if n == to {
            let mut path = vec![n];
            let mut cur = n;
            while let Some(&p) = prev.get(cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &m in adj.get(n).into_iter().flatten() {
            if seen.insert(m) {
                prev.insert(m, n);
                queue.push_back(m);
            }
        }
    }
    None
}

/// R01 (split critical section): a protected value read under one
/// temporary guard and written back under a later one — the classic
/// lost-update shape `let v = *m.lock(); *m.lock() = v + 1;`.
fn r01_split_sections(ws: &Workspace, fx: &Effects, findings: &mut Vec<Finding>) {
    for (id, f) in ws.fns.iter().enumerate() {
        let fxf = &fx.fns[id];
        if f.is_test || !fxf.in_scope {
            continue;
        }
        let file = &ws.files[f.file];
        let mut by_lock: BTreeMap<&str, (Option<usize>, Vec<usize>)> = BTreeMap::new();
        for a in &fxf.acquires {
            let entry = by_lock.entry(&a.lock).or_default();
            if a.deref_read && a.temporary && entry.0.is_none() {
                entry.0 = Some(a.at);
            }
            if a.deref_write && a.temporary {
                entry.1.push(a.at);
            }
        }
        for (lock, (read, writes)) in by_lock {
            let Some(read_at) = read else { continue };
            for w in writes.into_iter().filter(|w| *w > read_at) {
                findings.push(Finding::new(
                    "R01",
                    &file.rel,
                    file.line_of(w),
                    format!(
                        "split critical section on `{lock}`: value read at line {} is \
                         re-locked for this write — the read-modify-write is not atomic",
                        file.line_of(read_at)
                    ),
                ));
            }
        }
    }
}

/// R02: no blocking operation — local or transitively through a call —
/// while a lock guard is held.
fn r02_blocking_under_lock(
    ws: &Workspace,
    graph: &Graph,
    fx: &Effects,
    blocks: &[Option<Blk>],
    findings: &mut Vec<Finding>,
) {
    for (id, f) in ws.fns.iter().enumerate() {
        let fxf = &fx.fns[id];
        if f.is_test || !fxf.in_scope {
            continue;
        }
        let file = &ws.files[f.file];
        let mut seen_sites = BTreeSet::new();
        for a in &fxf.acquires {
            for (at, desc) in &fxf.blocking {
                if *at > a.span.0 && *at <= a.span.1 && seen_sites.insert(*at) {
                    findings.push(Finding::new(
                        "R02",
                        &file.rel,
                        file.line_of(*at),
                        format!("{desc} while holding `{}`", a.lock),
                    ));
                }
            }
            for (ci, call) in f.calls.iter().enumerate() {
                if call.at <= a.span.0
                    || call.at > a.span.1
                    || fx.suppressed[id][ci]
                    || file.is_test(call.at)
                {
                    continue;
                }
                let Some(&t) = graph.targets[id][ci].iter().find(|&&t| blocks[t].is_some()) else {
                    continue;
                };
                if seen_sites.insert(call.at) {
                    findings.push(Finding::new(
                        "R02",
                        &file.rel,
                        file.line_of(call.at),
                        format!(
                            "call may block while holding `{}`: {}",
                            a.lock,
                            blocking_chain(ws, blocks, t)
                        ),
                    ));
                }
            }
        }
    }
}

/// R03: every `Published::publish` site must sit inside a writer
/// critical section — under a local exclusive guard, or (one caller
/// level up) with every non-test caller holding one. The facade's own
/// `sync/` internals are the axioms and are exempt.
fn r03_publish_discipline(
    ws: &Workspace,
    graph: &Graph,
    fx: &Effects,
    findings: &mut Vec<Finding>,
) {
    // Caller sites per callee: (caller id, call offset), non-test only.
    let mut callers: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
    for (id, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let file = &ws.files[f.file];
        for (ci, call) in f.calls.iter().enumerate() {
            if fx.suppressed[id][ci] || file.is_test(call.at) {
                continue;
            }
            for &t in &graph.targets[id][ci] {
                callers.entry(t).or_default().push((id, call.at));
            }
        }
    }
    let in_excl_span = |id: usize, at: usize| -> bool {
        fx.fns[id].acquires.iter().any(|a| a.exclusive && at > a.span.0 && at <= a.span.1)
    };
    for (id, f) in ws.fns.iter().enumerate() {
        let fxf = &fx.fns[id];
        if f.is_test || !fxf.in_scope {
            continue;
        }
        let file = &ws.files[f.file];
        if file.rel.starts_with("crates/sched/src/sync/") {
            continue;
        }
        for &p in &fxf.publishes {
            if in_excl_span(id, p) {
                continue;
            }
            let sites = callers.get(&id).map(Vec::as_slice).unwrap_or_default();
            if sites.is_empty() {
                findings.push(Finding::new(
                    "R03",
                    &file.rel,
                    file.line_of(p),
                    "epoch publish outside a writer critical section (no exclusive guard \
                     held here, and no caller provides one)",
                ));
            } else if let Some((cid, cat)) =
                sites.iter().find(|(cid, cat)| !in_excl_span(*cid, *cat))
            {
                let cfile = &ws.files[ws.fns[*cid].file];
                findings.push(Finding::new(
                    "R03",
                    &file.rel,
                    file.line_of(p),
                    format!(
                        "epoch publish reachable outside a writer critical section: caller \
                         `{}` ({}:{}) holds no exclusive guard",
                        ws.display(*cid),
                        cfile.rel,
                        cfile.line_of(*cat)
                    ),
                ));
            }
        }
    }
}

/// R04: prove the snapshot query roots lock-free — propagate over the
/// race edges from [`ROOT_SPECS`] and report every reachable lock
/// acquisition. Emits `RACE` meta-findings for unmatched root specs.
fn r04_lock_free_reads(
    ws: &Workspace,
    fx: &Effects,
    edges: &[Vec<usize>],
    findings: &mut Vec<Finding>,
) -> RuleStats {
    let mut seeds = Vec::new();
    for (module, name) in ROOT_SPECS {
        let matched: Vec<usize> = ws
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.is_test && f.module == module && f.name == name)
            .map(|(id, _)| id)
            .collect();
        if matched.is_empty() {
            findings.push(Finding::new(
                "RACE",
                "crates/race/src/rules.rs",
                0,
                format!(
                    "R04 root spec `{module}::{name}` matched no function — the lock-free \
                     proof is vacuous; update ROOT_SPECS"
                ),
            ));
        }
        seeds.extend(matched);
    }
    let reach = propagate(edges, &seeds);
    let mut stats = RuleStats { r04_roots: seeds.len(), ..RuleStats::default() };
    for (id, f) in ws.fns.iter().enumerate() {
        if f.is_test || !reach.reached(id) {
            continue;
        }
        stats.r04_reachable_fns += 1;
        let file = &ws.files[f.file];
        for a in &fx.fns[id].acquires {
            stats.r04_lock_acquisitions += 1;
            findings.push(Finding::new(
                "R04",
                &file.rel,
                file.line_of(a.at),
                format!(
                    "lock acquisition `{}` reachable from snapshot query root: {}",
                    a.lock,
                    reach.chain(ws, id)
                ),
            ));
        }
    }
    stats
}

/// R05: pool pops and pushes balance across spawn boundaries within
/// each function (closure bodies attribute to the enclosing fn).
fn r05_pool_balance(ws: &Workspace, fx: &Effects, findings: &mut Vec<Finding>) {
    for (id, f) in ws.fns.iter().enumerate() {
        let fxf = &fx.fns[id];
        if f.is_test || !fxf.in_scope {
            continue;
        }
        let file = &ws.files[f.file];
        let span_of = |at: usize| fxf.spawn_spans.iter().find(|(o, c)| *o < at && at < *c);
        for (pat, recv) in &fxf.pool_pops {
            match span_of(*pat) {
                Some(span) => {
                    let returned = fxf
                        .pool_pushes
                        .iter()
                        .any(|(qat, qr)| qr == recv && span.0 < *qat && *qat < span.1);
                    if !returned {
                        findings.push(Finding::new(
                            "R05",
                            &file.rel,
                            file.line_of(*pat),
                            format!(
                                "pool slot popped from `{recv}` inside a spawned closure is \
                                 never pushed back on that thread"
                            ),
                        ));
                    }
                }
                None => {
                    let crossed = fxf
                        .pool_pushes
                        .iter()
                        .any(|(qat, qr)| qr == recv && span_of(*qat).is_some());
                    if crossed {
                        findings.push(Finding::new(
                            "R05",
                            &file.rel,
                            file.line_of(*pat),
                            format!(
                                "pool slot popped from `{recv}` on this thread is pushed \
                                 back from inside a spawned closure"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::extract;
    use cbr_flow::graph::CrateDeps;
    use cbr_flow::scanner::SourceFile;

    fn check(files: &[(&str, &str)]) -> (Vec<Finding>, RuleStats) {
        let ws = Workspace::parse(files.iter().map(|(r, t)| SourceFile::parse(r, t)).collect());
        let graph = Graph::build(&ws, &CrateDeps::default());
        let fx = extract(&ws, &graph, true);
        run(&ws, &graph, &fx)
    }

    /// Fixture tree with valid R04 roots, so the meta-rule stays quiet
    /// in tests that target other rules.
    const ROOTS: (&str, &str) = (
        "crates/core/src/snapshot.rs",
        "pub struct Snap;\nimpl Snap {\n\
         pub fn rds_with(&self) -> u32 { free_helper() }\n\
         pub fn sds_with(&self) -> u32 { free_helper() }\n\
         }\nfn free_helper() -> u32 { 0 }\n",
    );

    fn with_roots<'a>(files: &[(&'a str, &'a str)]) -> Vec<(&'a str, &'a str)> {
        let mut all = files.to_vec();
        all.push(ROOTS);
        all
    }

    fn count(findings: &[Finding], rule: &str) -> usize {
        findings.iter().filter(|f| f.rule == rule).count()
    }

    #[test]
    fn interprocedural_lock_inversion_is_a_cycle() {
        let (findings, _) = check(&with_roots(&[(
            "crates/svc/src/lib.rs",
            "pub struct Svc { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl Svc {\n\
             pub fn ab(&self) { let _g = self.a.lock(); self.lock_b(); }\n\
             fn lock_b(&self) { let _g = self.b.lock(); }\n\
             pub fn ba(&self) { let _g = self.b.lock(); self.lock_a(); }\n\
             fn lock_a(&self) { let _g = self.a.lock(); }\n\
             }\n",
        )]));
        assert_eq!(count(&findings, "R01"), 1, "one canonical cycle:\n{findings:#?}");
        assert!(findings.iter().any(|f| f.rule == "R01"
            && f.message.contains("Svc::a")
            && f.message.contains("Svc::b")));
        assert_eq!(count(&findings, "R02"), 2, "both nested acquires block:\n{findings:#?}");
    }

    #[test]
    fn split_critical_section_is_reported_once() {
        let (findings, _) = check(&with_roots(&[(
            "crates/svc/src/lib.rs",
            "pub fn rmw(n: &Mutex<u32>) { let v = *n.lock(); *n.lock() = v + 1; }\n",
        )]));
        assert_eq!(count(&findings, "R01"), 1);
        assert!(findings[0].message.contains("split critical section"));
        assert_eq!(count(&findings, "R02"), 0, "no guard is held across the gap");
    }

    #[test]
    fn publish_requires_a_writer_critical_section() {
        let (findings, _) = check(&with_roots(&[(
            "crates/svc/src/lib.rs",
            "pub struct Svc { writer: Mutex<u32>, cell: Published<u32> }\n\
             impl Svc {\n\
             pub fn bad(&self) { self.cell.publish(1); }\n\
             pub fn good(&self) { let _g = self.writer.lock(); self.cell.publish(2); }\n\
             }\n",
        )]));
        let r03: Vec<_> = findings.iter().filter(|f| f.rule == "R03").collect();
        assert_eq!(r03.len(), 1, "only the unguarded publish:\n{findings:#?}");
        assert_eq!(r03[0].line, 3);
    }

    #[test]
    fn caller_side_writer_sections_satisfy_publish_discipline() {
        let (findings, _) = check(&with_roots(&[(
            "crates/svc/src/lib.rs",
            "pub struct Svc { writer: Mutex<u32>, cell: Published<u32> }\n\
             impl Svc {\n\
             fn publish_inner(&self) { self.cell.publish(1); }\n\
             pub fn outer(&self) { let _g = self.writer.lock(); self.publish_inner(); }\n\
             }\n",
        )]));
        assert_eq!(count(&findings, "R03"), 0, "caller holds the guard:\n{findings:#?}");
    }

    #[test]
    fn r04_flags_reachable_acquisitions_and_counts_the_proof() {
        let (findings, stats) = check(&[(
            "crates/core/src/snapshot.rs",
            "pub struct Snap { guard: Mutex<u32> }\n\
             impl Snap {\n\
             pub fn rds_with(&self) -> u32 { self.locked_helper() }\n\
             pub fn sds_with(&self) -> u32 { 0 }\n\
             fn locked_helper(&self) -> u32 { let _g = self.guard.lock(); 1 }\n\
             }\n",
        )]);
        assert_eq!(stats.r04_roots, 2);
        assert!(stats.r04_reachable_fns >= 3, "roots + helper: {stats:?}");
        assert_eq!(stats.r04_lock_acquisitions, 1);
        let r04: Vec<_> = findings.iter().filter(|f| f.rule == "R04").collect();
        assert_eq!(r04.len(), 1);
        assert!(r04[0].message.contains("rds_with"), "chain names the root: {}", r04[0].message);
    }

    #[test]
    fn missing_root_specs_fail_the_meta_rule() {
        let (findings, stats) = check(&[("crates/svc/src/lib.rs", "pub fn quiet() {}\n")]);
        assert_eq!(count(&findings, "RACE"), 2, "both specs unmatched:\n{findings:#?}");
        assert_eq!(stats.r04_roots, 0);
    }

    #[test]
    fn pool_balance_across_spawn_boundaries() {
        let (findings, _) = check(&with_roots(&[(
            "crates/svc/src/lib.rs",
            "pub fn leaky(pool: &Q) { spawn(|| { let _w = pool.pop(); }); }\n\
             pub fn crossed(pool: &Q) { let w = pool.pop(); spawn(move || { pool.push(w); }); }\n\
             pub fn balanced(pool: &Q) { spawn(|| { let w = pool.pop(); pool.push(w); }); }\n",
        )]));
        let r05: Vec<_> = findings.iter().filter(|f| f.rule == "R05").collect();
        assert_eq!(r05.len(), 2, "leaky + crossed, not balanced:\n{findings:#?}");
        assert_eq!(r05[0].line, 1);
        assert_eq!(r05[1].line, 2);
    }

    #[test]
    fn guard_dropped_before_blocking_call_is_clean() {
        let (findings, _) = check(&with_roots(&[(
            "crates/svc/src/lib.rs",
            "pub fn polite(m: &Mutex<u32>, h: H) { let g = m.lock(); drop(g); h.join(); }\n",
        )]));
        assert_eq!(count(&findings, "R02"), 0, "drop ends the span:\n{findings:#?}");
    }
}
