#!/usr/bin/env bash
# Canonical verification for the workspace: formatting, lints, the
# self-hosted audit (static rules A01-A09 + structural invariants), the
# cbr-flow dataflow lints (an honest call-graph pass over the real tree
# plus a seeded-fixture pass proving every rule fires), the cbr-race
# lock-discipline analysis (honest pass with a non-vacuous R04
# lock-free-read proof, plus the same seeded-fixture pairing), the
# cbr-bound numeric-safety analysis (honest pass with a non-vacuous
# B04 recursion-freedom proof, plus its own seeded fixtures), the
# cbr-cplx symbolic complexity analysis (honest pass proving the
# paper's differential asymptotic claim — D-Radix recognizably
# O((|Pq|+|Pd|)·log), TA the only quadratic root — plus its seeded
# fixtures), the cbr-sched schedule exploration — including the
# publish/retire and compaction harnesses over the epoch-published
# snapshot — (same honest + seeded-bug pairing), the bench smoke
# passes (both JSON trajectory pipelines end to end at micro scale),
# and tests. Run from the repository root. All sixteen must pass
# before merging.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo run -q -p cbr-audit -- all
# Honest tree: the hot-path dataflow lints (F01-F05) must run clean
# against flow.allow, with the call graph resolving enough internal
# calls for the reachability analysis to mean anything.
cargo run -q -p cbr-flow -- --json
# Non-vacuity: the seeded fixture tree must trip every rule F01-F05.
cargo run -q -p cbr-flow -- --fixtures --expect-findings
# Honest tree: the lock-discipline rules (R01-R05) must run clean
# against race.allow, and the R04 lock-free-read proof must be
# non-vacuous — both snapshot query roots matched, zero reachable lock
# acquisitions. Grepping the report keeps the proof honest even if the
# exit code logic regresses.
race_json="$(cargo run -q -p cbr-race -- --json)"
grep -q '"r04_roots": 2' <<<"$race_json"
grep -q '"r04_lock_acquisitions": 0' <<<"$race_json"
# Non-vacuity: the seeded fixture tree must trip every rule R01-R05.
cargo run -q -p cbr-race -- --fixtures --expect-findings
# Honest tree: the numeric-safety rules (B01-B05) must run clean
# against bound.allow, and the B04 recursion-freedom proof must be
# non-vacuous — all eight hot-path roots matched, zero cyclic
# functions in the reachable call graph.
bound_json="$(cargo run -q -p cbr-bound -- --json)"
grep -q '"b04_roots": 8' <<<"$bound_json"
grep -q '"b04_cyclic_fns": 0' <<<"$bound_json"
# Non-vacuity: the seeded fixture tree must trip every rule B01-B05.
cargo run -q -p cbr-bound -- --fixtures --expect-findings
# Honest tree: the symbolic complexity rules (C01-C05) must run clean
# against cplx.allow, and the C03 differential proof must be
# non-vacuous — the D-Radix build recognized as O((|Pq|+|Pd|)·log),
# exactly one quadratic root (the TA baseline), and a non-empty
# reachable loop set actually analyzed.
cplx_json="$(cargo run -q -p cbr-cplx -- --json)"
grep -q '"c03_dradix_recognized": true' <<<"$cplx_json"
grep -q '"c03_quadratic_roots": 1' <<<"$cplx_json"
grep -q '"reachable_loops": [1-9]' <<<"$cplx_json"
# Non-vacuity: the seeded fixture tree must trip every rule C01-C05.
cargo run -q -p cbr-cplx -- --fixtures --expect-findings
# Honest tree: every concurrency harness must explore clean — the
# publish-retire and compact-race harnesses prove epoch publishes are
# atomic and compaction never invalidates a pinned reader — and the CI
# budget must cover at least a thousand distinct interleavings.
cargo run -q -p cbr-sched -- --budget 1200 --min-schedules 1000 --json
# Non-vacuity: with the seeded bugs compiled in, the checker must find
# them and every printed schedule ID must reproduce its finding.
cargo run -q -p cbr-sched --features seeded-races -- \
    --budget 200 \
    --harness seeded-unlock-race --harness seeded-lock-inversion \
    --expect-findings
# Bench smoke: run the machine-readable trajectory at micro scale and
# validate the emitted JSON in-process. Catches a panicking measurement
# loop or a malformed BENCH_knds.json run object without paying for a
# full benchmark; writes nothing.
cargo run -q --release -p cbr-bench --bin repro -- --json --smoke
# Same end-to-end smoke for the mixed read/write scale bench: a tiny
# collection, short phases, and in-process validation of the
# BENCH_scale.json run object; writes nothing.
cargo run -q --release -p cbr-bench --bin scale -- --smoke
cargo test -q
