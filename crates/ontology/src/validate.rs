//! Structural invariant validation for built ontologies.
//!
//! [`OntologyBuilder`](crate::OntologyBuilder) proves single-rootedness,
//! acyclicity, and connectivity at construction; this module re-checks
//! those properties (plus the derived CSR symmetry, topological order,
//! minimum depths, and Dewey address resolution) *after the fact*, so the
//! `cbr-audit` invariant runner and the debug assertions can detect any
//! corruption or codec bug that slips in later — e.g. a snapshot decoded
//! from a tampered file.

use crate::graph::Ontology;
use crate::id::ConceptId;

/// A violated ontology invariant, reported by [`Ontology::validate`] and
/// [`Ontology::validate_paths`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OntologyViolation {
    /// A parent→child edge with no mirror in the other CSR direction.
    AsymmetricEdge {
        /// The edge's parent endpoint.
        parent: ConceptId,
        /// The edge's child endpoint.
        child: ConceptId,
    },
    /// The root has a parent, or a non-root concept has none.
    BadRoot {
        /// The offending concept.
        concept: ConceptId,
    },
    /// The topological order is not a permutation of all concepts.
    BadTopoOrder,
    /// A child precedes one of its parents in the topological order.
    TopoOrderViolation {
        /// The parent that should come first.
        parent: ConceptId,
        /// The child that precedes it.
        child: ConceptId,
    },
    /// A stored minimum depth differs from recomputation.
    DepthMismatch {
        /// The affected concept.
        concept: ConceptId,
        /// The depth stored on the ontology.
        stored: u32,
        /// The depth recomputed over the parent edges.
        expected: u32,
    },
    /// A precomputed per-edge Dewey ordinal that does not resolve back to
    /// the edge's child through the parent's child list.
    BadOrdinal {
        /// The edge's parent endpoint.
        parent: ConceptId,
        /// The edge's child endpoint.
        child: ConceptId,
    },
    /// A concept with no Dewey address in the path table.
    MissingAddress {
        /// The concept without addresses.
        concept: ConceptId,
    },
    /// A Dewey address that fails to resolve back to its concept, or that
    /// is shorter than the concept's minimum depth.
    BadAddress {
        /// The concept whose address is inconsistent.
        concept: ConceptId,
    },
}

fn violations(v: Vec<OntologyViolation>) -> Result<(), Vec<OntologyViolation>> {
    if v.is_empty() {
        Ok(())
    } else {
        Err(v)
    }
}

impl Ontology {
    /// Re-checks every structural invariant of a built ontology: CSR
    /// parent/child symmetry, single-rootedness, a valid topological
    /// order covering all concepts, and minimum depths.
    pub fn validate(&self) -> Result<(), Vec<OntologyViolation>> {
        let n = self.len();
        let mut v = Vec::new();

        // CSR symmetry and root/parent structure.
        for c in self.concepts() {
            for &child in self.children(c) {
                if !self.parents(child).contains(&c) {
                    v.push(OntologyViolation::AsymmetricEdge { parent: c, child });
                }
            }
            for &parent in self.parents(c) {
                if !self.children(parent).contains(&c) {
                    v.push(OntologyViolation::AsymmetricEdge { parent, child: c });
                }
            }
            let is_root = c == self.root();
            if self.parents(c).is_empty() != is_root {
                v.push(OntologyViolation::BadRoot { concept: c });
            }
            // Precomputed per-edge ordinals must agree with the child lists.
            for (parent, ordinal) in self.parents_with_ordinals(c) {
                if self.child_at(parent, ordinal) != Some(c) {
                    v.push(OntologyViolation::BadOrdinal { parent, child: c });
                }
            }
        }

        // Topological order: a permutation where parents precede children
        // (which also proves acyclicity and reachability).
        let order = self.topological_order();
        let mut position = vec![usize::MAX; n];
        for (i, &c) in order.iter().enumerate() {
            if let Some(slot) = position.get_mut(c.index()) {
                *slot = i;
            }
        }
        if order.len() != n || position.contains(&usize::MAX) {
            v.push(OntologyViolation::BadTopoOrder);
        } else {
            for c in self.concepts() {
                for &child in self.children(c) {
                    let (pp, cp) = (position.get(c.index()), position.get(child.index()));
                    if pp >= cp {
                        v.push(OntologyViolation::TopoOrderViolation { parent: c, child });
                    }
                }
            }
            // Minimum depths, recomputed along the (now proven) order.
            let mut expected = vec![u32::MAX; n];
            if let Some(slot) = expected.get_mut(self.root().index()) {
                *slot = 0;
            }
            for &c in order {
                let d = expected.get(c.index()).copied().unwrap_or(u32::MAX);
                for &child in self.children(c) {
                    if let Some(slot) = expected.get_mut(child.index()) {
                        *slot = (*slot).min(d.saturating_add(1));
                    }
                }
            }
            for c in self.concepts() {
                let e = expected.get(c.index()).copied().unwrap_or(u32::MAX);
                if self.depth(c) != e {
                    v.push(OntologyViolation::DepthMismatch {
                        concept: c,
                        stored: self.depth(c),
                        expected: e,
                    });
                }
            }
        }
        violations(v)
    }

    /// Checks the Dewey path table against the graph: every concept owns at
    /// least one address, and every address resolves back to its concept
    /// with a length no shorter than the concept's minimum depth.
    ///
    /// Forces the lazy path table; prefer [`validate`](Self::validate) when
    /// only the graph needs checking.
    pub fn validate_paths(&self) -> Result<(), Vec<OntologyViolation>> {
        let paths = self.path_table();
        let mut v = Vec::new();
        for c in self.concepts() {
            let mut count = 0usize;
            for addr in paths.addresses(c) {
                count += 1;
                let resolves = self.resolve_dewey(addr) == Ok(c);
                if !resolves || (addr.len() as u32) < self.depth(c) {
                    v.push(OntologyViolation::BadAddress { concept: c });
                }
            }
            if count == 0 {
                v.push(OntologyViolation::MissingAddress { concept: c });
            }
        }
        violations(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OntologyBuilder;

    fn diamond() -> Ontology {
        let mut b = OntologyBuilder::new();
        let root = b.add_concept("root");
        let a = b.add_concept("a");
        let bb = b.add_concept("b");
        let leaf = b.add_concept("leaf");
        b.add_edge(root, a).unwrap();
        b.add_edge(root, bb).unwrap();
        b.add_edge(a, leaf).unwrap();
        b.add_edge(bb, leaf).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn valid_ontology_passes_both_suites() {
        let ont = diamond();
        assert_eq!(ont.validate(), Ok(()));
        assert_eq!(ont.validate_paths(), Ok(()));
    }

    #[test]
    fn generated_ontology_passes_both_suites() {
        use crate::{GeneratorConfig, OntologyGenerator};
        let ont = OntologyGenerator::new(GeneratorConfig::small(200).with_seed(7)).generate();
        assert_eq!(ont.validate(), Ok(()));
        assert_eq!(ont.validate_paths(), Ok(()));
    }

    #[test]
    fn corrupted_depth_is_caught() {
        let mut ont = diamond();
        ont.corrupt_depth_for_tests(ConceptId(3));
        let err = ont.validate().unwrap_err();
        assert!(
            err.iter().any(|x| matches!(x, OntologyViolation::DepthMismatch { .. })),
            "{err:?}"
        );
    }

    #[test]
    fn corrupted_parent_ordinal_is_caught() {
        let mut ont = diamond();
        ont.corrupt_parent_ordinal_for_tests(ConceptId(3));
        let err = ont.validate().unwrap_err();
        assert!(err.iter().any(|x| matches!(x, OntologyViolation::BadOrdinal { .. })), "{err:?}");
    }

    #[test]
    fn corrupted_topo_order_is_caught() {
        let mut ont = diamond();
        ont.corrupt_topo_order_for_tests();
        let err = ont.validate().unwrap_err();
        assert!(
            err.iter().any(|x| matches!(x, OntologyViolation::TopoOrderViolation { .. })),
            "{err:?}"
        );
    }
}
