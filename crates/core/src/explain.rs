//! Result explanation: why a document matched a query.
//!
//! The paper motivates concept search with clinicians judging relevance
//! ("documents that do not contain the actual query terms, but contain
//! similar concepts such as …"). [`Explanation`] surfaces exactly that
//! evidence: for each query concept, the nearest concept of the document
//! and their valid-path distance.

use crate::engine::{Engine, EngineError};
use cbr_corpus::DocId;
use cbr_ontology::{concept_distance, ConceptId};

/// One query concept's best match inside a document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConceptMatch {
    /// The query concept.
    pub query_concept: ConceptId,
    /// The document concept nearest to it.
    pub nearest: ConceptId,
    /// Their valid-path distance (`Ddc(d, query_concept)`).
    pub distance: u32,
}

/// A per-concept breakdown of one document's RDS distance.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// The explained document.
    pub doc: DocId,
    /// Total `Ddq` (the sum of the match distances).
    pub total_distance: u64,
    /// Per-query-concept matches, in query order.
    pub matches: Vec<ConceptMatch>,
}

impl Engine {
    /// Explains the RDS distance between `doc` and `query`: each eligible
    /// query concept paired with the document concept realizing its
    /// minimum distance.
    pub fn explain_rds(&self, doc: DocId, query: &[ConceptId]) -> Result<Explanation, EngineError> {
        let q: Vec<ConceptId> = query.iter().copied().filter(|&c| self.eligible(c)).collect();
        if q.is_empty() {
            return Err(EngineError::EmptyQuery);
        }
        let concepts = self.document_concepts(doc)?;
        if concepts.is_empty() {
            return Err(EngineError::EmptyDocument(doc));
        }
        let paths = self.ontology().path_table();
        let mut matches = Vec::with_capacity(q.len());
        let mut total = 0u64;
        for &qc in &q {
            let (nearest, distance) = concepts
                .iter()
                .map(|&dc| (dc, concept_distance(paths, dc, qc)))
                .min_by_key(|&(dc, dist)| (dist, dc))
                .expect("document is non-empty");
            total += distance as u64;
            matches.push(ConceptMatch { query_concept: qc, nearest, distance });
        }
        Ok(Explanation { doc, total_distance: total, matches })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineBuilder;
    use cbr_corpus::Corpus;
    use cbr_ontology::fixture;

    #[test]
    fn explanation_reproduces_example1() {
        let fig = fixture::figure3();
        let d = fig.example_document();
        let q = fig.example_query();
        let corpus = Corpus::from_concept_sets(vec![(d, 0)]);
        let engine = EngineBuilder::new().build(fig.ontology, corpus);
        // Rebuild label handles via the engine's ontology.
        let ont = engine.ontology();
        let concept = |l: &str| ont.concept_by_label(l).unwrap();

        let ex = engine.explain_rds(DocId(0), &q).unwrap();
        assert_eq!(ex.total_distance, 7);
        assert_eq!(ex.matches.len(), 3);
        let by_query: std::collections::HashMap<_, _> =
            ex.matches.iter().map(|m| (m.query_concept, m)).collect();
        // Example 1 / Example 3: I matches R at 4, L matches F at 2,
        // U matches R at 1.
        assert_eq!(by_query[&concept("I")].distance, 4);
        assert_eq!(by_query[&concept("I")].nearest, concept("R"));
        assert_eq!(by_query[&concept("L")].distance, 2);
        assert_eq!(by_query[&concept("L")].nearest, concept("F"));
        assert_eq!(by_query[&concept("U")].distance, 1);
        assert_eq!(by_query[&concept("U")].nearest, concept("R"));
    }

    #[test]
    fn explanation_total_matches_engine_distance() {
        let fig = fixture::figure3();
        let d = fig.example_document();
        let q = fig.example_query();
        let corpus = Corpus::from_concept_sets(vec![(d, 0)]);
        let engine = EngineBuilder::new().build(fig.ontology, corpus);
        let ex = engine.explain_rds(DocId(0), &q).unwrap();
        let dist = engine.query_distance(DocId(0), &q).unwrap();
        assert_eq!(ex.total_distance as f64, dist);
    }

    #[test]
    fn empty_cases_error() {
        let fig = fixture::figure3();
        let corpus = Corpus::from_concept_sets(vec![(vec![], 0)]);
        let q = fig.example_query();
        let engine = EngineBuilder::new().build(fig.ontology, corpus);
        assert!(matches!(engine.explain_rds(DocId(0), &q), Err(EngineError::EmptyDocument(_))));
        assert!(matches!(engine.explain_rds(DocId(0), &[]), Err(EngineError::EmptyQuery)));
    }
}
