//! Corpus statistics — the Table 3 report of the paper.

use crate::document::Corpus;
use std::fmt;

/// The statistics the paper reports for its two collections in Table 3:
///
/// | metric                | PATIENT | RADIO  |
/// |-----------------------|---------|--------|
/// | total documents       | 983     | 12,373 |
/// | total concepts        | 16,811  | 8,629  |
/// | avg tokens/document   | 8,184   | 273.7  |
/// | avg concepts/document | 706.6   | 125.3  |
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusStats {
    /// Number of documents.
    pub total_documents: usize,
    /// Number of distinct concepts across the collection.
    pub total_concepts: usize,
    /// Mean source-text tokens per document.
    pub avg_tokens_per_doc: f64,
    /// Mean distinct concepts per document.
    pub avg_concepts_per_doc: f64,
    /// Maximum distinct concepts in any document.
    pub max_concepts_per_doc: usize,
}

impl CorpusStats {
    /// Computes the statistics of `corpus`.
    pub fn compute(corpus: &Corpus) -> CorpusStats {
        let n = corpus.len();
        let mut distinct = cbr_ontology::FxHashSet::default();
        let mut token_sum = 0u64;
        let mut concept_sum = 0u64;
        let mut max_concepts = 0usize;
        for d in corpus.documents() {
            token_sum += d.token_count() as u64;
            concept_sum += d.num_concepts() as u64;
            max_concepts = max_concepts.max(d.num_concepts());
            distinct.extend(d.concepts().iter().copied());
        }
        CorpusStats {
            total_documents: n,
            total_concepts: distinct.len(),
            avg_tokens_per_doc: if n == 0 { 0.0 } else { token_sum as f64 / n as f64 },
            avg_concepts_per_doc: if n == 0 { 0.0 } else { concept_sum as f64 / n as f64 },
            max_concepts_per_doc: max_concepts,
        }
    }
}

impl fmt::Display for CorpusStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "total documents:       {}", self.total_documents)?;
        writeln!(f, "total concepts:        {}", self.total_concepts)?;
        writeln!(f, "avg tokens/document:   {:.1}", self.avg_tokens_per_doc)?;
        write!(
            f,
            "avg concepts/document: {:.1} (max {})",
            self.avg_concepts_per_doc, self.max_concepts_per_doc
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbr_ontology::ConceptId;

    #[test]
    fn computes_all_fields() {
        let corpus = Corpus::from_concept_sets(vec![
            (vec![ConceptId(1), ConceptId(2)], 10),
            (vec![ConceptId(2), ConceptId(3), ConceptId(4)], 20),
        ]);
        let s = CorpusStats::compute(&corpus);
        assert_eq!(s.total_documents, 2);
        assert_eq!(s.total_concepts, 4);
        assert!((s.avg_tokens_per_doc - 15.0).abs() < 1e-9);
        assert!((s.avg_concepts_per_doc - 2.5).abs() < 1e-9);
        assert_eq!(s.max_concepts_per_doc, 3);
        assert!(s.to_string().contains("total documents:       2"));
    }

    #[test]
    fn empty_corpus_is_all_zero() {
        let s = CorpusStats::compute(&Corpus::default());
        assert_eq!(s.total_documents, 0);
        assert_eq!(s.avg_tokens_per_doc, 0.0);
    }
}
