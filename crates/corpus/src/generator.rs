//! Synthetic EMR corpora calibrated to the paper's two collections.
//!
//! The experiments of Section 6 run over two MIMIC-II-derived corpora whose
//! shapes (Table 3) drive every finding:
//!
//! * **PATIENT** — 983 documents (one per patient, all note types merged),
//!   ~706.6 concepts per document, concepts **densely clustered** in the
//!   ontology. Consequences measured by the paper: DRC dominates query
//!   time, and the best error threshold is `εθ = 0`.
//! * **RADIO** — 12,373 radiology reports, ~125.3 concepts per document,
//!   concepts **sparsely dispersed**. Consequences: traversal dominates,
//!   and large error thresholds (≈0.9) win.
//!
//! MIMIC-II sits behind a data-use agreement, so [`CorpusGenerator`]
//! synthesizes collections with the same knobs: document count, concepts
//! per document, and ontological clustering. Clustering is produced by
//! sampling per-document cluster centers and random-walking a few `is-a`
//! edges around them; dispersion is produced by uniform sampling.
//!
//! Generation is deterministic: each document derives its RNG from
//! `(profile.seed, doc_index)`, so multi-threaded generation (used for the
//! larger RADIO-like corpora) yields bit-identical corpora.

use crate::document::{Corpus, DocId, Document};
use cbr_ontology::{ConceptId, Ontology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape parameters for a synthetic collection.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusProfile {
    /// Collection name used in reports ("PATIENT", "RADIO", …).
    pub name: String,
    /// Number of documents.
    pub num_docs: usize,
    /// Mean distinct concepts per document.
    pub concepts_per_doc_mean: f64,
    /// Relative half-width of the per-document size band: sizes are drawn
    /// uniformly from `mean·(1±spread)`.
    pub size_spread: f64,
    /// Probability that a concept is drawn near a cluster center instead of
    /// uniformly — 0 is fully dispersed, 1 fully clustered.
    pub clustering: f64,
    /// Cluster centers per document.
    pub clusters_per_doc: usize,
    /// Maximum random-walk steps away from a cluster center.
    pub cluster_walk_len: u32,
    /// Mean source-text tokens per concept (drives the Table 3 token
    /// statistic; PATIENT ≈ 11.6, RADIO ≈ 2.2).
    pub tokens_per_concept: f64,
    /// Only concepts at this depth or deeper are sampled, mirroring the
    /// Section 6.1 depth threshold.
    pub min_depth: u32,
    /// Size of the sampling vocabulary (0 = every eligible concept).
    /// Real clinical corpora draw on a restricted vocabulary — Table 3
    /// reports only 16,811 distinct concepts across all PATIENT documents
    /// against SNOMED-CT's 296k — so the generator samples centers and
    /// uniform draws from a fixed random sub-vocabulary of this size.
    pub vocabulary_size: usize,
    /// Mean documents per **cohort** (0 disables cohorts). Real EMR
    /// collections contain groups of highly similar records — patients with
    /// the same condition, repeat radiology reports — which is what makes
    /// top-k SDS prune well. Documents in one cohort share their cluster
    /// centers, so they land close under the Equation 3 distance.
    pub docs_per_cohort: f64,
    /// Master seed.
    pub seed: u64,
}

impl CorpusProfile {
    /// The PATIENT collection at the paper's full scale (983 documents,
    /// ~706.6 concepts each, strongly clustered).
    pub fn patient_like() -> Self {
        CorpusProfile {
            name: "PATIENT".to_string(),
            num_docs: 983,
            concepts_per_doc_mean: 706.6,
            size_spread: 0.5,
            clustering: 0.9,
            clusters_per_doc: 24,
            cluster_walk_len: 4,
            tokens_per_concept: 11.6,
            min_depth: 4,
            vocabulary_size: 16_811,
            docs_per_cohort: 10.0,
            seed: 0xC0FF_EE01,
        }
    }

    /// The RADIO collection at the paper's full scale (12,373 documents,
    /// ~125.3 concepts each, weakly clustered).
    pub fn radio_like() -> Self {
        CorpusProfile {
            name: "RADIO".to_string(),
            num_docs: 12_373,
            concepts_per_doc_mean: 125.3,
            size_spread: 0.6,
            clustering: 0.3,
            clusters_per_doc: 4,
            cluster_walk_len: 2,
            tokens_per_concept: 2.2,
            min_depth: 4,
            vocabulary_size: 8_629,
            docs_per_cohort: 12.0,
            seed: 0xC0FF_EE02,
        }
    }

    /// A RADIO-shaped collection at serving scale: `num_docs` documents
    /// (a million and up) with the paper's sparse-dispersal character but
    /// a leaner per-document concept count, so generation and indexing
    /// stay tractable past paper scale. The sampling vocabulary grows
    /// with the collection — a million radiology reports draw on far more
    /// distinct concepts than Table 3's 12k-report slice — keeping
    /// per-concept posting lists from ballooning linearly with `n`.
    pub fn radio_scale(num_docs: usize) -> Self {
        let base = CorpusProfile::radio_like();
        CorpusProfile {
            name: "RADIO-SCALE".to_string(),
            num_docs,
            concepts_per_doc_mean: 24.0,
            tokens_per_concept: 2.2,
            // Vocabulary ~ n/16, never below the Table 3 RADIO vocabulary.
            vocabulary_size: (num_docs / 16).max(base.vocabulary_size),
            seed: 0xC0FF_EE05,
            ..base
        }
    }

    /// Scales both the document count and the per-document concept count by
    /// `factor` (at least one document and one concept remain). Used for the
    /// session-sized default experiments.
    pub fn scaled(mut self, factor: f64) -> Self {
        self.num_docs = ((self.num_docs as f64 * factor).round() as usize).max(1);
        self.concepts_per_doc_mean = (self.concepts_per_doc_mean * factor).max(1.0);
        self
    }

    /// Overrides the document count.
    pub fn with_num_docs(mut self, n: usize) -> Self {
        self.num_docs = n;
        self
    }

    /// Overrides the mean concepts per document.
    pub fn with_mean_concepts(mut self, mean: f64) -> Self {
        self.concepts_per_doc_mean = mean;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generates a [`Corpus`] over a given ontology from a [`CorpusProfile`].
#[derive(Debug)]
pub struct CorpusGenerator<'a> {
    ontology: &'a Ontology,
    profile: CorpusProfile,
    eligible: Vec<ConceptId>,
    /// Shared center sets, one per cohort (empty when cohorts are off).
    cohort_centers: Vec<Vec<ConceptId>>,
}

impl<'a> CorpusGenerator<'a> {
    /// Creates a generator. Panics if the ontology has no concept at
    /// `profile.min_depth` or deeper.
    pub fn new(ontology: &'a Ontology, profile: CorpusProfile) -> Self {
        let mut eligible: Vec<ConceptId> =
            ontology.concepts().filter(|&c| ontology.depth(c) >= profile.min_depth).collect();
        assert!(
            !eligible.is_empty(),
            "no concepts at depth >= {} to sample from",
            profile.min_depth
        );
        // Restrict to a fixed random sub-vocabulary (Table 3 fidelity).
        if profile.vocabulary_size > 0 && profile.vocabulary_size < eligible.len() {
            let mut rng = StdRng::seed_from_u64(profile.seed ^ 0x0007_0CAB);
            for i in (1..eligible.len()).rev() {
                eligible.swap(i, rng.random_range(0..=i));
            }
            eligible.truncate(profile.vocabulary_size);
            eligible.sort_unstable();
        }
        // Cohort center sets are derived from the master seed so the whole
        // corpus stays deterministic and per-document generation stays
        // embarrassingly parallel.
        let mut cohort_centers = Vec::new();
        if profile.docs_per_cohort > 0.0 {
            let n_cohorts =
                ((profile.num_docs as f64 / profile.docs_per_cohort).ceil() as usize).max(1);
            let mut rng = StdRng::seed_from_u64(profile.seed ^ 0x00C0_4027);
            for _ in 0..n_cohorts {
                let centers: Vec<ConceptId> = (0..profile.clusters_per_doc.max(1))
                    .map(|_| eligible[rng.random_range(0..eligible.len())])
                    .collect();
                cohort_centers.push(centers);
            }
        }
        CorpusGenerator { ontology, profile, eligible, cohort_centers }
    }

    /// The profile in use.
    pub fn profile(&self) -> &CorpusProfile {
        &self.profile
    }

    /// Generates the corpus, parallelizing across documents when large.
    pub fn generate(&self) -> Corpus {
        self.generate_with_cohorts().0
    }

    /// Like [`CorpusGenerator::generate`], additionally returning each
    /// document's cohort id (`u32::MAX` when cohorts are disabled). The
    /// labels serve as synthetic relevance judgments for effectiveness
    /// evaluation: cohort members were generated from the same cluster
    /// centers, so they are each other's "similar records".
    pub fn generate_with_cohorts(&self) -> (Corpus, Vec<u32>) {
        let n = self.profile.num_docs;
        let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        if n < 256 || threads == 1 {
            let mut docs = Vec::with_capacity(n);
            let mut cohorts = Vec::with_capacity(n);
            for i in 0..n {
                let (d, c) = self.generate_doc(i);
                docs.push(d);
                cohorts.push(c);
            }
            return (Corpus::new(docs), cohorts);
        }

        let chunk = n.div_ceil(threads);
        let mut slots: Vec<Option<(Document, u32)>> = vec![None; n];
        std::thread::scope(|scope| {
            for (t, slot_chunk) in slots.chunks_mut(chunk).enumerate() {
                let start = t * chunk;
                scope.spawn(move || {
                    for (off, slot) in slot_chunk.iter_mut().enumerate() {
                        *slot = Some(self.generate_doc(start + off));
                    }
                });
            }
        });
        let mut docs = Vec::with_capacity(n);
        let mut cohorts = Vec::with_capacity(n);
        for slot in slots {
            let (d, c) = slot.expect("all slots filled");
            docs.push(d);
            cohorts.push(c);
        }
        (Corpus::new(docs), cohorts)
    }

    /// Generates one document deterministically from `(seed, index)`,
    /// returning it with its cohort id.
    fn generate_doc(&self, index: usize) -> (Document, u32) {
        let p = &self.profile;
        let mut rng =
            StdRng::seed_from_u64(p.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));

        let lo = (p.concepts_per_doc_mean * (1.0 - p.size_spread)).max(1.0);
        let hi = (p.concepts_per_doc_mean * (1.0 + p.size_spread)).max(lo + 1.0);
        let target = rng.random_range(lo..hi).round() as usize;
        let target = target.min(self.eligible.len());

        let (centers, cohort): (Vec<ConceptId>, u32) = if self.cohort_centers.is_empty() {
            let centers = (0..p.clusters_per_doc.max(1))
                .map(|_| self.eligible[rng.random_range(0..self.eligible.len())])
                .collect();
            (centers, u32::MAX)
        } else {
            let cohort = rng.random_range(0..self.cohort_centers.len());
            (self.cohort_centers[cohort].clone(), cohort as u32)
        };

        let mut set = cbr_ontology::FxHashSet::default();
        let mut concepts = Vec::with_capacity(target);
        let max_attempts = target.saturating_mul(24) + 64;
        for _ in 0..max_attempts {
            if concepts.len() >= target {
                break;
            }
            let c = if rng.random::<f64>() < p.clustering {
                let center = centers[rng.random_range(0..centers.len())];
                let end = self.walk_from(center, &mut rng);
                // Walks may step outside the collection vocabulary; keep
                // the center instead so Table 3's distinct-concept count
                // stays calibrated.
                if self.eligible.binary_search(&end).is_ok() {
                    end
                } else {
                    center
                }
            } else {
                self.eligible[rng.random_range(0..self.eligible.len())]
            };
            if set.insert(c) {
                concepts.push(c);
            }
        }

        let tokens = (concepts.len() as f64 * p.tokens_per_concept * rng.random_range(0.8..1.2))
            .round() as u32;
        (Document::new(DocId::from_index(index), concepts, tokens), cohort)
    }

    /// Random walk over `is-a` edges (both directions) of geometric length,
    /// staying at or below the depth threshold and within `cluster_walk_len`
    /// steps.
    fn walk_from(&self, start: ConceptId, rng: &mut StdRng) -> ConceptId {
        let mut cur = start;
        for _ in 0..self.profile.cluster_walk_len {
            if rng.random::<f64>() < 0.5 {
                break;
            }
            let parents = self.ontology.parents(cur);
            let children = self.ontology.children(cur);
            let total = parents.len() + children.len();
            if total == 0 {
                break;
            }
            let pick = rng.random_range(0..total);
            let next =
                if pick < parents.len() { parents[pick] } else { children[pick - parents.len()] };
            if self.ontology.depth(next) < self.profile.min_depth {
                break;
            }
            cur = next;
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CorpusStats;
    use cbr_ontology::{GeneratorConfig, OntologyGenerator};

    fn test_ontology(n: usize) -> Ontology {
        OntologyGenerator::new(GeneratorConfig::small(n)).generate()
    }

    #[test]
    fn generates_requested_count_and_sizes() {
        let ont = test_ontology(2_000);
        let profile = CorpusProfile::radio_like().with_num_docs(50).with_mean_concepts(30.0);
        let corpus = CorpusGenerator::new(&ont, profile).generate();
        assert_eq!(corpus.len(), 50);
        let s = CorpusStats::compute(&corpus);
        assert!(
            (10.0..60.0).contains(&s.avg_concepts_per_doc),
            "avg {} outside band",
            s.avg_concepts_per_doc
        );
        assert!(s.avg_tokens_per_doc > s.avg_concepts_per_doc);
    }

    #[test]
    fn respects_depth_threshold() {
        let ont = test_ontology(2_000);
        let profile = CorpusProfile::patient_like().with_num_docs(20).with_mean_concepts(40.0);
        let corpus = CorpusGenerator::new(&ont, profile).generate();
        for d in corpus.documents() {
            for &c in d.concepts() {
                assert!(ont.depth(c) >= 4, "concept {c} at depth {}", ont.depth(c));
            }
        }
    }

    #[test]
    fn deterministic_across_runs_and_threads() {
        let ont = test_ontology(2_000);
        // 600 documents exercises the parallel path (threshold 256).
        let profile = CorpusProfile::radio_like().with_num_docs(600).with_mean_concepts(10.0);
        let a = CorpusGenerator::new(&ont, profile.clone()).generate();
        let b = CorpusGenerator::new(&ont, profile).generate();
        assert_eq!(a.len(), b.len());
        for (da, db) in a.documents().zip(b.documents()) {
            assert_eq!(da, db);
        }
    }

    #[test]
    fn clustering_reduces_ontological_spread() {
        let ont = test_ontology(3_000);
        let clustered = CorpusProfile {
            clustering: 1.0,
            clusters_per_doc: 2,
            ..CorpusProfile::patient_like().with_num_docs(30).with_mean_concepts(40.0)
        };
        let dispersed = CorpusProfile { clustering: 0.0, ..clustered.clone() };
        let avg_pair_dist = |corpus: &Corpus| {
            let pt = ont.path_table();
            let mut sum = 0u64;
            let mut cnt = 0u64;
            for d in corpus.documents().take(10) {
                let cs = d.concepts();
                for i in (0..cs.len()).step_by(7) {
                    for j in (i + 1..cs.len()).step_by(7) {
                        sum += cbr_ontology::concept_distance(pt, cs[i], cs[j]) as u64;
                        cnt += 1;
                    }
                }
            }
            sum as f64 / cnt as f64
        };
        let dc = avg_pair_dist(&CorpusGenerator::new(&ont, clustered).generate());
        let dd = avg_pair_dist(&CorpusGenerator::new(&ont, dispersed).generate());
        assert!(dc < dd, "clustered corpus ({dc:.2}) should be tighter than dispersed ({dd:.2})");
    }

    #[test]
    fn cohorts_create_similar_document_groups() {
        let ont = test_ontology(3_000);
        let with_cohorts = CorpusProfile::patient_like().with_num_docs(60).with_mean_concepts(30.0);
        let without = CorpusProfile { docs_per_cohort: 0.0, ..with_cohorts.clone() };
        // With cohorts, some document pairs share many concepts; without,
        // overlaps are rare. Measure the best pairwise Jaccard overlap.
        let best_overlap = |corpus: &Corpus| -> f64 {
            let mut best = 0.0f64;
            let docs: Vec<_> = corpus.documents().collect();
            for i in 0..docs.len() {
                for j in i + 1..docs.len() {
                    let a = docs[i].concepts();
                    let b = docs[j].concepts();
                    let inter = a.iter().filter(|c| docs[j].contains(**c)).count();
                    let union = a.len() + b.len() - inter;
                    if union > 0 {
                        best = best.max(inter as f64 / union as f64);
                    }
                }
            }
            best
        };
        let cohorted = best_overlap(&CorpusGenerator::new(&ont, with_cohorts).generate());
        let independent = best_overlap(&CorpusGenerator::new(&ont, without).generate());
        assert!(
            cohorted > independent,
            "cohorts must create near-duplicates: {cohorted:.2} vs {independent:.2}"
        );
        assert!(cohorted > 0.3, "cohort members should overlap strongly ({cohorted:.2})");
    }

    #[test]
    fn scaled_profile_shrinks_both_axes() {
        let p = CorpusProfile::patient_like().scaled(0.1);
        assert_eq!(p.num_docs, 98);
        assert!((p.concepts_per_doc_mean - 70.66).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "no concepts at depth")]
    fn panics_without_deep_concepts() {
        // A 3-concept ontology has nothing at depth >= 4.
        let ont = test_ontology(3);
        CorpusGenerator::new(&ont, CorpusProfile::patient_like());
    }
}
