//! Inverted index: concept → documents containing it.

use crate::packing;
use cbr_corpus::{Corpus, DocId};
use cbr_ontology::ConceptId;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// CSR-layout inverted index over a corpus.
///
/// `postings(c)` is the sorted list of documents containing concept `c` —
/// the `D(cj)` input of Algorithm 2 (kNDS line 11). Postings are sorted by
/// document id; the *distance-sorted* postings of the TA comparator are
/// materialized per query by `cbr-knds`, because document-to-concept
/// distances depend on the query-time ontology.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct InvertedIndex {
    offsets: Vec<u32>,
    docs: Vec<DocId>,
    num_docs: u32,
}

impl InvertedIndex {
    /// Builds the index for `corpus` over an ontology with
    /// `num_concepts` concepts.
    pub fn build(corpus: &Corpus, num_concepts: usize) -> InvertedIndex {
        let mut counts = vec![0u32; num_concepts];
        for d in corpus.documents() {
            for &c in d.concepts() {
                counts[c.index()] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(num_concepts + 1);
        // The running sum stays in usize; each fence post narrows through
        // the checked CSR helper instead of accumulating in u32.
        let mut acc = 0usize;
        offsets.push(0);
        for &c in &counts {
            acc += c as usize;
            offsets.push(packing::csr_offset(acc));
        }
        let mut docs = vec![DocId(0); acc];
        let mut fill = offsets.clone();
        // Documents iterate in id order, so each posting list ends sorted.
        for d in corpus.documents() {
            for &c in d.concepts() {
                docs[fill[c.index()] as usize] = d.id();
                fill[c.index()] += 1;
            }
        }
        InvertedIndex { offsets, docs, num_docs: packing::narrow_u32(corpus.len()) }
    }

    /// Documents containing `c`, sorted by id. Concepts outside the indexed
    /// ontology return an empty slice.
    #[inline]
    pub fn postings(&self, c: ConceptId) -> &[DocId] {
        let i = c.index();
        if i + 1 >= self.offsets.len() {
            return &[];
        }
        &self.docs[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Collection frequency of `c` (length of its posting list).
    #[inline]
    pub fn frequency(&self, c: ConceptId) -> usize {
        self.postings(c).len()
    }

    /// Number of concepts covered (including ones with empty postings).
    pub fn num_concepts(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of documents in the indexed corpus.
    pub fn num_docs(&self) -> usize {
        self.num_docs as usize
    }

    /// Total postings entries.
    pub fn total_postings(&self) -> usize {
        self.docs.len()
    }

    /// Raw CSR parts (offsets, docs) — used by the file image writer.
    pub(crate) fn parts(&self) -> (&[u32], &[DocId]) {
        (&self.offsets, &self.docs)
    }

    /// Rewrites the first posting to a document outside the forward index
    /// so validator tests can prove cross-consistency detection.
    #[cfg(test)]
    pub(crate) fn corrupt_posting_for_tests(&mut self, doc: DocId) {
        if let Some(slot) = self.docs.first_mut() {
            *slot = doc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: u32) -> ConceptId {
        ConceptId(v)
    }

    fn corpus() -> Corpus {
        Corpus::from_concept_sets(vec![
            (vec![c(1), c(3)], 0),
            (vec![c(3)], 0),
            (vec![c(1), c(2), c(3)], 0),
        ])
    }

    #[test]
    fn postings_are_sorted_and_complete() {
        let idx = InvertedIndex::build(&corpus(), 5);
        assert_eq!(idx.postings(c(1)), &[DocId(0), DocId(2)]);
        assert_eq!(idx.postings(c(2)), &[DocId(2)]);
        assert_eq!(idx.postings(c(3)), &[DocId(0), DocId(1), DocId(2)]);
        assert_eq!(idx.postings(c(0)), &[] as &[DocId]);
        assert_eq!(idx.postings(c(4)), &[] as &[DocId]);
    }

    #[test]
    fn out_of_range_concept_is_empty() {
        let idx = InvertedIndex::build(&corpus(), 5);
        assert_eq!(idx.postings(c(100)), &[] as &[DocId]);
    }

    #[test]
    fn counts_and_sizes() {
        let idx = InvertedIndex::build(&corpus(), 5);
        assert_eq!(idx.frequency(c(3)), 3);
        assert_eq!(idx.num_concepts(), 5);
        assert_eq!(idx.num_docs(), 3);
        assert_eq!(idx.total_postings(), 6);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_roundtrip() {
        let idx = InvertedIndex::build(&corpus(), 5);
        let bytes = cbr_ontology::ser::to_tokens(&idx).unwrap();
        let back: InvertedIndex = cbr_ontology::ser::from_tokens(&bytes).unwrap();
        assert_eq!(back.postings(c(3)), idx.postings(c(3)));
    }
}
