//! The immutable read half of the engine.
//!
//! [`EngineSnapshot`] is everything a query needs — ontology, eligibility
//! filter, the bulk corpus, a [`SegmentedView`] of the index, and the kNDS
//! configuration — behind `Arc`s, so cloning one is a handful of refcount
//! bumps and sharing one across threads needs no lock of any kind. All
//! ranking entry points (`rds`/`sds`/batch, plus the `_with` variants that
//! borrow a caller-owned [`KndsWorkspace`](cbr_knds::KndsWorkspace)) live
//! here; the mutable [`Engine`](crate::Engine) half owns the segmented
//! writer and re-derives a fresh snapshot after every mutation.
//!
//! A query session is therefore just *a borrowed snapshot plus a borrowed
//! workspace*: once both are in hand, evaluation touches only immutable
//! array-indexed structures (the Navarro–Nekrich static-structure
//! discipline) and the workspace's dense tables. Nothing on that path can
//! block, and a publish racing the query simply produces results against
//! the epoch the session pinned.

use crate::engine::EngineError;
use cbr_corpus::{ConceptFilter, Corpus, DocId};
use cbr_dradix::Drc;
use cbr_index::{IndexSource, SegmentedView};
use cbr_knds::{baseline, Knds, KndsConfig, KndsWorkspace, QueryResult};
use cbr_ontology::{ConceptId, Ontology};
use sched::sync::Arc;

/// An immutable, cheaply-cloneable engine state: one published epoch of
/// the collection, queryable from any number of threads without locks.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    ontology: Arc<Ontology>,
    corpus: Arc<Corpus>,
    filter: Arc<ConceptFilter>,
    source: SegmentedView,
    config: KndsConfig,
}

impl EngineSnapshot {
    /// Assembles a snapshot from shared parts (crate-internal: snapshots
    /// are made by [`EngineBuilder::build`](crate::EngineBuilder::build)
    /// and refreshed by the mutable engine half).
    pub(crate) fn assemble(
        ontology: Arc<Ontology>,
        corpus: Arc<Corpus>,
        filter: Arc<ConceptFilter>,
        source: SegmentedView,
        config: KndsConfig,
    ) -> EngineSnapshot {
        EngineSnapshot { ontology, corpus, filter, source, config }
    }

    /// Swaps in a freshly published index view (after append/delete/
    /// compaction).
    pub(crate) fn set_source(&mut self, source: SegmentedView) {
        self.source = source;
    }

    /// Replaces the kNDS configuration.
    pub(crate) fn set_config(&mut self, config: KndsConfig) {
        self.config = config;
    }

    /// The ontology.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// The (filtered) bulk-loaded corpus. Appended documents are not part
    /// of this view; read them with [`EngineSnapshot::document_concepts`].
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The active kNDS configuration.
    pub fn config(&self) -> &KndsConfig {
        &self.config
    }

    /// The index view this snapshot queries.
    pub fn source(&self) -> &SegmentedView {
        &self.source
    }

    /// Whether concept `c` survives the eligibility filter.
    pub fn eligible(&self, c: ConceptId) -> bool {
        self.filter.allows(c)
    }

    /// Total documents (bulk + appended) at this epoch.
    pub fn num_docs(&self) -> usize {
        self.source.num_docs()
    }

    /// Sizing hint for [`KndsWorkspace::reserve`]: `(concept id bound,
    /// document count)`. Pooled and per-worker workspaces pre-size their
    /// dense tables from this so growth happens at acquisition, never
    /// mid-query.
    pub fn workspace_hint(&self) -> (usize, usize) {
        (self.ontology.id_bound(), self.source.num_docs())
    }

    /// The concept set of any document, including appended ones.
    pub fn document_concepts(&self, doc: DocId) -> Result<Vec<ConceptId>, EngineError> {
        if doc.index() >= self.source.num_docs() {
            return Err(EngineError::UnknownDocument(doc));
        }
        let mut out = Vec::new();
        self.source.doc_concepts(doc, &mut out);
        Ok(out)
    }

    /// Whether `doc` exists and was live at this epoch.
    pub fn is_live(&self, doc: DocId) -> bool {
        doc.index() < self.source.num_docs() && self.source.is_live(doc)
    }

    /// Resolves labels to concepts, failing on the first unknown label.
    pub fn concepts_by_labels(&self, labels: &[&str]) -> Result<Vec<ConceptId>, EngineError> {
        labels
            .iter()
            .map(|&l| {
                self.ontology
                    .concept_by_label(l)
                    .ok_or_else(|| EngineError::UnknownLabel(l.to_string()))
            })
            .collect()
    }

    pub(crate) fn eligible_query(
        &self,
        concepts: &[ConceptId],
    ) -> Result<Vec<ConceptId>, EngineError> {
        let q: Vec<ConceptId> =
            concepts.iter().copied().filter(|&c| self.filter.allows(c)).collect();
        if q.is_empty() {
            return Err(EngineError::EmptyQuery);
        }
        Ok(q)
    }

    /// RDS (Definition 1): the `k` documents most relevant to a set of
    /// query concepts. Ineligible concepts are dropped from the query.
    pub fn rds(&self, query: &[ConceptId], k: usize) -> Result<QueryResult, EngineError> {
        let mut ws = KndsWorkspace::new();
        self.rds_with(&mut ws, query, k)
    }

    /// [`EngineSnapshot::rds`] over a caller-owned [`KndsWorkspace`]: all
    /// per-query maps and buffers (candidate table, BFS frontier, DRC DAG
    /// scratch) are borrowed from `ws` and returned clean, so a long-lived
    /// caller — a service worker, a batch thread — stops allocating once
    /// the workspace is warm. Results are identical to
    /// [`EngineSnapshot::rds`].
    pub fn rds_with(
        &self,
        ws: &mut KndsWorkspace,
        query: &[ConceptId],
        k: usize,
    ) -> Result<QueryResult, EngineError> {
        let q = self.eligible_query(query)?;
        Ok(Knds::new(&self.ontology, &self.source, self.config.clone()).rds_with(ws, &q, k))
    }

    /// RDS with label-based input.
    pub fn rds_by_labels(&self, labels: &[&str], k: usize) -> Result<QueryResult, EngineError> {
        let q = self.concepts_by_labels(labels)?;
        self.rds(&q, k)
    }

    /// SDS (Definition 2): the `k` documents most similar to a query
    /// document given as a concept set.
    pub fn sds(&self, query_doc: &[ConceptId], k: usize) -> Result<QueryResult, EngineError> {
        let mut ws = KndsWorkspace::new();
        self.sds_with(&mut ws, query_doc, k)
    }

    /// [`EngineSnapshot::sds`] over a caller-owned workspace; see
    /// [`EngineSnapshot::rds_with`].
    pub fn sds_with(
        &self,
        ws: &mut KndsWorkspace,
        query_doc: &[ConceptId],
        k: usize,
    ) -> Result<QueryResult, EngineError> {
        let q = self.eligible_query(query_doc)?;
        Ok(Knds::new(&self.ontology, &self.source, self.config.clone()).sds_with(ws, &q, k))
    }

    /// SDS with a collection document as the query (patient-similarity).
    pub fn sds_by_doc(&self, doc: DocId, k: usize) -> Result<QueryResult, EngineError> {
        let mut ws = KndsWorkspace::new();
        self.sds_by_doc_with(&mut ws, doc, k)
    }

    /// [`EngineSnapshot::sds_by_doc`] over a caller-owned workspace; see
    /// [`EngineSnapshot::rds_with`].
    pub fn sds_by_doc_with(
        &self,
        ws: &mut KndsWorkspace,
        doc: DocId,
        k: usize,
    ) -> Result<QueryResult, EngineError> {
        let concepts = self.document_concepts(doc)?;
        if concepts.is_empty() {
            return Err(EngineError::EmptyDocument(doc));
        }
        self.sds_with(ws, &concepts, k)
    }

    /// Exact `Ddq` between one document and a query (Equation 2).
    pub fn query_distance(&self, doc: DocId, query: &[ConceptId]) -> Result<f64, EngineError> {
        let q = self.eligible_query(query)?;
        let concepts = self.document_concepts(doc)?;
        let d = Drc::new(&self.ontology).document_query_distance(&concepts, &q);
        Ok(if d == cbr_dradix::INFINITE { f64::INFINITY } else { d as f64 })
    }

    /// Exact symmetric `Ddd` between two documents (Equation 3).
    pub fn document_distance(&self, a: DocId, b: DocId) -> Result<f64, EngineError> {
        let ca = self.document_concepts(a)?;
        let cb = self.document_concepts(b)?;
        Ok(Drc::new(&self.ontology).document_document_distance(&ca, &cb))
    }

    /// Exhaustive (no-pruning) RDS — exposed for benchmarking and
    /// verification against [`EngineSnapshot::rds`].
    pub fn rds_full_scan(&self, query: &[ConceptId], k: usize) -> Result<QueryResult, EngineError> {
        let q = self.eligible_query(query)?;
        Ok(baseline::rds(&self.ontology, &self.source, &q, k))
    }

    /// Exhaustive (no-pruning) SDS.
    pub fn sds_full_scan(
        &self,
        query_doc: &[ConceptId],
        k: usize,
    ) -> Result<QueryResult, EngineError> {
        let q = self.eligible_query(query_doc)?;
        Ok(baseline::sds(&self.ontology, &self.source, &q, k))
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::EngineBuilder;
    use cbr_corpus::{CorpusGenerator, CorpusProfile};
    use cbr_ontology::{GeneratorConfig, OntologyGenerator};

    #[test]
    fn snapshots_pin_an_epoch_while_the_engine_moves_on() {
        let ont = OntologyGenerator::new(GeneratorConfig::small(800)).generate();
        let corpus = CorpusGenerator::new(
            &ont,
            CorpusProfile::radio_like().with_num_docs(30).with_mean_concepts(8.0),
        )
        .generate();
        let mut engine = EngineBuilder::new().build(ont, corpus);
        let q = engine
            .corpus()
            .documents()
            .find(|d| d.num_concepts() >= 2)
            .map(|d| d.concepts()[..2].to_vec())
            .unwrap();
        let pinned = engine.snapshot().clone();
        let before = pinned.rds(&q, 3).unwrap();
        let added = engine.add_document(q.clone());
        // The pinned snapshot still answers against the old epoch...
        assert_eq!(pinned.num_docs(), engine.num_docs() - 1);
        let still = pinned.rds(&q, 3).unwrap();
        assert_eq!(before.results, still.results);
        assert!(still.results.iter().all(|r| r.doc != added));
        // ...while the engine's current snapshot sees the append (the
        // source doc of `q` ties at distance 0, so check membership).
        assert_eq!(engine.snapshot().num_docs(), pinned.num_docs() + 1);
        assert_eq!(engine.snapshot().query_distance(added, &q).unwrap(), 0.0);
        let now = engine.snapshot().rds(&q, 1).unwrap();
        assert_eq!(now.results[0].distance, 0.0);
    }
}
