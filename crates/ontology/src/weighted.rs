//! Weighted-edge valid-path distances — the Section 7 future-work
//! prototype ("how non is-a ontological edges can be incorporated into the
//! similarity function").
//!
//! Real ontologies mix relationship types (`is-a`, `part-of`,
//! `finding-site`, …) that should not all cost the same when measuring
//! semantic distance. [`EdgeWeights`] assigns every parent→child edge a
//! positive integer weight — callers encode relationship types by mapping
//! them to weights — and the functions below generalize the valid-path
//! distance to weighted ∧-paths. The unit-weight case reproduces the
//! paper's metric exactly (tested).
//!
//! Weighted distances compose with DRC (see
//! `cbr_dradix::Drc::with_weights`): a D-Radix edge's length becomes the
//! weight sum of the ontology edges it compresses. The kNDS engine remains
//! unit-weight, as in the paper — its level-synchronized frontier assumes
//! unit steps; weighted top-k search goes through the exhaustive path.

use crate::distance::D_INF;
use crate::graph::Ontology;
use crate::id::ConceptId;

/// Positive integer weights for every parent→child edge, aligned with the
/// ontology's child adjacency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeWeights {
    /// `weights[k]` belongs to the k-th entry of the ontology's flattened
    /// child adjacency (iterate concepts in id order, children in Dewey
    /// order).
    weights: Vec<u32>,
    offsets: Vec<u32>,
}

impl EdgeWeights {
    /// All edges cost 1 — the paper's metric.
    pub fn uniform(ont: &Ontology) -> EdgeWeights {
        Self::from_fn(ont, |_, _| 1)
    }

    /// Builds weights from a function of `(parent, child)`.
    ///
    /// ```
    /// use cbr_ontology::{fixture, weighted, EdgeWeights};
    ///
    /// let fig = fixture::figure3();
    /// let ont = &fig.ontology;
    /// // Price edges out of the root at 10 — crossing the top of the
    /// // hierarchy becomes expensive.
    /// let w = EdgeWeights::from_fn(ont, |p, _| if p == ont.root() { 10 } else { 1 });
    /// let d = weighted::concept_distance(ont, &w, fig.concept("G"), fig.concept("F"));
    /// assert_eq!(d, 23); // 5 unit edges, two of them now costing 10
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the function returns 0 (zero-weight edges would make
    /// "distance 0" ambiguous).
    pub fn from_fn(ont: &Ontology, mut f: impl FnMut(ConceptId, ConceptId) -> u32) -> EdgeWeights {
        let mut weights = Vec::with_capacity(ont.num_edges());
        let mut offsets = Vec::with_capacity(ont.len() + 1);
        offsets.push(0u32);
        for p in ont.concepts() {
            for &c in ont.children(p) {
                let w = f(p, c);
                assert!(w > 0, "edge weights must be positive ({p} -> {c})");
                weights.push(w);
            }
            offsets.push(weights.len() as u32);
        }
        EdgeWeights { weights, offsets }
    }

    /// The weight of the edge from `parent` to its `i`-th child (0-based
    /// adjacency position).
    #[inline]
    pub fn weight_at(&self, parent: ConceptId, child_pos: usize) -> u32 {
        self.weights[self.offsets[parent.index()] as usize + child_pos]
    }

    /// The weight of the edge `parent → child`, or `None` if absent.
    pub fn weight(&self, ont: &Ontology, parent: ConceptId, child: ConceptId) -> Option<u32> {
        ont.children(parent).iter().position(|&c| c == child).map(|pos| self.weight_at(parent, pos))
    }

    /// Total weight of walking `comps` Dewey components down from `from`.
    /// Used by the weighted D-Radix to price compressed edges.
    pub fn path_weight(&self, ont: &Ontology, from: ConceptId, comps: &[u32]) -> u32 {
        let mut cur = from;
        let mut total = 0u32;
        for &comp in comps {
            let pos = comp as usize - 1;
            total += self.weight_at(cur, pos);
            cur = ont.child_at(cur, comp).expect("valid ontology path");
        }
        total
    }
}

/// Weighted valid-path distances from a set of source concepts to every
/// concept: `min over sources of (weighted ascent + weighted descent)`.
///
/// The same two-phase topological relaxation as the unit-weight version —
/// relaxation in topological order is exact on DAGs for any non-negative
/// weights.
pub fn multi_source_distances(
    ont: &Ontology,
    weights: &EdgeWeights,
    sources: &[ConceptId],
) -> Vec<u32> {
    let mut up = vec![D_INF; ont.len()];
    for &s in sources {
        up[s.index()] = 0;
    }
    // Ascend (children before parents).
    for &c in ont.topological_order().iter().rev() {
        let base = up[c.index()];
        if base == D_INF {
            continue;
        }
        // `c`'s ascent can improve each parent via the parent→c edge.
        for &p in ont.parents(c) {
            let w = weights.weight(ont, p, c).expect("parent adjacency is symmetric");
            let cand = base + w;
            if cand < up[p.index()] {
                up[p.index()] = cand;
            }
        }
    }
    // Descend.
    let mut dist = up;
    for &c in ont.topological_order() {
        let base = dist[c.index()];
        if base == D_INF {
            continue;
        }
        for (pos, &child) in ont.children(c).iter().enumerate() {
            let cand = base + weights.weight_at(c, pos);
            if cand < dist[child.index()] {
                dist[child.index()] = cand;
            }
        }
    }
    dist
}

/// Weighted concept-concept valid-path distance.
pub fn concept_distance(ont: &Ontology, weights: &EdgeWeights, a: ConceptId, b: ConceptId) -> u32 {
    if a == b {
        return 0;
    }
    multi_source_distances(ont, weights, &[a])[b.index()]
}

/// Weighted `Ddq` (Equation 2 with weighted `D`).
pub fn document_query_distance(
    ont: &Ontology,
    weights: &EdgeWeights,
    doc: &[ConceptId],
    query: &[ConceptId],
) -> u64 {
    assert!(!query.is_empty(), "RDS distance requires a non-empty query");
    if doc.is_empty() {
        return u64::MAX;
    }
    let dist = multi_source_distances(ont, weights, doc);
    query.iter().map(|&q| dist[q.index()] as u64).sum()
}

/// Weighted `Ddd` (Equation 3 with weighted `D`).
pub fn document_document_distance(
    ont: &Ontology,
    weights: &EdgeWeights,
    d1: &[ConceptId],
    d2: &[ConceptId],
) -> f64 {
    if d1.is_empty() || d2.is_empty() {
        return f64::INFINITY;
    }
    let from_d1 = multi_source_distances(ont, weights, d1);
    let from_d2 = multi_source_distances(ont, weights, d2);
    let sum2: u64 = d2.iter().map(|&c| from_d1[c.index()] as u64).sum();
    let sum1: u64 = d1.iter().map(|&c| from_d2[c.index()] as u64).sum();
    sum1 as f64 / d1.len() as f64 + sum2 as f64 / d2.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture;

    #[test]
    fn uniform_weights_reproduce_unit_distances() {
        let fig = fixture::figure3();
        let ont = &fig.ontology;
        let w = EdgeWeights::uniform(ont);
        let pt = ont.path_table();
        for a in ont.concepts() {
            for b in ont.concepts() {
                assert_eq!(
                    concept_distance(ont, &w, a, b),
                    crate::concept_distance(pt, a, b),
                    "{} vs {}",
                    ont.label(a),
                    ont.label(b)
                );
            }
        }
    }

    #[test]
    fn heavier_edges_lengthen_paths() {
        let fig = fixture::figure3();
        let ont = &fig.ontology;
        let g = fig.concept("G");
        let f = fig.concept("F");
        // Make every edge out of the root cost 10: the G..A..F path
        // (through the root) now costs 5 - 2 + 20 = 23.
        let root = ont.root();
        let w = EdgeWeights::from_fn(ont, |p, _| if p == root { 10 } else { 1 });
        assert_eq!(concept_distance(ont, &w, g, f), 23);
    }

    #[test]
    fn weights_can_reroute_shortest_paths() {
        let fig = fixture::figure3();
        let ont = &fig.ontology;
        // I's nearest document concept is R (distance 4 through G). Penalize
        // the G→J edge and the ∧-path through the root (6 + penalties…)
        // becomes competitive.
        let g = fig.concept("G");
        let j = fig.concept("J");
        let i = fig.concept("I");
        let r = fig.concept("R");
        let w = EdgeWeights::from_fn(ont, |p, c| if p == g && c == j { 100 } else { 1 });
        // Valid paths I..R: via G→J (1 + 100 + 2 = 103) or up to A and down
        // through D,F,J,K (4 up + 5 down = 9... I→G→E→B→A = 4, A→D→F→J→K→R = 5).
        assert_eq!(concept_distance(ont, &w, i, r), 9);
    }

    #[test]
    fn path_weight_walks_components() {
        let fig = fixture::figure3();
        let ont = &fig.ontology;
        let w = EdgeWeights::from_fn(ont, |p, _| if p == ont.root() { 7 } else { 2 });
        // Address of G is 1.1.1: root edge (7) + two deeper edges (2 + 2).
        assert_eq!(w.path_weight(ont, ont.root(), &[1, 1, 1]), 11);
        assert_eq!(w.path_weight(ont, ont.root(), &[]), 0);
    }

    #[test]
    fn weighted_document_distances_reduce_to_unit() {
        let fig = fixture::figure3();
        let ont = &fig.ontology;
        let w = EdgeWeights::uniform(ont);
        let d = fig.example_document();
        let q = fig.example_query();
        assert_eq!(document_query_distance(ont, &w, &d, &q), 7);
        let ddd = document_document_distance(ont, &w, &d, &q);
        let unit = cbr_expected_ddd();
        assert!((ddd - unit).abs() < 1e-12);
    }

    fn cbr_expected_ddd() -> f64 {
        (2.0 + 1.0 + 4.0 + 5.0) / 4.0 + (4.0 + 2.0 + 1.0) / 3.0
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weights_are_rejected() {
        let fig = fixture::figure3();
        EdgeWeights::from_fn(&fig.ontology, |_, _| 0);
    }
}
