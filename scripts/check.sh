#!/usr/bin/env bash
# Canonical verification for the workspace: formatting, lints, tests.
# Run from the repository root. All three must pass before merging.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test -q
