//! The D-Radix DAG (Definition 3) and its construction.
//!
//! Given two concept sets `d` (document) and `q` (query), the D-Radix DAG
//! `T(d,q)` indexes every Dewey address of every concept in `d ∪ q`. Each
//! node carries two distances — from the nearest document concept and from
//! the nearest query concept — initialized to 0 for member concepts and ∞
//! otherwise, then *tuned* with one bottom-up and one top-down relaxation
//! pass (Equation 4). Unlike a plain Radix tree:
//!
//! * nodes carry the two distances;
//! * two concept nodes are never merged even without branching — only
//!   non-member prefix nodes are compressed away;
//! * the structure is a DAG: a concept with several root paths is one node
//!   with several incoming edges (`FindNodeByDewey` in the paper resolves
//!   a path address to its concept; here that is an ontology walk).
//!
//! Insertion follows Function InsertPath: walk from the root matching edge
//! labels against the remaining suffix; on divergence, split the edge at
//! the longest common prefix, whose endpoint is resolved to a concept and
//! materialized as a node. Splits recurse so that re-reaching an existing
//! sub-DAG through a second route (Example 2, steps 6–8 of the paper)
//! merges cleanly instead of duplicating edges.
//!
//! # Reuse
//!
//! DRC runs at query time for every probed document, so the DAG is built
//! and torn down once per probe. To keep that loop allocation-free, one
//! `DRadixDag` value is reusable: [`build_into`](DRadixDag::build_into)
//! [`reset`](DRadixDag::reset)s the logical content but keeps every
//! backing allocation — the node arena (a high-water mark tracks the live
//! prefix, and each recycled slot keeps its edge `Vec`), the label arena
//! (edge labels are ranges into one flat `Vec<u32>` instead of per-edge
//! boxes), the dense concept-slot table, and the tuning scratch
//! (topological-order buffers). After a few probes the structure reaches
//! steady state and subsequent builds allocate nothing.
//!
//! Per-build bookkeeping (concept → node slot, doc/query membership) is
//! epoch-stamped and sized by `|C|`: [`reset`](DRadixDag::reset) bumps a
//! build counter instead of touching the tables, so "clear" is O(1) and
//! every lookup on the probe path is a single array read — no hashing
//! anywhere in the EXAMINE step.

use cbr_index::packing;
use cbr_ontology::{ConceptId, Ontology};
use std::collections::VecDeque;

/// Distance placeholder before tuning (`∞` in the paper).
pub const UNSET: u32 = u32::MAX;

/// One radix node: the two tracked distances plus outgoing edges.
#[derive(Debug, Clone)]
struct Node {
    concept: ConceptId,
    /// Distance from the nearest document concept (`Ddc(d, ci)`).
    doc_dist: u32,
    /// Distance from the nearest query concept (`Ddc(q, ci)`).
    query_dist: u32,
    /// Outgoing edges; at most one child edge per leading Dewey component.
    /// The `Vec` survives node recycling, so steady-state builds push into
    /// retained capacity.
    edges: Vec<Edge>,
    /// Number of incoming edges (for the topological pass).
    indegree: u32,
}

/// A compressed edge: the Dewey components between two materialized nodes,
/// stored as a range into the DAG's label arena.
#[derive(Debug, Clone, Copy)]
struct Edge {
    target: u32,
    /// Start of the label in [`DRadixDag::labels`].
    start: u32,
    /// Number of label components.
    len: u32,
    /// Total cost of the compressed ontology edges: the component count in
    /// the unit-weight case, or the weight sum under
    /// [`EdgeWeights`](cbr_ontology::EdgeWeights).
    weight: u32,
}

impl Edge {
    /// The edge target as a typed arena index.
    #[inline]
    fn target_ix(&self) -> NodeIx {
        NodeIx(self.target)
    }
}

/// Typed index of a node slot in the arena. Cold paths (probes,
/// iterators, export, validators, test corruptors) hop through
/// [`DRadixDag::node`], which bounds-checks against the live watermark
/// instead of indexing raw; the `u32`s threaded through the hot
/// construction and tuning loops stay untyped, covered by the `A02`
/// allowlist entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NodeIx(u32);

impl NodeIx {
    /// The arena offset this index names.
    #[inline]
    fn ix(self) -> usize {
        self.0 as usize
    }
}

/// Distance scratch read with an `UNSET` fallback (cold validators only).
#[inline]
fn dist_at(v: &[u32], n: NodeIx) -> u32 {
    v.get(n.ix()).copied().unwrap_or(UNSET)
}

/// Distance scratch write that ignores out-of-range indices (cold
/// validators only; an index past the scratch means the structure is
/// already invalid and other checks report it).
#[inline]
fn set_dist(v: &mut [u32], n: NodeIx, d: u32) {
    if let Some(slot) = v.get_mut(n.ix()) {
        *slot = d;
    }
}

/// Shape statistics of a built DAG (used by tests and the ablation bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DagStats {
    /// Materialized radix nodes (including the root).
    pub nodes: usize,
    /// Compressed edges.
    pub edges: usize,
    /// Dewey addresses inserted (`|Pd| + |Pq|`).
    pub addresses: usize,
}

/// The D-Radix DAG over one `(document, query)` pair.
///
/// A value is reusable across pairs: [`build_into`](Self::build_into)
/// replaces the content while retaining every backing allocation.
#[derive(Debug, Default, Clone)]
pub struct DRadixDag {
    /// Node arena; only the first `live` entries belong to the current
    /// build. Slots past the watermark are recycled (edge `Vec`s intact)
    /// by later builds.
    nodes: Vec<Node>,
    live: usize,
    /// Dense concept → node-slot table, one packed entry per ontology
    /// concept: `(stamp << 32) | slot`, live iff `stamp == epoch`. One
    /// array read replaces the per-build hash lookup.
    concept_slots: Vec<u64>,
    /// Label arena: every inserted address is appended once, and edge
    /// labels are subranges of it. Splits re-slice; nothing is copied.
    labels: Vec<u32>,
    addresses_inserted: usize,
    // --- per-build scratch, cleared (not freed) by `reset` ---------------
    /// Membership stamps: concept is in the current build's document
    /// (resp. query) side iff its stamp equals `epoch`.
    doc_stamps: Vec<u32>,
    query_stamps: Vec<u32>,
    /// Build counter backing the stamped tables; bumped by
    /// [`reset`](Self::reset), wrap-around zeroes the stamps.
    epoch: u32,
    /// `(start, len, concept)` ranges of the addresses to insert, sorted
    /// lexicographically by label content before insertion. The leading
    /// `u32` is the address's global rank from the ontology's path table:
    /// rank order IS content order (ranks are distinct per unique
    /// address), so the per-build sort costs one integer compare per
    /// decision instead of a slice compare against the label arena.
    addr_buf: Vec<(u32, u32, u32, ConceptId)>,
    topo_indegree: Vec<u32>,
    topo_queue: VecDeque<u32>,
    topo_order: Vec<u32>,
    /// Pending `(from, target, vs, vl)` insertions for the explicit
    /// suffix-insertion worklist; drained within each call, retained so
    /// the hot path never reallocates in steady state.
    suffix_work: Vec<(u32, ConceptId, u32, u32)>,
}

impl DRadixDag {
    /// Creates an empty, reusable DAG. Feed it with
    /// [`build_into`](Self::build_into).
    pub fn new() -> DRadixDag {
        DRadixDag::default()
    }

    /// Builds the DAG for `doc` and `query` over `ont`, inserting the
    /// lexicographically sorted Dewey address lists `Pd` and `Pq`
    /// (Algorithm 1, construction phase) and initializing member distances
    /// to zero. Unit edge weights (the paper's metric).
    pub fn build(ont: &Ontology, doc: &[ConceptId], query: &[ConceptId]) -> DRadixDag {
        let mut dag = DRadixDag::new();
        dag.build_into(ont, doc, query);
        dag
    }

    /// Like [`DRadixDag::build`] but pricing every compressed edge with the
    /// weight sum of the ontology edges it spans (the weighted-edge
    /// future-work prototype, see [`cbr_ontology::weighted`]).
    pub fn build_weighted(
        ont: &Ontology,
        doc: &[ConceptId],
        query: &[ConceptId],
        weights: &cbr_ontology::EdgeWeights,
    ) -> DRadixDag {
        let mut dag = DRadixDag::new();
        dag.build_weighted_into(ont, doc, query, weights);
        dag
    }

    /// Rebuilds `self` for a new `(doc, query)` pair, reusing every
    /// backing allocation of the previous build. Equivalent to
    /// [`DRadixDag::build`] but allocation-free once the value has warmed
    /// up.
    pub fn build_into(&mut self, ont: &Ontology, doc: &[ConceptId], query: &[ConceptId]) {
        self.build_impl(ont, doc, query, None);
    }

    /// Weighted counterpart of [`build_into`](Self::build_into).
    pub fn build_weighted_into(
        &mut self,
        ont: &Ontology,
        doc: &[ConceptId],
        query: &[ConceptId],
        weights: &cbr_ontology::EdgeWeights,
    ) {
        self.build_impl(ont, doc, query, Some(weights));
    }

    /// Clears the logical content while keeping all capacity: the node
    /// watermark drops to zero (recycled slots keep their edge `Vec`s),
    /// the arenas are emptied in place, and the stamped tables are
    /// "cleared" by bumping the build epoch — O(1) regardless of how many
    /// concepts the previous build touched.
    pub fn reset(&mut self) {
        self.live = 0;
        self.labels.clear();
        self.addresses_inserted = 0;
        self.addr_buf.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // One full stamp cycle exhausted: zero the tables so stamps
            // from 2^32 builds ago cannot alias the restarted counter.
            self.concept_slots.iter_mut().for_each(|e| *e = 0);
            self.doc_stamps.iter_mut().for_each(|s| *s = 0);
            self.query_stamps.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        // The topo buffers are cleared at use; nothing to do here.
    }

    fn build_impl(
        &mut self,
        ont: &Ontology,
        doc: &[ConceptId],
        query: &[ConceptId],
        weights: Option<&cbr_ontology::EdgeWeights>,
    ) {
        let paths = ont.path_table();
        self.reset();
        // Size the stamped tables by |C| once; later builds over the same
        // ontology find them already large enough.
        if self.concept_slots.len() < ont.len() {
            self.concept_slots.resize(ont.len(), 0);
            self.doc_stamps.resize(ont.len(), 0);
            self.query_stamps.resize(ont.len(), 0);
        }
        for &c in doc {
            match self.doc_stamps.get_mut(c.index()) {
                Some(s) => *s = self.epoch,
                None => debug_assert!(false, "document concept outside the ontology"),
            }
        }
        for &c in query {
            match self.query_stamps.get_mut(c.index()) {
                Some(s) => *s = self.epoch,
                None => debug_assert!(false, "query concept outside the ontology"),
            }
        }

        // Initialize with the root (Algorithm 1 line 4).
        self.slot_for(ont.root());

        // Stage every address of d ∪ q into the label arena, then insert
        // in lexicographic address order (lines 6–14). The paper merges
        // the two pre-sorted lists Pd and Pq; sorting the staged ranges by
        // content is order-equivalent (ties are the same address, whose
        // second insertion is a no-op) and needs no per-build Vec of
        // borrowed slices.
        for &c in doc.iter().chain(query) {
            // cplx: counter addrs
            for (rank, addr) in paths.addresses_ranked(c) {
                #[cfg(feature = "counters")]
                crate::counters::bump_addrs();
                let start = packing::csr_offset(self.labels.len());
                // bound: sized — one label range per ranked address of d ∪ q
                self.labels.extend_from_slice(addr);
                // bound: sized — one staging entry per ranked address of d ∪ q
                self.addr_buf.push((rank, start, packing::narrow_u32(addr.len()), c));
            }
        }
        let mut addr_buf = std::mem::take(&mut self.addr_buf);
        // Equal ranks are the same address of the same concept (an address
        // names a unique root path) staged from both sides of d ∪ q; the
        // offset tie-break only pins a deterministic permutation of
        // identical insertions.
        addr_buf.sort_unstable_by(|&(ka, sa, ..), &(kb, sb, ..)| ka.cmp(&kb).then(sa.cmp(&sb)));
        for &(_, start, len, concept) in &addr_buf {
            self.insert_address(ont, weights, concept, start, len);
        }
        self.addr_buf = addr_buf;
        #[cfg(debug_assertions)]
        {
            let structure = self.validate_structure();
            debug_assert!(
                structure.is_ok(),
                "D-Radix structural invariant violated: {structure:?}"
            );
        }
    }

    /// Runs the tuning phase (Algorithm 1 lines 19–27): a bottom-up pass in
    /// reverse topological order followed by a top-down pass, both relaxing
    /// with Equation 4. After this every node holds its exact valid-path
    /// distance from the nearest document and query concepts.
    pub fn tune(&mut self) {
        self.compute_topological_order();
        let order = std::mem::take(&mut self.topo_order);
        // Bottom-up: pull distances from children.
        // cplx: bound p*depth — the topological order holds each live radix node once
        for &n in order.iter().rev() {
            let node = &self.nodes[n as usize];
            let mut doc = node.doc_dist;
            let mut query = node.query_dist;
            for e in &node.edges {
                let child = &self.nodes[e.target as usize];
                doc = doc.min(child.doc_dist.saturating_add(e.weight));
                query = query.min(child.query_dist.saturating_add(e.weight));
            }
            let node = &mut self.nodes[n as usize];
            node.doc_dist = doc;
            node.query_dist = query;
        }
        // Top-down: push distances to children. Indexed iteration because
        // the children being relaxed live in the same arena as the edges
        // being read (the DAG is acyclic, so a node never relaxes itself).
        // cplx: bound p*depth — the topological order holds each live radix node once
        for &n in &order {
            let node = &self.nodes[n as usize];
            let doc = node.doc_dist;
            let query = node.query_dist;
            for i in 0..self.nodes[n as usize].edges.len() {
                let Edge { target, weight, .. } = self.nodes[n as usize].edges[i];
                let child = &mut self.nodes[target as usize];
                child.doc_dist = child.doc_dist.min(doc.saturating_add(weight));
                child.query_dist = child.query_dist.min(query.saturating_add(weight));
            }
        }
        self.topo_order = order;
    }

    /// The node slot of `c` in the current build, `None` if it is not
    /// materialized. One packed array read: the entry's high half must
    /// match the build epoch.
    #[inline]
    fn slot_of(&self, c: ConceptId) -> Option<u32> {
        let &e = self.concept_slots.get(c.index())?;
        let (stamp, slot) = packing::unpack_stamp_slot(e);
        (stamp == self.epoch).then_some(slot)
    }

    /// Whether `c` is a document-side member of the current build.
    #[inline]
    fn is_doc_member(&self, c: ConceptId) -> bool {
        self.doc_stamps.get(c.index()).is_some_and(|&s| s == self.epoch)
    }

    /// Whether `c` is a query-side member of the current build.
    #[inline]
    fn is_query_member(&self, c: ConceptId) -> bool {
        self.query_stamps.get(c.index()).is_some_and(|&s| s == self.epoch)
    }

    /// Distance of radix node `c` from the nearest *document* concept
    /// (`Ddc(d, c)`), exact after [`tune`](Self::tune). Returns `None` for
    /// concepts not materialized in the DAG.
    pub fn doc_distance(&self, c: ConceptId) -> Option<u32> {
        self.slot_of(c).and_then(|n| self.node(NodeIx(n))).map(|nd| nd.doc_dist)
    }

    /// Distance of radix node `c` from the nearest *query* concept
    /// (`Ddc(q, c)`), exact after [`tune`](Self::tune).
    pub fn query_distance(&self, c: ConceptId) -> Option<u32> {
        self.slot_of(c).and_then(|n| self.node(NodeIx(n))).map(|nd| nd.query_dist)
    }

    /// The live node slots of the current build.
    #[inline]
    fn active(&self) -> &[Node] {
        self.nodes.get(..self.live).unwrap_or(&[])
    }

    /// Checked arena hop for the cold paths: resolves a typed index
    /// against the live prefix, `None` past the watermark.
    #[inline]
    fn node(&self, n: NodeIx) -> Option<&Node> {
        self.active().get(n.ix())
    }

    /// The label components of `e`.
    #[inline]
    fn label(&self, e: &Edge) -> &[u32] {
        self.label_range(e.start, e.len)
    }

    /// The label-arena subrange `[start, start + len)`, empty when the
    /// range escapes the arena (a corrupt edge; the structural validator
    /// reports it).
    #[inline]
    fn label_range(&self, start: u32, len: u32) -> &[u32] {
        self.labels.get(start as usize..(start as usize + len as usize)).unwrap_or(&[])
    }

    /// Shape statistics.
    pub fn stats(&self) -> DagStats {
        DagStats {
            nodes: self.live,
            edges: self.active().iter().map(|n| n.edges.len()).sum(),
            addresses: self.addresses_inserted,
        }
    }

    /// Approximate heap footprint of the retained allocations, in bytes.
    /// Used by the workspace-reuse metrics to assert that steady-state
    /// queries stop growing their scratch.
    pub fn footprint_bytes(&self) -> usize {
        use std::mem::size_of;
        self.nodes.capacity() * size_of::<Node>()
            + self.nodes.iter().map(|n| n.edges.capacity() * size_of::<Edge>()).sum::<usize>()
            + self.labels.capacity() * size_of::<u32>()
            + self.addr_buf.capacity() * size_of::<(u32, u32, u32, ConceptId)>()
            + self.concept_slots.capacity() * size_of::<u64>()
            + (self.doc_stamps.capacity() + self.query_stamps.capacity()) * size_of::<u32>()
            + (self.topo_indegree.capacity() + self.topo_order.capacity()) * size_of::<u32>()
            + self.topo_queue.capacity() * size_of::<u32>()
            + self.suffix_work.capacity() * size_of::<(u32, ConceptId, u32, u32)>()
    }

    /// Whether concept `c` is materialized as a node.
    pub fn contains(&self, c: ConceptId) -> bool {
        self.slot_of(c).is_some()
    }

    /// Iterates the materialized nodes as
    /// `(concept, doc distance, query distance)`.
    pub fn nodes(&self) -> impl Iterator<Item = (ConceptId, u32, u32)> + '_ {
        self.active().iter().map(|n| (n.concept, n.doc_dist, n.query_dist))
    }

    /// Iterates the compressed edges as
    /// `(parent concept, child concept, label components, weight)`.
    pub fn edges(&self) -> impl Iterator<Item = (ConceptId, ConceptId, &[u32], u32)> + '_ {
        self.active().iter().flat_map(move |n| {
            n.edges.iter().filter_map(move |e| {
                let target = self.node(e.target_ix())?;
                Some((n.concept, target.concept, self.label(e), e.weight))
            })
        })
    }

    /// Renders the DAG in Graphviz DOT, Figure 5(g)-style: every node shows
    /// its concept label with the `(document distance, query distance)`
    /// pair, and edges carry their Dewey labels.
    pub fn to_dot(&self, ont: &Ontology) -> String {
        use std::fmt::Write as _;
        let fmt_dist = |d: u32| {
            if d == UNSET {
                "∞".to_string()
            } else {
                d.to_string()
            }
        };
        let mut out =
            String::from("digraph dradix {\n  rankdir=TB;\n  node [fontsize=10, shape=ellipse];\n");
        let mut nodes: Vec<&Node> = self.active().iter().collect();
        nodes.sort_by_key(|n| n.concept);
        for n in &nodes {
            let _ = writeln!(
                out,
                "  c{} [label=\"{} ({}, {})\"];",
                n.concept.0,
                cbr_ontology::dot::escape_label(ont.label(n.concept)),
                fmt_dist(n.doc_dist),
                fmt_dist(n.query_dist)
            );
        }
        for n in &nodes {
            for e in &n.edges {
                let Some(target) = self.node(e.target_ix()) else {
                    continue;
                };
                let label: Vec<String> = self.label(e).iter().map(|c| c.to_string()).collect();
                let _ = writeln!(
                    out,
                    "  c{} -> c{} [label=\"{}\"];",
                    n.concept.0,
                    target.concept.0,
                    label.join(".")
                );
            }
        }
        out.push_str("}\n");
        out
    }

    // --- construction internals -------------------------------------------

    /// Returns the node slot of `concept`, materializing it at the
    /// watermark if new. Recycled slots keep their edge `Vec` allocation.
    // Arena growth past the high-water mark; slots are retained and
    // recycled by later builds.
    // flow: workspace-fed
    fn slot_for(&mut self, concept: ConceptId) -> u32 {
        if let Some(n) = self.slot_of(concept) {
            return n;
        }
        let n = packing::narrow_u32(self.live);
        let doc_dist = if self.is_doc_member(concept) { 0 } else { UNSET };
        let query_dist = if self.is_query_member(concept) { 0 } else { UNSET };
        if let Some(slot) = self.nodes.get_mut(self.live) {
            slot.concept = concept;
            slot.doc_dist = doc_dist;
            slot.query_dist = query_dist;
            slot.edges.clear();
            slot.indegree = 0;
        } else {
            self.nodes.push(Node { concept, doc_dist, query_dist, edges: Vec::new(), indegree: 0 });
        }
        self.live += 1;
        match self.concept_slots.get_mut(concept.index()) {
            Some(e) => *e = packing::pack_stamp_slot(self.epoch, n),
            None => debug_assert!(false, "concept outside the slot table"),
        }
        n
    }

    fn insert_address(
        &mut self,
        ont: &Ontology,
        weights: Option<&cbr_ontology::EdgeWeights>,
        concept: ConceptId,
        start: u32,
        len: u32,
    ) {
        self.addresses_inserted += 1;
        let Some(root) = self.slot_of(ont.root()) else {
            debug_assert!(false, "root must be materialized before inserts");
            return;
        };
        self.insert_suffix(ont, weights, root, concept, start, len);
    }

    /// Function InsertPath: attaches `target`, reachable from the concept of
    /// node `from` by walking the ontology along the label range
    /// `[vs, vs + vl)` of the arena, into the radix structure below `from`.
    fn insert_suffix(
        &mut self,
        ont: &Ontology,
        weights: Option<&cbr_ontology::EdgeWeights>,
        from: u32,
        target: ConceptId,
        vs: u32,
        vl: u32,
    ) {
        // Explicit worklist rather than self-recursion: the edge-split case
        // re-attaches two label ranges that are strict subranges of the one
        // being inserted, so pending work is bounded by the Dewey address
        // length and the query path stays recursion-free (bound B04). The
        // worklist buffer is retained scratch — no per-call allocation.
        debug_assert!(self.suffix_work.is_empty(), "worklist drains within each insertion");
        // bound: sized — at most two subrange items replace each popped item
        self.suffix_work.push((from, target, vs, vl));
        // cplx: counter suffix_pops
        'work: while let Some((from, target, mut vs, mut vl)) = self.suffix_work.pop() {
            #[cfg(feature = "counters")]
            crate::counters::bump_suffix_pops();
            let mut cn = from;
            // cplx: bound depth — descends one radix edge per turn, vl strictly shrinking; cplx: counter radix_steps
            loop {
                #[cfg(feature = "counters")]
                crate::counters::bump_radix_steps();
                if vl == 0 {
                    // Fully matched: the walk ended on an existing node, which
                    // must be the target (equal Dewey position ⇒ equal concept).
                    debug_assert_eq!(self.nodes[cn as usize].concept, target);
                    continue 'work;
                }
                // At most one edge shares the leading component with v.
                let lead = self.labels[vs as usize];
                let edge_idx = self.nodes[cn as usize]
                    .edges
                    .iter()
                    .position(|e| self.labels[e.start as usize] == lead);
                let Some(idx) = edge_idx else {
                    // No shared prefix: target becomes a direct child (lines 11–13).
                    let t = self.slot_for(target);
                    let w = self.price(ont, weights, cn, vs, vl);
                    self.add_edge(cn, t, vs, vl, w);
                    continue 'work;
                };

                let (m_target, ms, ml) = {
                    let e = &self.nodes[cn as usize].edges[idx];
                    (e.target, e.start, e.len)
                };
                let lcp = cbr_ontology::dewey::longest_common_prefix(
                    &self.labels[vs as usize..(vs + vl) as usize],
                    &self.labels[ms as usize..(ms + ml) as usize],
                ) as u32; // bound: proven — lcp ≤ ml, which already fits u32
                if lcp == ml {
                    // v contains the full edge label: descend (lines 14–17).
                    cn = m_target;
                    vs += lcp;
                    vl -= lcp;
                    continue;
                }

                // Partial overlap: split the edge at the LCP (lines 18–27). The
                // LCP endpoint is a real ontology node, resolved by walking from
                // cn's concept (the paper's FindNodeByDewey). A failed walk means
                // the label arena is corrupt; skip the insertion rather than
                // panic (debug builds flag it via the structural validator).
                let Some(mid_concept) = resolve_relative(
                    ont,
                    self.nodes[cn as usize].concept,
                    &self.labels[vs as usize..(vs + lcp) as usize],
                ) else {
                    debug_assert!(false, "edge labels must be valid ontology paths");
                    continue 'work;
                };
                self.remove_edge(cn, idx);
                let mid = self.slot_for(mid_concept);
                let w = self.price(ont, weights, cn, vs, lcp);
                self.add_edge(cn, mid, vs, lcp, w);
                // Re-attach the displaced edge below the split point; queued
                // work handles the case where `mid` already owns a sub-DAG
                // reached through another root path. Both re-attached labels
                // are subranges of arena labels that already exist — no
                // copying. Queue order keeps the displaced edge first.
                let old_target_concept = self.nodes[m_target as usize].concept;
                if mid_concept != target {
                    // bound: sized — strict subrange of the popped item (cplx: cap depth*depth — resplits bounded by the label length)
                    self.suffix_work.push((mid, target, vs + lcp, vl - lcp));
                }
                // bound: sized — strict subrange of the split edge label (cplx: cap depth*depth — resplits bounded by the label length)
                self.suffix_work.push((mid, old_target_concept, ms + lcp, ml - lcp));
                continue 'work;
            }
        }
    }

    /// Cost of walking the label range down from node `from` under the
    /// active weighting (component count when unweighted).
    fn price(
        &self,
        ont: &Ontology,
        weights: Option<&cbr_ontology::EdgeWeights>,
        from: u32,
        start: u32,
        len: u32,
    ) -> u32 {
        match weights {
            None => len,
            Some(w) => w.path_weight(
                ont,
                self.nodes[from as usize].concept,
                &self.labels[start as usize..(start + len) as usize],
            ),
        }
    }

    fn add_edge(&mut self, from: u32, to: u32, start: u32, len: u32, weight: u32) {
        debug_assert!(len > 0, "radix edges carry at least one component");
        // Idempotence: re-reaching an existing sub-DAG may re-derive an
        // identical edge (paper Example 2, step 8) — skip it. Labels are
        // compared by content; equal addresses may be staged at different
        // arena offsets.
        let label = &self.labels[start as usize..(start + len) as usize];
        let node = &self.nodes[from as usize];
        if node.edges.iter().any(|e| e.target == to && self.label(e) == label) {
            return;
        }
        debug_assert!(
            node.edges.iter().all(|e| self.labels[e.start as usize] != label[0]),
            "radix invariant: one edge per leading component"
        );
        self.nodes[from as usize].edges.push(Edge { target: to, start, len, weight });
        self.nodes[to as usize].indegree += 1;
    }

    fn remove_edge(&mut self, from: u32, idx: usize) {
        let edge = self.nodes[from as usize].edges.swap_remove(idx);
        self.nodes[edge.target as usize].indegree -= 1;
    }

    /// Kahn topological order from the root over radix edges, written into
    /// `self.topo_order` using the retained scratch buffers.
    fn compute_topological_order(&mut self) {
        self.topo_indegree.clear();
        self.topo_indegree.extend(self.nodes[..self.live].iter().map(|n| n.indegree));
        self.topo_queue.clear();
        self.topo_order.clear();
        for n in 0..packing::narrow_u32(self.live) {
            if self.topo_indegree[n as usize] == 0 {
                self.topo_queue.push_back(n);
            }
        }
        while let Some(n) = self.topo_queue.pop_front() {
            // bound: sized — each live node enters the topological order once
            self.topo_order.push(n);
            for e in &self.nodes[n as usize].edges {
                self.topo_indegree[e.target as usize] -= 1;
                if self.topo_indegree[e.target as usize] == 0 {
                    self.topo_queue.push_back(e.target);
                }
            }
        }
        debug_assert_eq!(self.topo_order.len(), self.live, "radix DAG must be acyclic");
    }
}

/// Walks `comps` child ordinals down from `from`, returning the endpoint,
/// or `None` if some component does not name a child (corrupt label).
fn resolve_relative(ont: &Ontology, from: ConceptId, comps: &[u32]) -> Option<ConceptId> {
    let mut cur = from;
    for &comp in comps {
        cur = ont.child_at(cur, comp)?;
    }
    Some(cur)
}

/// A violated D-Radix invariant, reported by
/// [`DRadixDag::validate_structure`], [`DRadixDag::validate_tuned`], and
/// [`DRadixDag::spot_check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagViolation {
    /// The concept-slot table and the live node arena disagree about
    /// `concept`.
    ConceptMapMismatch {
        /// The concept whose map entry and arena slot diverge.
        concept: ConceptId,
    },
    /// An edge of `from` points outside the live arena or its label range
    /// escapes the label arena.
    EdgeOutOfBounds {
        /// The edge's source concept.
        from: ConceptId,
    },
    /// A node's stored indegree differs from its actual incoming edges.
    IndegreeMismatch {
        /// The affected concept.
        concept: ConceptId,
        /// The cached count on the node.
        stored: u32,
        /// The count recomputed from the edges.
        actual: u32,
    },
    /// Two edges of one node share the same leading Dewey component.
    DuplicateLeadingComponent {
        /// The branching concept.
        concept: ConceptId,
        /// The shared leading component.
        component: u32,
    },
    /// The radix edges contain a cycle.
    Cycle,
    /// A non-member, non-root node with one parent and one child: path
    /// compression (Definition 3) should have elided it.
    UncompressedChain {
        /// The chain concept that should not be materialized.
        concept: ConceptId,
    },
    /// A non-root node with no incoming edge (unreachable from the root).
    Unreachable {
        /// The orphaned concept.
        concept: ConceptId,
    },
    /// A `d ∪ q` member concept whose distance on its own side is not zero.
    MemberDistanceNotZero {
        /// The member concept.
        concept: ConceptId,
        /// `true` for the document side, `false` for the query side.
        doc_side: bool,
        /// The observed distance.
        dist: u32,
    },
    /// A `d ∪ q` member concept with no materialized node.
    MemberMissing {
        /// The missing concept.
        concept: ConceptId,
    },
    /// An edge violating the downward Equation 4 fixpoint: a child's
    /// nearest-distance may exceed its parent's by at most the edge weight
    /// (any valid ∧-shaped path extends by a descent).
    MonotonicityViolation {
        /// The edge's source concept.
        parent: ConceptId,
        /// The edge's target concept.
        child: ConceptId,
        /// `true` for the document side, `false` for the query side.
        doc_side: bool,
    },
    /// A stored tuned distance differing from an independent re-run of the
    /// bottom-up + top-down relaxation passes over the same structure.
    TuneMismatch {
        /// The affected concept.
        concept: ConceptId,
        /// `true` for the document side, `false` for the query side.
        doc_side: bool,
        /// The distance stored on the node.
        stored: u32,
        /// The re-derived distance.
        expected: u32,
    },
    /// A tuned distance disagreeing with the brute-force Rada oracle.
    DistanceMismatch {
        /// The probed concept.
        concept: ConceptId,
        /// `true` for the document side, `false` for the query side.
        doc_side: bool,
        /// The distance read off the tuned DAG.
        tuned: u32,
        /// The distance recomputed by [`crate::brute`].
        brute: u32,
    },
}

fn violations(v: Vec<DagViolation>) -> Result<(), Vec<DagViolation>> {
    if v.is_empty() {
        Ok(())
    } else {
        Err(v)
    }
}

impl DRadixDag {
    /// Checks every structural invariant of the current build: the
    /// concept-map/arena bijection, edge and label bounds, cached
    /// indegrees, the one-edge-per-leading-component radix rule,
    /// acyclicity, reachability, path compression (no materialized
    /// non-member chain nodes), and member-distance zeroing. Valid both
    /// before and after [`tune`](Self::tune).
    pub fn validate_structure(&self) -> Result<(), Vec<DagViolation>> {
        let mut v = Vec::new();
        // Bijection between the stamped slot table and the live arena
        // prefix.
        let stamped =
            self.concept_slots.iter().filter(|&&e| (e >> 32) as u32 == self.epoch).count();
        if stamped != self.live {
            v.push(DagViolation::ConceptMapMismatch { concept: ConceptId(u32::MAX) });
        }
        for (i, n) in self.active().iter().enumerate() {
            if self.slot_of(n.concept) != Some(i as u32) {
                v.push(DagViolation::ConceptMapMismatch { concept: n.concept });
            }
        }
        // Edge targets and label ranges in bounds; recomputed indegrees.
        let mut incoming = vec![0u32; self.live];
        for n in self.active() {
            for e in &n.edges {
                let label_end = (e.start as usize).saturating_add(e.len as usize);
                if (e.target as usize) >= self.live || label_end > self.labels.len() || e.len == 0 {
                    v.push(DagViolation::EdgeOutOfBounds { from: n.concept });
                    continue;
                }
                if let Some(slot) = incoming.get_mut(e.target as usize) {
                    *slot += 1;
                }
            }
            // One edge per leading Dewey component.
            for (i, a) in n.edges.iter().enumerate() {
                let lead = self.labels.get(a.start as usize);
                for b in n.edges.iter().skip(i + 1) {
                    if lead.is_some() && lead == self.labels.get(b.start as usize) {
                        v.push(DagViolation::DuplicateLeadingComponent {
                            concept: n.concept,
                            component: lead.copied().unwrap_or(0),
                        });
                    }
                }
            }
        }
        for (i, (n, &actual)) in self.active().iter().zip(incoming.iter()).enumerate() {
            if n.indegree != actual {
                v.push(DagViolation::IndegreeMismatch {
                    concept: n.concept,
                    stored: n.indegree,
                    actual,
                });
            }
            if i != 0 && actual == 0 {
                v.push(DagViolation::Unreachable { concept: n.concept });
            }
            // Path compression: a non-member interior node exists only as a
            // branch or merge point, so it has ≥ 2 children or ≥ 2 parents.
            let member = self.is_doc_member(n.concept) || self.is_query_member(n.concept);
            if i != 0 && !member && actual <= 1 && n.edges.len() <= 1 {
                v.push(DagViolation::UncompressedChain { concept: n.concept });
            }
        }
        // Acyclicity via a local Kahn pass over the recomputed indegrees.
        let mut queue: VecDeque<u32> =
            incoming.iter().enumerate().filter(|&(_, &d)| d == 0).map(|(i, _)| i as u32).collect();
        let mut seen = 0usize;
        while let Some(n) = queue.pop_front() {
            seen += 1;
            if let Some(node) = self.nodes.get(n as usize) {
                for e in &node.edges {
                    if let Some(slot) = incoming.get_mut(e.target as usize) {
                        *slot -= 1;
                        if *slot == 0 {
                            queue.push_back(e.target);
                        }
                    }
                }
            }
        }
        if seen != self.live {
            v.push(DagViolation::Cycle);
        }
        // Members materialize with distance 0 on their own side (tuning
        // only relaxes downward, so this holds before and after tune).
        self.check_members(&mut v);
        violations(v)
    }

    /// Pushes a violation for every member concept that is missing or whose
    /// own-side distance is nonzero.
    fn check_members(&self, v: &mut Vec<DagViolation>) {
        for (stamps, doc_side) in [(&self.doc_stamps, true), (&self.query_stamps, false)] {
            for (i, &s) in stamps.iter().enumerate() {
                if s != self.epoch {
                    continue;
                }
                let c = ConceptId::from_index(i);
                let dist = if doc_side { self.doc_distance(c) } else { self.query_distance(c) };
                match dist {
                    None => v.push(DagViolation::MemberMissing { concept: c }),
                    Some(0) => {}
                    Some(dist) => {
                        v.push(DagViolation::MemberDistanceNotZero { concept: c, doc_side, dist })
                    }
                }
            }
        }
    }

    /// Checks the invariants a tuned DAG must satisfy: the downward
    /// Equation 4 fixpoint (`dist(child) ≤ dist(parent) + w` on both
    /// sides — descending never breaks a valid ∧-shaped path; the upward
    /// direction does *not* hold, ascending after a descent is invalid),
    /// member distances pinned at zero, and agreement with an independent
    /// re-run of the bottom-up + top-down relaxation passes. Only
    /// meaningful after [`tune`](Self::tune).
    pub fn validate_tuned(&self) -> Result<(), Vec<DagViolation>> {
        let mut v = Vec::new();
        for n in self.active() {
            for e in &n.edges {
                let Some(child) = self.nodes.get(e.target as usize) else {
                    v.push(DagViolation::EdgeOutOfBounds { from: n.concept });
                    continue;
                };
                for (doc_side, u, c) in
                    [(true, n.doc_dist, child.doc_dist), (false, n.query_dist, child.query_dist)]
                {
                    if c > u.saturating_add(e.weight) {
                        v.push(DagViolation::MonotonicityViolation {
                            parent: n.concept,
                            child: child.concept,
                            doc_side,
                        });
                    }
                }
            }
        }
        self.check_members(&mut v);
        self.check_retuned(&mut v);
        violations(v)
    }

    /// Re-runs both relaxation passes into local buffers and compares the
    /// results against the stored distances.
    fn check_retuned(&self, v: &mut Vec<DagViolation>) {
        let live = self.live;
        // Re-derive the topological order locally (no scratch mutation).
        let mut indegree = vec![0u32; live];
        for n in self.active() {
            for e in &n.edges {
                if let Some(slot) = indegree.get_mut(e.target as usize) {
                    *slot += 1;
                }
            }
        }
        let mut queue: VecDeque<u32> =
            indegree.iter().enumerate().filter(|&(_, &d)| d == 0).map(|(i, _)| i as u32).collect();
        let mut order: Vec<u32> = Vec::with_capacity(live);
        while let Some(n) = queue.pop_front() {
            order.push(n);
            if let Some(node) = self.nodes.get(n as usize) {
                for e in &node.edges {
                    if let Some(slot) = indegree.get_mut(e.target as usize) {
                        *slot -= 1;
                        if *slot == 0 {
                            queue.push_back(e.target);
                        }
                    }
                }
            }
        }
        if order.len() != live {
            return; // cyclic: validate_structure reports it
        }
        let mut dd: Vec<u32> = Vec::with_capacity(live);
        let mut qd: Vec<u32> = Vec::with_capacity(live);
        for n in self.active() {
            dd.push(if self.is_doc_member(n.concept) { 0 } else { UNSET });
            qd.push(if self.is_query_member(n.concept) { 0 } else { UNSET });
        }
        for &n in order.iter().rev() {
            let n = NodeIx(n);
            let (mut d, mut q) = (dist_at(&dd, n), dist_at(&qd, n));
            let Some(node) = self.node(n) else {
                continue;
            };
            for e in &node.edges {
                let t = e.target_ix();
                d = d.min(dist_at(&dd, t).saturating_add(e.weight));
                q = q.min(dist_at(&qd, t).saturating_add(e.weight));
            }
            set_dist(&mut dd, n, d);
            set_dist(&mut qd, n, q);
        }
        for &n in &order {
            let n = NodeIx(n);
            let (d, q) = (dist_at(&dd, n), dist_at(&qd, n));
            let Some(node) = self.node(n) else {
                continue;
            };
            for e in &node.edges {
                let t = e.target_ix();
                let relaxed_d = dist_at(&dd, t).min(d.saturating_add(e.weight));
                let relaxed_q = dist_at(&qd, t).min(q.saturating_add(e.weight));
                set_dist(&mut dd, t, relaxed_d);
                set_dist(&mut qd, t, relaxed_q);
            }
        }
        for (i, n) in self.active().iter().enumerate() {
            let ix = NodeIx(i as u32);
            for (doc_side, stored, expected) in
                [(true, n.doc_dist, dist_at(&dd, ix)), (false, n.query_dist, dist_at(&qd, ix))]
            {
                if stored != expected {
                    v.push(DagViolation::TuneMismatch {
                        concept: n.concept,
                        doc_side,
                        stored,
                        expected,
                    });
                }
            }
        }
    }

    /// Compares up to `cap` tuned nearest-distances per side against the
    /// brute-force Rada oracle ([`crate::brute`]). Only valid for
    /// unit-weight builds after [`tune`](Self::tune).
    pub fn spot_check(
        &self,
        ont: &Ontology,
        doc: &[ConceptId],
        query: &[ConceptId],
        cap: usize,
    ) -> Result<(), Vec<DagViolation>> {
        let paths = ont.path_table();
        let mut v = Vec::new();
        for &qc in query.iter().take(cap) {
            let brute = crate::brute::document_concept_distance(paths, doc, qc);
            match self.doc_distance(qc) {
                None => v.push(DagViolation::MemberMissing { concept: qc }),
                Some(tuned) if tuned != brute => v.push(DagViolation::DistanceMismatch {
                    concept: qc,
                    doc_side: true,
                    tuned,
                    brute,
                }),
                _ => {}
            }
        }
        for &dc in doc.iter().take(cap) {
            let brute = crate::brute::document_concept_distance(paths, query, dc);
            match self.query_distance(dc) {
                None => v.push(DagViolation::MemberMissing { concept: dc }),
                Some(tuned) if tuned != brute => v.push(DagViolation::DistanceMismatch {
                    concept: dc,
                    doc_side: false,
                    tuned,
                    brute,
                }),
                _ => {}
            }
        }
        violations(v)
    }

    /// The full invariant suite for a tuned unit-weight build: structure,
    /// tuning fixpoint, and a full brute-force distance cross-check over
    /// every member concept.
    pub fn validate(
        &self,
        ont: &Ontology,
        doc: &[ConceptId],
        query: &[ConceptId],
    ) -> Result<(), Vec<DagViolation>> {
        let mut v = Vec::new();
        if let Err(e) = self.validate_structure() {
            v.extend(e);
        }
        if let Err(e) = self.validate_tuned() {
            v.extend(e);
        }
        if let Err(e) = self.spot_check(ont, doc, query, usize::MAX) {
            v.extend(e);
        }
        violations(v)
    }

    /// Test-only corruption: bumps one finite, edge-adjacent distance by
    /// one, breaking member zeroing or the Equation 4 fixpoint. Returns
    /// whether a corruptible node was found.
    #[doc(hidden)]
    pub fn corrupt_inflate_distance(&mut self) -> bool {
        for n in 0..self.live {
            let Some(node) = self.nodes.get_mut(n) else {
                return false;
            };
            if (node.indegree > 0 || !node.edges.is_empty()) && node.doc_dist != UNSET {
                node.doc_dist = node.doc_dist.saturating_add(1);
                return true;
            }
        }
        false
    }

    /// Test-only corruption: re-materializes the first elidable chain node
    /// (a non-member interior concept under a multi-component edge),
    /// breaking path compression. Returns whether such an edge existed.
    #[doc(hidden)]
    pub fn corrupt_break_compression(&mut self, ont: &Ontology) -> bool {
        for n in 0..packing::narrow_u32(self.live) {
            let Some(node) = self.nodes.get(n as usize) else {
                return false;
            };
            let from_concept = node.concept;
            for idx in 0..node.edges.len() {
                let Some(&e) = self.nodes.get(n as usize).and_then(|nd| nd.edges.get(idx)) else {
                    continue;
                };
                if e.len < 2 {
                    continue;
                }
                let lead = self.label_range(e.start, 1);
                let Some(mid) = resolve_relative(ont, from_concept, lead) else {
                    continue;
                };
                if self.slot_of(mid).is_some()
                    || self.is_doc_member(mid)
                    || self.is_query_member(mid)
                {
                    continue;
                }
                self.remove_edge(n, idx);
                let m = self.slot_for(mid);
                self.add_edge(n, m, e.start, 1, 1);
                self.add_edge(
                    m,
                    e.target,
                    e.start + 1,
                    e.len - 1,
                    e.weight.saturating_sub(1).max(1),
                );
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbr_ontology::fixture;

    /// Builds the paper's running example: d = {F,R,T,V}, q = {I,L,U}.
    fn example_dag() -> (fixture::Figure3, DRadixDag) {
        let fig = fixture::figure3();
        let dag = DRadixDag::build(&fig.ontology, &fig.example_document(), &fig.example_query());
        (fig, dag)
    }

    #[test]
    fn example2_materializes_expected_nodes() {
        // Figure 5(e): the constructed DAG holds A (root), G, I, J, R, U, V,
        // F, H, T, L — the member concepts plus branch points G, J, H.
        let (fig, dag) = example_dag();
        for name in ["A", "G", "I", "J", "R", "U", "V", "F", "H", "T", "L"] {
            assert!(dag.contains(fig.concept(name)), "node {name} missing");
        }
        // Compressed-away prefixes must NOT be materialized: B, E (merged
        // into the edge towards G), K, O, S, P, Q, and the untouched C, D,
        // M, N.
        for name in ["B", "C", "D", "E", "K", "M", "N", "O", "P", "Q", "S"] {
            assert!(!dag.contains(fig.concept(name)), "node {name} should be compressed");
        }
        assert_eq!(dag.stats().nodes, 11);
        assert_eq!(dag.stats().addresses, 10, "Table 1 lists 6 + 4 addresses");
    }

    #[test]
    fn tuned_distances_match_figure_5g() {
        // Figure 5(g) annotates every node with (doc distance, query
        // distance) after both traversals.
        let (fig, mut dag) = example_dag();
        dag.tune();
        let expect = [
            // (node, doc_dist, query_dist) — read off Figure 5(g) and
            // re-derived from the ontology by hand.
            ("I", 4, 0),
            ("L", 2, 0),
            ("U", 1, 0),
            ("F", 0, 2),
            ("R", 0, 1),
            ("T", 0, 4),
            ("V", 0, 5),
            ("G", 3, 1),
            ("J", 1, 2),
            ("H", 1, 1),
            ("A", 2, 4),
        ];
        for (name, dd, qd) in expect {
            let c = fig.concept(name);
            assert_eq!(dag.doc_distance(c), Some(dd), "doc distance of {name}");
            assert_eq!(dag.query_distance(c), Some(qd), "query distance of {name}");
        }
    }

    #[test]
    fn member_nodes_start_at_zero_before_tuning() {
        let (fig, dag) = example_dag();
        assert_eq!(dag.doc_distance(fig.concept("F")), Some(0));
        assert_eq!(dag.query_distance(fig.concept("F")), Some(UNSET));
        assert_eq!(dag.query_distance(fig.concept("I")), Some(0));
        assert_eq!(dag.doc_distance(fig.concept("I")), Some(UNSET));
        assert_eq!(dag.doc_distance(fig.concept("A")), Some(UNSET));
    }

    #[test]
    fn concept_in_both_sets_has_both_zero() {
        let fig = fixture::figure3();
        let shared = vec![fig.concept("R")];
        let mut dag = DRadixDag::build(&fig.ontology, &shared, &shared);
        dag.tune();
        assert_eq!(dag.doc_distance(fig.concept("R")), Some(0));
        assert_eq!(dag.query_distance(fig.concept("R")), Some(0));
    }

    #[test]
    fn absent_concept_reports_none() {
        let (fig, dag) = example_dag();
        assert_eq!(dag.doc_distance(fig.concept("M")), None);
        assert_eq!(dag.query_distance(fig.concept("M")), None);
    }

    #[test]
    fn dot_export_renders_figure5_style() {
        let (fig, mut dag) = example_dag();
        dag.tune();
        let dot = dag.to_dot(&fig.ontology);
        assert!(dot.starts_with("digraph dradix"));
        // Figure 5(g): node I carries (4, 0).
        let i = fig.concept("I").0;
        assert!(dot.contains(&format!("c{i} [label=\"I (4, 0)\"]")), "{dot}");
        // The compressed edge from the root towards G carries label 1.1.1.
        let a = fig.concept("A").0;
        let g = fig.concept("G").0;
        assert!(dot.contains(&format!("c{a} -> c{g} [label=\"1.1.1\"]")), "{dot}");
    }

    #[test]
    fn node_and_edge_iterators_are_consistent_with_stats() {
        let (_fig, dag) = example_dag();
        let s = dag.stats();
        assert_eq!(dag.nodes().count(), s.nodes);
        assert_eq!(dag.edges().count(), s.edges);
        // Every edge's endpoints are materialized nodes.
        for (from, to, label, weight) in dag.edges() {
            assert!(dag.contains(from) && dag.contains(to));
            assert_eq!(label.len() as u32, weight, "unit weights equal label length");
        }
    }

    #[test]
    fn stress_radix_invariants_on_large_random_inputs() {
        // Debug assertions inside add_edge/insert_suffix check the radix
        // invariants (one edge per leading component, acyclicity, concept
        // identity at full matches) on every operation; build many DAGs over
        // a large multi-parent ontology to shake them. The same value is
        // rebuilt each trial, stressing the recycling path as well.
        use cbr_ontology::{GeneratorConfig, OntologyGenerator};
        let ont = OntologyGenerator::new(GeneratorConfig::snomed_like(3_000)).generate();
        let all: Vec<ConceptId> = ont.concepts().collect();
        let mut dag = DRadixDag::new();
        for trial in 0..20u64 {
            let pick = |mul: u64, n: usize| -> Vec<ConceptId> {
                let mut v: Vec<ConceptId> = (0..n)
                    .map(|i| {
                        let h = (trial + 1)
                            .wrapping_mul(mul)
                            .wrapping_add(i as u64 * 0x9E37_79B9)
                            .wrapping_mul(0x2545_F491_4F6C_DD1D);
                        all[(h % all.len() as u64) as usize]
                    })
                    .collect();
                v.sort_unstable();
                v.dedup();
                v
            };
            let doc = pick(31, 40);
            let query = pick(77, 15);
            dag.build_into(&ont, &doc, &query);
            dag.tune();
            // Every member concept is materialized with distance 0 on its
            // own side.
            for &c in &doc {
                assert_eq!(dag.doc_distance(c), Some(0));
            }
            for &c in &query {
                assert_eq!(dag.query_distance(c), Some(0));
            }
        }
    }

    #[test]
    fn multi_route_concepts_are_single_nodes() {
        // R, U, V each have two Dewey addresses (Table 1) but must appear
        // exactly once; their second route arrives through F's subtree.
        let (_fig, dag) = example_dag();
        let s = dag.stats();
        assert_eq!(s.nodes, 11);
        // Edge count: from Figure 5(g): A→G, A→I(no: I is under G)… count
        // instead: every node except A has ≥1 parent; R, U?, V gain second
        // parents through the F route. Assert the DAG is a DAG with more
        // edges than a tree would have.
        assert!(s.edges > s.nodes - 1, "DAG must contain multi-parent nodes");
    }

    #[test]
    fn rebuilt_dag_matches_fresh_build() {
        // Reuse must be invisible: build A, rebuild for B, and compare
        // against a fresh build of B — structure and distances identical.
        let fig = fixture::figure3();
        let doc_a = fig.example_document();
        let query_a = fig.example_query();
        let doc_b = vec![fig.concept("M"), fig.concept("T")];
        let query_b = vec![fig.concept("C"), fig.concept("V")];

        let mut reused = DRadixDag::build(&fig.ontology, &doc_a, &query_a);
        reused.tune();
        reused.build_into(&fig.ontology, &doc_b, &query_b);
        reused.tune();

        let mut fresh = DRadixDag::build(&fig.ontology, &doc_b, &query_b);
        fresh.tune();

        assert_eq!(reused.stats(), fresh.stats());
        let mut a: Vec<_> = reused.nodes().collect();
        let mut b: Vec<_> = fresh.nodes().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "node distances diverge after reuse");
        let mut ea: Vec<_> = reused.edges().map(|(f, t, l, w)| (f, t, l.to_vec(), w)).collect();
        let mut eb: Vec<_> = fresh.edges().map(|(f, t, l, w)| (f, t, l.to_vec(), w)).collect();
        ea.sort();
        eb.sort();
        assert_eq!(ea, eb, "edges diverge after reuse");
    }

    #[test]
    fn steady_state_rebuilds_stop_allocating() {
        // After one warm-up build per (doc, query) shape, the footprint
        // must stabilize: rebuilding the same pairs in rotation performs
        // no further backing growth.
        let fig = fixture::figure3();
        let pairs = [
            (fig.example_document(), fig.example_query()),
            (vec![fig.concept("M"), fig.concept("V")], vec![fig.concept("I")]),
            (vec![fig.concept("C")], vec![fig.concept("T"), fig.concept("U")]),
        ];
        let mut dag = DRadixDag::new();
        for (d, q) in &pairs {
            dag.build_into(&fig.ontology, d, q);
            dag.tune();
        }
        let warm = dag.footprint_bytes();
        for _ in 0..3 {
            for (d, q) in &pairs {
                dag.build_into(&fig.ontology, d, q);
                dag.tune();
            }
        }
        assert_eq!(dag.footprint_bytes(), warm, "steady-state rebuilds must not grow");
    }
}
