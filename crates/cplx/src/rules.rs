//! The complexity rules C01–C05, run over per-function loop summaries
//! and the whole-program call graph.
//!
//! * **C01** — every reachable loop has an inferred or declared
//!   symbolic bound: bare `while`/`loop` constructs with no inference
//!   channel fire, as do unparseable or unjustified `cplx: bound`
//!   directives.
//! * **C02** — no loop-nest product on the query path contains `D·D`
//!   or `C·D`: the shapes the paper's recurrence forbids. Checked both
//!   on lexical nests and across confident call edges (a `D` loop
//!   calling a `D`-bounded callee), anchored at the loop or call that
//!   *creates* the product.
//! * **C03** — the differential claim: the composed bound of the
//!   D-Radix build root is recognizably `O((|Pq|+|Pd|)·log)` (a `P·log`
//!   term, and no `C`, `D`, or untyped factor anywhere), while the TA
//!   baseline root is the **only** root carrying the pairwise `nq·D`
//!   product.
//! * **C04** — every `bound: sized` table filled inside a loop has a
//!   symbolic capacity that dominates the loop nest filling it
//!   (cross-linking `cbr-bound`'s B03 directives).
//! * **C05** — counter-hook consistency: a loop marked
//!   `// cplx: counter <name>` must bump that counter in its body and
//!   vice versa, so the dynamic cross-validation harness measures the
//!   loops the static model claims to bound.
//!
//! A meta-rule (`CPLX`) guards against vacuity: every [`ROOT_SPECS`]
//! entry must match a function and the reachable slice must contain
//! loops, otherwise the rules would "pass" by proving nothing.
//!
//! ## Composition
//!
//! Function bounds compose bottom-up over *confident* call edges (the
//! same discipline as `cbr-bound`: method calls off non-`self`
//! receivers with ambiguous name resolution are excluded, since an
//! over-approximated dispatch would manufacture cost chains no
//! execution takes). Reachability still uses the full over-approximated
//! edge set, so C01/C04/C05 cover trait-dispatched index
//! implementations even where composition cannot follow the call. The
//! cost model: a loop costs its iteration bound times everything
//! inside; confident calls contribute the callee's composed bound at
//! their nesting context; `.sort*()` calls contribute `size·log` — the
//! log factor of the D-Radix build. A function-level
//! `// cplx: bound <expr> <why>` axiom overrides composition (the
//! amortization escape hatch for costs a lexical model cannot see,
//! e.g. per-query stamp resets amortized across posting scans).

use crate::summary::{Directive, FnLoops, LoopBound, LoopKind, LoopSite, Summaries};
use crate::sym::{Atom, Bound, Product};
use cbr_flow::graph::{propagate, Graph, Reach};
use cbr_flow::parser::Workspace;
use cbr_flow::report::Finding;
use std::collections::BTreeSet;

/// The hot-path roots the complexity rules protect (same eight as
/// `cbr-bound`'s B04): the snapshot/engine/TA/weighted query entry
/// points plus the D-Radix DAG build every exact distance goes through.
pub const ROOT_SPECS: [(&str, &str); 8] = [
    ("core::snapshot", "rds_with"),
    ("core::snapshot", "sds_with"),
    ("knds::engine", "rds_with"),
    ("knds::engine", "sds_with"),
    ("knds::ta", "rds_with"),
    ("knds::weighted", "rds_with"),
    ("knds::weighted", "sds_with"),
    ("dradix::dag", "build_into"),
];

/// Proof statistics, reported even when everything passes: a clean run
/// must show *what* was proven, not just the absence of findings.
#[derive(Debug, Default, Clone)]
pub struct RuleStats {
    /// Root functions matched by [`ROOT_SPECS`].
    pub roots: usize,
    /// Non-test functions transitively reachable from the roots.
    pub reachable_fns: usize,
    /// Live loops in reachable functions.
    pub reachable_loops: usize,
    /// Reachable loops without a symbolic bound (C01 findings).
    pub unbounded_loops: usize,
    /// Rendered composed bound of the D-Radix build root.
    pub c03_dradix_path: String,
    /// True when the D-Radix bound is recognizably `O(P·log)`-shaped.
    pub c03_dradix_recognized: bool,
    /// Rendered composed bound of the TA baseline root.
    pub c03_ta_path: String,
    /// Root functions whose composed bound carries the pairwise `nq·D`
    /// product (must be exactly 1: the TA baseline).
    pub c03_quadratic_roots: usize,
    /// Reachable loops carrying a `cplx: counter` marker.
    pub c05_counters: usize,
}

/// The atom vocabulary, for error messages.
const VOCAB: &str =
    " (atoms: 1, log, depth, deg, k, seg, nq, nd, p, post, c, d; joined with `*`, summed with `+`)";

/// Runs all complexity rules; returns findings plus the proof stats.
pub fn run(ws: &Workspace, graph: &Graph, sm: &Summaries) -> (Vec<Finding>, RuleStats) {
    let mut findings = Vec::new();
    let seeds = match_roots(ws, &mut findings);
    let reach = propagate(&reach_edges(ws, graph), &seeds);
    let sites = confident_sites(ws, graph);
    let composed = compose(ws, sm, &sites, &reach);

    let mut stats = RuleStats { roots: seeds.len(), ..RuleStats::default() };
    for (id, f) in ws.fns.iter().enumerate() {
        if f.is_test || !reach.reached(id) {
            continue;
        }
        stats.reachable_fns += 1;
        let file = &ws.files[f.file];
        let fl = &sm.fns[id];

        c01_loop_bounds(ws, sm, id, &mut stats, &mut findings);
        c02_no_pairwise(ws, sm, &sites, &composed, id, &mut findings);
        c04_sized_capacity(ws, sm, id, &mut findings);
        c05_counter_hooks(ws, sm, id, &mut stats, &mut findings);

        // Axiom hygiene rides with C01: a bare or unparseable fn-level
        // directive must not silently discharge composition.
        if let Some(expr) = &fl.axiom_bad {
            findings.push(Finding::new(
                "C01",
                &file.rel,
                f.line,
                format!("fn-level `cplx: bound` expression `{expr}` does not parse{VOCAB}"),
            ));
        }
        if let Some((b, Directive::Bare)) = &fl.axiom {
            findings.push(Finding::new(
                "C01",
                &file.rel,
                f.line,
                format!(
                    "bare fn-level `cplx: bound` directive on `{}` (declared {}) — write the \
                     amortization justification",
                    ws.display(id),
                    b.render()
                ),
            ));
        }
    }

    c03_differential(ws, &seeds, &composed, &mut stats, &mut findings);

    if stats.roots > 0 && stats.reachable_loops == 0 {
        findings.push(Finding::new(
            "CPLX",
            "crates/cplx/src/rules.rs",
            0,
            "zero reachable loops from the hot roots — the complexity proof is vacuous",
        ));
    }

    findings.sort_by(|a, b| (&a.rule, &a.file, a.line).cmp(&(&b.rule, &b.file, b.line)));
    (findings, stats)
}

/// Matches [`ROOT_SPECS`]; emits `CPLX` meta-findings for unmatched
/// specs so the differential proof can never go vacuous.
fn match_roots(ws: &Workspace, findings: &mut Vec<Finding>) -> Vec<usize> {
    let mut seeds = Vec::new();
    for (module, name) in ROOT_SPECS {
        let matched: Vec<usize> = ws
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.is_test && f.module == module && f.name == name)
            .map(|(id, _)| id)
            .collect();
        if matched.is_empty() {
            findings.push(Finding::new(
                "CPLX",
                "crates/cplx/src/rules.rs",
                0,
                format!(
                    "root spec `{module}::{name}` matched no function — the complexity proof \
                     is vacuous; update ROOT_SPECS"
                ),
            ));
        }
        seeds.extend(matched);
    }
    seeds
}

/// The full over-approximated edge set used for reachability, mirroring
/// `cbr-bound`: test functions and test/debug-gated call sites are
/// excluded, everything else keeps all resolved targets.
fn reach_edges(ws: &Workspace, graph: &Graph) -> Vec<Vec<usize>> {
    ws.fns
        .iter()
        .enumerate()
        .map(|(id, f)| {
            if f.is_test {
                return Vec::new();
            }
            let file = &ws.files[f.file];
            let mut out = BTreeSet::new();
            for (ci, call) in f.calls.iter().enumerate() {
                if file.is_test(call.at) || file.is_debug_gated(call.at) {
                    continue;
                }
                out.extend(graph.targets[id][ci].iter().copied().filter(|&t| !ws.fns[t].is_test));
            }
            out.into_iter().collect()
        })
        .collect()
}

/// Per-function confident call resolutions: `(call byte offset, callee)`
/// for every live call whose dispatch the graph resolves confidently.
/// Method calls off non-`self` receivers with multiple same-name
/// candidates are excluded — composition must not sum cost over
/// dispatch targets no execution takes.
fn confident_sites(ws: &Workspace, graph: &Graph) -> Vec<Vec<(usize, usize)>> {
    ws.fns
        .iter()
        .enumerate()
        .map(|(id, f)| {
            if f.is_test {
                return Vec::new();
            }
            let file = &ws.files[f.file];
            let mut out = Vec::new();
            for (ci, call) in f.calls.iter().enumerate() {
                if file.is_test(call.at) || file.is_debug_gated(call.at) {
                    continue;
                }
                let targets: Vec<usize> =
                    graph.targets[id][ci].iter().copied().filter(|&t| !ws.fns[t].is_test).collect();
                if call.method && !call.recv_self && targets.len() > 1 {
                    continue;
                }
                out.extend(targets.into_iter().map(|t| (call.at, t)));
            }
            out
        })
        .collect()
}

/// The untyped-but-finite bound, used for composition across cycles.
fn unk() -> Bound {
    Bound::product(Product::atom(Atom::Unk))
}

/// Cross product of two bounds' terms.
fn times(a: &Bound, b: &Bound) -> Bound {
    let mut terms = Vec::new();
    for x in &a.0 {
        for y in &b.0 {
            terms.push(x.times(y));
        }
    }
    Bound(terms).normalize()
}

/// Bottom-up composition of function bounds over the confident call
/// sites, restricted to the reachable slice. Iterative post-order DFS;
/// a callee still on the stack (a cycle — impossible on the honest tree
/// by B04, but fixtures seed them) composes as the untyped `?`.
fn compose(
    ws: &Workspace,
    sm: &Summaries,
    sites: &[Vec<(usize, usize)>],
    reach: &Reach,
) -> Vec<Bound> {
    let n = ws.fns.len();
    let mut memo: Vec<Option<Bound>> = vec![None; n];
    let mut state: Vec<u8> = vec![0; n]; // 0 = new, 1 = on stack, 2 = done

    enum Frame {
        Enter(usize),
        Exit(usize),
    }

    for start in 0..n {
        if !reach.reached(start) || ws.fns[start].is_test || state[start] != 0 {
            continue;
        }
        let mut stack = vec![Frame::Enter(start)];
        while let Some(fr) = stack.pop() {
            match fr {
                Frame::Enter(id) => {
                    if state[id] != 0 {
                        continue;
                    }
                    state[id] = 1;
                    stack.push(Frame::Exit(id));
                    for &(_, callee) in &sites[id] {
                        if state[callee] == 0 {
                            stack.push(Frame::Enter(callee));
                        }
                    }
                }
                Frame::Exit(id) => {
                    memo[id] = Some(fn_bound(sm, sites, id, &memo));
                    state[id] = 2;
                }
            }
        }
    }
    memo.into_iter().map(|b| b.unwrap_or_else(Bound::one)).collect()
}

/// Innermost enclosing loop of `at` among a function's loops.
fn enclosing_loop(sm: &Summaries, fl: &FnLoops, at: usize) -> Option<usize> {
    fl.loops.iter().copied().rfind(|&i| sm.loops[i].span.0 < at && at < sm.loops[i].span.1)
}

/// The composed bound of one function given its callees' memoized
/// bounds (`None` = still on the DFS stack = cycle = `?`).
fn fn_bound(
    sm: &Summaries,
    sites: &[Vec<(usize, usize)>],
    id: usize,
    memo: &[Option<Bound>],
) -> Bound {
    let fl = &sm.fns[id];
    if let Some((axiom, _)) = &fl.axiom {
        return axiom.clone();
    }
    let callee_bound = |callee: usize| memo[callee].clone().unwrap_or_else(unk);
    let call_items: Vec<(Option<usize>, usize)> =
        sites[id].iter().map(|&(at, t)| (enclosing_loop(sm, fl, at), t)).collect();

    // Cost of one loop: its iteration bound times everything inside.
    fn loop_cost(
        sm: &Summaries,
        fl: &FnLoops,
        li: usize,
        call_items: &[(Option<usize>, usize)],
        callee_bound: &dyn Fn(usize) -> Bound,
    ) -> Bound {
        let mut inner = Bound::one();
        for &ci in &fl.loops {
            if sm.loops[ci].parent == Some(li) {
                inner = inner.plus(&loop_cost(sm, fl, ci, call_items, callee_bound));
            }
        }
        for &(at_loop, target) in call_items {
            if at_loop == Some(li) {
                inner = inner.plus(&callee_bound(target));
            }
        }
        for s in &fl.sorts {
            if s.in_loop == Some(li) {
                inner = inner.plus(&s.size.scale(&Product::atom(Atom::Log)));
            }
        }
        times(&sm.loops[li].bound.bound(), &inner)
    }

    let cb = |t: usize| callee_bound(t);
    let mut total = Bound::one();
    for &li in &fl.loops {
        if sm.loops[li].parent.is_none() {
            total = total.plus(&loop_cost(sm, fl, li, &call_items, &cb));
        }
    }
    for &(at_loop, target) in &call_items {
        if at_loop.is_none() {
            total = total.plus(&cb(target));
        }
    }
    for s in &fl.sorts {
        if s.in_loop.is_none() {
            total = total.plus(&s.size.scale(&Product::atom(Atom::Log)));
        }
    }
    total
}

/// C01: every reachable live loop is bounded.
fn c01_loop_bounds(
    ws: &Workspace,
    sm: &Summaries,
    id: usize,
    stats: &mut RuleStats,
    findings: &mut Vec<Finding>,
) {
    let f = &ws.fns[id];
    let file = &ws.files[f.file];
    for &li in &sm.fns[id].loops {
        let l = &sm.loops[li];
        if !l.live {
            continue;
        }
        stats.reachable_loops += 1;
        match &l.bound {
            LoopBound::Inferred(_) | LoopBound::Declared(_, Directive::Justified) => {}
            LoopBound::Declared(b, Directive::Bare) => {
                findings.push(Finding::new(
                    "C01",
                    &file.rel,
                    file.line_of(l.at),
                    format!(
                        "bare `cplx: bound` directive on `{}` loop (declared {}) — write the \
                         bound justification",
                        kind_name(l),
                        b.render()
                    ),
                ));
            }
            LoopBound::BadExpr(expr) => {
                stats.unbounded_loops += 1;
                findings.push(Finding::new(
                    "C01",
                    &file.rel,
                    file.line_of(l.at),
                    format!("`cplx: bound` expression `{expr}` does not parse{VOCAB}"),
                ));
            }
            LoopBound::Missing => {
                stats.unbounded_loops += 1;
                findings.push(Finding::new(
                    "C01",
                    &file.rel,
                    file.line_of(l.at),
                    format!(
                        "unbounded `{}` on the query path{} — declare \
                         `// cplx: bound <expr> <why>`",
                        kind_name(l),
                        if l.driver.is_empty() {
                            String::new()
                        } else {
                            format!(" (driver `{}`)", l.driver)
                        }
                    ),
                ));
            }
        }
    }
}

/// Display name of a loop construct.
fn kind_name(l: &LoopSite) -> &'static str {
    match l.kind {
        LoopKind::For => "for",
        LoopKind::WhileLet => "while let",
        LoopKind::While => "while",
        LoopKind::Loop => "loop",
    }
}

/// The lexical nest product at loop `li`: its own bound times every
/// ancestor's.
fn nest_bound(sm: &Summaries, li: usize) -> Bound {
    let mut b = sm.loops[li].bound.bound();
    let mut cur = sm.loops[li].parent;
    while let Some(p) = cur {
        b = times(&b, &sm.loops[p].bound.bound());
        cur = sm.loops[p].parent;
    }
    b
}

/// C02: no `D·D` / `C·D` product on the query path, anchored at the
/// loop or call that creates it.
fn c02_no_pairwise(
    ws: &Workspace,
    sm: &Summaries,
    sites: &[Vec<(usize, usize)>],
    composed: &[Bound],
    id: usize,
    findings: &mut Vec<Finding>,
) {
    let f = &ws.fns[id];
    let file = &ws.files[f.file];
    let fl = &sm.fns[id];

    // An amortization axiom replaces the function's internal nests, but
    // the declared bound itself must respect the recurrence.
    if let Some((axiom, _)) = &fl.axiom {
        if let Some(t) = axiom.0.iter().find(|p| p.is_forbidden_pairwise()) {
            findings.push(Finding::new(
                "C02",
                &file.rel,
                f.line,
                format!(
                    "declared bound {} on `{}` contains the forbidden pairwise product `{}`",
                    axiom.render(),
                    ws.display(id),
                    t.render()
                ),
            ));
        }
        return;
    }

    // Lexical nests, anchored at the innermost loop that completes the
    // forbidden product.
    for &li in &fl.loops {
        let l = &sm.loops[li];
        if !l.live {
            continue;
        }
        let nest = nest_bound(sm, li);
        let parent_ok =
            l.parent.map(|p| !nest_bound(sm, p).any(|t| t.is_forbidden_pairwise())).unwrap_or(true);
        if parent_ok {
            if let Some(t) = nest.0.iter().find(|p| p.is_forbidden_pairwise()) {
                findings.push(Finding::new(
                    "C02",
                    &file.rel,
                    file.line_of(l.at),
                    format!(
                        "loop nest composes the forbidden pairwise product `{}` — the paper's \
                         recurrence admits no corpus-quadratic work on the query path",
                        t.render()
                    ),
                ));
            }
        }
    }

    // Cross-function: a loop context multiplied by a confident callee's
    // composed bound. Skipped when either factor is already forbidden —
    // the finding anchors where the product is *created*.
    for &(at, target) in &sites[id] {
        let Some(li) = enclosing_loop(sm, fl, at) else { continue };
        if !sm.loops[li].live {
            continue;
        }
        let ctx = nest_bound(sm, li);
        if ctx.any(|t| t.is_forbidden_pairwise())
            || composed[target].any(|t| t.is_forbidden_pairwise())
        {
            continue;
        }
        let product = times(&ctx, &composed[target]);
        if let Some(t) = product.0.iter().find(|p| p.is_forbidden_pairwise()) {
            findings.push(Finding::new(
                "C02",
                &file.rel,
                file.line_of(at),
                format!(
                    "call to `{}` ({}) inside an {} nest composes the forbidden pairwise \
                     product `{}`",
                    ws.display(target),
                    composed[target].render(),
                    ctx.render(),
                    t.render()
                ),
            ));
        }
    }
}

/// C03: the differential asymptotic claim over the root bounds.
fn c03_differential(
    ws: &Workspace,
    seeds: &[usize],
    composed: &[Bound],
    stats: &mut RuleStats,
    findings: &mut Vec<Finding>,
) {
    for &id in seeds {
        let f = &ws.fns[id];
        let file = &ws.files[f.file];
        let b = &composed[id];
        let quadratic = b.any(|t| t.is_ta_quadratic());
        if quadratic {
            stats.c03_quadratic_roots += 1;
        }
        if f.module == "dradix::dag" && f.name == "build_into" {
            let recognized = b.any(|t| t.count(Atom::P) >= 1 && t.count(Atom::Log) >= 1)
                && !b.any(|t| {
                    t.count(Atom::C) > 0 || t.count(Atom::D) > 0 || t.count(Atom::Unk) > 0
                });
            stats.c03_dradix_path = b.render();
            stats.c03_dradix_recognized = recognized;
            if !recognized {
                findings.push(Finding::new(
                    "C03",
                    &file.rel,
                    f.line,
                    format!(
                        "the D-Radix distance path composes to {} — not recognizably \
                         O((|Pq|+|Pd|)·log): it needs a P·log term and no C, D, or untyped \
                         factor",
                        b.render()
                    ),
                ));
            }
        } else if f.module == "knds::ta" {
            stats.c03_ta_path = b.render();
            if !quadratic {
                findings.push(Finding::new(
                    "C03",
                    &file.rel,
                    f.line,
                    format!(
                        "the TA baseline composes to {} without the pairwise nq·D product — \
                         the differential contrast against the D-Radix path is vacuous",
                        b.render()
                    ),
                ));
            }
        } else if quadratic {
            findings.push(Finding::new(
                "C03",
                &file.rel,
                f.line,
                format!(
                    "root `{}` composes to {} carrying the pairwise nq·D product — only the \
                     TA baseline is allowed the paper's O(nq·nd) shape",
                    ws.display(id),
                    b.render()
                ),
            ));
        }
    }
}

/// C04: sized-table capacity dominates the loop nest filling it.
fn c04_sized_capacity(ws: &Workspace, sm: &Summaries, id: usize, findings: &mut Vec<Finding>) {
    let f = &ws.fns[id];
    let file = &ws.files[f.file];
    for site in &sm.fns[id].sized {
        if !sm.loops[site.in_loop].live {
            continue;
        }
        let nest = nest_bound(sm, site.in_loop);
        match &site.capacity {
            None => {
                findings.push(Finding::new(
                    "C04",
                    &file.rel,
                    file.line_of(site.at),
                    format!(
                        "sized table `{}` has no symbolic capacity — add the identifier to \
                         the lexical environment or a `// cplx: cap <expr>` directive",
                        site.receiver
                    ),
                ));
            }
            Some(cap) => {
                let dominated = nest
                    .0
                    .iter()
                    .all(|t| t.count(Atom::Unk) > 0 || cap.0.iter().any(|c| c.dominates(t)));
                if !dominated {
                    findings.push(Finding::new(
                        "C04",
                        &file.rel,
                        file.line_of(site.at),
                        format!(
                            "`{}` is sized {} but filled by an {} loop nest — the \
                             `bound: sized` capacity does not dominate the writes",
                            site.receiver,
                            cap.render(),
                            nest.render()
                        ),
                    ));
                }
            }
        }
    }
}

/// C05: counter markers and bump calls stay in sync.
fn c05_counter_hooks(
    ws: &Workspace,
    sm: &Summaries,
    id: usize,
    stats: &mut RuleStats,
    findings: &mut Vec<Finding>,
) {
    let f = &ws.fns[id];
    let file = &ws.files[f.file];
    let fl = &sm.fns[id];
    for &li in &fl.loops {
        let l = &sm.loops[li];
        let Some(name) = &l.counter else { continue };
        if !l.live {
            continue;
        }
        stats.c05_counters += 1;
        let bumped = fl
            .bumps
            .iter()
            .any(|b| &b.name == name && b.in_loop.is_some_and(|bl| ancestor_of(sm, li, bl)));
        if !bumped {
            findings.push(Finding::new(
                "C05",
                &file.rel,
                file.line_of(l.at),
                format!(
                    "loop is marked `cplx: counter {name}` but never calls \
                     `counters::bump_{name}` in its body — the dynamic cross-validation \
                     would measure nothing"
                ),
            ));
        }
    }
    for b in &fl.bumps {
        // A bump links to its marker through any enclosing loop.
        let marked = b.in_loop.is_some_and(|bl| {
            let mut cur = Some(bl);
            while let Some(li) = cur {
                if sm.loops[li].counter.as_deref() == Some(b.name.as_str()) {
                    return true;
                }
                cur = sm.loops[li].parent;
            }
            false
        });
        if !marked {
            findings.push(Finding::new(
                "C05",
                &file.rel,
                file.line_of(b.at),
                format!(
                    "`bump_{}` outside a loop marked `cplx: counter {}` — mark the measured \
                     loop so the static bound and the counter stay linked",
                    b.name, b.name
                ),
            ));
        }
    }
}

/// True when loop `anc` is `li` itself or an ancestor of `li`.
fn ancestor_of(sm: &Summaries, anc: usize, mut li: usize) -> bool {
    loop {
        if li == anc {
            return true;
        }
        match sm.loops[li].parent {
            Some(p) => li = p,
            None => return false,
        }
    }
}
