//! Graphviz (DOT) export of ontology neighborhoods.
//!
//! The paper communicates its structures with DAG drawings (Figures 2–5);
//! this module renders the same pictures from live data. Because real
//! ontologies are far too large to draw whole, the export takes a set of
//! *focus* concepts and a radius and renders the valid-path neighborhood,
//! with document concepts drawn as boxes and query concepts as triangles —
//! the paper's Figure 3/5 conventions.

use crate::distance::multi_source_distances;
use crate::graph::Ontology;
use crate::id::ConceptId;
use std::fmt::Write as _;

/// Rendering options.
#[derive(Debug, Clone, Default)]
pub struct DotOptions {
    /// Concepts drawn as boxes (the paper's "document concepts").
    pub boxes: Vec<ConceptId>,
    /// Concepts drawn as triangles (the paper's "query concepts").
    pub triangles: Vec<ConceptId>,
    /// Hard cap on rendered nodes (0 = no cap). Nodes are kept nearest to
    /// the focus first.
    pub max_nodes: usize,
}

/// Renders the valid-path neighborhood of `focus` within `radius` as DOT.
///
/// The subgraph contains every concept whose valid-path distance from some
/// focus concept is at most `radius`, plus all edges among them. Output is
/// deterministic (nodes in id order).
pub fn neighborhood_dot(
    ont: &Ontology,
    focus: &[ConceptId],
    radius: u32,
    opts: &DotOptions,
) -> String {
    let dist = multi_source_distances(ont, focus);
    let mut members: Vec<ConceptId> =
        ont.concepts().filter(|c| dist[c.index()] <= radius).collect();
    members.sort_by_key(|c| (dist[c.index()], c.0));
    if opts.max_nodes > 0 {
        members.truncate(opts.max_nodes);
    }
    let included: crate::FxHashSet<ConceptId> = members.iter().copied().collect();

    let mut out = String::from("digraph ontology {\n  rankdir=TB;\n  node [fontsize=10];\n");
    let mut sorted = members.clone();
    sorted.sort_unstable();
    for &c in &sorted {
        let shape = if opts.boxes.contains(&c) {
            "box"
        } else if opts.triangles.contains(&c) {
            "triangle"
        } else {
            "ellipse"
        };
        let _ = writeln!(out, "  c{} [label=\"{}\", shape={shape}];", c.0, escape(ont.label(c)));
    }
    for &c in &sorted {
        for &child in ont.children(c) {
            if included.contains(&child) {
                let _ = writeln!(out, "  c{} -> c{};", c.0, child.0);
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Escapes a string for use inside a DOT double-quoted label.
pub fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

pub(crate) use escape_label as escape;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture;

    #[test]
    fn renders_focus_neighborhood() {
        let fig = fixture::figure3();
        let opts = DotOptions {
            boxes: fig.example_document(),
            triangles: fig.example_query(),
            max_nodes: 0,
        };
        let dot = neighborhood_dot(&fig.ontology, &fig.example_query(), 2, &opts);
        assert!(dot.starts_with("digraph"));
        assert!(dot.ends_with("}\n"));
        // I is a focus; its parent G and children M, N are within radius 2.
        for name in ["I", "G", "M", "N", "U", "R", "L", "H"] {
            let id = fig.concept(name).0;
            assert!(dot.contains(&format!("c{id} [")), "node {name} missing:\n{dot}");
        }
        // Query concepts are triangles, document concepts boxes.
        let u = fig.concept("U").0;
        assert!(dot.contains(&format!("c{u} [label=\"U\", shape=triangle]")));
        let r = fig.concept("R").0;
        assert!(dot.contains(&format!("c{r} [label=\"R\", shape=box]")));
    }

    #[test]
    fn radius_limits_the_subgraph() {
        let fig = fixture::figure3();
        let opts = DotOptions::default();
        let small = neighborhood_dot(&fig.ontology, &[fig.concept("U")], 0, &opts);
        assert_eq!(small.matches("label=").count(), 1, "radius 0 keeps only the focus");
        let bigger = neighborhood_dot(&fig.ontology, &[fig.concept("U")], 3, &opts);
        assert!(bigger.matches("label=").count() > 1);
    }

    #[test]
    fn max_nodes_caps_output() {
        let fig = fixture::figure3();
        let opts = DotOptions { max_nodes: 3, ..Default::default() };
        let dot = neighborhood_dot(&fig.ontology, &[fig.concept("A")], 10, &opts);
        assert_eq!(dot.matches("label=").count(), 3);
    }

    #[test]
    fn labels_are_escaped() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn edges_only_between_included_nodes() {
        let fig = fixture::figure3();
        let dot = neighborhood_dot(&fig.ontology, &[fig.concept("U")], 1, &DotOptions::default());
        // Members: U (0), R (1). Only edge R -> U.
        let edge_count = dot.matches(" -> ").count();
        assert_eq!(edge_count, 1, "{dot}");
    }
}
