//! Documents as concept sets.

use cbr_ontology::ConceptId;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense identifier of a document within one [`Corpus`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct DocId(pub u32);

impl DocId {
    /// Returns the identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an identifier from a dense index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize, "document index overflow");
        DocId(index as u32)
    }
}

impl fmt::Debug for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// A document reduced to its concept set (Section 3.1), plus the token
/// count of the source text it came from (used only for the Table 3
/// statistics — the ranking algorithms never look at tokens).
///
/// Concepts are stored sorted and deduplicated; the paper's distance
/// definitions (Equations 1–3) treat documents as sets.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Document {
    id: DocId,
    concepts: Box<[ConceptId]>,
    token_count: u32,
}

/// Normalizes a raw concept list into the set representation every index
/// layer expects: sorted ascending, duplicates removed.
///
/// The paper's distance definitions (Equations 1–3) treat documents as
/// concept *sets*; this is the single place that turns an extraction
/// result into one. [`Document::new`], the dynamic overlay's append path,
/// and the segmented memtable all go through it, so a concept set is
/// normalized exactly once however it enters the system.
pub fn normalize_concepts(concepts: &mut Vec<ConceptId>) {
    concepts.sort_unstable();
    concepts.dedup();
}

impl Document {
    /// Creates a document, sorting and deduplicating `concepts`.
    pub fn new(id: DocId, mut concepts: Vec<ConceptId>, token_count: u32) -> Self {
        normalize_concepts(&mut concepts);
        Document { id, concepts: concepts.into_boxed_slice(), token_count }
    }

    /// The document identifier.
    #[inline]
    pub fn id(&self) -> DocId {
        self.id
    }

    /// The sorted, deduplicated concept set.
    #[inline]
    pub fn concepts(&self) -> &[ConceptId] {
        &self.concepts
    }

    /// Number of distinct concepts (`|C|` in Equation 3).
    #[inline]
    pub fn num_concepts(&self) -> usize {
        self.concepts.len()
    }

    /// Token count of the source text.
    #[inline]
    pub fn token_count(&self) -> u32 {
        self.token_count
    }

    /// Whether the document contains `c` (binary search).
    pub fn contains(&self, c: ConceptId) -> bool {
        self.concepts.binary_search(&c).is_ok()
    }

    /// Returns a copy with only the concepts accepted by `keep`. The id and
    /// token count are preserved.
    pub fn retained(&self, mut keep: impl FnMut(ConceptId) -> bool) -> Document {
        Document {
            id: self.id,
            concepts: self.concepts.iter().copied().filter(|&c| keep(c)).collect(),
            token_count: self.token_count,
        }
    }
}

/// An immutable collection of documents with dense ids.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Corpus {
    documents: Vec<Document>,
}

impl Corpus {
    /// Creates a corpus, asserting that document ids are dense (`0..n`).
    pub fn new(documents: Vec<Document>) -> Self {
        for (i, d) in documents.iter().enumerate() {
            assert_eq!(d.id().index(), i, "document ids must be dense and ordered");
        }
        Corpus { documents }
    }

    /// Builds a corpus from raw concept sets, assigning dense ids in order.
    pub fn from_concept_sets(sets: Vec<(Vec<ConceptId>, u32)>) -> Self {
        let documents = sets
            .into_iter()
            .enumerate()
            .map(|(i, (concepts, tokens))| Document::new(DocId::from_index(i), concepts, tokens))
            .collect();
        Corpus { documents }
    }

    /// Number of documents.
    #[inline]
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// Whether the corpus has no documents.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// The document with id `id`.
    #[inline]
    pub fn get(&self, id: DocId) -> &Document {
        &self.documents[id.index()]
    }

    /// Iterator over all documents.
    pub fn documents(&self) -> impl ExactSizeIterator<Item = &Document> {
        self.documents.iter()
    }

    /// Iterator over all document ids.
    pub fn doc_ids(&self) -> impl ExactSizeIterator<Item = DocId> {
        (0..self.documents.len()).map(DocId::from_index)
    }

    /// How many documents each concept appears in (collection frequency),
    /// as a map from concept to count.
    pub fn concept_frequencies(&self) -> cbr_ontology::FxHashMap<ConceptId, u32> {
        let mut freq = cbr_ontology::FxHashMap::default();
        for d in &self.documents {
            for &c in d.concepts() {
                *freq.entry(c).or_insert(0) += 1;
            }
        }
        freq
    }

    /// Returns a corpus in which every document keeps only the concepts
    /// accepted by `keep`. Documents that become empty are retained (they
    /// simply never match anything), preserving id stability.
    pub fn retained(&self, mut keep: impl FnMut(ConceptId) -> bool) -> Corpus {
        Corpus { documents: self.documents.iter().map(|d| d.retained(&mut keep)).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: u32) -> ConceptId {
        ConceptId(v)
    }

    #[test]
    fn normalize_concepts_sorts_and_dedups_in_place() {
        let mut set = vec![c(4), c(1), c(4), c(4), c(2)];
        normalize_concepts(&mut set);
        assert_eq!(set, vec![c(1), c(2), c(4)]);
        let mut empty: Vec<ConceptId> = Vec::new();
        normalize_concepts(&mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn document_sorts_and_dedups() {
        let d = Document::new(DocId(0), vec![c(3), c(1), c(3), c(2)], 10);
        assert_eq!(d.concepts(), &[c(1), c(2), c(3)]);
        assert_eq!(d.num_concepts(), 3);
        assert!(d.contains(c(2)));
        assert!(!d.contains(c(9)));
        assert_eq!(d.token_count(), 10);
    }

    #[test]
    fn retained_filters_concepts() {
        let d = Document::new(DocId(0), vec![c(1), c(2), c(3)], 5);
        let r = d.retained(|cc| cc != c(2));
        assert_eq!(r.concepts(), &[c(1), c(3)]);
        assert_eq!(r.id(), d.id());
        assert_eq!(r.token_count(), 5);
    }

    #[test]
    fn corpus_dense_ids() {
        let corpus = Corpus::from_concept_sets(vec![(vec![c(1)], 3), (vec![c(2), c(1)], 4)]);
        assert_eq!(corpus.len(), 2);
        assert_eq!(corpus.get(DocId(1)).concepts(), &[c(1), c(2)]);
        assert_eq!(corpus.doc_ids().collect::<Vec<_>>(), vec![DocId(0), DocId(1)]);
    }

    #[test]
    #[should_panic(expected = "dense and ordered")]
    fn corpus_rejects_sparse_ids() {
        Corpus::new(vec![Document::new(DocId(5), vec![], 0)]);
    }

    #[test]
    fn concept_frequencies_count_documents_not_occurrences() {
        let corpus = Corpus::from_concept_sets(vec![
            (vec![c(1), c(1), c(2)], 0), // c1 duplicated within the doc
            (vec![c(1)], 0),
        ]);
        let freq = corpus.concept_frequencies();
        assert_eq!(freq[&c(1)], 2);
        assert_eq!(freq[&c(2)], 1);
    }

    #[test]
    fn corpus_retained_keeps_empty_documents() {
        let corpus = Corpus::from_concept_sets(vec![(vec![c(1)], 0), (vec![c(2)], 0)]);
        let filtered = corpus.retained(|cc| cc == c(2));
        assert_eq!(filtered.len(), 2);
        assert_eq!(filtered.get(DocId(0)).num_concepts(), 0);
        assert_eq!(filtered.get(DocId(1)).num_concepts(), 1);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_roundtrip() {
        let corpus = Corpus::from_concept_sets(vec![(vec![c(1), c(3)], 7)]);
        let bytes = cbr_ontology::ser::to_tokens(&corpus).unwrap();
        let back: Corpus = cbr_ontology::ser::from_tokens(&bytes).unwrap();
        assert_eq!(back.get(DocId(0)), corpus.get(DocId(0)));
    }
}
