//! Seeded-violation fixture for cbr-flow. Parsed, never compiled.
//!
//! The free `rds_with` matches the `knds::ta::rds_with` root spec; it
//! seeds one F01 (materializing collect) and one F04 (unwrap).

use crate::engine::Workspace;

pub fn rds_with(ws: &mut Workspace, q: &[u32], k: usize) -> u32 {
    ws.scratch.clear();
    let sorted: Vec<u32> = q.iter().copied().collect(); // seeded: F01
    let top = sorted.first().unwrap(); // seeded: F04
    top + k as u32
}
