//! Immutable CSR segments: the building block of the segmented index.
//!
//! A [`Segment`] covers one contiguous range of document ids and stores
//! both access directions in compressed-sparse-row form, exactly like the
//! full [`InvertedIndex`](crate::InvertedIndex)/[`ForwardIndex`](crate::ForwardIndex)
//! pair but scoped to its range. Unlike the full inverted index — whose
//! offset table is dense over every concept id the ontology knows — a
//! segment holds postings for the sorted *distinct* concepts that actually
//! occur in it, found by binary search. Small segments sealed from a
//! memtable touch a handful of concepts, so a dense 300k-entry offset
//! table per segment would dwarf the payload.
//!
//! Segments are never mutated after construction (the Navarro–Nekrich
//! static-structure discipline): appends go to a memtable that is sealed
//! into a *new* segment, deletes go to a side bitset, and compaction
//! *replaces* a run of segments with a freshly built merged one. Readers
//! therefore share segments freely behind `Arc` with no synchronization.

use crate::packing;
use cbr_corpus::DocId;
use cbr_ontology::ConceptId;

/// An immutable CSR index fragment over the contiguous document range
/// `[first_doc, first_doc + len)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Global id of the first document slot this segment covers.
    first_doc: u32,
    /// Forward CSR: `fwd_offsets[i]..fwd_offsets[i+1]` indexes the sorted
    /// concept set of local document `i`.
    fwd_offsets: Vec<u32>,
    fwd_concepts: Vec<ConceptId>,
    /// Inverted CSR over the sorted distinct concepts present in this
    /// segment: `inv_offsets[j]..inv_offsets[j+1]` indexes the ascending
    /// local postings of `inv_concepts[j]`.
    inv_concepts: Vec<ConceptId>,
    inv_offsets: Vec<u32>,
    inv_docs: Vec<u32>,
}

impl Segment {
    /// Builds a segment from normalized (sorted, deduplicated) concept
    /// sets, one per document slot starting at `first_doc`.
    pub fn from_docs<'a, I>(first_doc: u32, docs: I) -> Segment
    where
        I: IntoIterator<Item = &'a [ConceptId]>,
    {
        let mut fwd_offsets = vec![0u32];
        let mut fwd_concepts = Vec::new();
        for set in docs {
            debug_assert!(set.windows(2).all(|w| w[0] < w[1]), "concept set not normalized");
            fwd_concepts.extend_from_slice(set);
            fwd_offsets.push(packing::csr_offset(fwd_concepts.len()));
        }
        Segment::from_forward(first_doc, fwd_offsets, fwd_concepts)
    }

    /// Merges a contiguous run of segments into one, physically dropping
    /// every document `is_dead` says is tombstoned: its forward row
    /// becomes empty and it vanishes from every posting list, while its
    /// id slot stays covered so global ids never shift. Panics if the
    /// run's ranges are not adjacent in order.
    pub fn merge(parts: &[&Segment], mut is_dead: impl FnMut(DocId) -> bool) -> Segment {
        assert!(!parts.is_empty(), "cannot merge zero segments");
        let first_doc = parts[0].first_doc;
        let mut fwd_offsets = vec![0u32];
        let mut fwd_concepts = Vec::new();
        let mut next = first_doc;
        for part in parts {
            assert_eq!(part.first_doc, next, "merge run is not contiguous");
            for local in 0..part.len() {
                let id = DocId(part.first_doc + packing::narrow_u32(local));
                if !is_dead(id) {
                    fwd_concepts.extend_from_slice(part.concepts(local));
                }
                fwd_offsets.push(packing::csr_offset(fwd_concepts.len()));
            }
            next = part.doc_end();
        }
        Segment::from_forward(first_doc, fwd_offsets, fwd_concepts)
    }

    /// Builds the inverted half from a finished forward CSR. Linear in the
    /// payload: one dense concept→slot scratch table sized to the largest
    /// concept id present, then a counting fill (no comparison sort).
    fn from_forward(
        first_doc: u32,
        fwd_offsets: Vec<u32>,
        fwd_concepts: Vec<ConceptId>,
    ) -> Segment {
        let max_c = fwd_concepts.iter().map(|c| c.0 as usize).max();
        let mut slot_of = vec![u32::MAX; max_c.map_or(0, |m| m + 1)];
        for &c in &fwd_concepts {
            slot_of[c.0 as usize] = 0; // mark present
        }
        let mut inv_concepts = Vec::new();
        for (raw, slot) in slot_of.iter_mut().enumerate() {
            if *slot != u32::MAX {
                *slot = packing::narrow_u32(inv_concepts.len());
                inv_concepts.push(ConceptId(packing::narrow_u32(raw)));
            }
        }
        let mut counts = vec![0u32; inv_concepts.len()];
        for &c in &fwd_concepts {
            counts[slot_of[c.0 as usize] as usize] += 1;
        }
        let mut inv_offsets = Vec::with_capacity(inv_concepts.len() + 1);
        // Running sum in usize; each fence post narrows through the
        // checked CSR helper.
        let mut total = 0usize;
        inv_offsets.push(0);
        for &n in &counts {
            total += n as usize;
            inv_offsets.push(packing::csr_offset(total));
        }
        // Fill cursors; iterating documents in ascending local order keeps
        // every posting list sorted by construction.
        let mut cursor: Vec<u32> = inv_offsets[..inv_concepts.len()].to_vec();
        let mut inv_docs = vec![0u32; fwd_concepts.len()];
        for local in 0..fwd_offsets.len() - 1 {
            let (lo, hi) = (fwd_offsets[local] as usize, fwd_offsets[local + 1] as usize);
            for &c in &fwd_concepts[lo..hi] {
                let slot = slot_of[c.0 as usize] as usize;
                inv_docs[cursor[slot] as usize] = packing::narrow_u32(local);
                cursor[slot] += 1;
            }
        }
        Segment { first_doc, fwd_offsets, fwd_concepts, inv_concepts, inv_offsets, inv_docs }
    }

    /// Global id of the first covered document slot.
    #[inline]
    pub fn first_doc(&self) -> u32 {
        self.first_doc
    }

    /// One past the last covered document slot (global).
    #[inline]
    pub fn doc_end(&self) -> u32 {
        self.first_doc + packing::narrow_u32(self.len())
    }

    /// Number of document slots covered (including physically dropped
    /// ones, whose rows are empty).
    #[inline]
    pub fn len(&self) -> usize {
        self.fwd_offsets.len() - 1
    }

    /// Whether the segment covers no document slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether global document `d` falls in this segment's range.
    #[inline]
    pub fn contains(&self, d: DocId) -> bool {
        d.0 >= self.first_doc && d.0 < self.doc_end()
    }

    /// The sorted concept set of local document `local`.
    #[inline]
    pub fn concepts(&self, local: usize) -> &[ConceptId] {
        let (lo, hi) = (self.fwd_offsets[local] as usize, self.fwd_offsets[local + 1] as usize);
        &self.fwd_concepts[lo..hi]
    }

    /// Number of concepts of local document `local`.
    #[inline]
    pub fn doc_len(&self, local: usize) -> usize {
        (self.fwd_offsets[local + 1] - self.fwd_offsets[local]) as usize
    }

    /// The ascending *local* postings of `c` (empty when the concept does
    /// not occur in this segment). Binary search over the segment's
    /// distinct concepts.
    pub fn local_postings(&self, c: ConceptId) -> &[u32] {
        match self.inv_concepts.binary_search(&c) {
            Ok(j) => {
                let (lo, hi) = (self.inv_offsets[j] as usize, self.inv_offsets[j + 1] as usize);
                &self.inv_docs[lo..hi]
            }
            Err(_) => &[],
        }
    }

    /// Total postings stored (== total forward payload).
    #[inline]
    pub fn num_postings(&self) -> usize {
        self.fwd_concepts.len()
    }

    /// Number of distinct concepts occurring in this segment.
    #[inline]
    pub fn num_concepts(&self) -> usize {
        self.inv_concepts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: u32) -> ConceptId {
        ConceptId(v)
    }

    fn seg(first: u32, docs: &[&[ConceptId]]) -> Segment {
        Segment::from_docs(first, docs.iter().copied())
    }

    #[test]
    fn round_trips_forward_and_inverted() {
        let s = seg(10, &[&[c(1), c(7)], &[], &[c(7), c(9)]]);
        assert_eq!(s.first_doc(), 10);
        assert_eq!(s.doc_end(), 13);
        assert_eq!(s.len(), 3);
        assert_eq!(s.concepts(0), &[c(1), c(7)]);
        assert_eq!(s.concepts(1), &[] as &[ConceptId]);
        assert_eq!(s.doc_len(2), 2);
        assert_eq!(s.local_postings(c(7)), &[0, 2]);
        assert_eq!(s.local_postings(c(1)), &[0]);
        assert_eq!(s.local_postings(c(2)), &[] as &[u32]);
        assert_eq!(s.num_postings(), 4);
        assert_eq!(s.num_concepts(), 3);
        assert!(s.contains(DocId(12)));
        assert!(!s.contains(DocId(13)));
    }

    #[test]
    fn merge_concatenates_and_drops_dead_rows() {
        let a = seg(0, &[&[c(1)], &[c(2), c(3)]]);
        let b = seg(2, &[&[c(1), c(3)]]);
        let merged = Segment::merge(&[&a, &b], |d| d == DocId(1));
        assert_eq!(merged.first_doc(), 0);
        assert_eq!(merged.len(), 3);
        // The dead slot keeps its position but loses its payload.
        assert_eq!(merged.concepts(1), &[] as &[ConceptId]);
        assert_eq!(merged.concepts(2), &[c(1), c(3)]);
        assert_eq!(merged.local_postings(c(1)), &[0, 2]);
        assert_eq!(merged.local_postings(c(3)), &[2]);
        assert_eq!(merged.local_postings(c(2)), &[] as &[u32]);
    }

    #[test]
    #[should_panic(expected = "not contiguous")]
    fn merge_rejects_gaps() {
        let a = seg(0, &[&[c(1)]]);
        let b = seg(5, &[&[c(1)]]);
        let _ = Segment::merge(&[&a, &b], |_| false);
    }
}
