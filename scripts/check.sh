#!/usr/bin/env bash
# Canonical verification for the workspace: formatting, lints, the
# self-hosted audit (static rules A01-A06 + structural invariants), and
# tests. Run from the repository root. All four must pass before merging.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo run -q -p cbr-audit -- all
cargo test -q
