//! # concept-rank
//!
//! A production-grade reproduction of **“Efficient Concept-based Document
//! Ranking”** (Arvanitis, Wiley, Hristidis — EDBT 2014): top-k search over
//! documents modeled as sets of ontological concepts, as done for
//! Electronic Medical Records annotated with SNOMED-CT.
//!
//! The library answers the paper's two query types *exactly* and without
//! any distance precomputation:
//!
//! * **RDS** — *relevant document search*: given a set of query concepts,
//!   find the `k` documents minimizing the summed semantic distance from
//!   each query concept to its nearest document concept (Equation 2);
//! * **SDS** — *similar document search*: given a query document, find the
//!   `k` documents minimizing Melton's symmetric inter-patient distance
//!   (Equation 3).
//!
//! Under the hood: Dewey-addressed concept DAGs (`cbr-ontology`), the
//! D-Radix/DRC distance algorithm (`cbr-dradix`, Section 4) and the kNDS
//! branch-and-bound search (`cbr-knds`, Section 5).
//!
//! ## Quickstart
//!
//! ```
//! use concept_rank::{Engine, EngineBuilder};
//! use cbr_ontology::{GeneratorConfig, OntologyGenerator};
//! use cbr_corpus::{CorpusGenerator, CorpusProfile};
//!
//! // A synthetic SNOMED-like ontology and EMR corpus.
//! let ontology = OntologyGenerator::new(GeneratorConfig::small(2_000)).generate();
//! let corpus = CorpusGenerator::new(
//!     &ontology,
//!     CorpusProfile::radio_like().with_num_docs(100).with_mean_concepts(20.0),
//! )
//! .generate();
//!
//! let engine: Engine = EngineBuilder::new().build(ontology, corpus);
//!
//! // RDS: top-5 documents for a 2-concept query.
//! let q: Vec<_> = engine.ontology().concepts().filter(|&c| engine.eligible(c)).take(2).collect();
//! let hits = engine.rds(&q, 5).unwrap();
//! assert_eq!(hits.results.len(), 5);
//!
//! // SDS: top-5 documents most similar to document 0.
//! let sims = engine.sds_by_doc(cbr_corpus::DocId(0), 5).unwrap();
//! assert_eq!(sims.results[0].doc, cbr_corpus::DocId(0)); // itself, at distance 0
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod dynamic;
pub mod engine;
pub mod expansion;
pub mod explain;
#[cfg(feature = "serde")]
pub mod persist;
pub mod rerank;
pub mod service;
pub mod snapshot;

pub use batch::BatchKind;
pub use dynamic::DynamicSource;
pub use engine::{Engine, EngineBuilder, EngineError};
pub use expansion::ExpansionConfig;
pub use explain::{ConceptMatch, Explanation};
pub use rerank::{Measure, ScoredDoc};
pub use service::SharedEngine;
pub use snapshot::EngineSnapshot;

/// Commonly needed items in one import.
pub mod prelude {
    pub use crate::{Engine, EngineBuilder};
    pub use cbr_corpus::{Corpus, CorpusGenerator, CorpusProfile, DocId, Document};
    pub use cbr_knds::{KndsConfig, KndsWorkspace, QueryResult, RankedDoc};
    pub use cbr_ontology::{ConceptId, GeneratorConfig, Ontology, OntologyGenerator};
}

// Re-export the component crates for advanced use.
pub use cbr_corpus as corpus;
pub use cbr_dradix as dradix;
pub use cbr_index as index;
pub use cbr_knds as knds;
pub use cbr_ontology as ontology;
