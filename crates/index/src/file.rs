//! File-backed index image — the MySQL stand-in.
//!
//! The paper's measurements include the time spent fetching postings and
//! forward entries from a MySQL database (Section 6.1). [`FileSource`]
//! reproduces a disk-resident access path honestly: posting lists and
//! forward lists live in one flat file and every access issues a real
//! positioned read (`pread`), so the time the query engine attributes to
//! I/O is measured, not modeled. The two offset tables stay resident —
//! they are small and correspond to the database's primary-key index.
//!
//! Image layout (all little-endian):
//!
//! ```text
//! magic "CBRIDX1\0"                      8 bytes
//! num_concepts: u64                      8 bytes
//! num_docs: u64                          8 bytes
//! inv_offsets: (num_concepts+1) × u32
//! fwd_offsets: (num_docs+1) × u32
//! inv_docs:    total_postings × u32
//! fwd_concepts: total_forward × u32
//! ```

use crate::source::IndexSource;
use crate::{ForwardIndex, InvertedIndex};
use bytes::{BufMut, BytesMut};
use cbr_corpus::DocId;
use cbr_ontology::ConceptId;
use std::fs::File;
use std::io::{self, Read, Write};
use std::os::unix::fs::FileExt;
use std::path::Path;

const MAGIC: &[u8; 8] = b"CBRIDX1\0";

/// Disk-resident inverted + forward index image with `pread` access.
#[derive(Debug)]
pub struct FileSource {
    file: File,
    inv_offsets: Vec<u32>,
    fwd_offsets: Vec<u32>,
    /// Byte position of the postings data region.
    inv_data_pos: u64,
    /// Byte position of the forward data region.
    fwd_data_pos: u64,
}

impl FileSource {
    /// Serializes the two indexes into an image file at `path`.
    pub fn write_image(
        path: &Path,
        inverted: &InvertedIndex,
        forward: &ForwardIndex,
    ) -> io::Result<()> {
        let (inv_offsets, inv_docs) = inverted.parts();
        let (fwd_offsets, fwd_concepts) = forward.parts();

        let mut buf = BytesMut::with_capacity(
            24 + 4 * (inv_offsets.len() + fwd_offsets.len() + inv_docs.len() + fwd_concepts.len()),
        );
        buf.put_slice(MAGIC);
        buf.put_u64_le((inv_offsets.len() - 1) as u64);
        buf.put_u64_le((fwd_offsets.len() - 1) as u64);
        for &o in inv_offsets {
            buf.put_u32_le(o);
        }
        for &o in fwd_offsets {
            buf.put_u32_le(o);
        }
        for &d in inv_docs {
            buf.put_u32_le(d.0);
        }
        for &c in fwd_concepts {
            buf.put_u32_le(c.0);
        }
        let mut f = File::create(path)?;
        f.write_all(&buf)?;
        f.sync_all()
    }

    /// Opens an image, loading the offset tables and validating the header.
    pub fn open(path: &Path) -> io::Result<FileSource> {
        let mut file = File::open(path)?;
        let mut header = [0u8; 24];
        file.read_exact(&mut header)?;
        if &header[..8] != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad index image magic"));
        }
        let num_concepts = u64::from_le_bytes(header[8..16].try_into().unwrap()) as usize;
        let num_docs = u64::from_le_bytes(header[16..24].try_into().unwrap()) as usize;

        let read_u32s = |file: &mut File, n: usize| -> io::Result<Vec<u32>> {
            let mut raw = vec![0u8; n * 4];
            file.read_exact(&mut raw)?;
            Ok(raw.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect())
        };
        let inv_offsets = read_u32s(&mut file, num_concepts + 1)?;
        let fwd_offsets = read_u32s(&mut file, num_docs + 1)?;

        let inv_data_pos = 24 + 4 * (num_concepts + 1 + num_docs + 1) as u64;
        let fwd_data_pos = inv_data_pos + 4 * (*inv_offsets.last().unwrap() as u64);
        Ok(FileSource { file, inv_offsets, fwd_offsets, inv_data_pos, fwd_data_pos })
    }

    /// Positioned read of `count` u32 values at `pos`, appended to `out`.
    ///
    /// # Panics
    ///
    /// Panics if the file was truncated after `open` validated it — a
    /// corrupted store cannot answer queries meaningfully.
    fn read_values(&self, pos: u64, count: usize, out: &mut Vec<u32>) {
        if count == 0 {
            return;
        }
        let mut raw = vec![0u8; count * 4];
        self.file.read_exact_at(&mut raw, pos).expect("index image truncated while in use");
        out.extend(raw.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())));
    }
}

impl IndexSource for FileSource {
    fn postings(&self, c: ConceptId, out: &mut Vec<DocId>) {
        let i = c.index();
        if i + 1 >= self.inv_offsets.len() {
            return;
        }
        let lo = self.inv_offsets[i] as usize;
        let hi = self.inv_offsets[i + 1] as usize;
        let mut vals = Vec::new();
        self.read_values(self.inv_data_pos + 4 * lo as u64, hi - lo, &mut vals);
        out.extend(vals.into_iter().map(DocId));
    }

    fn doc_concepts(&self, d: DocId, out: &mut Vec<ConceptId>) {
        let i = d.index();
        assert!(i + 1 < self.fwd_offsets.len(), "document {d} not in index image");
        let lo = self.fwd_offsets[i] as usize;
        let hi = self.fwd_offsets[i + 1] as usize;
        let mut vals = Vec::new();
        self.read_values(self.fwd_data_pos + 4 * lo as u64, hi - lo, &mut vals);
        out.extend(vals.into_iter().map(ConceptId));
    }

    fn doc_len(&self, d: DocId) -> usize {
        let i = d.index();
        (self.fwd_offsets[i + 1] - self.fwd_offsets[i]) as usize
    }

    fn num_docs(&self) -> usize {
        self.fwd_offsets.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemorySource;
    use cbr_corpus::Corpus;

    fn corpus() -> Corpus {
        Corpus::from_concept_sets(vec![
            (vec![ConceptId(1), ConceptId(3)], 0),
            (vec![ConceptId(3), ConceptId(4)], 0),
            (vec![], 0),
        ])
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cbr-file-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn image_roundtrips_all_accesses() {
        let corpus = corpus();
        let mem = MemorySource::build(&corpus, 6);
        let path = tmp("roundtrip.idx");
        FileSource::write_image(&path, mem.inverted(), mem.forward()).unwrap();
        let fs = FileSource::open(&path).unwrap();

        assert_eq!(fs.num_docs(), mem.num_docs());
        for c in 0..6u32 {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            mem.postings(ConceptId(c), &mut a);
            fs.postings(ConceptId(c), &mut b);
            assert_eq!(a, b, "postings for concept {c}");
        }
        for d in corpus.doc_ids() {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            mem.doc_concepts(d, &mut a);
            fs.doc_concepts(d, &mut b);
            assert_eq!(a, b, "forward for {d}");
            assert_eq!(fs.doc_len(d), mem.doc_len(d));
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn rejects_bad_magic() {
        let path = tmp("badmagic.idx");
        std::fs::write(&path, b"NOTANIDXfollowed by junk that is long enough").unwrap();
        let err = FileSource::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn rejects_truncated_header() {
        let path = tmp("short.idx");
        std::fs::write(&path, b"CBRIDX1\0").unwrap();
        assert!(FileSource::open(&path).is_err());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn out_of_range_concept_reads_nothing() {
        let corpus = corpus();
        let mem = MemorySource::build(&corpus, 6);
        let path = tmp("oob.idx");
        FileSource::write_image(&path, mem.inverted(), mem.forward()).unwrap();
        let fs = FileSource::open(&path).unwrap();
        let mut out = Vec::new();
        fs.postings(ConceptId(999), &mut out);
        assert!(out.is_empty());
        std::fs::remove_file(path).unwrap();
    }
}
