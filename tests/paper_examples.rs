//! Every worked example of the paper, verified end to end through the
//! public API. These are the strongest fidelity checks in the repository:
//! the expected values are printed in the paper itself.

use cbr_corpus::Corpus;
use cbr_dradix::{brute, Drc};
use cbr_knds::{Knds, KndsConfig};
use cbr_ontology::{concept_distance, fixture};
use concept_rank::EngineBuilder;

/// Section 3.2: `D(G, F)` is 5, not 2 — the 2-edge path through their
/// common *descendant* J is not a valid path.
#[test]
fn section_3_2_valid_path_distance() {
    let fig = fixture::figure3();
    let pt = fig.ontology.path_table();
    assert_eq!(concept_distance(pt, fig.concept("G"), fig.concept("F")), 5);
    assert_eq!(concept_distance(pt, fig.concept("F"), fig.concept("G")), 5);
}

/// Example 1: for d = {F,R,T,V} and q = {I,L,U},
/// `Ddq(d, q) = Ddc(d,I) + Ddc(d,L) + Ddc(d,U) = 4 + 2 + 1 = 7`.
#[test]
fn example_1_distances() {
    let fig = fixture::figure3();
    let mut drc = Drc::new(&fig.ontology);
    let d = fig.example_document();
    let q = fig.example_query();
    assert_eq!(drc.document_query_distance(&d, &q), 7);
    assert_eq!(brute::document_query_distance(&fig.ontology, &d, &q), 7);
}

/// Example 3: a parallel BFS from q = {I, L, U} finds, at depth 1, that R
/// (contained in d) covers U; hence `Ddc(d, U) = 1` while the other two
/// query nodes still have lower bound 2.
#[test]
fn example_3_first_touch() {
    let fig = fixture::figure3();
    let pt = fig.ontology.path_table();
    let d = fig.example_document();
    assert_eq!(cbr_ontology::document_concept_distance(pt, &d, fig.concept("U")), 1);
    assert!(cbr_ontology::document_concept_distance(pt, &d, fig.concept("I")) >= 2);
    assert!(cbr_ontology::document_concept_distance(pt, &d, fig.concept("L")) >= 2);
}

/// Example 4's setup: an RDS query q = {F, I} with k = 2 over a small
/// collection terminates early and returns exact results. The paper's toy
/// collection contents are not published, so we verify the invariants on
/// our own collection over the same ontology.
#[test]
fn example_4_early_termination_invariants() {
    let fig = fixture::figure3();
    let c = |n: &str| fig.concept(n);
    // Six documents echoing the flavor of Table 2's d1..d6.
    let corpus = Corpus::from_concept_sets(vec![
        (vec![c("D"), c("M")], 0),
        (vec![c("F"), c("I")], 0),
        (vec![c("J"), c("N")], 0),
        (vec![c("T"), c("C")], 0),
        (vec![c("V"), c("L")], 0),
        (vec![c("G"), c("H")], 0),
    ]);
    let source = cbr_index::MemorySource::build(&corpus, fig.ontology.len());
    let q = vec![c("F"), c("I")];

    let knds = Knds::new(&fig.ontology, &source, KndsConfig::default().with_error_threshold(1.0));
    let fast = knds.rds(&q, 2);
    let slow = cbr_knds::baseline::rds(&fig.ontology, &source, &q, 2);
    assert_eq!(fast.results[0].distance, slow.results[0].distance);
    assert_eq!(fast.results[1].distance, slow.results[1].distance);
    // d2 = {F, I} matches exactly.
    assert_eq!(fast.results[0].doc, cbr_corpus::DocId(1));
    assert_eq!(fast.results[0].distance, 0.0);
    // Early termination: not every document was examined.
    assert!(
        fast.metrics.docs_examined < corpus.len(),
        "kNDS examined {} of {}",
        fast.metrics.docs_examined,
        corpus.len()
    );
}

/// Figure 5(g): the tuned D-Radix distances of the running example —
/// checked through the public DAG API.
#[test]
fn figure_5g_tuned_distances() {
    let fig = fixture::figure3();
    let drc = Drc::new(&fig.ontology);
    let dag = drc.build_dag(&fig.example_document(), &fig.example_query());
    // Query-node doc-distances: I=4, L=2, U=1 (the Example 1 numbers).
    assert_eq!(dag.doc_distance(fig.concept("I")), Some(4));
    assert_eq!(dag.doc_distance(fig.concept("L")), Some(2));
    assert_eq!(dag.doc_distance(fig.concept("U")), Some(1));
    // Document-node query-distances.
    assert_eq!(dag.query_distance(fig.concept("F")), Some(2));
    assert_eq!(dag.query_distance(fig.concept("R")), Some(1));
    assert_eq!(dag.query_distance(fig.concept("T")), Some(4));
}

/// The engine facade reproduces Example 1 through labels.
#[test]
fn engine_reproduces_example_1() {
    let fig = fixture::figure3();
    let d = fig.example_document();
    let corpus = Corpus::from_concept_sets(vec![(d, 0)]);
    let engine = EngineBuilder::new().build(fig.ontology, corpus);
    let r = engine.rds_by_labels(&["I", "L", "U"], 1).expect("labels resolve");
    assert_eq!(r.results[0].distance, 7.0);
}
