//! Property: the complexity analysis is independent of file collection
//! order.
//!
//! Loop summaries, the composed per-function bounds, root matching, and
//! the C-rule findings must be byte-identical however the source walker
//! happens to order the files — the allowlist ratchet depends on exact
//! counts, so any order sensitivity would make the gate flaky.

use cbr_flow::graph::CrateDeps;
use cbr_flow::scanner::SourceFile;
use proptest::prelude::*;

const SNAP: &str = include_str!("../fixtures/crates/core/src/snapshot.rs");
const ENGINE: &str = include_str!("../fixtures/crates/knds/src/engine.rs");
const TA: &str = include_str!("../fixtures/crates/knds/src/ta.rs");
const WEIGHTED: &str = include_str!("../fixtures/crates/knds/src/weighted.rs");
const DAG: &str = include_str!("../fixtures/crates/dradix/src/dag.rs");

const FILES: [(&str, &str); 5] = [
    ("crates/core/src/snapshot.rs", SNAP),
    ("crates/knds/src/engine.rs", ENGINE),
    ("crates/knds/src/ta.rs", TA),
    ("crates/knds/src/weighted.rs", WEIGHTED),
    ("crates/dradix/src/dag.rs", DAG),
];

type Keyed = (Vec<(String, String, usize, String)>, usize, usize, String, String);

/// Decodes `k < 5!` into the `k`-th permutation of `0..5`.
fn nth_permutation(mut k: usize) -> [usize; 5] {
    let mut pool: Vec<usize> = (0..5).collect();
    let mut out = [0usize; 5];
    for (slot, fact) in out.iter_mut().zip([24usize, 6, 2, 1, 1]) {
        *slot = pool.remove(k / fact);
        k %= fact;
    }
    out
}

fn run_in_order(order: &[usize; 5]) -> Keyed {
    let sources: Vec<SourceFile> =
        order.iter().map(|&i| SourceFile::parse(FILES[i].0, FILES[i].1)).collect();
    let cr = cbr_cplx::analyze(sources, "", "cplx.allow", &CrateDeps::default());
    let mut keyed: Vec<_> = cr
        .report
        .findings
        .iter()
        .map(|f| (f.rule.clone(), f.file.clone(), f.line, f.message.clone()))
        .collect();
    keyed.sort();
    (
        keyed,
        cr.stats.proof.reachable_fns,
        cr.stats.proof.reachable_loops,
        cr.stats.proof.c03_dradix_path.clone(),
        cr.stats.proof.c03_ta_path.clone(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn analysis_is_permutation_stable(k in 0usize..120) {
        let baseline = run_in_order(&nth_permutation(0));
        prop_assert!(!baseline.0.is_empty(), "fixture findings must be non-empty");
        prop_assert_eq!(baseline, run_in_order(&nth_permutation(k)));
    }
}
