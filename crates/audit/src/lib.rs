//! `cbr-audit`: self-hosted static analysis and structural-invariant
//! audit for the concept-rank workspace.
//!
//! Two halves, one binary:
//!
//! * **Lint** ([`run_lint`]) — token-level rules `A01`–`A07` over every
//!   workspace source and manifest, filtered through the checked-in
//!   `audit.allow` ratchet. No external parser: the build environment is
//!   offline, so the scanner is ~300 lines of hand-rolled lexing that
//!   understands exactly what the rules need (comments, literals,
//!   `#[cfg(test)]` and `#[cfg(feature = "serde")]` regions).
//! * **Invariants** ([`invariants::run`]) — every `validate()` in the
//!   workspace (ontology graph + Dewey paths, forward/inverted index
//!   pair, tuned D-Radix DAGs with brute-force spot checks), corruption
//!   injection to prove the validators catch what they claim to, snapshot
//!   frame round-trip hashing, and a deterministic stress of the
//!   `SharedEngine` workspace pool.
//!
//! ```sh
//! cargo run -p cbr-audit -- all          # lint + invariants
//! cargo run -p cbr-audit -- lint --json  # machine-readable report
//! ```
//!
//! The binary exits non-zero when any finding survives the allowlist, so
//! `scripts/check.sh` can gate merges on it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allowlist;
pub mod invariants;
pub mod report;
pub mod rules;
pub mod scanner;

use report::Report;
use scanner::SourceFile;
use std::path::{Path, PathBuf};

/// The workspace root, resolved from this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/audit sits two levels under the workspace root")
        .to_path_buf()
}

/// Source directories the lint walks, relative to the workspace root.
/// `vendor/` is excluded: third-party placeholder code is not ours to
/// lint (its manifests still go through A06).
const SOURCE_ROOTS: [&str; 4] = ["src", "crates", "tests", "examples"];

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name != "target" && !name.starts_with('.') {
                walk_rs(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Loads and scans every workspace source file.
pub fn collect_sources(root: &Path) -> Vec<SourceFile> {
    let mut paths = Vec::new();
    for sub in SOURCE_ROOTS {
        walk_rs(&root.join(sub), &mut paths);
    }
    paths
        .into_iter()
        .filter_map(|p| {
            let rel = p.strip_prefix(root).ok()?.to_str()?.to_string();
            let text = std::fs::read_to_string(&p).ok()?;
            Some(SourceFile::parse(&rel, &text))
        })
        .collect()
}

/// Workspace manifests: root, member crates, and the vendored stubs
/// (which must also never grow registry dependencies).
pub fn collect_manifests(root: &Path) -> Vec<(String, String)> {
    let mut rels = vec!["Cargo.toml".to_string()];
    for sub in ["crates", "vendor"] {
        if let Ok(entries) = std::fs::read_dir(root.join(sub)) {
            let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
            dirs.sort();
            for d in dirs {
                let m = d.join("Cargo.toml");
                if m.is_file() {
                    if let Ok(rel) = m.strip_prefix(root) {
                        rels.push(rel.to_string_lossy().into_owned());
                    }
                }
            }
        }
    }
    rels.into_iter()
        .filter_map(|rel| {
            let text = std::fs::read_to_string(root.join(&rel)).ok()?;
            Some((rel, text))
        })
        .collect()
}

/// Runs the lint half: all rules over all sources and manifests, with
/// `audit.allow` applied.
pub fn run_lint(root: &Path) -> Report {
    let files = collect_sources(root);
    let mut findings = rules::run_source_rules(&files);
    for (rel, text) in collect_manifests(root) {
        findings.extend(rules::a06_no_registry_deps(&rel, &text));
    }

    let allow_content = std::fs::read_to_string(root.join("audit.allow")).unwrap_or_default();
    let (entries, mut parse_errors) = allowlist::parse(&allow_content);
    let mut findings = allowlist::apply(findings, &entries);
    findings.append(&mut parse_errors);

    let mut report = Report { findings, passed: Vec::new() };
    if report.ok() {
        for rule in ["A01", "A02", "A03", "A04", "A05", "A06", "A07"] {
            report.passed.push(format!("lint {rule} ({} files)", files.len()));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The audit must be silent on its own tree: every rule passes on the
    /// current sources modulo the checked-in allowlist.
    #[test]
    fn current_tree_is_clean() {
        let report = run_lint(&workspace_root());
        assert!(report.ok(), "lint findings on the current tree:\n{}", report.render_text());
    }

    #[test]
    fn collectors_find_the_workspace() {
        let root = workspace_root();
        let files = collect_sources(&root);
        assert!(files.iter().any(|f| f.rel == "crates/knds/src/engine.rs"));
        assert!(files.iter().any(|f| f.rel == "src/lib.rs"));
        assert!(!files.iter().any(|f| f.rel.starts_with("vendor/")));
        let manifests = collect_manifests(&root);
        assert!(manifests.iter().any(|(rel, _)| rel == "Cargo.toml"));
        assert!(manifests.iter().any(|(rel, _)| rel == "vendor/serde/Cargo.toml"));
    }
}
