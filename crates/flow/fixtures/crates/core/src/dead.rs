//! Seeded-violation fixture for cbr-flow. Parsed, never compiled.
//!
//! Nothing in the fixture tree reaches or mentions this export.

pub fn forgotten_helper() -> u32 { // seeded: F05
    7
}
