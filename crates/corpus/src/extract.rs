//! Dictionary-based concept extraction — the MetaMap stand-in.
//!
//! Section 6.1 of the paper links clinical notes to SNOMED-CT in three
//! steps: expand abbreviations from a public list, identify concept
//! mentions with MetaMap, and drop mentions with negative polarity
//! (domain experts consider negated concepts irrelevant for inter-patient
//! similarity). [`ConceptExtractor`] reproduces that pipeline
//! deterministically:
//!
//! 1. **tokenize** — lowercase alphanumeric word tokens; sentence
//!    boundaries are retained as marker tokens so negation never leaks
//!    across sentences;
//! 2. **expand abbreviations** — a configurable short-form → long-form
//!    table applied at the token level;
//! 3. **match** — greedy longest-match lookup of token n-grams against the
//!    lexicon built from ontology concept labels (plus registered
//!    synonyms);
//! 4. **polarity** — a mention within `negation_window` tokens after a
//!    negation trigger (`no`, `denies`, `without`, `absence`, …) in the
//!    same sentence is [`Polarity::Negative`] and excluded from the
//!    document's concept set.

use crate::document::{DocId, Document};
use cbr_ontology::{ConceptId, FxHashMap, Ontology};

/// Polarity of a concept mention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Polarity {
    /// Asserted mention; contributes to the document's concept set.
    Positive,
    /// Negated mention ("absence of bradycardia"); excluded per the paper.
    Negative,
}

/// One recognized concept mention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mention {
    /// The matched concept.
    pub concept: ConceptId,
    /// Token offset of the first matched token.
    pub start: usize,
    /// Number of tokens matched.
    pub len: usize,
    /// Whether the mention was negated.
    pub polarity: Polarity,
}

/// Extractor configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractorConfig {
    /// Tokens after a negation trigger within which a mention counts as
    /// negated (within the same sentence). MetaMap/NegEx-style windows are
    /// around 5 tokens.
    pub negation_window: usize,
    /// Whether abbreviation expansion runs before matching.
    pub expand_abbreviations: bool,
}

impl Default for ExtractorConfig {
    fn default() -> Self {
        ExtractorConfig { negation_window: 5, expand_abbreviations: true }
    }
}

/// Negation triggers recognized by the polarity pass.
const NEGATION_TRIGGERS: &[&str] = &["no", "not", "denies", "without", "absence", "negative"];

/// Sentence-boundary marker inserted by the tokenizer. Never matches a
/// lexicon entry (lexicon tokens are lowercase alphanumerics).
const BOUNDARY: &str = ".";

/// Dictionary matcher from text to ontology concepts.
#[derive(Debug)]
pub struct ConceptExtractor {
    /// Phrase (joined lowercase tokens) → concept.
    lexicon: FxHashMap<String, ConceptId>,
    /// Longest phrase length in tokens.
    max_phrase_len: usize,
    /// Short form (lowercase) → expansion tokens.
    abbreviations: FxHashMap<String, Vec<String>>,
    config: ExtractorConfig,
}

impl ConceptExtractor {
    /// Builds the lexicon from every concept label of `ont`.
    ///
    /// Labels colliding after normalization keep the first concept (ontology
    /// labels are unique, so this only matters for registered synonyms).
    pub fn new(ont: &Ontology, config: ExtractorConfig) -> Self {
        let mut lexicon = FxHashMap::default();
        let mut max_phrase_len = 1;
        for c in ont.concepts() {
            let tokens = tokenize(ont.label(c));
            let words: Vec<&str> = tokens.iter().map(|t| t.as_str()).collect();
            if words.is_empty() {
                continue;
            }
            max_phrase_len = max_phrase_len.max(words.len());
            lexicon.entry(words.join(" ")).or_insert(c);
        }
        ConceptExtractor { lexicon, max_phrase_len, abbreviations: FxHashMap::default(), config }
    }

    /// Registers a synonym phrase for a concept (e.g. "heart attack" for
    /// the concept labeled "myocardial infarction").
    pub fn add_synonym(&mut self, phrase: &str, concept: ConceptId) {
        let tokens = tokenize(phrase);
        if tokens.is_empty() {
            return;
        }
        self.max_phrase_len = self.max_phrase_len.max(tokens.len());
        self.lexicon.insert(tokens.join(" "), concept);
    }

    /// Registers an abbreviation (e.g. `"ccf"` → `"chronic cardiac
    /// finding"`), applied before matching when enabled.
    pub fn add_abbreviation(&mut self, short: &str, expansion: &str) {
        self.abbreviations.insert(short.to_ascii_lowercase(), tokenize(expansion));
    }

    /// Number of lexicon phrases.
    pub fn lexicon_size(&self) -> usize {
        self.lexicon.len()
    }

    /// Extracts all concept mentions from `text` with polarity.
    pub fn extract(&self, text: &str) -> Vec<Mention> {
        let mut tokens = tokenize_with_boundaries(text);
        if self.config.expand_abbreviations {
            tokens = self.expand(tokens);
        }

        // Token offsets (from the start of the *expanded* stream) of the
        // most recent negation trigger in the current sentence.
        let mut last_trigger: Option<usize> = None;
        let mut mentions = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let tok = &tokens[i];
            if tok == BOUNDARY {
                last_trigger = None;
                i += 1;
                continue;
            }
            if NEGATION_TRIGGERS.contains(&tok.as_str()) {
                last_trigger = Some(i);
                i += 1;
                continue;
            }

            // Greedy longest match starting at i.
            let mut matched = None;
            let upper = self.max_phrase_len.min(tokens.len() - i);
            for len in (1..=upper).rev() {
                let window = &tokens[i..i + len];
                if window.iter().any(|t| t == BOUNDARY) {
                    continue;
                }
                let key = window.join(" ");
                if let Some(&concept) = self.lexicon.get(&key) {
                    matched = Some((concept, len));
                    break;
                }
            }

            if let Some((concept, len)) = matched {
                let polarity = match last_trigger {
                    Some(t) if i - t <= self.config.negation_window => Polarity::Negative,
                    _ => Polarity::Positive,
                };
                mentions.push(Mention { concept, start: i, len, polarity });
                i += len;
            } else {
                i += 1;
            }
        }
        mentions
    }

    /// Extracts the positive concept set of `text` as a [`Document`].
    /// The token count excludes sentence-boundary markers.
    pub fn extract_document(&self, id: DocId, text: &str) -> Document {
        let mentions = self.extract(text);
        let concepts = mentions
            .iter()
            .filter(|m| m.polarity == Polarity::Positive)
            .map(|m| m.concept)
            .collect();
        let token_count = tokenize(text).len() as u32;
        Document::new(id, concepts, token_count)
    }

    fn expand(&self, tokens: Vec<String>) -> Vec<String> {
        let mut out = Vec::with_capacity(tokens.len());
        for t in tokens {
            match self.abbreviations.get(&t) {
                Some(exp) => out.extend(exp.iter().cloned()),
                None => out.push(t),
            }
        }
        out
    }
}

/// Lowercase alphanumeric word tokens (no boundary markers).
fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_ascii_lowercase())
        .collect()
}

/// Tokens plus `BOUNDARY` markers at sentence-ending punctuation.
fn tokenize_with_boundaries(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut word = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            word.push(ch.to_ascii_lowercase());
        } else {
            if !word.is_empty() {
                out.push(std::mem::take(&mut word));
            }
            if matches!(ch, '.' | ';' | '!' | '?' | '\n')
                && out.last().map(|t| t != BOUNDARY).unwrap_or(false)
            {
                out.push(BOUNDARY.to_string());
            }
        }
    }
    if !word.is_empty() {
        out.push(word);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbr_ontology::{GeneratorConfig, OntologyGenerator};

    fn fixture() -> (Ontology, ConceptExtractor) {
        let ont = OntologyGenerator::new(GeneratorConfig::small(200)).generate();
        let ex = ConceptExtractor::new(&ont, ExtractorConfig::default());
        (ont, ex)
    }

    #[test]
    fn matches_full_labels() {
        let (ont, ex) = fixture();
        let c = ont.concepts().nth(17).unwrap();
        let text = format!("assessment shows {} today", ont.label(c));
        let mentions = ex.extract(&text);
        assert!(mentions.iter().any(|m| m.concept == c && m.polarity == Polarity::Positive));
    }

    #[test]
    fn longest_match_wins() {
        // "severe cardiac stenosis" must not also fire shorter sub-phrases
        // if a full 3-token label exists.
        let (ont, ex) = fixture();
        let c = ont.concepts().nth(23).unwrap();
        let label = ont.label(c).to_string();
        let mentions = ex.extract(&label);
        assert_eq!(mentions.len(), 1, "one mention for {label:?}, got {mentions:?}");
        assert_eq!(mentions[0].concept, c);
        assert_eq!(mentions[0].len, label.split_whitespace().count());
    }

    #[test]
    fn negation_excludes_mention() {
        let (ont, ex) = fixture();
        let c = ont.concepts().nth(9).unwrap();
        let text = format!("absence of {}", ont.label(c));
        let mentions = ex.extract(&text);
        assert_eq!(mentions.len(), 1);
        assert_eq!(mentions[0].polarity, Polarity::Negative);

        let doc = ex.extract_document(DocId(0), &text);
        assert!(!doc.contains(c), "negated concept must not enter the document");
    }

    #[test]
    fn negation_does_not_cross_sentences() {
        let (ont, ex) = fixture();
        let c = ont.concepts().nth(9).unwrap();
        let text = format!("patient denies pain. {} present", ont.label(c));
        let mentions = ex.extract(&text);
        assert_eq!(mentions[0].polarity, Polarity::Positive);
    }

    #[test]
    fn negation_window_is_bounded() {
        let (ont, ex) = fixture();
        let c = ont.concepts().nth(9).unwrap();
        // 6 intervening tokens > default window of 5.
        let text = format!("no one two three four five six {}", ont.label(c));
        let mentions = ex.extract(&text);
        assert_eq!(mentions[0].polarity, Polarity::Positive);
    }

    #[test]
    fn abbreviations_expand_before_matching() {
        let (ont, mut ex) = fixture();
        let c = ont.concepts().nth(31).unwrap();
        let label = ont.label(c).to_string();
        let abbrev = crate::textgen::NoteGenerator::abbreviation(&label);
        ex.add_abbreviation(&abbrev, &label);
        let text = format!("assessment shows {abbrev} today");
        let doc = ex.extract_document(DocId(0), &text);
        assert!(doc.contains(c), "abbreviated mention of {label:?} must match");
    }

    #[test]
    fn synonyms_match() {
        let (ont, mut ex) = fixture();
        let c = ont.concepts().nth(5).unwrap();
        ex.add_synonym("heart attack", c);
        let doc = ex.extract_document(DocId(0), "history of heart attack");
        assert!(doc.contains(c));
    }

    #[test]
    fn roundtrip_with_note_generator() {
        // concepts -> note text -> extraction must recover exactly the
        // positive concepts (given registered abbreviations). Initials
        // collide across generated labels ("secondary skeletal
        // inflammation" / "subacute sinus insufficiency" are both "SSI"),
        // and `add_abbreviation` is last-writer-wins, so concepts with an
        // ambiguous abbreviation are genuinely unrecoverable whenever the
        // generator chooses the short form — exempt them instead of
        // relying on the render stream never abbreviating one.
        let ont = OntologyGenerator::new(GeneratorConfig::small(300)).generate();
        let mut ex = ConceptExtractor::new(&ont, ExtractorConfig::default());
        let mut abbr_owners: std::collections::HashMap<String, u32> =
            std::collections::HashMap::new();
        for c in ont.concepts() {
            let abbr = crate::textgen::NoteGenerator::abbreviation(ont.label(c));
            *abbr_owners.entry(abbr).or_insert(0) += 1;
        }
        for c in ont.concepts() {
            let label = ont.label(c).to_string();
            let abbr = crate::textgen::NoteGenerator::abbreviation(&label);
            if abbr_owners[&abbr] == 1 {
                ex.add_abbreviation(&abbr, &label);
            }
        }
        let unambiguous = |c: ConceptId| {
            abbr_owners[&crate::textgen::NoteGenerator::abbreviation(ont.label(c))] == 1
        };
        let gen = crate::textgen::NoteGenerator::new(&ont, 11);
        let concepts: Vec<ConceptId> = ont.concepts().skip(40).step_by(7).take(10).collect();
        let distractors: Vec<ConceptId> = ont.concepts().skip(3).step_by(11).take(10).collect();
        assert!(
            concepts.iter().filter(|&&c| unambiguous(c)).count() >= 3,
            "fixture lost its power: too few unambiguous concepts"
        );
        let note = gen.render(&concepts, &distractors);
        let doc = ex.extract_document(DocId(0), &note);
        for &c in &concepts {
            if unambiguous(c) {
                assert!(doc.contains(c), "lost concept {:?} in note: {note}", ont.label(c));
            }
        }
        for &d in &distractors {
            if !concepts.contains(&d) && unambiguous(d) {
                assert!(!doc.contains(d), "negated distractor {:?} leaked", ont.label(d));
            }
        }
    }

    #[test]
    fn tokenizer_handles_punctuation_and_case() {
        assert_eq!(tokenize("Hello, WORLD-2!"), vec!["hello", "world", "2"]);
        let t = tokenize_with_boundaries("a b. c");
        assert_eq!(t, vec!["a", "b", ".", "c"]);
        let t = tokenize_with_boundaries("x.. y");
        assert_eq!(t, vec!["x", ".", "y"], "boundaries collapse");
    }
}
