//! Seeded-violation fixture: snapshot query entry points with unbounded
//! and mis-declared loops (C01).

/// Root `core::snapshot::rds_with`. Seeded C01: a bare `while` with no
/// inference channel and no directive.
pub fn rds_with(docs: &[u32], limit: u32) -> u32 {
    let mut acc = 0;
    for &d in docs {
        acc += d;
    }
    let mut changed = acc < limit;
    while changed {
        acc += 1;
        changed = acc < limit;
    }
    acc
}

/// Root `core::snapshot::sds_with`. Seeded C01 twice: a directive whose
/// expression does not parse, and a bare directive with no
/// justification.
pub fn sds_with(docs: &[u32], entries: &[u32]) -> u32 {
    let mut acc = 0;
    // cplx: bound n^2 quadratic scan
    for &d in docs {
        acc += d;
    }
    // cplx: bound d
    for &e in entries {
        acc ^= e;
    }
    acc
}
