//! Sub-ontology extraction.
//!
//! Production ontologies are huge (SNOMED-CT: ~300k concepts) while many
//! studies work inside one branch — "cardiac findings", "procedures".
//! [`subtree`] extracts the DAG induced by a concept and its descendants as
//! a standalone [`Ontology`] (the chosen concept becomes the root), with an
//! id mapping back to the source. Child order is preserved, so Dewey
//! addresses inside the subset are suffixes of the originals.

use crate::graph::{Ontology, OntologyBuilder};
use crate::hash::FxHashMap;
use crate::id::ConceptId;

/// A standalone sub-ontology plus the id correspondence.
#[derive(Debug)]
pub struct Subset {
    /// The extracted ontology (root = the requested concept).
    pub ontology: Ontology,
    /// For each new id (by index), the source ontology's id.
    pub to_source: Vec<ConceptId>,
    /// Source id → new id.
    pub from_source: FxHashMap<ConceptId, ConceptId>,
}

impl Subset {
    /// Maps a source concept into the subset, if present.
    pub fn map(&self, source: ConceptId) -> Option<ConceptId> {
        self.from_source.get(&source).copied()
    }

    /// Maps a set of source concepts, dropping the ones outside the subset.
    pub fn map_all(&self, source: &[ConceptId]) -> Vec<ConceptId> {
        source.iter().filter_map(|&c| self.map(c)).collect()
    }
}

/// Extracts `root` and all of its descendants from `ont`.
///
/// Edges from retained concepts to retained concepts survive; edges
/// entering from outside the branch are dropped (which is what makes the
/// result single-rooted at `root`).
pub fn subtree(ont: &Ontology, root: ConceptId) -> Subset {
    // Collect descendants in BFS order (deterministic), then renumber in
    // *source id* order so ids are stable regardless of traversal.
    let mut in_subset = vec![false; ont.len()];
    in_subset[root.index()] = true;
    let mut queue = std::collections::VecDeque::from([root]);
    while let Some(c) = queue.pop_front() {
        for &child in ont.children(c) {
            if !in_subset[child.index()] {
                in_subset[child.index()] = true;
                queue.push_back(child);
            }
        }
    }
    // Keep the designated root first so it gets id 0 and stays parentless
    // even if its source id is larger than a descendant's.
    let mut members: Vec<ConceptId> = vec![root];
    members.extend(ont.concepts().filter(|&c| c != root && in_subset[c.index()]));

    let mut builder = OntologyBuilder::new();
    let mut from_source: FxHashMap<ConceptId, ConceptId> = FxHashMap::default();
    for &c in &members {
        let new = builder.add_concept(ont.label(c));
        from_source.insert(c, new);
    }
    for &c in &members {
        let new_parent = from_source[&c];
        for &child in ont.children(c) {
            // Children of retained nodes are retained by construction.
            let new_child = from_source[&child];
            builder.add_edge(new_parent, new_child).expect("subset ids are valid");
        }
    }
    let ontology = builder.build().expect("a subtree is a valid single-rooted DAG");
    Subset { ontology, to_source: members, from_source }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture;

    #[test]
    fn subtree_of_g_contains_its_descendants_only() {
        let fig = fixture::figure3();
        let sub = subtree(&fig.ontology, fig.concept("G"));
        // Descendants of G: I, J (via G), K, M, N, O, R, S, U, V — plus G.
        assert_eq!(sub.ontology.len(), 11);
        assert_eq!(sub.ontology.root(), ConceptId(0));
        assert_eq!(sub.ontology.label(sub.ontology.root()), "G");
        for name in ["I", "J", "K", "M", "N", "O", "R", "S", "U", "V"] {
            assert!(sub.map(fig.concept(name)).is_some(), "{name} missing");
        }
        for name in ["A", "B", "C", "D", "E", "F", "H", "L", "P", "Q", "T"] {
            assert!(sub.map(fig.concept(name)).is_none(), "{name} leaked in");
        }
    }

    #[test]
    fn child_order_and_dewey_suffixes_are_preserved() {
        let fig = fixture::figure3();
        let sub = subtree(&fig.ontology, fig.concept("G"));
        let g = sub.ontology.root();
        let i = sub.map(fig.concept("I")).unwrap();
        let j = sub.map(fig.concept("J")).unwrap();
        assert_eq!(sub.ontology.child_ordinal(g, i), Some(1));
        assert_eq!(sub.ontology.child_ordinal(g, j), Some(2));
        // R keeps a single address under G: original 1.1.1|.2.1.1 → 2.1.1.
        let r = sub.map(fig.concept("R")).unwrap();
        let pt = sub.ontology.path_table();
        let addrs: Vec<Vec<u32>> = pt.addresses(r).map(|a| a.to_vec()).collect();
        assert_eq!(addrs, vec![vec![2, 1, 1]]);
    }

    #[test]
    fn distances_inside_the_branch_survive() {
        // Valid paths that stay inside the branch keep their lengths;
        // pairs whose only common ancestor was outside become unreachable
        // in the subset — which cannot happen here because G is an
        // ancestor of everything retained.
        let fig = fixture::figure3();
        let sub = subtree(&fig.ontology, fig.concept("G"));
        let pt_sub = sub.ontology.path_table();
        let m = sub.map(fig.concept("M")).unwrap();
        let u = sub.map(fig.concept("U")).unwrap();
        // M..U via G: M sits 2 below G (G→I→M), U sits 4 below
        // (G→J→K→R→U) — 6 edges, in the full graph and in the branch.
        assert_eq!(crate::concept_distance(pt_sub, m, u), 6);
        assert_eq!(
            crate::concept_distance(fig.ontology.path_table(), fig.concept("M"), fig.concept("U")),
            6
        );
    }

    #[test]
    fn mapping_roundtrips() {
        let fig = fixture::figure3();
        let sub = subtree(&fig.ontology, fig.concept("J"));
        for (new_idx, &old) in sub.to_source.iter().enumerate() {
            assert_eq!(sub.from_source[&old], ConceptId::from_index(new_idx));
            assert_eq!(sub.ontology.label(ConceptId::from_index(new_idx)), fig.ontology.label(old));
        }
        let mapped = sub.map_all(&[fig.concept("K"), fig.concept("A"), fig.concept("V")]);
        assert_eq!(mapped.len(), 2, "A is outside the J branch");
    }

    #[test]
    fn leaf_subtree_is_a_single_node() {
        let fig = fixture::figure3();
        let sub = subtree(&fig.ontology, fig.concept("M"));
        assert_eq!(sub.ontology.len(), 1);
        assert!(sub.ontology.is_leaf(sub.ontology.root()));
    }
}
