//! Per-thread loop-iteration counters for the C05 dynamic cross-check.
//!
//! Compiled only under the `counters` cfg feature: release and bench
//! builds carry no trace of these, which `scripts/check.sh` confirms by
//! rebuilding the bench binary without the feature. Each counter pairs
//! with a `// cplx: counter <name>` marker on a hot loop in `dag.rs`;
//! the `cbr-cplx` test harness resets them, drives the engine over
//! generated corpora, and asserts the observed iteration counts stay
//! within a constant factor of the statically proven symbolic bounds.

use std::cell::Cell;

thread_local! {
    static ADDRS: Cell<u64> = const { Cell::new(0) };
    static SUFFIX_POPS: Cell<u64> = const { Cell::new(0) };
    static RADIX_STEPS: Cell<u64> = const { Cell::new(0) };
}

/// Observed iteration counts since the last [`reset`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DagCounters {
    /// Turns of the address-staging loop (static bound: `deg·P`).
    pub addrs: u64,
    /// Items popped off the suffix worklist (static bound: `depth²` per
    /// inserted address).
    pub suffix_pops: u64,
    /// Radix descent steps (static bound: `depth` per popped item).
    pub radix_steps: u64,
}

/// Zeroes every counter on this thread.
pub fn reset() {
    ADDRS.with(|c| c.set(0));
    SUFFIX_POPS.with(|c| c.set(0));
    RADIX_STEPS.with(|c| c.set(0));
}

/// Reads every counter on this thread.
pub fn snapshot() -> DagCounters {
    DagCounters {
        addrs: ADDRS.with(Cell::get),
        suffix_pops: SUFFIX_POPS.with(Cell::get),
        radix_steps: RADIX_STEPS.with(Cell::get),
    }
}

/// One turn of the address-staging loop.
pub fn bump_addrs() {
    ADDRS.with(|c| c.set(c.get().wrapping_add(1)));
}

/// One item popped off the suffix worklist.
pub fn bump_suffix_pops() {
    SUFFIX_POPS.with(|c| c.set(c.get().wrapping_add(1)));
}

/// One radix descent step.
pub fn bump_radix_steps() {
    RADIX_STEPS.with(|c| c.set(c.get().wrapping_add(1)));
}
