//! Seeded-violation fixture: a D-Radix build whose composed bound lacks
//! the `P·log` term the paper's Theorem 1 promises (C03).

/// Root `dradix::dag::build_into`: inserts every staged address without
/// the rank-sorted merge, so the composed bound is `O(P)` with no `log`
/// factor — recognizably *not* the paper's `O((|Pq|+|Pd|)·log)` shape.
pub fn build_into(addresses: &[u32]) -> u32 {
    let mut acc = 0;
    for &addr in addresses {
        acc = acc.wrapping_add(addr);
    }
    acc
}
