//! Trace-stream invariants: events arrive in a consistent order and agree
//! with the returned metrics and results.

use cbr_corpus::Corpus;
use cbr_index::MemorySource;
use cbr_knds::{Knds, KndsConfig, TraceEvent};
use cbr_ontology::fixture;

fn setup() -> (fixture::Figure3, MemorySource) {
    let fig = fixture::figure3();
    let c = |n: &str| fig.concept(n);
    let corpus = Corpus::from_concept_sets(vec![
        (vec![c("F"), c("R"), c("T"), c("V")], 0),
        (vec![c("I"), c("L"), c("U")], 0),
        (vec![c("M"), c("N")], 0),
        (vec![c("C")], 0),
        (vec![c("G"), c("H")], 0),
    ]);
    let source = MemorySource::build(&corpus, fig.ontology.len());
    (fig, source)
}

#[test]
fn trace_is_ordered_and_complete() {
    let (fig, source) = setup();
    let knds = Knds::new(&fig.ontology, &source, KndsConfig::default());
    let mut events = Vec::new();
    let r = knds.rds_traced(&fig.example_query(), 2, |e| events.push(e));

    // Levels start at 0 and increase by one.
    let levels: Vec<u32> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::LevelStart { level, .. } => Some(*level),
            _ => None,
        })
        .collect();
    assert_eq!(levels[0], 0);
    assert!(levels.windows(2).all(|w| w[1] == w[0] + 1), "{levels:?}");
    assert_eq!(levels.len() as u32, r.metrics.levels);

    // Examined events match the metrics counter and the DRC split.
    let examined: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Examined { doc, exact, via_drc, .. } => Some((*doc, *exact, *via_drc)),
            _ => None,
        })
        .collect();
    assert_eq!(examined.len(), r.metrics.docs_examined);
    let via_drc = examined.iter().filter(|(_, _, d)| *d).count();
    assert_eq!(via_drc, r.metrics.drc_calls);

    // Every returned result was examined with exactly its final distance.
    for res in &r.results {
        assert!(
            examined.iter().any(|&(d, x, _)| d == res.doc && x == res.distance),
            "result {res:?} missing from trace"
        );
    }

    // Termination (or exhaustion) closes the stream.
    assert!(matches!(
        events.last(),
        Some(TraceEvent::Terminated { .. })
            | Some(TraceEvent::Exhausted { .. })
            | Some(TraceEvent::ExamineBreak { .. })
    ));
}

#[test]
fn candidate_events_report_coverage_monotonically() {
    let (fig, source) = setup();
    let knds = Knds::new(&fig.ontology, &source, KndsConfig::default().with_error_threshold(0.0));
    let mut events = Vec::new();
    knds.rds_traced(&fig.example_query(), 3, |e| events.push(e));
    // For any document, coverage counts never decrease across levels.
    let mut last: std::collections::HashMap<cbr_corpus::DocId, u32> = Default::default();
    for e in &events {
        if let TraceEvent::Candidate { doc, covered, .. } = e {
            let prev = last.insert(*doc, *covered).unwrap_or(0);
            assert!(*covered >= prev, "coverage regressed for {doc}");
        }
    }
    assert!(!last.is_empty(), "candidates were traced");
}

#[test]
fn traced_with_variants_match_over_a_shared_workspace() {
    let (fig, source) = setup();
    let knds = Knds::new(&fig.ontology, &source, KndsConfig::default());
    let q = fig.example_query();
    let mut ws = cbr_knds::KndsWorkspace::new();
    let mut events = 0usize;
    let traced = knds.rds_traced_with(&mut ws, &q, 3, |_| events += 1);
    assert_eq!(traced.results, knds.rds(&q, 3).results);
    assert!(events > 0, "rds_traced_with produced no trace events");

    let mut events = 0usize;
    let traced = knds.sds_traced_with(&mut ws, &q, 2, |_| events += 1);
    assert_eq!(traced.results, knds.sds(&q, 2).results);
    assert!(events > 0, "sds_traced_with produced no trace events");
}

#[test]
fn tracing_does_not_change_results() {
    let (fig, source) = setup();
    let knds = Knds::new(&fig.ontology, &source, KndsConfig::default());
    let q = fig.example_query();
    let plain = knds.rds(&q, 3);
    let traced = knds.rds_traced(&q, 3, |_| {});
    for (a, b) in plain.results.iter().zip(traced.results.iter()) {
        assert_eq!(a.doc, b.doc);
        assert_eq!(a.distance, b.distance);
    }
    // SDS too.
    let plain = knds.sds(&q, 2);
    let traced = knds.sds_traced(&q, 2, |_| {});
    for (a, b) in plain.results.iter().zip(traced.results.iter()) {
        assert_eq!(a.doc, b.doc);
        assert_eq!(a.distance, b.distance);
    }
}
