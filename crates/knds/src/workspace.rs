//! Reusable per-query scratch for the kNDS engines.
//!
//! Every kNDS query needs a family of maps and buffers — the candidate
//! table, the coverage sets, the BFS frontier, posting/concept fetch
//! buffers, and the DRC DAG scratch. Allocating them per query dominates
//! short-query latency and defeats the paper's "no precomputation, instant
//! admission" story at service scale. A [`KndsWorkspace`] owns all of that
//! state once: engines borrow it for the duration of one query via the
//! `*_with` entry points ([`Knds::rds_with`](crate::Knds::rds_with) and
//! friends), clear it — never free it — on return, and the hot loop stops
//! allocating after the first few queries warm the capacities up.
//!
//! # Poisoning
//!
//! A query that panics mid-flight leaves the workspace dirty. The next
//! borrow detects this and resets the logical content before use, so a
//! pooled workspace can never leak one query's candidates into another's
//! results.

use crate::engine::{Candidate, State};
use cbr_corpus::DocId;
use cbr_dradix::DagScratch;
use cbr_ontology::{ConceptId, FxHashMap, FxHashSet};

/// Owned, reusable query state for [`Knds`](crate::Knds),
/// [`WeightedKnds`](crate::WeightedKnds), and the scan baselines.
///
/// One workspace serves one query at a time but any number of queries in
/// sequence — RDS, SDS, weighted, and baseline runs may interleave freely
/// on the same workspace and are bit-identical to fresh-state runs (see
/// the reuse-equivalence property tests in `tests/properties.rs`).
#[derive(Debug, Default)]
pub struct KndsWorkspace {
    /// Normalized (sorted, deduplicated) query buffer.
    pub(crate) query: Vec<ConceptId>,
    /// Candidate table: document → partial distance bookkeeping (`Md`).
    pub(crate) candidates: FxHashMap<DocId, Candidate>,
    /// SDS: node → level of its global first touch (drives `M'd`).
    pub(crate) first_touch: FxHashMap<ConceptId, u32>,
    /// Weighted SDS: nodes already coverage-applied in reverse.
    pub(crate) first_touch_set: FxHashSet<ConceptId>,
    /// `(origin, node)` pairs whose postings were already applied.
    pub(crate) covered_pairs: FxHashSet<u64>,
    /// `(origin, node, direction)` states already enqueued (dedup mode).
    pub(crate) seen_states: FxHashSet<u64>,
    /// Weighted: best tentative distance per state (lazy deletion).
    pub(crate) best_dist: FxHashMap<u64, u32>,
    /// Posting-list fetch buffer.
    pub(crate) postings_buf: Vec<DocId>,
    /// Forward-index fetch buffer.
    pub(crate) concepts_buf: Vec<ConceptId>,
    /// Documents already reported through a progressive sink.
    pub(crate) emitted: FxHashSet<DocId>,
    /// Current BFS level (double-buffered with `next_frontier`).
    pub(crate) frontier: Vec<State>,
    /// Next BFS level (swap-and-clear, never reallocated per level).
    pub(crate) next_frontier: Vec<State>,
    /// Weighted: distance-indexed Dijkstra buckets.
    pub(crate) buckets: Vec<Vec<State>>,
    /// Examination order buffer: `(lower bound, doc)` per round.
    pub(crate) order: Vec<(f64, DocId)>,
    /// Scratch document list (exhaustion finalize, progressive emission).
    pub(crate) docs_buf: Vec<DocId>,
    /// Per-document scan marks (TA round-robin).
    pub(crate) seen_docs: Vec<bool>,
    /// The DRC D-Radix build scratch (node/label arenas et al.).
    pub(crate) dag: DagScratch,
    /// True while a query is in flight (or after a panic left one
    /// unfinished); `begin` resets a dirty workspace before reuse.
    dirty: bool,
    /// Queries served so far (drives the `workspace_reused` metric).
    uses: usize,
}

impl KndsWorkspace {
    /// An empty workspace; capacity accrues over the first queries.
    pub fn new() -> KndsWorkspace {
        KndsWorkspace::default()
    }

    /// Marks the start of a query. Returns whether the workspace has
    /// served a query before (i.e. its capacities are warm). If the
    /// previous query panicked mid-flight the logical content is still
    /// present; it is cleared here before reuse.
    pub(crate) fn begin(&mut self) -> bool {
        if self.dirty {
            self.clear();
        }
        self.dirty = true;
        let warm = self.uses > 0;
        self.uses = self.uses.saturating_add(1);
        warm
    }

    /// Marks the end of a query: clears all logical content (keeping
    /// capacity) so the workspace is returned clean.
    pub(crate) fn finish(&mut self) {
        self.clear();
        self.dirty = false;
    }

    /// Detaches the DRC scratch for the duration of a query (it rides
    /// inside a [`Drc`](cbr_dradix::Drc) value); pair with
    /// [`restore_dag`](Self::restore_dag).
    pub(crate) fn take_dag(&mut self) -> DagScratch {
        std::mem::take(&mut self.dag)
    }

    /// Re-attaches the DRC scratch after a query.
    pub(crate) fn restore_dag(&mut self, dag: DagScratch) {
        self.dag = dag;
    }

    fn clear(&mut self) {
        self.query.clear();
        self.candidates.clear();
        self.first_touch.clear();
        self.first_touch_set.clear();
        self.covered_pairs.clear();
        self.seen_states.clear();
        self.best_dist.clear();
        self.postings_buf.clear();
        self.concepts_buf.clear();
        self.emitted.clear();
        self.frontier.clear();
        self.next_frontier.clear();
        for b in &mut self.buckets {
            b.clear();
        }
        self.order.clear();
        self.docs_buf.clear();
        self.seen_docs.clear();
        // The DAG scratch clears itself on the next build.
    }

    /// Approximate heap footprint of the retained capacities, in bytes.
    /// This is the quantity reported as
    /// [`QueryMetrics::workspace_bytes`](crate::QueryMetrics) and asserted
    /// stable by the steady-state allocation tests: once warm, repeated
    /// queries must not grow any backing buffer.
    pub fn footprint_bytes(&self) -> usize {
        use std::mem::size_of;
        self.query.capacity() * size_of::<ConceptId>()
            + self.candidates.capacity() * (size_of::<DocId>() + size_of::<Candidate>())
            + self.first_touch.capacity() * (size_of::<ConceptId>() + size_of::<u32>())
            + self.first_touch_set.capacity() * size_of::<ConceptId>()
            + self.covered_pairs.capacity() * size_of::<u64>()
            + self.seen_states.capacity() * size_of::<u64>()
            + self.best_dist.capacity() * (size_of::<u64>() + size_of::<u32>())
            + self.postings_buf.capacity() * size_of::<DocId>()
            + self.concepts_buf.capacity() * size_of::<ConceptId>()
            + self.emitted.capacity() * size_of::<DocId>()
            + (self.frontier.capacity() + self.next_frontier.capacity()) * size_of::<State>()
            + self.buckets.capacity() * size_of::<Vec<State>>()
            + self.buckets.iter().map(|b| b.capacity() * size_of::<State>()).sum::<usize>()
            + self.order.capacity() * size_of::<(f64, DocId)>()
            + self.docs_buf.capacity() * size_of::<DocId>()
            + self.seen_docs.capacity()
            + self.dag.footprint_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_reports_warmth_and_finish_returns_clean() {
        let mut ws = KndsWorkspace::new();
        assert!(!ws.begin(), "first borrow is cold");
        ws.postings_buf.push(DocId(1));
        ws.finish();
        assert!(!ws.dirty);
        assert!(ws.postings_buf.is_empty(), "finish clears content");
        assert!(ws.begin(), "second borrow is warm");
    }

    #[test]
    fn dirty_workspace_is_cleared_on_next_begin() {
        let mut ws = KndsWorkspace::new();
        ws.begin();
        ws.query.push(ConceptId(3));
        ws.candidates.insert(DocId(0), Candidate::new(1, 0));
        // No finish(): simulates a panic mid-query.
        ws.begin();
        assert!(ws.query.is_empty(), "stale query leaked");
        assert!(ws.candidates.is_empty(), "stale candidates leaked");
    }

    #[test]
    fn clearing_keeps_capacity() {
        let mut ws = KndsWorkspace::new();
        ws.begin();
        ws.postings_buf.extend((0..100).map(DocId));
        ws.buckets.push(vec![(0, ConceptId(0), false); 16]);
        let footprint = ws.footprint_bytes();
        ws.finish();
        assert_eq!(ws.footprint_bytes(), footprint, "finish must keep capacity");
    }
}
