//! Synthetic clinical-note text generation.
//!
//! The paper's pipeline starts from free-text clinical notes (Figure 1) and
//! maps terms to ontology concepts with MetaMap, after expanding
//! abbreviations from a public list and dropping negated mentions
//! (Section 6.1). To exercise that whole path without the licence-gated
//! MIMIC-II notes, [`NoteGenerator`] renders a concept set back into a
//! note-like text: concept labels embedded in filler prose, a configurable
//! share of mentions abbreviated, and a configurable rate of *negated*
//! distractor mentions ("no evidence of …") that the extractor must reject.

use cbr_ontology::{ConceptId, Ontology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration and state for note generation.
#[derive(Debug)]
pub struct NoteGenerator<'a> {
    ontology: &'a Ontology,
    /// Probability that a mention is rendered as its abbreviation.
    pub abbreviation_rate: f64,
    /// Number of negated distractor mentions per ten real mentions.
    pub negation_rate: f64,
    seed: u64,
}

const FILLERS: &[&str] = &[
    "patient here for follow up",
    "computer print out of labs reviewed",
    "vital signs stable",
    "continues on current medications",
    "discussed plan with patient",
    "will recheck in two weeks",
    "no acute distress noted on exam",
    "history reviewed in detail",
];

const NEGATION_TEMPLATES: &[&str] = &["no evidence of", "absence of", "patient denies", "without"];

impl<'a> NoteGenerator<'a> {
    /// Creates a generator with the paper-ish defaults: 20% of mentions
    /// abbreviated, 1.5 negated distractors per ten mentions.
    pub fn new(ontology: &'a Ontology, seed: u64) -> Self {
        NoteGenerator { ontology, abbreviation_rate: 0.2, negation_rate: 0.15, seed }
    }

    /// Derives the abbreviation of a concept label: the initial letters of
    /// its words, uppercased (`"chronic cardiac finding"` → `"CCF"`).
    /// This mirrors how the public abbreviation lists the paper uses map
    /// short forms back to full terms.
    pub fn abbreviation(label: &str) -> String {
        label
            .split_whitespace()
            .filter_map(|w| w.chars().next())
            .map(|c| c.to_ascii_uppercase())
            .collect()
    }

    /// Renders a note mentioning every concept in `concepts` (positively),
    /// interleaved with filler prose and negated distractor mentions of
    /// `distractors` (concepts *not* in the document).
    ///
    /// Deterministic for a fixed generator seed and input.
    pub fn render(&self, concepts: &[ConceptId], distractors: &[ConceptId]) -> String {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = String::new();
        let mut distractor_iter = distractors.iter();
        for (i, &c) in concepts.iter().enumerate() {
            if i % 3 == 0 {
                out.push_str(FILLERS[rng.random_range(0..FILLERS.len())]);
                out.push_str(". ");
            }
            let label = self.ontology.label(c);
            let mention = if rng.random::<f64>() < self.abbreviation_rate {
                Self::abbreviation(label)
            } else {
                label.to_string()
            };
            out.push_str("assessment shows ");
            out.push_str(&mention);
            out.push_str(". ");

            if rng.random::<f64>() < self.negation_rate {
                if let Some(&d) = distractor_iter.next() {
                    let template =
                        NEGATION_TEMPLATES[rng.random_range(0..NEGATION_TEMPLATES.len())];
                    out.push_str(template);
                    out.push(' ');
                    out.push_str(self.ontology.label(d));
                    out.push_str(". ");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbr_ontology::{GeneratorConfig, OntologyGenerator};

    #[test]
    fn abbreviation_takes_initials() {
        assert_eq!(NoteGenerator::abbreviation("chronic cardiac finding"), "CCF");
        assert_eq!(NoteGenerator::abbreviation("single"), "S");
        assert_eq!(NoteGenerator::abbreviation(""), "");
    }

    #[test]
    fn render_mentions_every_concept_or_abbreviation() {
        let ont = OntologyGenerator::new(GeneratorConfig::small(100)).generate();
        let mut gen = NoteGenerator::new(&ont, 7);
        gen.abbreviation_rate = 0.0; // full labels only, so contains() is exact
        gen.negation_rate = 0.0;
        let concepts: Vec<_> = ont.concepts().skip(10).take(5).collect();
        let note = gen.render(&concepts, &[]);
        for &c in &concepts {
            assert!(note.contains(ont.label(c)), "note must mention {:?}", ont.label(c));
        }
    }

    #[test]
    fn render_is_deterministic() {
        let ont = OntologyGenerator::new(GeneratorConfig::small(100)).generate();
        let gen = NoteGenerator::new(&ont, 42);
        let concepts: Vec<_> = ont.concepts().take(8).collect();
        let distractors: Vec<_> = ont.concepts().skip(20).take(8).collect();
        assert_eq!(gen.render(&concepts, &distractors), gen.render(&concepts, &distractors));
    }

    #[test]
    fn negations_appear_when_requested() {
        let ont = OntologyGenerator::new(GeneratorConfig::small(100)).generate();
        let mut gen = NoteGenerator::new(&ont, 3);
        gen.negation_rate = 1.0;
        let concepts: Vec<_> = ont.concepts().take(6).collect();
        let distractors: Vec<_> = ont.concepts().skip(30).take(6).collect();
        let note = gen.render(&concepts, &distractors);
        let has_negation = NEGATION_TEMPLATES.iter().any(|t| note.contains(t));
        assert!(has_negation, "note should contain a negated mention: {note}");
    }
}
