//! Delta + varint compressed posting lists.
//!
//! The paper's baseline analysis (Section 4.1) turns on index size: the
//! precomputed-distance design needs `O(|D||C|)` space, which is exactly
//! why kNDS avoids precomputation. This module makes the space axis
//! measurable for *our* indexes too: posting lists store document-id
//! deltas in LEB128 varints (sorted postings make deltas small), and
//! [`CompressedSource`] serves queries straight from the compressed form
//! so the benches can weigh bytes against decode time.

use crate::source::IndexSource;
use crate::{ForwardIndex, InvertedIndex};
use cbr_corpus::DocId;
use cbr_ontology::ConceptId;

/// Appends `value` as a LEB128 varint.
#[inline]
fn put_varint(out: &mut Vec<u8>, mut value: u32) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint; returns `(value, bytes_consumed)`.
#[inline]
fn get_varint(bytes: &[u8]) -> (u32, usize) {
    let mut value = 0u32;
    let mut shift = 0;
    for (i, &b) in bytes.iter().enumerate() {
        // bound: proven — the encoder emits ≤ 5 groups per u32, so shift ≤ 28
        value |= ((b & 0x7F) as u32) << shift;
        if b & 0x80 == 0 {
            return (value, i + 1);
        }
        shift += 7;
        debug_assert!(shift < 35, "varint too long");
    }
    panic!("truncated varint in compressed postings");
}

/// An inverted index with delta-varint-compressed posting lists.
#[derive(Debug, Clone)]
pub struct CompressedPostings {
    /// Byte offsets per concept into `data` (length `num_concepts + 1`).
    offsets: Vec<u32>,
    data: Vec<u8>,
    num_docs: u32,
}

impl CompressedPostings {
    /// Compresses an [`InvertedIndex`].
    pub fn build(index: &InvertedIndex) -> CompressedPostings {
        let mut offsets = Vec::with_capacity(index.num_concepts() + 1);
        let mut data = Vec::new();
        offsets.push(0u32);
        for c in 0..index.num_concepts() {
            let mut prev = 0u32;
            for &d in index.postings(ConceptId(c as u32)) {
                // First delta is the raw id; postings are sorted and unique,
                // so later deltas are ≥ 1.
                put_varint(&mut data, d.0 - prev);
                prev = d.0;
            }
            offsets.push(data.len() as u32);
        }
        CompressedPostings { offsets, data, num_docs: index.num_docs() as u32 }
    }

    /// Decodes concept `c`'s postings, appending to `out`.
    pub fn decode(&self, c: ConceptId, out: &mut Vec<DocId>) {
        let i = c.index();
        if i + 1 >= self.offsets.len() {
            return;
        }
        let mut slice = &self.data[self.offsets[i] as usize..self.offsets[i + 1] as usize];
        let mut prev = 0u32;
        let mut first = true;
        // cplx: bound d — one varint-coded posting per turn, ≤ one per corpus document
        while !slice.is_empty() {
            let (delta, used) = get_varint(slice);
            slice = &slice[used..];
            prev = if first { delta } else { prev + delta };
            first = false;
            // bound: sized — one DocId per posting (cplx: cap d — a block holds one delta per posting document)
            out.push(DocId(prev));
        }
    }

    /// Compressed payload size in bytes (excluding the offset table).
    pub fn data_bytes(&self) -> usize {
        self.data.len()
    }

    /// Total size in bytes including the offset table.
    pub fn total_bytes(&self) -> usize {
        self.data.len() + self.offsets.len() * 4
    }

    /// Number of concepts covered.
    pub fn num_concepts(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of documents in the indexed corpus.
    pub fn num_docs(&self) -> usize {
        self.num_docs as usize
    }
}

/// An [`IndexSource`] serving postings from the compressed form (forward
/// lookups stay uncompressed — DRC needs them rarely and whole).
#[derive(Debug)]
pub struct CompressedSource {
    postings: CompressedPostings,
    forward: ForwardIndex,
}

impl CompressedSource {
    /// Builds from prebuilt indexes.
    pub fn new(inverted: &InvertedIndex, forward: ForwardIndex) -> CompressedSource {
        assert_eq!(inverted.num_docs(), forward.num_docs(), "index corpus mismatch");
        CompressedSource { postings: CompressedPostings::build(inverted), forward }
    }

    /// The compressed postings.
    pub fn postings(&self) -> &CompressedPostings {
        &self.postings
    }
}

impl IndexSource for CompressedSource {
    fn postings(&self, c: ConceptId, out: &mut Vec<DocId>) {
        self.postings.decode(c, out);
    }

    fn doc_concepts(&self, d: DocId, out: &mut Vec<ConceptId>) {
        out.extend_from_slice(self.forward.concepts(d));
    }

    fn doc_len(&self, d: DocId) -> usize {
        self.forward.num_concepts(d)
    }

    fn num_docs(&self) -> usize {
        self.forward.num_docs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbr_corpus::Corpus;

    fn c(v: u32) -> ConceptId {
        ConceptId(v)
    }

    fn corpus() -> Corpus {
        Corpus::from_concept_sets(vec![
            (vec![c(1), c(3)], 0),
            (vec![c(3)], 0),
            (vec![c(1), c(2), c(3)], 0),
            (vec![c(3)], 0),
        ])
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u32, 1, 127, 128, 300, 16_383, 16_384, u32::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let (back, used) = get_varint(&buf);
            assert_eq!(back, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn decode_matches_raw_postings() {
        let corpus = corpus();
        let raw = InvertedIndex::build(&corpus, 5);
        let comp = CompressedPostings::build(&raw);
        for i in 0..5u32 {
            let mut out = Vec::new();
            comp.decode(c(i), &mut out);
            assert_eq!(out.as_slice(), raw.postings(c(i)), "concept {i}");
        }
        // Out of range: nothing decoded.
        let mut out = Vec::new();
        comp.decode(c(99), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn size_accessors_are_consistent() {
        let comp = CompressedPostings::build(&InvertedIndex::build(&corpus(), 5));
        assert_eq!(comp.num_concepts(), 5);
        // The offset table stores num_concepts + 1 u32 fence posts.
        assert_eq!(comp.total_bytes(), comp.data_bytes() + (comp.num_concepts() + 1) * 4);
    }

    #[test]
    fn dense_postings_compress_below_raw_size() {
        // 1000 docs all containing concept 0 -> deltas of 1 -> 1 byte each
        // vs 4 bytes raw.
        let sets: Vec<(Vec<ConceptId>, u32)> = (0..1000).map(|_| (vec![c(0)], 0)).collect();
        let corpus = Corpus::from_concept_sets(sets);
        let raw = InvertedIndex::build(&corpus, 1);
        let comp = CompressedPostings::build(&raw);
        // First id (0) is one byte, then 999 one-byte deltas.
        assert_eq!(comp.data_bytes(), 1000);
        assert!(comp.data_bytes() < raw.total_postings() * 4);
    }

    #[test]
    fn compressed_source_answers_like_memory_source() {
        use crate::MemorySource;
        let corpus = corpus();
        let mem = MemorySource::build(&corpus, 5);
        let comp = CompressedSource::new(mem.inverted(), ForwardIndex::build(&corpus));
        assert_eq!(comp.num_docs(), mem.num_docs());
        for i in 0..5u32 {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            mem.postings(c(i), &mut a);
            IndexSource::postings(&comp, c(i), &mut b);
            assert_eq!(a, b);
        }
        for d in corpus.doc_ids() {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            mem.doc_concepts(d, &mut a);
            comp.doc_concepts(d, &mut b);
            assert_eq!(a, b);
            assert_eq!(comp.doc_len(d), mem.doc_len(d));
        }
    }
}
