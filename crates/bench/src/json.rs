//! Minimal JSON value, parser, and renderer for the bench trajectory
//! file (`BENCH_knds.json`).
//!
//! The workspace deliberately carries no serde-JSON dependency (A06 keeps
//! the dependency closure path-only), and the trajectory file needs both
//! directions: each `repro --json` run re-reads the file to append a run
//! and to compute speedups against the recorded baseline, and the smoke
//! step re-parses its own output to prove the emitter is well-formed.
//! This module is that round trip: a strict RFC 8259 subset (no comments,
//! no trailing commas), objects kept in insertion order so renders are
//! stable across runs.

use std::fmt;

/// A JSON value. Object members keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (rendered without a fraction when integral).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (ordered key/value pairs).
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Looks up a member of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => render_number(*n, out),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    render_string(k, out);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn render_number(n: f64, out: &mut String) {
    use fmt::Write;
    if !n.is_finite() {
        // JSON has no Infinity/NaN; degrade to null rather than emit an
        // unparseable token.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn render_string(s: &str, out: &mut String) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError { offset: self.pos, message }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex else {
                                return Err(self.err("invalid \\u escape"));
                            };
                            // Surrogates would need pairing; the bench file
                            // never emits them, so reject instead of lying.
                            let Some(c) = char::from_u32(code) else {
                                return Err(self.err("\\u escape is not a scalar value"));
                            };
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'"' || c == b'\\' || c < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let Ok(chunk) = std::str::from_utf8(&self.bytes[start..self.pos]) else {
                        return Err(self.err("invalid UTF-8 in string"));
                    };
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let Ok(token) = std::str::from_utf8(&self.bytes[start..self.pos]) else {
            return Err(self.err("invalid number"));
        };
        match token.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(self.err("invalid number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    #[test]
    fn round_trips_a_trajectory_shaped_document() {
        let doc = obj(vec![
            ("bench", Json::Str("knds".into())),
            (
                "runs",
                Json::Arr(vec![obj(vec![
                    ("label", Json::Str("pre".into())),
                    ("median_ns", Json::Num(123456.0)),
                    ("qps", Json::Num(81.5)),
                    ("empty", Json::Arr(vec![])),
                    ("none", Json::Null),
                    ("ok", Json::Bool(true)),
                ])]),
            ),
        ]);
        let text = doc.render();
        assert_eq!(Json::parse(&text), Ok(doc));
    }

    #[test]
    fn parses_escapes_and_whitespace() {
        let v = Json::parse(" { \"a\\n\\\"b\" : [ 1 , -2.5e1 , \"\\u0041\" ] } ").unwrap();
        let arr = v.get("a\n\"b").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-25.0));
        assert_eq!(arr[2].as_str(), Some("A"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "[1] trailing", "\"unterminated", "{'a':1}", "nul"]
        {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn integral_numbers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42\n");
        assert_eq!(Json::Num(0.25).render(), "0.25\n");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn object_order_is_preserved() {
        let text = "{\"z\": 1, \"a\": 2}";
        let v = Json::parse(text).unwrap();
        assert_eq!(v.render(), "{\n  \"z\": 1,\n  \"a\": 2\n}\n");
    }
}
