//! A lightweight lexical scanner for Rust sources.
//!
//! The lint rules need a few things the raw text cannot give them:
//! a view of the source with comments and string literals blanked out
//! (so `"panic!"` inside a message never trips A02), byte-accurate
//! `#[cfg(test)]` region tracking (test code may unwrap freely),
//! `#[cfg(feature = "serde")]` item tracking (gated serde imports are
//! legal), and `#[cfg(debug_assertions)]` tracking (debug-only
//! validation hooks are outside the release hot path the flow rules
//! reason about). It is a character-level scanner, not a parser: it
//! understands exactly the token classes the rules query — line and
//! nested block comments, string/char/raw-string literals versus
//! lifetimes, attribute spans, and brace-matched item extents — and
//! nothing more. The item-level parser in [`crate::parser`] builds its
//! `fn`/`impl` index on top of the blanked `code` view.

/// A scanned source file: original text plus derived masks.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path (`crates/knds/src/engine.rs`).
    pub rel: String,
    /// The original text.
    pub text: String,
    /// `text` with every comment and literal byte replaced by a space
    /// (newlines kept), so byte offsets and line numbers still line up.
    pub code: String,
    /// Per-byte: inside a `#[cfg(test)]` item (or a file under `tests/`).
    in_test: Vec<bool>,
    /// Per-byte: inside a `#[cfg(feature = "serde")]`-gated item.
    in_serde_gate: Vec<bool>,
    /// Per-byte: inside a `#[cfg(debug_assertions)]`-gated item or block.
    in_debug_gate: Vec<bool>,
}

impl SourceFile {
    /// Scans `text` as the contents of `rel`.
    pub fn parse(rel: &str, text: &str) -> SourceFile {
        let code = blank_noncode(text);
        let whole_file_test = rel.contains("/tests/") || rel.starts_with("tests/");
        let mut file = SourceFile {
            rel: rel.to_string(),
            text: text.to_string(),
            code,
            in_test: vec![whole_file_test; text.len()],
            in_serde_gate: vec![false; text.len()],
            in_debug_gate: vec![false; text.len()],
        };
        file.mark_attr_regions();
        file
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        1 + self.text.as_bytes()[..offset.min(self.text.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
    }

    /// Whether the byte at `offset` is inside test-only code.
    pub fn is_test(&self, offset: usize) -> bool {
        self.in_test.get(offset).copied().unwrap_or(false)
    }

    /// Whether the byte at `offset` is inside a serde-gated item.
    pub fn is_serde_gated(&self, offset: usize) -> bool {
        self.in_serde_gate.get(offset).copied().unwrap_or(false)
    }

    /// Whether the byte at `offset` is inside a
    /// `#[cfg(debug_assertions)]`-gated item or statement block — code
    /// the release build compiles out, which the flow hot-path rules
    /// therefore ignore.
    pub fn is_debug_gated(&self, offset: usize) -> bool {
        self.in_debug_gate.get(offset).copied().unwrap_or(false)
    }

    /// Byte offsets of every occurrence of `needle` in non-comment,
    /// non-literal code.
    pub fn code_matches(&self, needle: &str) -> Vec<usize> {
        let mut out = Vec::new();
        let mut from = 0;
        while let Some(at) = self.code[from..].find(needle) {
            out.push(from + at);
            from += at + needle.len().max(1);
        }
        out
    }

    /// Finds `#[cfg(...)]`-style attributes and marks the item each one
    /// governs in the test / serde-gate masks.
    fn mark_attr_regions(&mut self) {
        let bytes = self.code.as_bytes();
        let mut i = 0;
        while i + 1 < bytes.len() {
            if bytes[i] == b'#' && bytes[i + 1] == b'[' {
                let Some(close) = match_bracket(bytes, i + 1, b'[', b']') else {
                    break;
                };
                // Attribute arguments carry string literals ("serde"),
                // which the code mask blanks — classify on the original.
                let attr = &self.text[i..=close];
                let is_test_cfg = attr.contains("cfg(test)") || attr.contains("cfg(all(test");
                let is_serde_cfg = (attr.contains("cfg(feature") || attr.contains("cfg_attr"))
                    && attr.contains("\"serde\"");
                let is_debug_cfg = attr.contains("cfg(debug_assertions)");
                if is_test_cfg || is_serde_cfg || is_debug_cfg {
                    if let Some((start, end)) = self.item_after(close + 1) {
                        for o in start..=end.min(self.in_test.len() - 1) {
                            if is_test_cfg {
                                self.in_test[o] = true;
                            }
                            if is_serde_cfg {
                                self.in_serde_gate[o] = true;
                            }
                            if is_debug_cfg {
                                self.in_debug_gate[o] = true;
                            }
                        }
                    }
                }
                i = close + 1;
            } else {
                i += 1;
            }
        }
    }

    /// The extent of the item starting at (or after) `from`: skips
    /// whitespace and further attributes, then runs to the first `;` seen
    /// before any brace, or to the matching close of the first `{`.
    fn item_after(&self, from: usize) -> Option<(usize, usize)> {
        let bytes = self.code.as_bytes();
        let mut i = from;
        loop {
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i + 1 < bytes.len() && bytes[i] == b'#' && bytes[i + 1] == b'[' {
                i = match_bracket(bytes, i + 1, b'[', b']')? + 1;
            } else {
                break;
            }
        }
        let start = i;
        let mut nest = 0usize;
        while i < bytes.len() {
            match bytes[i] {
                b'(' | b'[' => {
                    nest += 1;
                    i += 1;
                }
                b')' | b']' => {
                    nest = nest.saturating_sub(1);
                    i += 1;
                }
                b';' if nest == 0 => return Some((start, i)),
                b'{' if nest == 0 => return Some((start, match_bracket(bytes, i, b'{', b'}')?)),
                _ => i += 1,
            }
        }
        None
    }
}

/// Whether `b` can appear in a Rust identifier.
pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte offsets of `[` that index into a value (preceded by an
/// identifier, `)`, or `]`) rather than opening a literal, type, pattern,
/// attribute, or macro invocation. Shared by audit rule A02 and flow
/// rule F04.
pub fn slice_index_sites(file: &SourceFile) -> Vec<usize> {
    const KEYWORDS: [&str; 14] = [
        "let", "mut", "ref", "in", "if", "else", "match", "return", "break", "continue", "move",
        "while", "for", "loop",
    ];
    let bytes = file.code.as_bytes();
    let mut out = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let mut p = i - 1;
        while p > 0 && (bytes[p] == b' ' || bytes[p] == b'\n') {
            p -= 1;
        }
        let prev = bytes[p];
        if prev == b')' || prev == b']' {
            out.push(i);
        } else if is_ident_byte(prev) {
            let mut s = p;
            while s > 0 && is_ident_byte(bytes[s - 1]) {
                s -= 1;
            }
            let word = &file.code[s..=p];
            if !KEYWORDS.contains(&word) {
                out.push(i);
            }
        }
    }
    out
}

/// Finds the offset of the bracket closing the one at `open`.
pub fn match_bracket(bytes: &[u8], open: usize, ob: u8, cb: u8) -> Option<usize> {
    debug_assert_eq!(bytes.get(open), Some(&ob));
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        if b == ob {
            depth += 1;
        } else if b == cb {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Replaces every comment and literal byte with a space, keeping
/// newlines, so the result is offset-compatible with the input.
fn blank_noncode(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = bytes.to_vec();
    let mut i = 0;
    let blank = |out: &mut Vec<u8>, lo: usize, hi: usize| {
        for o in lo..hi.min(out.len()) {
            if out[o] != b'\n' {
                out[o] = b' ';
            }
        }
    };
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = text[i..].find('\n').map_or(bytes.len(), |n| i + n);
                blank(&mut out, i, end);
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, i, j);
                i = j;
            }
            b'"' => {
                let end = skip_string(bytes, i);
                blank(&mut out, i, end);
                i = end;
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                let end = skip_raw_string(bytes, i);
                blank(&mut out, i, end);
                i = end;
            }
            b'\'' => {
                if let Some(end) = char_literal_end(bytes, i) {
                    blank(&mut out, i, end);
                    i = end;
                } else {
                    // A lifetime: leave the tick, it cannot confuse rules.
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    String::from_utf8(out).unwrap_or_else(|_| text.to_string())
}

/// Whether `r"`, `r#"`, `br"`, or `b"`-style literal starts here (and the
/// `r`/`b` is not the tail of an identifier).
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        while bytes.get(j) == Some(&b'#') {
            j += 1;
        }
        return bytes.get(j) == Some(&b'"');
    }
    // `b"..."` without `r` is an escaped byte string; defer to skip_string
    // by claiming it here only when a quote directly follows.
    bytes[i] == b'b' && bytes.get(j) == Some(&b'"')
}

/// End offset (exclusive) of the escaped string starting at `start`
/// (which may point at `b` of a byte string).
fn skip_string(bytes: &[u8], start: usize) -> usize {
    let mut i = start;
    if bytes[i] == b'b' {
        i += 1;
    }
    debug_assert_eq!(bytes.get(i), Some(&b'"'));
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    bytes.len()
}

/// End offset (exclusive) of the raw string starting at `start`.
fn skip_raw_string(bytes: &[u8], start: usize) -> usize {
    let mut i = start;
    if bytes[i] == b'b' {
        i += 1;
    }
    if bytes.get(i) == Some(&b'r') {
        i += 1;
    } else {
        return skip_string(bytes, start);
    }
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return i;
    }
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'"'
            && bytes[i + 1..].iter().take(hashes).filter(|&&b| b == b'#').count() == hashes
        {
            return i + 1 + hashes;
        }
        i += 1;
    }
    bytes.len()
}

/// If a char literal starts at `i`, its end offset (exclusive); `None`
/// when the tick is a lifetime.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    match bytes.get(i + 1) {
        Some(b'\\') => {
            // Escaped char: scan to the closing quote.
            let mut j = i + 2;
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'\'' => return Some(j + 1),
                    _ => j += 1,
                }
            }
            Some(bytes.len())
        }
        Some(_) if bytes.get(i + 2) == Some(&b'\'') => Some(i + 3),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let f = SourceFile::parse(
            "x.rs",
            "let a = \"unwrap()\"; // unwrap()\n/* unwrap() /* nested */ */ let b = 1;",
        );
        assert!(f.code_matches("unwrap").is_empty());
        assert_eq!(f.code_matches("let b").len(), 1);
    }

    #[test]
    fn raw_strings_and_chars_are_blanked_lifetimes_kept() {
        let f = SourceFile::parse(
            "x.rs",
            "let s = r#\"panic!\"#; let c = '\\''; fn f<'a>(x: &'a str) -> &'a str { x }",
        );
        assert!(f.code_matches("panic!").is_empty());
        assert_eq!(f.code_matches("&'a str").len(), 2);
    }

    #[test]
    fn line_numbers_are_stable_through_masking() {
        let f = SourceFile::parse("x.rs", "// one\n// two\nlet x = y.unwrap();\n");
        let hits = f.code_matches(".unwrap(");
        assert_eq!(hits.len(), 1);
        assert_eq!(f.line_of(hits[0]), 3);
    }

    #[test]
    fn cfg_test_mod_region_is_marked() {
        let src =
            "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let f = SourceFile::parse("x.rs", src);
        let hits = f.code_matches(".unwrap(");
        assert_eq!(hits.len(), 2);
        assert!(!f.is_test(hits[0]), "live code is not test");
        assert!(f.is_test(hits[1]), "mod tests body is test");
    }

    #[test]
    fn serde_gate_covers_use_and_mod_items() {
        let src = "#[cfg(feature = \"serde\")]\nuse serde::Serialize;\n#[cfg(feature = \"serde\")]\nmod gated {\n    use serde::de;\n}\nuse std::fmt;\n";
        let f = SourceFile::parse("x.rs", src);
        let hits = f.code_matches("use serde");
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|&h| f.is_serde_gated(h)));
        let std_use = f.code_matches("use std::fmt")[0];
        assert!(!f.is_serde_gated(std_use));
    }

    #[test]
    fn cfg_all_test_regions_are_marked() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(all(test, not(feature = \"model\")))]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let f = SourceFile::parse("x.rs", src);
        let hits = f.code_matches(".unwrap(");
        assert!(!f.is_test(hits[0]));
        assert!(f.is_test(hits[1]), "cfg(all(test, ..)) gates test code too");
    }

    #[test]
    fn files_under_tests_are_wholly_test() {
        let f = SourceFile::parse("crates/knds/tests/streaming.rs", "fn x() { y.unwrap(); }");
        assert!(f.is_test(f.code_matches(".unwrap(")[0]));
    }

    #[test]
    fn debug_assertions_blocks_are_marked() {
        let src = "fn f() {\n    step();\n    #[cfg(debug_assertions)]\n    {\n        self.check().unwrap();\n    }\n}\n#[cfg(debug_assertions)]\nfn check_all() { x.unwrap(); }\nfn live() { y.unwrap(); }\n";
        let f = SourceFile::parse("x.rs", src);
        let hits = f.code_matches(".unwrap(");
        assert_eq!(hits.len(), 3);
        assert!(f.is_debug_gated(hits[0]), "statement block is gated");
        assert!(f.is_debug_gated(hits[1]), "gated fn item is gated");
        assert!(!f.is_debug_gated(hits[2]), "plain code is not gated");
    }

    #[test]
    fn slice_index_sites_classify_brackets() {
        let f = SourceFile::parse(
            "x.rs",
            "#[derive(Debug)]\nfn f(v: &[u32], i: usize) -> u32 { let a: [u8; 2] = [0, 1]; \
             vec![3]; v[i] + (a)[0] }",
        );
        assert_eq!(slice_index_sites(&f).len(), 2, "v[i] and (a)[0] only");
    }

    #[test]
    fn cfg_attr_serde_derive_gates_nothing_but_itself() {
        // cfg_attr on a struct marks the struct item as gated — the rule
        // only consults the mask for `use serde` sites, so this is inert
        // but must not panic or mis-blank.
        let src =
            "#[cfg_attr(feature = \"serde\", derive(Serialize))]\npub struct S;\nuse std::io;\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.code_matches("pub struct S").len(), 1);
        assert!(!f.is_serde_gated(f.code_matches("use std::io")[0]));
    }
}
